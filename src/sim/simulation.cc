#include "sim/simulation.h"

#include "sim/process.h"

namespace emsim::sim {

Simulation::~Simulation() {
  // Destroy frames of processes still blocked on synchronization objects.
  // Their final awaiter never ran, so they are not in the calendar and no
  // other owner exists. Frame-local destructors must not touch the kernel.
  std::vector<std::coroutine_handle<>> leftover;
  leftover.swap(live_handles_);
  for (auto h : leftover) {
    h.destroy();
  }
}

void Simulation::Spawn(Process&& process) {
  auto handle = process.Release();
  EMSIM_CHECK(handle);
  handle.promise().sim = this;
  OnProcessCreated(handle);
  ScheduleHandle(now_, handle);
}

void Simulation::ScheduleHandle(SimTime at, std::coroutine_handle<> handle) {
  EMSIM_CHECK(at >= now_);
  calendar_.push(Entry{at, next_seq_++, handle, nullptr});
}

void Simulation::ScheduleCallback(SimTime at, std::function<void()> callback) {
  EMSIM_CHECK(at >= now_);
  calendar_.push(Entry{at, next_seq_++, nullptr, std::move(callback)});
}

bool Simulation::Step() {
  if (calendar_.empty()) {
    return false;
  }
  Entry entry = calendar_.top();
  calendar_.pop();
  now_ = entry.time;
  ++events_processed_;
  if (metric_calendar_depth_ != nullptr) {
    metric_calendar_depth_->Update(now_, static_cast<double>(calendar_.size()));
    (entry.handle ? metric_resumes_ : metric_callbacks_)->Increment();
  }
  if (entry.handle) {
    entry.handle.resume();
  } else if (entry.callback) {
    entry.callback();
  }
  return true;
}

void Simulation::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_resumes_ = nullptr;
    metric_callbacks_ = nullptr;
    metric_spawns_ = nullptr;
    metric_calendar_depth_ = nullptr;
    return;
  }
  metric_resumes_ = &metrics->GetCounter("sim.resumes");
  metric_callbacks_ = &metrics->GetCounter("sim.callbacks");
  metric_spawns_ = &metrics->GetCounter("sim.spawns");
  metric_calendar_depth_ = &metrics->GetTimeline("sim.calendar_depth");
}

void Simulation::Run() {
  while (Step()) {
  }
}

void Simulation::RunUntil(SimTime deadline) {
  while (!calendar_.empty() && calendar_.top().time <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace emsim::sim

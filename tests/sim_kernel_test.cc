#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event.h"
#include "sim/mailbox.h"
#include "sim/process.h"
#include "sim/resource.h"
#include "sim/semaphore.h"
#include "sim/simulation.h"

namespace emsim::sim {
namespace {

Process Recorder(Simulation& sim, std::vector<double>& log, double delay, int repeats) {
  for (int i = 0; i < repeats; ++i) {
    co_await Delay(delay);
    log.push_back(sim.Now());
  }
}

TEST(SimulationTest, TimeAdvancesWithDelays) {
  Simulation sim;
  std::vector<double> log;
  sim.Spawn(Recorder(sim, log, 2.5, 3));
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[0], 2.5);
  EXPECT_DOUBLE_EQ(log[1], 5.0);
  EXPECT_DOUBLE_EQ(log[2], 7.5);
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(SimulationTest, CallbacksRunAtScheduledTime) {
  Simulation sim;
  std::vector<double> times;
  sim.ScheduleCallback(5.0, [&] { times.push_back(sim.Now()); });
  sim.ScheduleCallback(1.0, [&] { times.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(SimulationTest, FifoTieBreakAtEqualTimes) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleCallback(3.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulationTest, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleCallback(0, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<double> log;
  sim.Spawn(Recorder(sim, log, 10.0, 5));
  sim.RunUntil(25.0);
  EXPECT_EQ(log.size(), 2u);  // t=10, t=20 ran; t=30 pending.
  EXPECT_DOUBLE_EQ(sim.Now(), 25.0);
  sim.Run();
  EXPECT_EQ(log.size(), 5u);
}

Process Waiter(Simulation& sim, Event& event, std::vector<std::string>& log,
               std::string name) {
  co_await event.Wait();
  log.push_back(name + "@" + std::to_string(sim.Now()));
}

Process Setter(Simulation& /*sim*/, Event& event, double at) {
  co_await Delay(at);
  event.Set();
}

TEST(EventTest, LatchReleasesAllWaiters) {
  Simulation sim;
  Event event(&sim);
  std::vector<std::string> log;
  sim.Spawn(Waiter(sim, event, log, "a"));
  sim.Spawn(Waiter(sim, event, log, "b"));
  sim.Spawn(Setter(sim, event, 4.0));
  sim.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "a@4.000000");
  EXPECT_EQ(log[1], "b@4.000000");
  EXPECT_TRUE(event.IsSet());
}

TEST(EventTest, WaitOnSetEventIsImmediate) {
  Simulation sim;
  Event event(&sim);
  event.Set();
  std::vector<std::string> log;
  sim.Spawn(Waiter(sim, event, log, "x"));
  sim.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "x@0.000000");
}

TEST(EventTest, SetIsIdempotentAndResetRearms) {
  Simulation sim;
  Event event(&sim);
  event.Set();
  event.Set();
  EXPECT_TRUE(event.IsSet());
  event.Reset();
  EXPECT_FALSE(event.IsSet());
}

Process SignalConsumer(Simulation& sim, Signal& signal, int& count, int until) {
  while (count < until) {
    co_await signal.Wait();
    ++count;
  }
  (void)sim;
}

Process SignalProducer(Simulation& /*sim*/, Signal& signal, int pulses) {
  for (int i = 0; i < pulses; ++i) {
    co_await Delay(1.0);
    signal.Fire();
  }
}

TEST(SignalTest, PulsesWakeCurrentWaitersOnly) {
  Simulation sim;
  Signal signal(&sim);
  int count = 0;
  sim.Spawn(SignalConsumer(sim, signal, count, 3));
  sim.Spawn(SignalProducer(sim, signal, 5));
  sim.Run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(SignalTest, FireWithNoWaitersIsLost) {
  Simulation sim;
  Signal signal(&sim);
  signal.Fire();  // No one listening: no effect, no crash.
  EXPECT_EQ(signal.NumWaiters(), 0u);
}

Process Acquirer(Simulation& sim, Semaphore& sem, std::vector<double>& log) {
  co_await sem.Acquire();
  log.push_back(sim.Now());
  co_await Delay(10.0);
  sem.Release();
}

TEST(SemaphoreTest, SerializesByTokens) {
  Simulation sim;
  Semaphore sem(&sim, 1);
  std::vector<double> log;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(Acquirer(sim, sem, log));
  }
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[0], 0.0);
  EXPECT_DOUBLE_EQ(log[1], 10.0);
  EXPECT_DOUBLE_EQ(log[2], 20.0);
}

TEST(SemaphoreTest, TwoTokensDoubleConcurrency) {
  Simulation sim;
  Semaphore sem(&sim, 2);
  std::vector<double> log;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(Acquirer(sim, sem, log));
  }
  sim.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_DOUBLE_EQ(log[1], 0.0);
  EXPECT_DOUBLE_EQ(log[3], 10.0);
}

TEST(SemaphoreTest, TryAcquireNonBlocking) {
  Simulation sim;
  Semaphore sem(&sim, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

Process Thief(Simulation& /*sim*/, Semaphore& sem, bool& stole) {
  co_await Delay(5.0);
  stole = sem.TryAcquire();
}

Process HoldAndRelease(Simulation& /*sim*/, Semaphore& sem, double hold) {
  co_await sem.Acquire();
  co_await Delay(hold);
  sem.Release();
}

Process LateAcquirer(Simulation& sim, Semaphore& sem, double& when) {
  co_await Delay(1.0);
  co_await sem.Acquire();
  when = sim.Now();
  sem.Release();
}

TEST(SemaphoreTest, ReleaseHandsOffToWaiterNotThief) {
  // A waiter queued before a TryAcquire thief must get the token.
  Simulation sim;
  Semaphore sem(&sim, 1);
  double waiter_got = -1;
  bool stole = true;
  sim.Spawn(HoldAndRelease(sim, sem, 5.0));  // Holds [0,5).
  sim.Spawn(LateAcquirer(sim, sem, waiter_got));
  sim.Spawn(Thief(sim, sem, stole));  // Tries exactly at release time.
  sim.Run();
  EXPECT_DOUBLE_EQ(waiter_got, 5.0);
  EXPECT_FALSE(stole);
}

Process UseResource(Simulation& /*sim*/, Resource& res, double hold) {
  co_await res.Acquire();
  co_await Delay(hold);
  res.Release();
}

TEST(ResourceTest, UtilizationAccounting) {
  Simulation sim;
  Resource res(&sim, 1);
  sim.Spawn(UseResource(sim, res, 10.0));
  sim.Spawn(UseResource(sim, res, 10.0));
  sim.Run();
  res.FlushStats();
  EXPECT_EQ(res.completions(), 2u);
  EXPECT_EQ(res.busy_servers(), 0);
  EXPECT_NEAR(res.MeanBusyServers(), 1.0, 1e-9);  // Busy the whole 20 ms.
  EXPECT_NEAR(res.BusyFraction(), 1.0, 1e-9);
}

TEST(ResourceTest, MultiServerConcurrency) {
  Simulation sim;
  Resource res(&sim, 3);
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(UseResource(sim, res, 10.0));
  }
  sim.Run();
  res.FlushStats();
  EXPECT_NEAR(res.MeanBusyServers(), 3.0, 1e-9);
}

TEST(ResourceTest, TryAcquireRespectsCapacity) {
  Simulation sim;
  Resource res(&sim, 2);
  EXPECT_TRUE(res.TryAcquire());
  EXPECT_TRUE(res.TryAcquire());
  EXPECT_FALSE(res.TryAcquire());
  EXPECT_EQ(res.busy_servers(), 2);
  res.Release();
  EXPECT_EQ(res.busy_servers(), 1);
}

Process Producer(Simulation& /*sim*/, Mailbox<int>& box) {
  for (int i = 0; i < 5; ++i) {
    co_await Delay(1.0);
    box.Put(i);
  }
}

Process Consumer(Simulation& /*sim*/, Mailbox<int>& box, std::vector<int>& got, int n) {
  for (int i = 0; i < n; ++i) {
    int v = co_await box.Get();
    got.push_back(v);
  }
}

TEST(MailboxTest, DeliversInOrder) {
  Simulation sim;
  Mailbox<int> box(&sim);
  std::vector<int> got;
  sim.Spawn(Consumer(sim, box, got, 5));
  sim.Spawn(Producer(sim, box));
  sim.Run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], i);
  }
}

TEST(MailboxTest, BuffersWhenNoReceiver) {
  Simulation sim;
  Mailbox<int> box(&sim);
  box.Put(7);
  box.Put(8);
  EXPECT_EQ(box.Size(), 2u);
  std::vector<int> got;
  sim.Spawn(Consumer(sim, box, got, 2));
  sim.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 7);
  EXPECT_EQ(got[1], 8);
}

Process BlockForever(Simulation& /*sim*/, Event& never) { co_await never.Wait(); }

TEST(SimulationTest, DestructionReclaimsBlockedProcesses) {
  // A process blocked on an event that never fires must not leak or crash
  // when the simulation is destroyed (ASan-clean under the sanitizer job).
  auto sim = std::make_unique<Simulation>();
  Event never(sim.get());
  sim->Spawn(BlockForever(*sim, never));
  sim->Run();
  EXPECT_EQ(sim->live_processes(), 1);
  sim.reset();  // Must destroy the suspended frame.
}

Process ReusesLatch(Simulation& /*sim*/, Event& event, int& rounds) {
  co_await event.Wait();
  ++rounds;
  event.Reset();
  co_await event.Wait();
  ++rounds;
}

TEST(EventTest, ResetEnablesReuseAcrossRounds) {
  Simulation sim;
  Event event(&sim);
  int rounds = 0;
  sim.Spawn(ReusesLatch(sim, event, rounds));
  sim.ScheduleCallback(1.0, [&] { event.Set(); });
  sim.ScheduleCallback(2.0, [&] { event.Set(); });
  sim.Run();
  EXPECT_EQ(rounds, 2);
}

TEST(SimulationTest, RunUntilBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleCallback(5.0, [&] { ++fired; });
  sim.ScheduleCallback(5.0 + 1e-9, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);  // Exactly-at-deadline events run; later ones wait.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

Process Spawner(Simulation& sim, int depth, int& leaves) {
  if (depth == 0) {
    ++leaves;
    co_return;
  }
  co_await Delay(1.0);
  sim.Spawn(Spawner(sim, depth - 1, leaves));
  sim.Spawn(Spawner(sim, depth - 1, leaves));
}

TEST(SimulationTest, ProcessesSpawningProcesses) {
  Simulation sim;
  int leaves = 0;
  sim.Spawn(Spawner(sim, 6, leaves));
  sim.Run();
  EXPECT_EQ(leaves, 64);
  EXPECT_EQ(sim.live_processes(), 0);
}

Process PushAfterZeroDelay(Simulation& /*sim*/, std::vector<int>& log, int value) {
  co_await Delay(0.0);
  log.push_back(value);
}

TEST(SimulationTest, ZeroDelayYieldsToPeersAtSameTime) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleCallback(0.0, [&] { order.push_back(1); });
  sim.Spawn(PushAfterZeroDelay(sim, order, 2));
  sim.ScheduleCallback(0.0, [&] { order.push_back(3); });
  sim.Run();
  // The process body starts after the first callback (spawn order), and its
  // zero-delay resume lands after callback 3.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 2);
}

TEST(SimulationTest, DeterministicEventCounts) {
  auto run_once = [] {
    Simulation sim;
    std::vector<double> log;
    sim.Spawn(Recorder(sim, log, 1.0, 50));
    sim.Spawn(Recorder(sim, log, 0.7, 50));
    sim.Run();
    return sim.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace emsim::sim

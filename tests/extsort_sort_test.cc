#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "extsort/block_device.h"
#include "extsort/external_sort.h"
#include "extsort/merger.h"
#include "extsort/record.h"
#include "extsort/run_formation.h"
#include "extsort/run_io.h"
#include "util/status.h"
#include "workload/record_generator.h"

namespace emsim::extsort {
namespace {

using workload::KeyDistribution;

std::vector<Record> GenerateRecords(size_t n, KeyDistribution dist, uint64_t seed) {
  workload::RecordGeneratorOptions opt;
  opt.distribution = dist;
  opt.seed = seed;
  workload::RecordGenerator gen(opt);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back({gen.NextKey(), i});  // Value = original position.
  }
  return records;
}

class ExternalSortCorrectness
    : public ::testing::TestWithParam<std::tuple<KeyDistribution, RunFormationStrategy>> {};

TEST_P(ExternalSortCorrectness, SortsAndConserves) {
  auto [dist, strategy] = GetParam();
  const size_t n = 5000;
  auto input = GenerateRecords(n, dist, 11);

  MemoryBlockDevice scratch(4096, 256);  // 15 records per block.
  MemoryBlockDevice output(4096, 256);
  ExternalSortOptions options;
  options.run_formation.memory_records = 300;
  options.run_formation.strategy = strategy;
  ExternalSorter sorter(options);
  auto result = sorter.Sort(input, &scratch, &output);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Output is the input, sorted.
  auto sorted = ExternalSorter::ReadRun(&output, result->merge.output);
  ASSERT_TRUE(sorted.ok());
  std::vector<Record> expect = input;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(*sorted, expect);

  // Depletion trace is consistent with the run lengths.
  std::vector<int64_t> lengths;
  for (const auto& run : result->initial_runs) {
    lengths.push_back(run.num_blocks);
  }
  std::vector<int64_t> counts(result->initial_runs.size(), 0);
  for (int r : result->merge.depletion_trace) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, static_cast<int>(counts.size()));
    ++counts[static_cast<size_t>(r)];
  }
  EXPECT_EQ(counts, lengths);
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndStrategies, ExternalSortCorrectness,
    ::testing::Combine(::testing::Values(KeyDistribution::kUniform,
                                         KeyDistribution::kZipf,
                                         KeyDistribution::kNearlySorted,
                                         KeyDistribution::kReverseSorted),
                       ::testing::Values(RunFormationStrategy::kLoadSort,
                                         RunFormationStrategy::kReplacementSelection)));

TEST(RunFormationTest, LoadSortRunCountAndSizes) {
  auto input = GenerateRecords(1000, KeyDistribution::kUniform, 5);
  MemoryBlockDevice dev(2048, 256);
  RunFormationOptions opt;
  opt.memory_records = 256;
  auto result = FormRuns(input, &dev, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->runs.size(), 4u);  // ceil(1000/256)
  uint64_t total = 0;
  for (const auto& run : result->runs) {
    total += run.num_records;
    auto records = ExternalSorter::ReadRun(&dev, run);
    ASSERT_TRUE(records.ok());
    EXPECT_TRUE(IsSorted(*records));
  }
  EXPECT_EQ(total, 1000u);
  // Runs are laid out contiguously.
  int64_t expect_start = 0;
  for (const auto& run : result->runs) {
    EXPECT_EQ(run.start_block, expect_start);
    expect_start += run.num_blocks;
  }
  EXPECT_EQ(result->next_free_block, expect_start);
}

TEST(RunFormationTest, ReplacementSelectionDoublesRunLength) {
  // Knuth: on random input, replacement selection runs average ~2x memory.
  auto input = GenerateRecords(20000, KeyDistribution::kUniform, 21);
  MemoryBlockDevice dev(1 << 15, 256);
  RunFormationOptions opt;
  opt.memory_records = 500;

  opt.strategy = RunFormationStrategy::kLoadSort;
  auto load = FormRuns(input, &dev, opt);
  ASSERT_TRUE(load.ok());

  MemoryBlockDevice dev2(1 << 15, 256);
  opt.strategy = RunFormationStrategy::kReplacementSelection;
  auto rs = FormRuns(input, &dev2, opt);
  ASSERT_TRUE(rs.ok());

  EXPECT_EQ(load->runs.size(), 40u);
  EXPECT_LT(rs->runs.size(), 26u);  // ~20000/1000 = 20 expected.
  EXPECT_GT(rs->runs.size(), 15u);
}

TEST(RunFormationTest, ReplacementSelectionSortedInputOneRun) {
  auto input = GenerateRecords(5000, KeyDistribution::kNearlySorted, 3);
  std::sort(input.begin(), input.end());
  MemoryBlockDevice dev(4096, 256);
  RunFormationOptions opt;
  opt.memory_records = 100;
  opt.strategy = RunFormationStrategy::kReplacementSelection;
  auto result = FormRuns(input, &dev, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->runs.size(), 1u);  // Already sorted: a single giant run.
}

TEST(RunFormationTest, ReverseSortedWorstCase) {
  auto input = GenerateRecords(2000, KeyDistribution::kReverseSorted, 3);
  MemoryBlockDevice dev(4096, 256);
  RunFormationOptions opt;
  opt.memory_records = 100;
  opt.strategy = RunFormationStrategy::kReplacementSelection;
  auto result = FormRuns(input, &dev, opt);
  ASSERT_TRUE(result.ok());
  // Descending input defeats replacement selection: runs equal memory size.
  EXPECT_EQ(result->runs.size(), 20u);
}

TEST(RunFormationTest, RejectsEmptyInput) {
  MemoryBlockDevice dev(16, 256);
  RunFormationOptions opt;
  EXPECT_FALSE(FormRuns({}, &dev, opt).ok());
}

TEST(MergeRunsTest, DetectsCorruptRunOrdering) {
  MemoryBlockDevice dev(64, 256);
  // Hand-write a "run" that is not sorted by bypassing RunWriter's check:
  // write two single-record runs, then lie about them being one run.
  RunWriter w1(&dev, 0);
  ASSERT_TRUE(w1.Append({100, 0}).ok());
  auto r1 = w1.Finish();
  ASSERT_TRUE(r1.ok());
  RunWriter w2(&dev, 1);
  ASSERT_TRUE(w2.Append({5, 0}).ok());
  auto r2 = w2.Finish();
  ASSERT_TRUE(r2.ok());
  RunDescriptor lying;
  lying.start_block = 0;
  lying.num_blocks = 2;
  lying.num_records = 2;
  MemoryBlockDevice out(64, 256);
  KWayMergeOptions options;
  auto outcome = MergeRuns(&dev, {lying}, &out, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCorruption);
}

TEST(MergeRunsTest, TraceFeedsSimulatorValidation) {
  auto input = GenerateRecords(3000, KeyDistribution::kUniform, 31);
  MemoryBlockDevice scratch(2048, 256);
  RunFormationOptions opt;
  opt.memory_records = 300;
  auto runs = FormRuns(input, &scratch, opt);
  ASSERT_TRUE(runs.ok());
  auto outcome = ExtractDepletionTrace(&scratch, runs->runs);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->records_merged, 3000u);
  // Without an output device there is no output descriptor.
  EXPECT_EQ(outcome->output.num_records, 0u);
  int64_t blocks = 0;
  for (const auto& run : runs->runs) {
    blocks += run.num_blocks;
  }
  EXPECT_EQ(static_cast<int64_t>(outcome->depletion_trace.size()), blocks);
}

}  // namespace
}  // namespace emsim::extsort

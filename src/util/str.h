#ifndef EMSIM_UTIL_STR_H_
#define EMSIM_UTIL_STR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace emsim {

/// printf-style formatting into a std::string. (GCC 12 ships no <format>, so
/// the library carries its own helper.)
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `s` at every occurrence of `sep` (single character); keeps empty
/// fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Formats a millisecond quantity as seconds with 2 decimals, e.g. "294.53 s".
std::string FormatSeconds(double ms);

/// Right-pads or truncates `s` to exactly `width` characters.
std::string PadRight(const std::string& s, size_t width);

/// Left-pads `s` with spaces to at least `width` characters.
std::string PadLeft(const std::string& s, size_t width);

}  // namespace emsim

#endif  // EMSIM_UTIL_STR_H_

// Reproduces the in-text Section 3.2 numbers for inter-run ("All Disks One
// Run") prefetching: the synchronized eq. 5 prediction at success ratio ~1,
// and the unsynchronized march toward the transfer lower bound B*T/D.

#include "analysis/equations.h"
#include "analysis/model_params.h"
#include "bench_util.h"
#include "core/config.h"
#include "stats/table.h"
#include "util/str.h"

int main() {
  using namespace emsim;
  using analysis::ModelParams;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using stats::Table;

  bench::Banner(
      "Section 3.2 in-text table (All Disks One Run)",
      "Paper values: sync k25/D5/N10 tau=0.794 ms -> 19.8 s (sim 19.85);\n"
      "lower bounds B*T/D = 12.8 s (k25,D5), 25.6 s (k50,D5), 12.8 s\n"
      "(k50,D10); at N=50 the paper simulates ~13.2 and ~26.4 s.");

  {
    Table table({"config", "paper (s)", "eq.5 (s)", "simulated (s)", "success"});
    struct Row {
      int k, d, n;
      const char* paper;
    };
    for (const Row& row : {Row{25, 5, 10, "19.8"}, Row{50, 5, 10, "~40"},
                           Row{50, 10, 10, "~20"}}) {
      ModelParams p = ModelParams::Paper(row.k, row.d);
      double analytic = analysis::TotalMs(p, analysis::Eq5InterRunSync(p, row.n)) / 1e3;
      MergeConfig cfg = MergeConfig::Paper(row.k, row.d, row.n, Strategy::kAllDisksOneRun,
                                           SyncMode::kSynchronized);
      auto result = bench::Run(cfg);
      table.AddRow({StrFormat("k=%d D=%d N=%d sync", row.k, row.d, row.n), row.paper,
                    Table::Cell(analytic), bench::TimeCell(result),
                    Table::Cell(result.MeanSuccessRatio(), 3)});
    }
    bench::EmitTable("Eq.5 synchronized inter-run at success ratio ~1", table);
  }

  {
    Table table({"config", "bound B*T/D (s)", "paper N=50 (s)", "simulated (s)", "gap"});
    struct Row {
      int k, d;
      const char* paper;
    };
    for (const Row& row : {Row{25, 5, "13.2"}, Row{50, 5, "26.4"}, Row{50, 10, "~13"}}) {
      ModelParams p = ModelParams::Paper(row.k, row.d);
      double bound = analysis::TotalMs(p, analysis::LowerBoundPerBlockMultiDisk(p)) / 1e3;
      MergeConfig cfg = MergeConfig::Paper(row.k, row.d, 50, Strategy::kAllDisksOneRun,
                                           SyncMode::kUnsynchronized);
      auto result = bench::Run(cfg);
      table.AddRow({StrFormat("k=%d D=%d N=50 unsync", row.k, row.d), Table::Cell(bound),
                    row.paper, bench::TimeCell(result),
                    StrFormat("%.1f%%", (result.MeanTotalSeconds() / bound - 1) * 100)});
    }
    bench::EmitTable("Unsynchronized inter-run vs the transfer lower bound", table,
                     "the bound is approached from above as N (and cache) grow; "
                     "N=50 lands within ~10%, as in the paper");
  }
  emsim::bench::WriteJsonArtifact("table_inter_run");
  return 0;
}

#ifndef EMSIM_STATS_HISTOGRAM_H_
#define EMSIM_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace emsim::stats {

/// Fixed-width bucket histogram over [lo, hi); observations outside the range
/// are clamped into the first/last bucket and counted as underflow/overflow.
class Histogram {
 public:
  /// Requires hi > lo and num_buckets >= 1.
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double x);

  uint64_t TotalCount() const { return total_; }
  uint64_t BucketCount(size_t i) const { return buckets_.at(i); }
  size_t NumBuckets() const { return buckets_.size(); }
  uint64_t Underflow() const { return underflow_; }
  uint64_t Overflow() const { return overflow_; }

  /// Lower edge of bucket i.
  double BucketLow(size_t i) const;

  /// Approximate p-quantile (0 <= p <= 1) by linear interpolation within the
  /// owning bucket. Returns lo if empty.
  double Quantile(double p) const;

  /// Mean approximated from bucket midpoints.
  double ApproxMean() const;

  /// Multi-line ASCII rendering with proportional bars.
  std::string ToAscii(size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
};

}  // namespace emsim::stats

#endif  // EMSIM_STATS_HISTOGRAM_H_

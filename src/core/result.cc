#include "core/result.h"

#include "util/str.h"

namespace emsim::core {

std::string MergeResult::ToString() const {
  return StrFormat(
      "MergeResult{total=%.2f s, blocks=%lld, io_ops=%llu, success=%.3f, stalls=%llu, "
      "hits=%llu, concurrency=%.3f, occupancy=%.1f}",
      TotalSeconds(), static_cast<long long>(blocks_merged),
      static_cast<unsigned long long>(io_operations), SuccessRatio(),
      static_cast<unsigned long long>(demand_stalls),
      static_cast<unsigned long long>(cache_hits), avg_concurrency, mean_cache_occupancy);
}

}  // namespace emsim::core

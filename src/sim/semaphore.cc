#include "sim/semaphore.h"

namespace emsim::sim {

bool Semaphore::TryAcquire() {
  if (count_ > 0) {
    --count_;
    return true;
  }
  return false;
}

void Semaphore::Release() {
  if (!waiters_.empty()) {
    Awaiter* head = waiters_.front();
    waiters_.pop_front();
    // Direct handoff: the token never becomes publicly visible.
    sim_->ScheduleHandle(sim_->Now(), head->handle_);
    return;
  }
  ++count_;
}

}  // namespace emsim::sim

#include "stats/json_writer.h"

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "core/result_json.h"

namespace emsim::stats {
namespace {

TEST(JsonEscapeTest, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::Escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::Escape(std::string("nul\x01" "byte")), "nul\\u0001byte");
}

TEST(JsonFormatDoubleTest, RoundTripsThroughStrtod) {
  const double cases[] = {0.0,    1.0,     -1.0,   0.1,   1.0 / 3.0,
                          2.5641, 1e300,   1e-300, 1e6,   123456789.123456,
                          -0.25,  8.33333, 3.5e-5};
  for (double v : cases) {
    std::string s = JsonWriter::FormatDouble(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << "via " << s;
  }
}

TEST(JsonFormatDoubleTest, IsShortForRepresentableValues) {
  EXPECT_EQ(JsonWriter::FormatDouble(0.0), "0");
  EXPECT_EQ(JsonWriter::FormatDouble(1.0), "1");
  EXPECT_EQ(JsonWriter::FormatDouble(0.5), "0.5");
  EXPECT_EQ(JsonWriter::FormatDouble(2.5641), "2.5641");
}

TEST(JsonFormatDoubleTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonWriter::FormatDouble(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(JsonWriter::FormatDouble(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(JsonWriter::FormatDouble(-std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonWriterTest, EmitsExactPrettyPrintedBytes) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", "fig32");
  w.Field("depth", 4);
  w.Field("ratio", 0.5);
  w.Field("ok", true);
  w.Key("tags");
  w.BeginArray();
  w.String("a");
  w.String("b");
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Field("count", uint64_t{7});
  w.EndObject();
  w.EndObject();

  EXPECT_EQ(w.Take(),
            "{\n"
            "  \"name\": \"fig32\",\n"
            "  \"depth\": 4,\n"
            "  \"ratio\": 0.5,\n"
            "  \"ok\": true,\n"
            "  \"tags\": [\n"
            "    \"a\",\n"
            "    \"b\"\n"
            "  ],\n"
            "  \"nested\": {\n"
            "    \"count\": 7\n"
            "  }\n"
            "}\n");
}

TEST(JsonWriterTest, EmptyContainersStayOnOneLine) {
  JsonWriter w;
  w.BeginObject();
  w.Key("empty_arr");
  w.BeginArray();
  w.EndArray();
  w.Key("empty_obj");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.Take(),
            "{\n"
            "  \"empty_arr\": [],\n"
            "  \"empty_obj\": {}\n"
            "}\n");
}

TEST(JsonWriterTest, WriterIsReusableAfterTake) {
  JsonWriter w;
  w.BeginArray();
  w.Int(1);
  w.EndArray();
  std::string first = w.Take();
  w.BeginArray();
  w.Int(1);
  w.EndArray();
  EXPECT_EQ(first, w.Take());
}

}  // namespace
}  // namespace emsim::stats

namespace emsim::core {
namespace {

MergeConfig SmallConfig() {
  MergeConfig cfg;
  cfg.num_runs = 5;
  cfg.num_disks = 2;
  cfg.blocks_per_run = 30;
  cfg.prefetch_depth = 2;
  cfg.strategy = Strategy::kAllDisksOneRun;
  cfg.seed = 11;
  return cfg;
}

TEST(ResultJsonTest, DocumentContainsTheAcceptanceFields) {
  MergeConfig cfg = SmallConfig();
  ExperimentResult result = RunTrials(cfg, 2);
  std::string doc =
      ExperimentSetToJson({NamedExperiment{"small", cfg, &result}});

  EXPECT_NE(doc.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"generator\": \"emsim\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"small\""), std::string::npos);
  EXPECT_NE(doc.find("\"total_seconds\""), std::string::npos);
  EXPECT_NE(doc.find("\"success_ratio\""), std::string::npos);
  EXPECT_NE(doc.find("\"avg_concurrency\""), std::string::npos);
  EXPECT_NE(doc.find("\"per_disk\""), std::string::npos);
  EXPECT_NE(doc.find("\"busy_fraction\""), std::string::npos);
  EXPECT_NE(doc.find("\"mean_queue_length\""), std::string::npos);
  EXPECT_NE(doc.find("\"per_trial\""), std::string::npos);
  EXPECT_NE(doc.find("\"aggregate\""), std::string::npos);
}

TEST(ResultJsonTest, MetricsSectionAppearsOnlyWhenCollected) {
  MergeConfig cfg = SmallConfig();
  ExperimentResult plain = RunTrials(cfg, 1);
  std::string plain_doc =
      ExperimentSetToJson({NamedExperiment{"plain", cfg, &plain}});
  EXPECT_EQ(plain_doc.find("\"metrics\""), std::string::npos);

  cfg.collect_metrics = true;
  ExperimentResult collected = RunTrials(cfg, 1);
  std::string metrics_doc =
      ExperimentSetToJson({NamedExperiment{"metrics", cfg, &collected}});
  EXPECT_NE(metrics_doc.find("\"metrics\""), std::string::npos);
  EXPECT_NE(metrics_doc.find("\"sim.resumes\""), std::string::npos);
  EXPECT_NE(metrics_doc.find("\"cache.occupancy.avg\""), std::string::npos);
}

// The acceptance criterion behind `emsim_cli --json`: a fixed seed must
// serialize to identical bytes on every run.
TEST(ResultJsonTest, FixedSeedExportIsByteStable) {
  MergeConfig cfg = SmallConfig();
  cfg.collect_metrics = true;

  ExperimentResult first = RunTrials(cfg, 3);
  ExperimentResult second = RunTrials(cfg, 3);
  std::string doc_a =
      ExperimentSetToJson({NamedExperiment{"stability", cfg, &first}});
  std::string doc_b =
      ExperimentSetToJson({NamedExperiment{"stability", cfg, &second}});
  EXPECT_EQ(doc_a, doc_b);

  // Parallel trial fan-out must not change the bytes either.
  ExperimentResult parallel = RunTrialsParallel(cfg, 3);
  std::string doc_c =
      ExperimentSetToJson({NamedExperiment{"stability", cfg, &parallel}});
  EXPECT_EQ(doc_a, doc_c);
}

}  // namespace
}  // namespace emsim::core


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/array.cc" "src/disk/CMakeFiles/emsim_disk.dir/array.cc.o" "gcc" "src/disk/CMakeFiles/emsim_disk.dir/array.cc.o.d"
  "/root/repo/src/disk/disk.cc" "src/disk/CMakeFiles/emsim_disk.dir/disk.cc.o" "gcc" "src/disk/CMakeFiles/emsim_disk.dir/disk.cc.o.d"
  "/root/repo/src/disk/disk_params.cc" "src/disk/CMakeFiles/emsim_disk.dir/disk_params.cc.o" "gcc" "src/disk/CMakeFiles/emsim_disk.dir/disk_params.cc.o.d"
  "/root/repo/src/disk/geometry.cc" "src/disk/CMakeFiles/emsim_disk.dir/geometry.cc.o" "gcc" "src/disk/CMakeFiles/emsim_disk.dir/geometry.cc.o.d"
  "/root/repo/src/disk/layout.cc" "src/disk/CMakeFiles/emsim_disk.dir/layout.cc.o" "gcc" "src/disk/CMakeFiles/emsim_disk.dir/layout.cc.o.d"
  "/root/repo/src/disk/mechanism.cc" "src/disk/CMakeFiles/emsim_disk.dir/mechanism.cc.o" "gcc" "src/disk/CMakeFiles/emsim_disk.dir/mechanism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/emsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/emsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

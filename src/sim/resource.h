#ifndef EMSIM_SIM_RESOURCE_H_
#define EMSIM_SIM_RESOURCE_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>

#include "sim/process.h"
#include "sim/semaphore.h"
#include "sim/simulation.h"
#include "stats/time_weighted.h"

namespace emsim::sim {

/// A CSIM-style facility: `num_servers` identical servers with a FIFO queue,
/// instrumented with utilization statistics. A disk arm is a one-server
/// Resource whose holder computes its own service time:
///
///     co_await resource.Acquire();
///     co_await Delay(service_time);
///     resource.Release();
class Resource {
 public:
  Resource(Simulation* sim, int num_servers);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  class Acquirer {
   public:
    explicit Acquirer(Resource* res) : res_(res), inner_(&res->sem_) {}
    bool await_ready() noexcept { return inner_.await_ready(); }
    void await_suspend(std::coroutine_handle<Process::promise_type> h) {
      inner_.await_suspend(h);
    }
    void await_resume() noexcept { res_->NoteAcquired(); }

   private:
    Resource* res_;
    Semaphore::Awaiter inner_;
  };

  /// Awaitable FIFO acquire of one server.
  Acquirer Acquire() { return Acquirer(this); }

  /// Non-blocking acquire; true on success.
  bool TryAcquire();

  /// Releases one server (hands it to the head queued waiter, if any).
  void Release();

  int num_servers() const { return num_servers_; }

  /// Servers currently held.
  int busy_servers() const { return busy_; }

  /// Processes queued waiting for a server.
  size_t QueueLength() const { return sem_.NumWaiters(); }

  /// Completed acquire/release cycles.
  uint64_t completions() const { return completions_; }

  /// Time-averaged number of busy servers (utilization = this / servers).
  double MeanBusyServers() const;

  /// Fraction of elapsed time with at least one busy server.
  double BusyFraction() const;

  /// Closes the statistics window at the current time (call before reading
  /// statistics at the end of a run).
  void FlushStats();

 private:
  friend class Acquirer;

  void NoteAcquired();

  Simulation* sim_;
  int num_servers_;
  int busy_ = 0;
  uint64_t completions_ = 0;
  Semaphore sem_;
  stats::TimeWeighted busy_stat_;
};

}  // namespace emsim::sim

#endif  // EMSIM_SIM_RESOURCE_H_

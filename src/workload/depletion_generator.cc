#include "workload/depletion_generator.h"

#include <cstddef>

#include "util/check.h"
#include "util/rng.h"

namespace emsim::workload {

std::vector<int> UniformDepletionTrace(int num_runs, int64_t blocks_per_run, uint64_t seed) {
  EMSIM_CHECK(num_runs >= 1 && blocks_per_run >= 1);
  Rng rng(seed);
  std::vector<int64_t> remaining(static_cast<size_t>(num_runs), blocks_per_run);
  std::vector<int> active(static_cast<size_t>(num_runs));
  for (int r = 0; r < num_runs; ++r) {
    active[static_cast<size_t>(r)] = r;
  }
  std::vector<int> trace;
  trace.reserve(static_cast<size_t>(num_runs) * static_cast<size_t>(blocks_per_run));
  while (!active.empty()) {
    size_t i = static_cast<size_t>(rng.UniformInt(active.size()));
    int run = active[i];
    trace.push_back(run);
    if (--remaining[static_cast<size_t>(run)] == 0) {
      active[i] = active.back();
      active.pop_back();
    }
  }
  return trace;
}

std::vector<int> RoundRobinDepletionTrace(int num_runs, int64_t blocks_per_run) {
  EMSIM_CHECK(num_runs >= 1 && blocks_per_run >= 1);
  std::vector<int> trace;
  trace.reserve(static_cast<size_t>(num_runs) * static_cast<size_t>(blocks_per_run));
  for (int64_t b = 0; b < blocks_per_run; ++b) {
    for (int r = 0; r < num_runs; ++r) {
      trace.push_back(r);
    }
  }
  return trace;
}

std::vector<int> SequentialDepletionTrace(int num_runs, int64_t blocks_per_run) {
  EMSIM_CHECK(num_runs >= 1 && blocks_per_run >= 1);
  std::vector<int> trace;
  trace.reserve(static_cast<size_t>(num_runs) * static_cast<size_t>(blocks_per_run));
  for (int r = 0; r < num_runs; ++r) {
    for (int64_t b = 0; b < blocks_per_run; ++b) {
      trace.push_back(r);
    }
  }
  return trace;
}

bool IsValidDepletionTrace(const std::vector<int>& trace, int num_runs,
                           int64_t blocks_per_run) {
  if (static_cast<int64_t>(trace.size()) !=
      static_cast<int64_t>(num_runs) * blocks_per_run) {
    return false;
  }
  std::vector<int64_t> counts(static_cast<size_t>(num_runs), 0);
  for (int r : trace) {
    if (r < 0 || r >= num_runs) {
      return false;
    }
    ++counts[static_cast<size_t>(r)];
  }
  for (int64_t c : counts) {
    if (c != blocks_per_run) {
      return false;
    }
  }
  return true;
}

}  // namespace emsim::workload

// Strategy explorer: sweep the prefetching design space for YOUR merge
// configuration and print a ranked comparison. A small command-line tool
// over the library's public API.
//
//   $ ./strategy_explorer [--runs K] [--disks D] [--blocks B] [--cache C]
//                         [--cpu MS] [--trials T]
//
// With --cache the sweep holds the cache budget fixed (the realistic
// planning constraint); otherwise every strategy gets its ample default.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/experiment.h"
#include "stats/table.h"
#include "util/str.h"

using namespace emsim;

namespace {

struct Args {
  int runs = 25;
  int disks = 5;
  int64_t blocks = 1000;
  int64_t cache = core::MergeConfig::kAutoCache;
  double cpu_ms = 0.0;
  int trials = 3;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--runs") == 0) {
      if ((value = need_value("--runs")) == nullptr) return false;
      args->runs = std::atoi(value);
    } else if (std::strcmp(argv[i], "--disks") == 0) {
      if ((value = need_value("--disks")) == nullptr) return false;
      args->disks = std::atoi(value);
    } else if (std::strcmp(argv[i], "--blocks") == 0) {
      if ((value = need_value("--blocks")) == nullptr) return false;
      args->blocks = std::atoll(value);
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      if ((value = need_value("--cache")) == nullptr) return false;
      args->cache = std::atoll(value);
    } else if (std::strcmp(argv[i], "--cpu") == 0) {
      if ((value = need_value("--cpu")) == nullptr) return false;
      args->cpu_ms = std::atof(value);
    } else if (std::strcmp(argv[i], "--trials") == 0) {
      if ((value = need_value("--trials")) == nullptr) return false;
      args->trials = std::atoi(value);
    } else {
      std::fprintf(stderr,
                   "usage: strategy_explorer [--runs K] [--disks D] [--blocks B] "
                   "[--cache C] [--cpu MS] [--trials T]\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    return 2;
  }

  std::printf("exploring k=%d runs x %lld blocks over D=%d disks (cache %s, cpu %.2f ms/blk)\n\n",
              args.runs, static_cast<long long>(args.blocks), args.disks,
              args.cache == core::MergeConfig::kAutoCache
                  ? "auto"
                  : StrFormat("%lld", static_cast<long long>(args.cache)).c_str(),
              args.cpu_ms);

  stats::Table table({"strategy", "N", "sync", "cache", "time (s)", "success",
                      "disks busy", "vs best"});
  struct Row {
    std::string strategy;
    int n;
    std::string sync;
    int64_t cache;
    double seconds;
    double success;
    double concurrency;
  };
  std::vector<Row> rows;

  for (auto strategy : {core::Strategy::kDemandRunOnly, core::Strategy::kAllDisksOneRun}) {
    for (int n : {1, 5, 10, 20}) {
      if (n > args.blocks) {
        continue;
      }
      for (auto sync : {core::SyncMode::kSynchronized, core::SyncMode::kUnsynchronized}) {
        core::MergeConfig cfg = core::MergeConfig::Paper(args.runs, args.disks, n,
                                                         strategy, sync);
        cfg.blocks_per_run = args.blocks;
        cfg.cache_blocks = args.cache;
        cfg.cpu_ms_per_block = args.cpu_ms;
        if (!cfg.Validate().ok()) {
          continue;  // e.g. requested cache below k blocks.
        }
        auto result = core::RunTrials(cfg, args.trials);
        rows.push_back({strategy == core::Strategy::kDemandRunOnly ? "Demand Run Only"
                                                                   : "All Disks One Run",
                        n, sync == core::SyncMode::kSynchronized ? "sync" : "unsync",
                        cfg.EffectiveCacheBlocks(), result.MeanTotalSeconds(),
                        result.MeanSuccessRatio(), result.MeanConcurrency()});
      }
    }
  }
  if (rows.empty()) {
    std::fprintf(stderr, "no feasible configuration (cache too small?)\n");
    return 1;
  }

  double best = rows.front().seconds;
  for (const Row& row : rows) {
    best = std::min(best, row.seconds);
  }
  for (const Row& row : rows) {
    table.AddRow({row.strategy, StrFormat("%d", row.n), row.sync,
                  StrFormat("%lld", static_cast<long long>(row.cache)),
                  stats::Table::Cell(row.seconds), stats::Table::Cell(row.success, 3),
                  stats::Table::Cell(row.concurrency, 2),
                  StrFormat("%.2fx", row.seconds / best)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}

#include "core/merge_simulator.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cache/block_cache.h"
#include "core/depletion.h"
#include "disk/array.h"
#include "disk/disk.h"
#include "disk/layout.h"
#include "fault/fault_plan.h"
#include "fault/health.h"
#include "io/planner.h"
#include "io/retry.h"
#include "io/run_state.h"
#include "io/victim_chooser.h"
#include "obs/metrics.h"
#include "sim/event.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/str.h"

namespace emsim::core {

namespace {

/// Completion tracker for one batch of fetch ops; kept alive by the request
/// callbacks via shared_ptr so unsynchronized batches may outlive the stall.
struct Batch {
  Batch(sim::Simulation* sim, int ops) : remaining(ops), done(sim) {}
  int remaining;
  sim::Event done;
};

std::unique_ptr<io::VictimChooser> MakeChooser(VictimPolicy policy) {
  switch (policy) {
    case VictimPolicy::kRandom:
      return io::MakeRandomVictimChooser();
    case VictimPolicy::kRoundRobin:
      return io::MakeRoundRobinVictimChooser();
    case VictimPolicy::kFewestBuffered:
      return io::MakeFewestBufferedVictimChooser();
    case VictimPolicy::kNearestHead:
      return io::MakeNearestHeadVictimChooser();
    case VictimPolicy::kClairvoyant:
      return io::MakeClairvoyantVictimChooser();
  }
  return io::MakeRandomVictimChooser();
}

std::unique_ptr<DepletionModel> MakeDepletion(const MergeConfig& config) {
  switch (config.depletion) {
    case DepletionKind::kUniform:
      return MakeUniformDepletion(config.num_runs);
    case DepletionKind::kZipf:
      return MakeZipfDepletion(config.num_runs, config.zipf_theta);
    case DepletionKind::kTrace:
      return MakeTraceDepletion(config.trace);
  }
  return MakeUniformDepletion(config.num_runs);
}

/// All simulation state for one trial. The coroutine MergeLoop drives the
/// model; Engine members are declared so that the Simulation outlives every
/// object holding coroutine frames.
class Engine {
 public:
  explicit Engine(const MergeConfig& config)
      : config_(config),
        sim_(config.calendar),
        metrics_(config.collect_metrics),
        layout_(disk::RunLayout::Options{config.num_runs, config.num_disks,
                                         config.blocks_per_run, config.disk_params.geometry,
                                         config.placement, config.run_lengths}),
        fault_plan_(config.fault.InjectionEnabled()
                        ? std::make_unique<fault::FaultPlan>(config.fault, config.num_disks,
                                                             config.seed)
                        : nullptr),
        disks_(&sim_, disk::DiskArray::Options{config.disk_params, config.num_disks,
                                               config.seed, &metrics_, fault_plan_.get()}),
        cache_(&sim_, cache::BlockCache::Options{config.EffectiveCacheBlocks(),
                                                 config.num_runs, &metrics_}),
        runs_(config.run_lengths.empty()
                  ? io::RunStates(config.num_runs, config.blocks_per_run)
                  : io::RunStates(config.run_lengths)),
        rng_(config.seed ^ 0xD1B54A32D192ED03ULL),
        depletion_rng_(rng_.Split()),
        planner_rng_(rng_.Split()),
        depletion_(MakeDepletion(config)) {
    // Only wire kernel instrumentation when the registry retains it: a
    // disabled registry hands out non-null sink instruments, and a non-null
    // calendar-depth timeline turns off both the lone-runner fast path and
    // same-tick burst batching. Detached and attached runs produce
    // byte-identical results by the AdvanceInline/burst replay contract.
    sim_.AttachMetrics(config.collect_metrics ? &metrics_ : nullptr);
    metric_stalls_ = &metrics_.GetCounter("merge.demand_stalls");
    metric_stall_ms_ = &metrics_.GetGauge("merge.stall_ms");
    if (fault_plan_ != nullptr) {
      // Fault machinery exists only when injection is on: a fault-free trial
      // registers no fault metrics and takes no fault branches, keeping its
      // exports byte-identical to the pre-fault simulator.
      health_ = std::make_unique<fault::HealthTracker>(config.num_disks);
      retry_ = std::make_unique<io::FetchRetryDriver>(&sim_, &disks_, health_.get(),
                                                      config.fault.retry, &metrics_);
      retry_->on_permanent_failure = [this](int disk, const disk::DiskRequest& request) {
        AbortOnFault(disk, request);
      };
      metric_degraded_disks_ = &metrics_.GetTimeline("fault.degraded_disks");
    }
    if (config.strategy == Strategy::kAllDisksOneRun) {
      planner_ = io::MakeAllDisksOneRunPlanner(config.prefetch_depth,
                                               MakeChooser(config.victim));
    } else {
      planner_ = io::MakeDemandOnlyPlanner(config.prefetch_depth);
    }
    if (config.write_traffic != WriteTraffic::kNone) {
      write_drain_ = std::make_unique<sim::Signal>(&sim_);
      if (config.write_traffic == WriteTraffic::kSeparateDisks) {
        write_disks_ = std::make_unique<disk::DiskArray>(
            &sim_, disk::DiskArray::Options{config.disk_params, config.num_write_disks,
                                            config.seed ^ 0xBEEFCAFEULL});
        write_next_block_.assign(static_cast<size_t>(config.num_write_disks), 0);
      } else {
        // Shared disks: output lands contiguously after each disk's runs.
        write_next_block_.resize(static_cast<size_t>(config.num_disks));
        for (int d = 0; d < config.num_disks; ++d) {
          int64_t used = 0;
          if (layout_.striped()) {
            used = layout_.TotalBlocks() / config.num_disks;
          } else {
            for (int r : layout_.RunsOf(d)) {
              used += layout_.RunBlocks(r);
            }
          }
          write_next_block_[static_cast<size_t>(d)] = used;
        }
      }
    }
  }

  Result<MergeResult> Run() {
    disks_.Start();
    if (write_disks_ != nullptr) {
      write_disks_->Start();
    }
    sim_.Spawn(MergeLoop());
    if (config_.max_sim_events == 0 && config_.max_wall_ms <= 0) {
      sim_.Run();
    } else {
      EMSIM_RETURN_IF_ERROR(RunWithDeadline());
    }
    if (fault_abort_) {
      return fault_status_;
    }
    if (fault_plan_ != nullptr && !merge_finished_) {
      // Under fault injection a drained calendar without completion is a
      // reportable outcome (e.g. writes parked on a fail-stopped disk), not
      // a simulator invariant violation.
      return Status::IoError(
          StrFormat("merge could not complete under fault injection (config: %s)",
                    config_.ToString().c_str()));
    }
    EMSIM_CHECK(merge_finished_ && "merge deadlocked: calendar drained early");
    result_.sim_events = sim_.events_processed();
    return result_;
  }

 private:
  /// Drives the calendar in bounded chunks so a stuck trial is converted
  /// into kDeadlineExceeded (with the offending config echoed) instead of
  /// spinning forever. The pop sequence is identical to one Run() call.
  Status RunWithDeadline() {
    constexpr uint64_t kChunkEvents = 65536;
    // The wall clock implements the deadline watchdog only: it bounds how much
    // work runs, never the artifact bytes. Equal-seed trials that finish in
    // budget are byte-identical; a timeout surfaces as kDeadlineExceeded.
    // emsim-analyze: allow(determinism-taint)
    const auto wall_start = std::chrono::steady_clock::now();
    for (;;) {
      uint64_t budget = kChunkEvents;
      if (config_.max_sim_events > 0) {
        if (sim_.events_processed() >= config_.max_sim_events) {
          return Status::DeadlineExceeded(
              StrFormat("trial exceeded %llu simulated events (config: %s)",
                        static_cast<unsigned long long>(config_.max_sim_events),
                        config_.ToString().c_str()));
        }
        budget = std::min(budget, config_.max_sim_events - sim_.events_processed());
      }
      if (sim_.RunBounded(budget)) {
        return Status::OK();
      }
      if (config_.max_wall_ms > 0) {
        const double elapsed_ms =
            // emsim-analyze: allow(determinism-taint) — watchdog read, see wall_start.
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      wall_start)
                .count();
        if (elapsed_ms > config_.max_wall_ms) {
          return Status::DeadlineExceeded(
              StrFormat("trial exceeded the %.0f ms wall-clock budget (config: %s)",
                        config_.max_wall_ms, config_.ToString().c_str()));
        }
      }
    }
  }

  /// A span exhausted every retry: the run it serves is unreadable. Record
  /// the Status and wake the merge from every wait it could be parked on so
  /// it unwinds promptly instead of hanging.
  void AbortOnFault(int disk, const disk::DiskRequest& request) {
    if (fault_abort_) {
      return;
    }
    fault_abort_ = true;
    fault_status_ = Status::IoError(StrFormat(
        "run unreadable: disk %d span at block %lld (%d blocks) failed after %d retries", disk,
        static_cast<long long>(request.start_block), request.nblocks,
        config_.fault.retry.max_retries));
    result_.fault.permanent_failures = retry_->stats().permanent_failures;
    health_->MarkDead(disk);
    if (awaited_batch_ != nullptr) {
      awaited_batch_->done.Set();
    }
    for (int r = 0; r < config_.num_runs; ++r) {
      cache_.DepositSignal(r).Fire();
    }
    if (write_drain_ != nullptr) {
      write_drain_->Fire();
    }
  }

  io::VictimChooser::Context PlannerContext() {
    io::VictimChooser::Context ctx;
    ctx.layout = &layout_;
    ctx.cache = &cache_;
    ctx.runs = &runs_;
    ctx.disks = &disks_;
    ctx.rng = &planner_rng_;
    if (config_.depletion == DepletionKind::kTrace) {
      ctx.depletion_trace = &config_.trace;
    }
    if (health_ != nullptr) {
      ctx.health = health_.get();
      ctx.now = sim_.Now();
    }
    return ctx;
  }

  /// Applies the cache admission policy to a wish list; reserves frames for
  /// every returned op. Sets `full` when the entire wish list was admitted.
  std::vector<io::FetchOp> Admit(std::vector<io::FetchOp> wish, bool* full) {
    int64_t total = 0;
    for (const auto& op : wish) {
      total += op.nblocks;
    }
    if (cache_.FreeBlocks() >= total) {
      for (const auto& op : wish) {
        EMSIM_CHECK(cache_.TryReserve(op.run, op.nblocks));
      }
      *full = true;
      return wish;
    }
    *full = false;
    EMSIM_CHECK(!wish.empty() && wish.front().is_demand);
    if (config_.admission == AdmissionPolicy::kConservative) {
      // The paper's policy: fetch only the demand block; resume full
      // prefetching once depletions have freed enough frames.
      io::FetchOp op = wish.front();
      op.nblocks = 1;
      EMSIM_CHECK(cache_.TryReserve(op.run, op.nblocks));
      return {op};
    }
    // Greedy: demand op first, then prefetch ops in random order, each
    // trimmed to the frames still free.
    std::vector<io::FetchOp> admitted;
    io::FetchOp demand = wish.front();
    demand.nblocks = std::min<int64_t>(demand.nblocks, std::max<int64_t>(cache_.FreeBlocks(), 1));
    EMSIM_CHECK(cache_.TryReserve(demand.run, demand.nblocks));
    admitted.push_back(demand);
    std::vector<io::FetchOp> rest(wish.begin() + 1, wish.end());
    auto perm = planner_rng_.Permutation(static_cast<uint32_t>(rest.size()));
    for (uint32_t idx : perm) {
      io::FetchOp op = rest[idx];
      int64_t free = cache_.FreeBlocks();
      if (free <= 0) {
        break;
      }
      op.nblocks = std::min<int64_t>(op.nblocks, free);
      EMSIM_CHECK(cache_.TryReserve(op.run, op.nblocks));
      admitted.push_back(op);
    }
    return admitted;
  }

  /// Submits admitted ops to their disks, advancing fetch offsets and wiring
  /// deposits + batch completion. Each op may span several disks under
  /// striped placement; the batch completes when every span does. Returns
  /// the batch tracker.
  std::shared_ptr<Batch> IssueOps(const std::vector<io::FetchOp>& ops) {
    struct Pending {
      int disk;
      disk::DiskRequest request;
    };
    std::vector<Pending> pending;
    for (const auto& op : ops) {
      io::RunState& state = runs_[op.run];
      EMSIM_CHECK_EQ(op.offset, state.next_fetch_offset);
      state.next_fetch_offset += op.nblocks;

      for (const disk::RunLayout::Span& span : layout_.Spans(op.run, op.offset, op.nblocks)) {
        disk::DiskRequest request;
        request.start_block = span.local_start;
        request.nblocks = static_cast<int>(span.nblocks);
        // The span delivering the demand block carries the demand tag.
        request.kind = op.is_demand && span.first_offset == op.offset
                           ? disk::RequestKind::kDemand
                           : disk::RequestKind::kPrefetch;
        request.on_block = [this, run = op.run, first = span.first_offset,
                            stride = span.offset_stride](int i) {
          cache_.Deposit(run, first + i * stride);
          if (config_.check_invariants) {
            cache_.CheckInvariants();
          }
        };
        pending.push_back(Pending{span.disk, std::move(request)});
      }
    }
    auto batch = std::make_shared<Batch>(&sim_, static_cast<int>(pending.size()));
    for (Pending& p : pending) {
      p.request.on_complete = [batch] {
        if (--batch->remaining == 0) {
          batch->done.Set();
        }
      };
      if (retry_ != nullptr) {
        retry_->Submit(p.disk, std::move(p.request));
      } else {
        disks_.Submit(p.disk, std::move(p.request));
      }
    }
    return batch;
  }

  /// Loads the cache with N blocks from each run (the paper's initial
  /// state), degrading to one block per run when the cache is tight.
  std::shared_ptr<Batch> IssuePreload() {
    // Two passes so that a tight cache still yields the mandatory one block
    // per run: first a block for everyone, then top up toward N while
    // frames remain.
    std::vector<io::FetchOp> ops;
    for (int r = 0; r < config_.num_runs; ++r) {
      io::FetchOp op;
      op.run = r;
      op.offset = 0;
      op.nblocks = 1;
      op.is_demand = false;
      EMSIM_CHECK(cache_.TryReserve(r, op.nblocks));
      ops.push_back(op);
    }
    for (auto& op : ops) {
      int64_t want =
          std::min<int64_t>(config_.prefetch_depth, runs_[op.run].blocks_total);
      int64_t extra = std::min<int64_t>(want - op.nblocks, cache_.FreeBlocks());
      if (extra > 0 && cache_.TryReserve(op.run, extra)) {
        op.nblocks += extra;
      }
    }
    return IssueOps(ops);
  }

  /// Sends the buffered output blocks as one write request (round-robin
  /// across the write target disks).
  void FlushWrites() {
    if (write_buffered_ == 0) {
      return;
    }
    int nblocks = static_cast<int>(write_buffered_);
    write_buffered_ = 0;
    size_t target = static_cast<size_t>(write_rr_++) % write_next_block_.size();
    disk::DiskRequest request;
    request.start_block = write_next_block_[target];
    write_next_block_[target] += nblocks;
    request.nblocks = nblocks;
    request.kind = disk::RequestKind::kWrite;
    request.on_complete = [this, nblocks] {
      write_outstanding_ -= nblocks;
      EMSIM_DCHECK(write_outstanding_ >= 0);
      write_drain_->Fire();
    };
    ++result_.write_requests;
    result_.write_blocks += static_cast<uint64_t>(nblocks);
    if (write_disks_ != nullptr) {
      write_disks_->Submit(static_cast<int>(target), std::move(request));
    } else {
      disks_.Submit(static_cast<int>(target), std::move(request));
    }
  }

  /// Records one completed demand wait in the result and the registry.
  void NoteStall(double ms) {
    result_.stall_ms.Add(ms);
    metric_stalls_->Increment();
    metric_stall_ms_->Add(ms);
  }

  sim::Process MergeLoop() {
    // Initial state: the cache holds (up to) N blocks of every run.
    {
      auto preload = IssuePreload();
      awaited_batch_ = preload;
      co_await preload->done.Wait();
      awaited_batch_ = nullptr;
    }

    int64_t remaining = layout_.TotalBlocks();
    while (remaining > 0 && !fault_abort_) {
      int run = depletion_->Next(runs_, depletion_rng_);
      EMSIM_DCHECK(!runs_[run].FullyConsumed());

      // The chosen run's leading block can still be in flight
      // (unsynchronized prefetching); merging cannot continue without it.
      if (cache_.HasLeadingBlock(run)) {
        ++result_.cache_hits;
      } else {
        ++result_.demand_stalls;
        double stall_start = sim_.Now();
        while (!fault_abort_ && !cache_.HasLeadingBlock(run)) {
          EMSIM_DCHECK(cache_.InFlightForRun(run) > 0);
          co_await cache_.DepositSignal(run).Wait();
        }
        NoteStall(sim_.Now() - stall_start);
        if (fault_abort_) {
          break;
        }
      }

      cache_.ConsumeLeading(run);
      io::RunState& state = runs_[run];
      ++state.consumed;
      --remaining;
      ++result_.blocks_merged;
      if (config_.check_invariants) {
        cache_.CheckInvariants();
      }

      if (config_.cpu_ms_per_block > 0) {
        co_await sim::Delay(config_.cpu_ms_per_block);
        result_.cpu_busy_ms += config_.cpu_ms_per_block;
      }

      // Write-behind of the merged block (extension; off in the paper).
      if (config_.write_traffic != WriteTraffic::kNone) {
        ++write_buffered_;
        ++write_outstanding_;
        if (write_buffered_ >= config_.write_batch_blocks) {
          FlushWrites();
        }
        if (write_outstanding_ > config_.write_buffer_blocks) {
          ++result_.write_stalls;
          FlushWrites();  // Never stall on blocks we have not even issued.
          while (!fault_abort_ && write_outstanding_ > config_.write_buffer_blocks) {
            co_await write_drain_->Wait();
          }
          if (fault_abort_) {
            break;
          }
        }
      }

      // The paper's demand-fetch rule: if the depleted run has no cached
      // blocks left, the merge stalls until its next block arrives.
      if (remaining > 0 && !state.FullyConsumed() && cache_.CachedForRun(run) == 0) {
        if (cache_.InFlightForRun(run) == 0) {
          EMSIM_CHECK(!state.FullyRequested());
          ++result_.io_operations;
          ++result_.demand_stalls;
          double stall_start = sim_.Now();
          // A plan drawn while any disk is quarantined/dead is degraded: the
          // fan-out skipped the sick disks, so even a fully admitted batch
          // is not the paper's "full DN-block success".
          bool degraded = health_ != nullptr && health_->DegradedCount(sim_.Now()) > 0;
          if (degraded) {
            ++result_.fault.degraded_plans;
          }
          if (metric_degraded_disks_ != nullptr) {
            metric_degraded_disks_->Update(sim_.Now(),
                                           static_cast<double>(
                                               health_->DegradedCount(sim_.Now())));
          }
          bool full = false;
          std::vector<io::FetchOp> admitted = Admit(planner_->Plan(PlannerContext(), run), &full);
          if (full && !degraded) {
            ++result_.full_admissions;
          }
          auto batch = IssueOps(admitted);
          if (config_.sync == SyncMode::kSynchronized) {
            awaited_batch_ = batch;
            co_await batch->done.Wait();
            awaited_batch_ = nullptr;
          } else {
            while (!fault_abort_ && !cache_.HasLeadingBlock(run)) {
              co_await cache_.DepositSignal(run).Wait();
            }
          }
          NoteStall(sim_.Now() - stall_start);
          if (fault_abort_) {
            break;
          }
        } else {
          // Blocks already in flight; wait for the leading one.
          ++result_.demand_stalls;
          double stall_start = sim_.Now();
          while (!fault_abort_ && !cache_.HasLeadingBlock(run)) {
            co_await cache_.DepositSignal(run).Wait();
          }
          NoteStall(sim_.Now() - stall_start);
          if (fault_abort_) {
            break;
          }
        }
      }
    }

    if (fault_abort_) {
      // The Status carries the outcome; the partial result is discarded.
      merge_finished_ = true;
      co_return;
    }

    // Drain the write-behind pipeline; with write modeling enabled the job
    // is only done once the output is on disk.
    if (config_.write_traffic != WriteTraffic::kNone) {
      double merge_done = sim_.Now();
      FlushWrites();
      while (!fault_abort_ && write_outstanding_ > 0) {
        co_await write_drain_->Wait();
      }
      if (fault_abort_) {
        merge_finished_ = true;
        co_return;
      }
      result_.write_drain_ms = sim_.Now() - merge_done;
    }

    // Snapshot statistics at merge completion; trailing prefetch transfers
    // do not count toward the paper's execution time.
    result_.total_ms = sim_.Now();
    disks_.FlushStats();
    cache_.FlushStats();
    result_.avg_concurrency = disks_.MeanConcurrencyWhileActive();
    result_.disk_active_fraction = disks_.ActiveFraction();
    result_.mean_cache_occupancy = cache_.MeanOccupancy();
    result_.disk_totals = disks_.TotalStats();
    result_.cache_stats = cache_.stats();
    result_.per_disk = disks_.UtilizationSnapshot();
    if (fault_plan_ != nullptr) {
      result_.fault.injection_enabled = true;
      result_.fault.media_errors = result_.disk_totals.media_errors;
      result_.fault.latency_spikes = result_.disk_totals.latency_spikes;
      result_.fault.dropped_requests = result_.disk_totals.dropped_requests;
      result_.fault.fail_stop_ms = result_.disk_totals.fail_stop_ms;
      result_.fault.timeouts = retry_->stats().timeouts;
      result_.fault.retries = retry_->stats().retries;
      result_.fault.permanent_failures = retry_->stats().permanent_failures;
      result_.fault.backoff_ms = retry_->stats().backoff_ms;
      result_.fault.quarantine_events = health_->quarantine_events();
      result_.fault.quarantine_ms = health_->quarantine_ms();
    }
    if (metrics_.enabled()) {
      metrics_.FlushTimelines(sim_.Now());
      result_.metrics = metrics_.Samples();
    }
    merge_finished_ = true;
    co_return;
  }

  MergeConfig config_;
  sim::Simulation sim_;
  /// Declared before disks_/cache_: their Options carry its address.
  obs::MetricsRegistry metrics_;
  disk::RunLayout layout_;
  /// Declared before disks_: the array's Options carry the plan's address.
  /// Null (and all fault machinery absent) when injection is disabled.
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  disk::DiskArray disks_;
  cache::BlockCache cache_;
  io::RunStates runs_;
  Rng rng_;
  Rng depletion_rng_;
  Rng planner_rng_;
  std::unique_ptr<DepletionModel> depletion_;
  std::unique_ptr<io::PrefetchPlanner> planner_;
  obs::Counter* metric_stalls_ = nullptr;
  obs::Gauge* metric_stall_ms_ = nullptr;

  // Fault machinery (all null/false without injection).
  std::unique_ptr<fault::HealthTracker> health_;
  std::unique_ptr<io::FetchRetryDriver> retry_;
  obs::Timeline* metric_degraded_disks_ = nullptr;
  std::shared_ptr<Batch> awaited_batch_;
  bool fault_abort_ = false;
  Status fault_status_;

  // Write-behind state (extension).
  std::unique_ptr<disk::DiskArray> write_disks_;
  std::unique_ptr<sim::Signal> write_drain_;
  std::vector<int64_t> write_next_block_;
  int64_t write_buffered_ = 0;
  int64_t write_outstanding_ = 0;
  int write_rr_ = 0;

  MergeResult result_;
  bool merge_finished_ = false;
};

}  // namespace

Result<MergeResult> MergeSimulator::Run() {
  Status status = config_.Validate();
  if (!status.ok()) {
    return status;
  }
  Engine engine(config_);
  return engine.Run();
}

Result<MergeResult> SimulateMerge(const MergeConfig& config) {
  return MergeSimulator(config).Run();
}

}  // namespace emsim::core

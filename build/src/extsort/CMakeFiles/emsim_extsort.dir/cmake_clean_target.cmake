file(REMOVE_RECURSE
  "libemsim_extsort.a"
)

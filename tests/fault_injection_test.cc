// Failure injection: disk errors must surface as Status at the library
// boundary — no aborts, no corrupted success results — from every layer of
// the external sorter.

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "extsort/block_device.h"
#include "extsort/external_sort.h"
#include "extsort/merger.h"
#include "extsort/packed_sort.h"
#include "extsort/record.h"
#include "extsort/run_formation.h"
#include "extsort/tag_sort.h"
#include "util/status.h"
#include "workload/record_generator.h"

namespace emsim::extsort {
namespace {

std::vector<Record> MakeRecords(size_t n) {
  workload::RecordGeneratorOptions opt;
  opt.seed = 31;
  workload::RecordGenerator gen(opt);
  std::vector<Record> records;
  for (size_t i = 0; i < n; ++i) {
    records.push_back({gen.NextKey(), i});
  }
  return records;
}

std::unique_ptr<FaultyBlockDevice> Faulty(int64_t blocks, FaultyBlockDevice::Options opt) {
  return std::make_unique<FaultyBlockDevice>(
      std::make_unique<MemoryBlockDevice>(blocks, 256), opt);
}

TEST(FaultyBlockDeviceTest, InjectsAtConfiguredRate) {
  FaultyBlockDevice::Options opt;
  opt.read_failure_rate = 0.5;
  auto dev = Faulty(16, opt);
  std::vector<uint8_t> buf(256, 0);
  ASSERT_TRUE(dev->Write(0, buf).ok());
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    failures += !dev->Read(0, buf).ok();
  }
  EXPECT_NEAR(failures, 100, 30);
  EXPECT_EQ(dev->injected_read_failures(), static_cast<uint64_t>(failures));
}

TEST(FaultyBlockDeviceTest, NthFailureIsPrecise) {
  FaultyBlockDevice::Options opt;
  opt.fail_nth_write = 3;
  auto dev = Faulty(16, opt);
  std::vector<uint8_t> buf(256, 0);
  EXPECT_TRUE(dev->Write(0, buf).ok());
  EXPECT_TRUE(dev->Write(1, buf).ok());
  EXPECT_EQ(dev->Write(2, buf).code(), StatusCode::kIoError);
  EXPECT_TRUE(dev->Write(3, buf).ok());
}

TEST(FaultInjectionTest, RunFormationWriteFailureSurfaces) {
  auto input = MakeRecords(500);
  FaultyBlockDevice::Options opt;
  opt.fail_nth_write = 5;
  auto scratch = Faulty(512, opt);
  RunFormationOptions rf;
  rf.memory_records = 100;
  auto result = FormRuns(input, scratch.get(), rf);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, MergeReadFailureSurfaces) {
  auto input = MakeRecords(500);
  auto scratch = Faulty(512, FaultyBlockDevice::Options{});
  RunFormationOptions rf;
  rf.memory_records = 100;
  auto runs = FormRuns(input, scratch.get(), rf);
  ASSERT_TRUE(runs.ok());

  // Now make a mid-merge read fail.
  FaultyBlockDevice::Options read_fault;
  read_fault.fail_nth_read = 7;
  // Rebuild the data on a fresh faulty device by copying blocks over.
  auto flaky = Faulty(512, read_fault);
  std::vector<uint8_t> buf(256);
  for (int64_t b = 0; b < runs->next_free_block; ++b) {
    ASSERT_TRUE(scratch->Read(b, buf).ok());
    ASSERT_TRUE(flaky->Write(b, buf).ok());
  }
  MemoryBlockDevice output(512, 256);
  auto outcome = MergeRuns(flaky.get(), runs->runs, &output, KWayMergeOptions{});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, ReadRunPropagatesError) {
  auto input = MakeRecords(200);
  auto scratch = Faulty(512, FaultyBlockDevice::Options{});
  RunFormationOptions rf;
  rf.memory_records = 200;
  auto runs = FormRuns(input, scratch.get(), rf);
  ASSERT_TRUE(runs.ok());

  FaultyBlockDevice::Options read_fault;
  read_fault.fail_nth_read = 2;
  auto flaky = Faulty(512, read_fault);
  std::vector<uint8_t> buf(256);
  for (int64_t b = 0; b < runs->next_free_block; ++b) {
    ASSERT_TRUE(scratch->Read(b, buf).ok());
    ASSERT_TRUE(flaky->Write(b, buf).ok());
  }
  auto records = ExternalSorter::ReadRun(flaky.get(), runs->runs.front());
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, TagSortPermuteReadFailureSurfaces) {
  const size_t count = 300;
  const size_t record_bytes = 32;
  FaultyBlockDevice::Options opt;
  auto input = Faulty(256, opt);
  PackedRecordFile file(input.get(), record_bytes);
  std::vector<uint8_t> bytes(count * record_bytes, 0);
  for (size_t i = 0; i < count; ++i) {
    uint64_t key = i * 2654435761U;
    std::memcpy(bytes.data() + i * record_bytes, &key, 8);
  }
  ASSERT_TRUE(file.WriteAll(bytes, count).ok());

  // Fail a read late enough to be in the permute phase (the key scan reads
  // ceil(300/8)=38 blocks first).
  FaultyBlockDevice::Options late;
  late.fail_nth_read = 60;
  auto flaky = Faulty(256, late);
  std::vector<uint8_t> buf(256);
  for (int64_t b = 0; b < file.BlocksFor(count); ++b) {
    ASSERT_TRUE(input->Read(b, buf).ok());
    ASSERT_TRUE(flaky->Write(b, buf).ok());
  }
  MemoryBlockDevice tag_scratch(256, 256);
  MemoryBlockDevice output(256, 256);
  TagSortOptions options;
  options.record_bytes = record_bytes;
  auto stats = TagSorter(options).Sort(flaky.get(), count, &tag_scratch, &output);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, PackedSortFailureSurfaces) {
  const size_t count = 400;
  FaultyBlockDevice::Options opt;
  auto input = Faulty(256, opt);
  PackedRecordFile file(input.get(), 32);
  std::vector<uint8_t> bytes(count * 32, 7);
  for (size_t i = 0; i < count; ++i) {
    uint64_t key = count - i;
    std::memcpy(bytes.data() + i * 32, &key, 8);
  }
  ASSERT_TRUE(file.WriteAll(bytes, count).ok());

  FaultyBlockDevice::Options scratch_fault;
  scratch_fault.fail_nth_write = 10;
  auto scratch = Faulty(256, scratch_fault);
  MemoryBlockDevice output(256, 256);
  PackedSortOptions options;
  options.record_bytes = 32;
  options.memory_records = 50;
  auto stats =
      PackedExternalSorter(options).Sort(input.get(), count, scratch.get(), &output);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, ZeroRateInjectsNothing) {
  auto input = MakeRecords(300);
  auto scratch = Faulty(512, FaultyBlockDevice::Options{});
  MemoryBlockDevice output(512, 256);
  RunFormationOptions rf;
  rf.memory_records = 100;
  auto runs = FormRuns(input, scratch.get(), rf);
  ASSERT_TRUE(runs.ok());
  auto outcome = MergeRuns(scratch.get(), runs->runs, &output, KWayMergeOptions{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(scratch->injected_read_failures(), 0u);
  EXPECT_EQ(scratch->injected_write_failures(), 0u);
}

}  // namespace
}  // namespace emsim::extsort

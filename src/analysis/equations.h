#ifndef EMSIM_ANALYSIS_EQUATIONS_H_
#define EMSIM_ANALYSIS_EQUATIONS_H_

#include "analysis/model_params.h"

namespace emsim::analysis {

/// The paper's closed-form average-time-per-block models (all in ms). Each
/// function is the equation with the same number in Section 3 of the paper;
/// multiply by the total block count for the merge's total I/O time.

/// Eq. 1 — no prefetching, single disk (Kwan-Baer):
///   tau = m (k/3) S + R + T
double Eq1NoPrefetchSingleDisk(const ModelParams& p);

/// Eq. 2 — intra-run prefetching of N blocks, single disk:
///   tau = m (k/3N) S + R/N + T
double Eq2IntraRunSingleDisk(const ModelParams& p, int n);

/// Eq. 3 — no prefetching, D disks (seek shrinks, no overlap):
///   tau = m (k/3D) S + R + T
double Eq3NoPrefetchMultiDisk(const ModelParams& p);

/// Eq. 4 — intra-run prefetching of N blocks, D disks, synchronized:
///   tau = m (k/3ND) S + R/N + T
double Eq4IntraRunMultiDiskSync(const ModelParams& p, int n);

/// Eq. 5 — inter-run ("all disks one run") prefetching, synchronized, with
/// success ratio ~= 1: the batch of ND blocks finishes when the slowest of
/// the D disks does; with the seek replaced by its mean and rotational
/// latency uniform on [0, 2R], E[max of D] = 2RD/(D+1):
///   tau = m k S/(3 N D^2) + 2R/(N(D+1)) + T/D
double Eq5InterRunSync(const ModelParams& p, int n);

/// Expected maximum of `d` i.i.d. Uniform(0, hi) draws: hi * d / (d + 1).
double ExpectedMaxUniform(double hi, int d);

/// Lower bound on single-disk I/O time per block: T (pure transfer).
double LowerBoundPerBlockSingleDisk(const ModelParams& p);

/// Lower bound on D-disk I/O time per block: T/D (perfectly overlapped).
double LowerBoundPerBlockMultiDisk(const ModelParams& p);

/// Converts a per-block time to the total merge I/O time (ms).
double TotalMs(const ModelParams& p, double per_block_ms);

}  // namespace emsim::analysis

#endif  // EMSIM_ANALYSIS_EQUATIONS_H_

#ifndef EMSIM_WORKLOAD_PAPER_CONFIGS_H_
#define EMSIM_WORKLOAD_PAPER_CONFIGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"

namespace emsim::workload {

/// A named experiment point, as the benches sweep them.
struct NamedConfig {
  std::string name;
  core::MergeConfig config;
};

/// The prefetch depths the paper's Fig. 3.2 sweeps (x axis N = 1..30).
std::vector<int> Fig32DepthSweep();

/// The cache sizes swept in Fig. 3.5/3.6 for a (k, D) configuration — the
/// paper's x ranges: 25r/5d up to 1200, 50r/5d up to 1600, 50r/10d up to
/// 3500 blocks.
std::vector<int64_t> CacheSweep(int num_runs, int num_disks);

/// The CPU per-block merge times swept in Fig. 3.3 (0..0.7 ms).
std::vector<double> Fig33CpuSweep();

/// The four Fig. 3.3 curves at k=25, D=5, N=10.
std::vector<NamedConfig> Fig33Curves();

/// Builds the paper's standard config, leaving the cache on auto sizing.
core::MergeConfig PaperConfig(int num_runs, int num_disks, int n, core::Strategy strategy,
                              core::SyncMode sync);

}  // namespace emsim::workload

#endif  // EMSIM_WORKLOAD_PAPER_CONFIGS_H_

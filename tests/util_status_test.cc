#include "util/status.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace emsim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad N");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad N");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad N");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, OkCodeDropsMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrPassesThrough) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status Passthrough(Status s) {
  EMSIM_RETURN_IF_ERROR(s);
  return Status::OK();
}

TEST(ReturnIfErrorTest, PropagatesErrorsOnly) {
  EXPECT_TRUE(Passthrough(Status::OK()).ok());
  EXPECT_EQ(Passthrough(Status::IoError("disk on fire")).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace emsim

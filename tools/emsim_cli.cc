// emsim_cli — run merge-phase simulations from the command line or from an
// experiment spec file, emitting a table or CSV.
//
//   # single configuration from flags
//   $ emsim_cli --runs 25 --disks 5 --n 10 --strategy all-disks-one-run
//
//   # batch of experiments from a spec file (see workload/experiment_spec.h)
//   $ emsim_cli --spec experiments.ini --format csv
//
//   # machine-readable export for CI / regression diffing (docs/USAGE.md)
//   $ emsim_cli --runs 25 --disks 5 --n 10 --json results.json
//
//   # sharded sweep across worker subprocesses (docs/SWEEPS.md); the output
//   # is byte-identical to the single-process run above
//   $ emsim_cli --spec experiments.ini --sweep 4 --json results.json
//
//   # the pieces the driver composes, runnable by hand or from CI:
//   $ emsim_cli --spec e.ini --sweep-worker --shard 0/4 --shard-out s0.json
//   $ emsim_cli --spec e.ini --sweep-merge s0.json s1.json s2.json s3.json

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/experiment.h"
#include "core/result.h"
#include "core/result_json.h"
#include "sim/calendar.h"
#include "stats/table.h"
#include "sweep/dispatcher.h"
#include "sweep/merge.h"
#include "sweep/shard.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/str.h"
#include "workload/experiment_spec.h"

using namespace emsim;

namespace {

void AddResultRow(stats::Table& table, const std::string& name,
                  const core::MergeConfig& cfg, const core::ExperimentResult& result) {
  auto ci = result.TotalSecondsCi();
  const core::MergeResult& first = result.trials.front();
  table.AddRow({name, core::StrategyName(cfg.strategy),
                StrFormat("%d", cfg.prefetch_depth), core::SyncModeName(cfg.sync),
                StrFormat("%lld", static_cast<long long>(cfg.EffectiveCacheBlocks())),
                StrFormat("%.2f", ci.mean), StrFormat("%.2f", ci.half_width),
                stats::Table::Cell(result.MeanSuccessRatio(), 3),
                stats::Table::Cell(result.MeanConcurrency(), 2),
                stats::Table::Cell(first.stall_ms.Mean(), 2),
                StrFormat("%llu", static_cast<unsigned long long>(first.stall_ms.count()))});
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::string text;
  char buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(StrFormat("cannot open %s for writing", path.c_str()));
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::OK();
}

/// Renders the sweep results exactly like a plain run: per-spec table rows
/// on stdout (or stderr when stdout carries the JSON), plus the optional
/// schema-stable JSON document. Used identically by the single-process,
/// driver and merge modes so their outputs are byte-comparable.
int EmitResults(const std::vector<core::SweepUnit>& units,
                const std::vector<core::ExperimentResult>& results,
                const std::string& format, const std::string& json_path) {
  stats::Table table({"experiment", "strategy", "N", "sync", "cache", "time_s",
                      "ci95_s", "success", "concurrency", "stall_ms", "stalls"});
  std::vector<core::NamedExperiment> named;
  for (size_t i = 0; i < units.size(); ++i) {
    AddResultRow(table, units[i].name, units[i].config, results[i]);
    named.push_back(core::NamedExperiment{units[i].name, units[i].config, &results[i]});
  }
  // With --json -, stdout belongs to the JSON document (so it can be piped
  // into jq and friends); the human table moves to stderr.
  std::fprintf(json_path == "-" ? stderr : stdout, "%s",
               format == "csv" ? table.ToCsv().c_str() : table.ToString().c_str());
  if (!json_path.empty()) {
    std::string doc = core::ExperimentSetToJson(named);
    if (json_path == "-") {
      std::printf("%s", doc.c_str());
    } else {
      Status written = WriteFile(json_path, doc);
      if (!written.ok()) {
        std::fprintf(stderr, "%s\n", written.ToString().c_str());
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("emsim_cli");
  int runs = 25;
  int disks = 5;
  int64_t blocks = 1000;
  int n = 10;
  int64_t cache = core::MergeConfig::kAutoCache;
  double cpu_ms = 0.0;
  double zipf_theta = 0.0;
  int trials = 5;
  int64_t seed = 1;
  std::string strategy = "all-disks-one-run";
  std::string sync = "unsync";
  std::string admission = "conservative";
  std::string victim = "random";
  std::string depletion = "uniform";
  std::string write_traffic = "none";
  std::string spec_path;
  std::string format = "table";
  std::string json_path;
  bool collect_metrics = false;
  std::string calendar_name;
  bool help = false;
  bool print_spec = false;
  // Fault injection (docs/ROBUSTNESS.md). Defaults leave injection off, which
  // keeps every artifact byte-identical to the fault-free schema.
  double fault_media_error_rate = 0.0;
  double fault_spike_rate = 0.0;
  double fault_spike_ms = 50.0;
  int fault_slow_disk = -1;
  double fault_slow_factor = 4.0;
  double fault_slow_start_ms = 0.0;
  double fault_slow_end_ms = -1.0;
  int fault_stop_disk = -1;
  double fault_stop_start_ms = 0.0;
  double fault_stop_end_ms = -1.0;
  int64_t fault_seed = 0;
  int fault_max_retries = 4;
  double fault_timeout_ms = 2000.0;
  double fault_backoff_ms = 20.0;
  double fault_backoff_mult = 2.0;
  int64_t max_sim_events = 0;
  double max_wall_ms = 0.0;
  // Sharded sweep fabric (docs/SWEEPS.md).
  int threads = 0;
  int sweep = 0;
  int sweep_workers = 0;
  bool sweep_worker = false;
  bool sweep_merge = false;
  std::string shard;
  std::string shard_out;
  std::string shard_dir = "sweep_shards";
  double shard_timeout_ms = 0.0;
  int shard_retries = 2;
  double shard_backoff_ms = 100.0;
  int sweep_chaos_kill_shard = -1;

  flags.AddInt("runs", &runs, "number of sorted runs (k)");
  flags.AddInt("disks", &disks, "number of input disks (D)");
  flags.AddInt64("blocks", &blocks, "blocks per run");
  flags.AddInt("n", &n, "prefetch depth (N)");
  flags.AddInt64("cache", &cache, "cache size in blocks (-1 = auto)");
  flags.AddDouble("cpu_ms", &cpu_ms, "CPU time to merge one block (ms)");
  flags.AddDouble("zipf_theta", &zipf_theta, "depletion skew for --depletion zipf");
  flags.AddInt("trials", &trials, "trials to average");
  flags.AddInt64("seed", &seed, "base RNG seed");
  flags.AddString("strategy", &strategy, "demand-run-only | all-disks-one-run");
  flags.AddString("sync", &sync, "sync | unsync");
  flags.AddString("admission", &admission, "conservative | greedy");
  flags.AddString("victim", &victim,
                  "random | round-robin | fewest-buffered | nearest-head");
  flags.AddString("depletion", &depletion, "uniform | zipf");
  flags.AddString("write_traffic", &write_traffic, "none | separate | shared");
  flags.AddString("spec", &spec_path, "experiment spec file (overrides other flags)");
  flags.AddString("format", &format, "table | csv");
  flags.AddString("json", &json_path,
                  "also write a schema-stable JSON document here ('-' = stdout)");
  flags.AddBool("metrics", &collect_metrics,
                "collect the full metrics registry into the JSON export");
  flags.AddString("calendar", &calendar_name,
                  "event-calendar backend: heap | cq (default: EMSIM_CALENDAR, "
                  "else heap; results are byte-identical either way)");
  flags.AddBool("print_spec", &print_spec, "echo each experiment as spec syntax");
  flags.AddDouble("fault_media_error_rate", &fault_media_error_rate,
                  "P(injected media error) per read request");
  flags.AddDouble("fault_spike_rate", &fault_spike_rate,
                  "P(latency spike) per request");
  flags.AddDouble("fault_spike_ms", &fault_spike_ms, "extra latency per spike (ms)");
  flags.AddInt("fault_slow_disk", &fault_slow_disk, "fail-slow disk id (-1 = none)");
  flags.AddDouble("fault_slow_factor", &fault_slow_factor,
                  "fail-slow service-time multiplier");
  flags.AddDouble("fault_slow_start_ms", &fault_slow_start_ms, "fail-slow window start");
  flags.AddDouble("fault_slow_end_ms", &fault_slow_end_ms,
                  "fail-slow window end (-1 = forever)");
  flags.AddInt("fault_stop_disk", &fault_stop_disk, "fail-stop disk id (-1 = none)");
  flags.AddDouble("fault_stop_start_ms", &fault_stop_start_ms, "fail-stop outage start");
  flags.AddDouble("fault_stop_end_ms", &fault_stop_end_ms,
                  "fail-stop outage end (-1 = forever)");
  flags.AddInt64("fault_seed", &fault_seed,
                 "fault RNG seed (0 = derive from --seed)");
  flags.AddInt("fault_max_retries", &fault_max_retries, "retries before a span fails");
  flags.AddDouble("fault_timeout_ms", &fault_timeout_ms,
                  "per-attempt I/O timeout (0 = none)");
  flags.AddDouble("fault_backoff_ms", &fault_backoff_ms, "base retry backoff (ms)");
  flags.AddDouble("fault_backoff_mult", &fault_backoff_mult, "backoff multiplier");
  flags.AddInt64("max_sim_events", &max_sim_events,
                 "per-trial simulated-event deadline (0 = unlimited)");
  flags.AddDouble("max_wall_ms", &max_wall_ms,
                  "per-trial wall-clock deadline in ms (0 = unlimited)");
  flags.AddInt("threads", &threads,
               "worker threads for trial execution (0 = hardware)");
  flags.AddInt("sweep", &sweep,
               "driver mode: split the sweep into this many shards run by "
               "worker subprocesses, then merge (0 = run in-process)");
  flags.AddInt("sweep-workers", &sweep_workers,
               "concurrent worker subprocesses (0 = min(shards, hardware))");
  flags.AddBool("sweep-worker", &sweep_worker,
                "worker mode: run one shard and write its artifact");
  flags.AddBool("sweep-merge", &sweep_merge,
                "merge mode: combine shard artifacts (positional args) into "
                "the single-process output");
  flags.AddString("shard", &shard, "worker mode shard as k/N (e.g. 2/7)");
  flags.AddString("shard-out", &shard_out, "worker mode artifact output path");
  flags.AddString("shard-dir", &shard_dir,
                  "driver mode directory for shard artifacts");
  flags.AddDouble("shard-timeout-ms", &shard_timeout_ms,
                  "driver mode per-shard deadline before the attempt is "
                  "killed and resubmitted (0 = none)");
  flags.AddInt("shard-retries", &shard_retries,
               "driver mode resubmissions allowed per shard");
  flags.AddDouble("shard-backoff-ms", &shard_backoff_ms,
                  "driver mode base backoff between shard attempts");
  flags.AddInt("sweep-chaos-kill-shard", &sweep_chaos_kill_shard,
               "driver mode chaos hook: kill this shard's first attempt to "
               "exercise resubmission (-1 = off)");
  flags.AddBool("help", &help, "show usage");

  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (help) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  if (static_cast<int>(sweep_worker) + static_cast<int>(sweep_merge) +
          static_cast<int>(sweep > 0) > 1) {
    std::fprintf(stderr, "--sweep-worker, --sweep-merge and --sweep are exclusive\n");
    return 2;
  }

  std::vector<workload::ExperimentSpec> specs;
  if (!spec_path.empty()) {
    auto loaded = workload::LoadExperimentSpec(spec_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    specs = *std::move(loaded);
  } else {
    workload::ExperimentSpec spec;
    spec.name = "cli";
    spec.trials = trials;
    core::MergeConfig& cfg = spec.config;
    cfg.num_runs = runs;
    cfg.num_disks = disks;
    cfg.blocks_per_run = blocks;
    cfg.prefetch_depth = n;
    cfg.cache_blocks = cache;
    cfg.cpu_ms_per_block = cpu_ms;
    cfg.zipf_theta = zipf_theta;
    cfg.seed = static_cast<uint64_t>(seed);
    auto parsed_strategy = core::ParseStrategy(strategy);
    auto parsed_sync = core::ParseSyncMode(sync);
    auto parsed_admission = core::ParseAdmissionPolicy(admission);
    auto parsed_victim = core::ParseVictimPolicy(victim);
    auto parsed_depletion = core::ParseDepletionKind(depletion);
    auto parsed_write = core::ParseWriteTraffic(write_traffic);
    for (const Status& s :
         {parsed_strategy.status(), parsed_sync.status(), parsed_admission.status(),
          parsed_victim.status(), parsed_depletion.status(), parsed_write.status()}) {
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 2;
      }
    }
    cfg.strategy = *parsed_strategy;
    cfg.sync = *parsed_sync;
    cfg.admission = *parsed_admission;
    cfg.victim = *parsed_victim;
    cfg.depletion = *parsed_depletion;
    cfg.write_traffic = *parsed_write;
    cfg.fault.media_error_rate = fault_media_error_rate;
    cfg.fault.latency_spike_rate = fault_spike_rate;
    cfg.fault.latency_spike_ms = fault_spike_ms;
    cfg.fault.fail_slow_disk = fault_slow_disk;
    cfg.fault.fail_slow_factor = fault_slow_factor;
    cfg.fault.fail_slow_start_ms = fault_slow_start_ms;
    cfg.fault.fail_slow_end_ms = fault_slow_end_ms;
    cfg.fault.fail_stop_disk = fault_stop_disk;
    cfg.fault.fail_stop_start_ms = fault_stop_start_ms;
    cfg.fault.fail_stop_end_ms = fault_stop_end_ms;
    cfg.fault.seed = static_cast<uint64_t>(fault_seed);
    cfg.fault.retry.max_retries = fault_max_retries;
    cfg.fault.retry.timeout_ms = fault_timeout_ms;
    cfg.fault.retry.backoff_base_ms = fault_backoff_ms;
    cfg.fault.retry.backoff_multiplier = fault_backoff_mult;
    Status valid = cfg.Validate();
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid configuration: %s\n", valid.ToString().c_str());
      return 2;
    }
    specs.push_back(std::move(spec));
  }

  if (print_spec) {
    for (const auto& spec : specs) {
      std::printf("%s\n", workload::ToSpec(spec).c_str());
    }
  }
  sim::CalendarBackend calendar_backend = sim::CalendarBackend::kDefault;
  if (!sim::ParseCalendarBackend(calendar_name, &calendar_backend)) {
    std::fprintf(stderr, "--calendar must be 'heap' or 'cq', got '%s'\n",
                 calendar_name.c_str());
    return 2;
  }
  for (auto& spec : specs) {
    spec.config.collect_metrics = collect_metrics;
    spec.config.calendar = calendar_backend;
  }
  std::vector<core::SweepUnit> units = sweep::UnitsFromSpecs(specs);
  core::SweepGrid grid(units);
  core::TrialDeadline deadline;
  deadline.max_sim_events = static_cast<uint64_t>(max_sim_events);
  deadline.max_wall_ms = max_wall_ms;

  if (sweep_worker) {
    // Worker mode: run one shard of the global task grid, write the exact
    // per-trial artifact, exit 0. Task failures are recorded in the artifact
    // (the merger surfaces the lowest-index one); a nonzero exit here means
    // infrastructure trouble, which the dispatcher retries.
    int shard_index = -1;
    int shard_count = 0;
    if (std::sscanf(shard.c_str(), "%d/%d", &shard_index, &shard_count) != 2 ||
        shard_index < 0 || shard_count < 1 || shard_index >= shard_count) {
      std::fprintf(stderr, "--shard must be k/N with 0 <= k < N, got '%s'\n",
                   shard.c_str());
      return 2;
    }
    if (shard_out.empty()) {
      std::fprintf(stderr, "--sweep-worker requires --shard-out\n");
      return 2;
    }
    sweep::ShardArtifact artifact =
        sweep::RunShard(grid, shard_index, shard_count, threads, deadline);
    Status written = WriteFile(shard_out, sweep::EncodeShardArtifact(artifact));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    return 0;
  }

  if (sweep_merge) {
    if (flags.positional().empty()) {
      std::fprintf(stderr, "--sweep-merge requires shard artifact paths\n");
      return 2;
    }
    std::vector<std::string> texts;
    for (const std::string& path : flags.positional()) {
      auto text = ReadFile(path);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      texts.push_back(*std::move(text));
    }
    auto merged = sweep::MergeShardArtifacts(units, texts);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 1;
    }
    return EmitResults(units, *merged, format, json_path);
  }

  if (sweep > 0) {
    // Driver mode: re-exec this binary once per shard via the dispatcher,
    // then merge the artifacts in-process. The worker command re-creates the
    // experiment set from the same inputs (spec file, or the full flag
    // vector), so every worker builds the identical task grid.
    if (::mkdir(shard_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "cannot create shard dir %s\n", shard_dir.c_str());
      return 1;
    }
    std::vector<std::string> base;
    base.push_back(argv[0]);
    if (!spec_path.empty()) {
      base.insert(base.end(), {"--spec", spec_path});
    } else {
      base.insert(base.end(), {"--runs", StrFormat("%d", runs)});
      base.insert(base.end(), {"--disks", StrFormat("%d", disks)});
      base.insert(base.end(),
                  {"--blocks", StrFormat("%lld", static_cast<long long>(blocks))});
      base.insert(base.end(), {"--n", StrFormat("%d", n)});
      base.insert(base.end(),
                  {"--cache", StrFormat("%lld", static_cast<long long>(cache))});
      base.insert(base.end(), {"--cpu_ms", StrFormat("%.17g", cpu_ms)});
      base.insert(base.end(), {"--zipf_theta", StrFormat("%.17g", zipf_theta)});
      base.insert(base.end(), {"--trials", StrFormat("%d", trials)});
      base.insert(base.end(),
                  {"--seed", StrFormat("%lld", static_cast<long long>(seed))});
      base.insert(base.end(), {"--strategy", strategy});
      base.insert(base.end(), {"--sync", sync});
      base.insert(base.end(), {"--admission", admission});
      base.insert(base.end(), {"--victim", victim});
      base.insert(base.end(), {"--depletion", depletion});
      base.insert(base.end(), {"--write_traffic", write_traffic});
      base.insert(base.end(), {"--fault_media_error_rate",
                               StrFormat("%.17g", fault_media_error_rate)});
      base.insert(base.end(),
                  {"--fault_spike_rate", StrFormat("%.17g", fault_spike_rate)});
      base.insert(base.end(),
                  {"--fault_spike_ms", StrFormat("%.17g", fault_spike_ms)});
      base.insert(base.end(),
                  {"--fault_slow_disk", StrFormat("%d", fault_slow_disk)});
      base.insert(base.end(),
                  {"--fault_slow_factor", StrFormat("%.17g", fault_slow_factor)});
      base.insert(base.end(), {"--fault_slow_start_ms",
                               StrFormat("%.17g", fault_slow_start_ms)});
      base.insert(base.end(),
                  {"--fault_slow_end_ms", StrFormat("%.17g", fault_slow_end_ms)});
      base.insert(base.end(),
                  {"--fault_stop_disk", StrFormat("%d", fault_stop_disk)});
      base.insert(base.end(), {"--fault_stop_start_ms",
                               StrFormat("%.17g", fault_stop_start_ms)});
      base.insert(base.end(),
                  {"--fault_stop_end_ms", StrFormat("%.17g", fault_stop_end_ms)});
      base.insert(base.end(),
                  {"--fault_seed", StrFormat("%lld", static_cast<long long>(fault_seed))});
      base.insert(base.end(),
                  {"--fault_max_retries", StrFormat("%d", fault_max_retries)});
      base.insert(base.end(),
                  {"--fault_timeout_ms", StrFormat("%.17g", fault_timeout_ms)});
      base.insert(base.end(),
                  {"--fault_backoff_ms", StrFormat("%.17g", fault_backoff_ms)});
      base.insert(base.end(),
                  {"--fault_backoff_mult", StrFormat("%.17g", fault_backoff_mult)});
    }
    if (collect_metrics) {
      base.push_back("--metrics");
    }
    if (calendar_backend != sim::CalendarBackend::kDefault) {
      base.insert(base.end(),
                  {"--calendar", sim::CalendarBackendName(calendar_backend)});
    }
    base.insert(base.end(), {"--max_sim_events",
                             StrFormat("%lld", static_cast<long long>(max_sim_events))});
    base.insert(base.end(), {"--max_wall_ms", StrFormat("%.17g", max_wall_ms)});
    base.insert(base.end(), {"--threads", StrFormat("%d", threads)});

    sweep::DispatcherOptions options;
    options.num_shards = sweep;
    options.max_workers = sweep_workers;
    options.retry.timeout_ms = shard_timeout_ms;
    options.retry.max_retries = shard_retries;
    options.retry.backoff_base_ms = shard_backoff_ms;
    options.chaos_kill_shard = sweep_chaos_kill_shard;
    options.log = [](const std::string& line) {
      std::fprintf(stderr, "[sweep] %s\n", line.c_str());
    };
    auto dispatched = sweep::RunShardedSweep(
        options, shard_dir, [&](int s, const std::string& out) {
          std::vector<std::string> worker_argv = base;
          worker_argv.push_back("--sweep-worker");
          worker_argv.insert(worker_argv.end(),
                             {"--shard", StrFormat("%d/%d", s, sweep)});
          worker_argv.insert(worker_argv.end(), {"--shard-out", out});
          return worker_argv;
        });
    if (!dispatched.ok()) {
      std::fprintf(stderr, "%s\n", dispatched.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> texts;
    for (const sweep::ShardDispatch& d : *dispatched) {
      auto text = ReadFile(d.artifact_path);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      texts.push_back(*std::move(text));
    }
    auto merged = sweep::MergeShardArtifacts(units, texts);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 1;
    }
    return EmitResults(units, *merged, format, json_path);
  }

  // Single-process mode: the whole grid on the in-process worker pool. This
  // is the reference the sharded modes are byte-compared against.
  std::vector<core::ExperimentResult> results = core::RunSweep(units, threads, deadline);
  return EmitResults(units, results, format, json_path);
}

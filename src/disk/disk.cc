#include "disk/disk.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "disk/disk_params.h"
#include "util/check.h"
#include "util/str.h"

namespace emsim::disk {

Disk::Disk(sim::Simulation* sim, const DiskParams& params, int id, uint64_t seed)
    : sim_(sim), id_(id), mechanism_(params), rng_(seed), work_(sim) {
  EMSIM_CHECK(sim != nullptr);
  busy_timeline_.Update(sim->Now(), 0.0);
  queue_timeline_.Update(sim->Now(), 0.0);
}

void Disk::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_busy_ = nullptr;
    metric_queue_ = nullptr;
    metric_requests_ = nullptr;
    metric_blocks_ = nullptr;
    return;
  }
  metric_busy_ = &metrics->GetTimeline(StrFormat("disk%d.busy", id_));
  metric_queue_ = &metrics->GetTimeline(StrFormat("disk%d.queue_len", id_));
  metric_requests_ = &metrics->GetCounter("disk.requests");
  metric_blocks_ = &metrics->GetCounter("disk.blocks_transferred");
  metric_busy_->Update(sim_->Now(), busy_ ? 1.0 : 0.0);
  metric_queue_->Update(sim_->Now(), static_cast<double>(queue_.size()));
}

void Disk::FlushLocalStats() {
  busy_timeline_.Flush(sim_->Now());
  queue_timeline_.Flush(sim_->Now());
}

DiskUtilization Disk::Utilization() const {
  DiskUtilization u;
  u.id = id_;
  u.busy_fraction = BusyFraction();
  u.mean_queue_length = MeanQueueLength();
  u.stats = stats_;
  return u;
}

void Disk::Start() {
  EMSIM_CHECK(!started_);
  started_ = true;
  sim_->Spawn(Serve());
}

void Disk::Stop() {
  stopping_ = true;
  work_.Fire();
}

void Disk::Submit(DiskRequest request) {
  EMSIM_CHECK(started_ && "Submit before Start");
  EMSIM_CHECK(!stopping_ && "Submit after Stop");
  EMSIM_CHECK(request.nblocks >= 1);
  request.id = next_request_id_++;
  request.enqueue_time = sim_->Now();
  queue_.push_back(std::move(request));
  stats_.max_queue_length = std::max(stats_.max_queue_length, queue_.size());
  NoteQueueLength();
  work_.Fire();
}

DiskRequest Disk::PopNext() {
  EMSIM_CHECK(!queue_.empty());
  size_t pick = 0;
  if (mechanism_.params().scheduling == SchedulingPolicy::kSstf) {
    int64_t best = mechanism_.SeekDistanceTo(queue_[0].start_block);
    for (size_t i = 1; i < queue_.size(); ++i) {
      int64_t d = mechanism_.SeekDistanceTo(queue_[i].start_block);
      if (d < best) {
        best = d;
        pick = i;
      }
    }
  }
  DiskRequest req = std::move(queue_[pick]);
  if (pick == 0) {
    queue_.pop_front();  // FCFS and front-winning SSTF: O(1), no shifting.
  } else {
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return req;
}

sim::Process Disk::Serve() {
  for (;;) {
    while (queue_.empty()) {
      if (stopping_) {
        co_return;
      }
      co_await work_.Wait();
    }
    if (faults_ != nullptr && faults_->FailStopped(id_, sim_->Now())) {
      const double outage_end = faults_->FailStopEndMs(id_);
      if (std::isinf(outage_end)) {
        // Permanent fail-stop: the server exits with its queue frozen.
        // Queued attempts are reclaimed by their issuers' retry timeouts;
        // nothing on this disk will ever be served again.
        co_return;
      }
      const double park_ms = outage_end - sim_->Now();
      stats_.fail_stop_ms += park_ms;
      co_await sim::Delay(park_ms);
      continue;  // Re-check: more outage windows or a Stop() may be pending.
    }
    DiskRequest req = PopNext();
    NoteQueueLength();
    if (faults_ != nullptr && req.progress != nullptr && req.progress->abandoned) {
      ++stats_.dropped_requests;
      continue;  // The issuer timed out and disowned this attempt.
    }
    SetBusy(true);
    stats_.queue_wait_ms += sim_->Now() - req.enqueue_time;
    ++stats_.requests;
    if (req.kind == RequestKind::kDemand) {
      ++stats_.demand_requests;
    }
    if (metric_requests_ != nullptr) {
      metric_requests_->Increment();
    }

    if (req.progress != nullptr) {
      req.progress->phase = RequestPhase::kServing;
    }

    AccessCost cost = mechanism_.Access(req.start_block, req.nblocks, rng_, sim_->Now());
    if (on_request_served) {
      on_request_served(req, cost);
    }
    stats_.seek_ms += cost.seek_ms;
    stats_.rotation_ms += cost.rotation_ms;
    stats_.transfer_ms += cost.transfer_ms;
    stats_.seek_cylinders += cost.seek_cylinders;
    if (cost.seek_cylinders > 0) {
      ++stats_.seeks;
    }

    // Fault surcharge: the verdict is drawn per served request in service
    // order from the plan's per-disk streams, so the disk's own rotational
    // stream (rng_) is never perturbed. With no plan attached every value
    // below is exactly the fault-free one.
    double positioning_ms = cost.PositioningMs();
    double per_block = mechanism_.params().TransferMsPerBlock();
    bool media_error = false;
    if (faults_ != nullptr) {
      fault::RequestFault verdict = faults_->OnRequestStart(id_, sim_->Now());
      const double base_service_ms = positioning_ms + per_block * req.nblocks;
      positioning_ms = positioning_ms * verdict.slow_factor + verdict.extra_latency_ms;
      per_block *= verdict.slow_factor;
      if (verdict.extra_latency_ms > 0) {
        ++stats_.latency_spikes;
      }
      // Requests without an error handler cannot be failed usefully (the
      // issuer would never observe it); their verdict still consumes the
      // same stream draws so handler presence never shifts later verdicts.
      media_error = verdict.media_error && req.on_error != nullptr;
      const double service_ms =
          media_error ? positioning_ms : positioning_ms + per_block * req.nblocks;
      stats_.fault_extra_ms += service_ms - (media_error ? 0.0 : base_service_ms);
    }

    if (positioning_ms > 0) {
      co_await sim::Delay(positioning_ms);
    }
    if (media_error) {
      // The failed request pays its positioning cost but delivers nothing.
      ++stats_.media_errors;
      if (req.progress != nullptr) {
        req.progress->phase = RequestPhase::kFailed;
      }
      req.on_error();
      SetBusy(false);
      continue;
    }
    for (int i = 0; i < req.nblocks; ++i) {
      co_await sim::Delay(per_block);
      ++stats_.blocks_transferred;
      if (metric_blocks_ != nullptr) {
        metric_blocks_->Increment();
      }
      if (req.on_block) {
        req.on_block(i);
      }
    }
    if (req.progress != nullptr) {
      req.progress->phase = RequestPhase::kDone;
    }
    if (req.on_complete) {
      req.on_complete();
    }
    SetBusy(false);
  }
}

std::string Disk::ToString() const {
  return StrFormat("Disk%d{requests=%llu, blocks=%llu, busy=%.1f ms, queue=%zu}", id_,
                   static_cast<unsigned long long>(stats_.requests),
                   static_cast<unsigned long long>(stats_.blocks_transferred), stats_.BusyMs(),
                   queue_.size());
}

}  // namespace emsim::disk

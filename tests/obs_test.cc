#include "obs/metrics.h"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/merge_simulator.h"

namespace emsim::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, TracksLastValueAndMax) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.0);
  g.Set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  EXPECT_DOUBLE_EQ(g.max(), 3.0);
  g.Add(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 11.5);
  EXPECT_DOUBLE_EQ(g.max(), 11.5);
}

TEST(TimelineTest, TimeWeightedUtilizationMath) {
  // A disk busy from t=10 to t=30 inside a 40 ms window: 50% utilization
  // overall, 100% while positive, 20 ms of positive time.
  Timeline t;
  t.Update(0.0, 0.0);
  t.Update(10.0, 1.0);
  t.Update(30.0, 0.0);
  t.Flush(40.0);
  EXPECT_DOUBLE_EQ(t.series().Average(), 0.5);
  EXPECT_DOUBLE_EQ(t.series().AverageWhilePositive(), 1.0);
  EXPECT_DOUBLE_EQ(t.series().PositiveTime(), 20.0);
  EXPECT_DOUBLE_EQ(t.series().TotalTime(), 40.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x");
  a.Increment(5);
  EXPECT_EQ(reg.GetCounter("x").value(), 5u);
  EXPECT_NE(&reg.GetCounter("x"), &reg.GetCounter("y"));
  EXPECT_TRUE(reg.HasCounter("x"));
  EXPECT_FALSE(reg.HasCounter("z"));
}

TEST(MetricsRegistryTest, ReferencesStayValidAcrossGrowth) {
  MetricsRegistry reg;
  Counter& first = reg.GetCounter("a");
  for (int i = 0; i < 100; ++i) {
    // Built with += because string operator+ trips gcc 12's -Wrestrict
    // false positive in inlined libstdc++ code (GCC PR 105329) under -O2.
    std::string name = "c";
    name += std::to_string(i);
    reg.GetCounter(name);
  }
  first.Increment();
  EXPECT_EQ(reg.GetCounter("a").value(), 1u);
}

TEST(MetricsRegistryTest, SamplesAreSortedAndDerived) {
  MetricsRegistry reg;
  reg.GetCounter("zeta").Increment(7);
  reg.GetGauge("alpha").Set(2.0);
  Timeline& t = reg.GetTimeline("mid");
  t.Update(0.0, 4.0);
  reg.FlushTimelines(10.0);

  std::vector<MetricsRegistry::Sample> samples = reg.Samples();
  ASSERT_EQ(samples.size(), 6u);  // 1 counter + 2 gauge + 3 timeline samples.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
  EXPECT_EQ(samples[1].name, "alpha.max");
  EXPECT_EQ(samples[2].name, "mid.active_ms");
  EXPECT_DOUBLE_EQ(samples[2].value, 10.0);
  EXPECT_EQ(samples[3].name, "mid.avg");
  EXPECT_DOUBLE_EQ(samples[3].value, 4.0);
  EXPECT_EQ(samples[4].name, "mid.avg_active");
  EXPECT_EQ(samples[5].name, "zeta");
  EXPECT_DOUBLE_EQ(samples[5].value, 7.0);
}

TEST(MetricsRegistryTest, DisabledModeIsANoOp) {
  MetricsRegistry reg(/*enabled=*/false);
  EXPECT_FALSE(reg.enabled());
  // Every name maps to the shared sink; writes are accepted but nothing is
  // registered and nothing is exported.
  Counter& a = reg.GetCounter("a");
  Counter& b = reg.GetCounter("b");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  reg.GetGauge("g").Set(1.0);
  reg.GetTimeline("t").Update(0.0, 1.0);
  reg.FlushTimelines(5.0);
  EXPECT_FALSE(reg.HasCounter("a"));
  EXPECT_FALSE(reg.HasGauge("g"));
  EXPECT_FALSE(reg.HasTimeline("t"));
  EXPECT_TRUE(reg.Samples().empty());
}

core::MergeConfig SmallConfig() {
  core::MergeConfig cfg;
  cfg.num_runs = 4;
  cfg.num_disks = 2;
  cfg.blocks_per_run = 25;
  cfg.prefetch_depth = 2;
  cfg.strategy = core::Strategy::kAllDisksOneRun;
  cfg.seed = 7;
  return cfg;
}

TEST(MergeMetricsTest, CollectedRegistryReachesMergeResult) {
  core::MergeConfig cfg = SmallConfig();
  cfg.collect_metrics = true;
  auto result = core::SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->metrics.empty());

  auto value_of = [&](const std::string& name) -> double {
    for (const auto& sample : result->metrics) {
      if (sample.name == name) {
        return sample.value;
      }
    }
    ADD_FAILURE() << "missing metric " << name;
    return -1.0;
  };
  // Kernel: every recorded resume/callback is a calendar event.
  EXPECT_GT(value_of("sim.resumes"), 0.0);
  EXPECT_LE(value_of("sim.resumes") + value_of("sim.callbacks"),
            static_cast<double>(result->sim_events));
  // Disk: per-disk busy timelines and the shared request counter.
  EXPECT_EQ(value_of("disk.requests"), static_cast<double>(result->disk_totals.requests));
  EXPECT_GT(value_of("disk0.busy.avg"), 0.0);
  EXPECT_LE(value_of("disk0.busy.avg"), 1.0);
  EXPECT_GT(value_of("disks.concurrency.avg_active"), 0.0);
  // Cache: occupancy timeline matches the always-on statistic.
  EXPECT_NEAR(value_of("cache.occupancy.avg"), result->mean_cache_occupancy, 1e-9);
  EXPECT_EQ(value_of("cache.deposits"), static_cast<double>(result->cache_stats.deposits));
  // Merge loop: stall wait-time accounting.
  EXPECT_EQ(value_of("merge.demand_stalls"), static_cast<double>(result->stall_ms.count()));
  EXPECT_NEAR(value_of("merge.stall_ms"), result->stall_ms.sum(),
              1e-6 * (1.0 + result->stall_ms.sum()));
}

TEST(MergeMetricsTest, DisabledByDefaultButPerDiskAlwaysOn) {
  core::MergeConfig cfg = SmallConfig();
  auto result = core::SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->metrics.empty());
  ASSERT_EQ(result->per_disk.size(), 2u);
  for (const auto& u : result->per_disk) {
    EXPECT_GT(u.busy_fraction, 0.0);
    EXPECT_LE(u.busy_fraction, 1.0);
    EXPECT_GE(u.mean_queue_length, 0.0);
    EXPECT_GT(u.stats.requests, 0u);
  }
}

TEST(MergeMetricsTest, CollectionDoesNotPerturbTheSimulation) {
  core::MergeConfig cfg = SmallConfig();
  auto plain = core::SimulateMerge(cfg);
  cfg.collect_metrics = true;
  auto collected = core::SimulateMerge(cfg);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(plain->total_ms, collected->total_ms);
  EXPECT_EQ(plain->sim_events, collected->sim_events);
  EXPECT_EQ(plain->io_operations, collected->io_operations);
}

}  // namespace
}  // namespace emsim::obs

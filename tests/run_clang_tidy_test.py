#!/usr/bin/env python3
"""Cache-correctness tests for tools/lint/run_clang_tidy.py (registered with
ctest as `tidy_cache_test`, label `lint`).

clang-tidy itself is not required: the runner is pointed at a stub executable
that records every TU it is asked to analyze, which is exactly the behavior
the cache layer must control. The tests pin the invalidation contract:

  * an unchanged tree is a 100% cache hit (the CI warm-run guarantee),
  * editing a header re-analyzes exactly its dependents,
  * editing .clang-tidy or passing --no-cache re-analyzes everything,
  * cached failures still fail the run, and
  * --warm-budget-seconds rejects an over-budget warm run.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RUNNER = REPO_ROOT / "tools" / "lint" / "run_clang_tidy.py"

# Records each analyzed TU, then mimics clang-tidy's exit contract: findings
# (here: the marker string BAD in the source) exit 1, clean files exit 0.
STUB = """#!/usr/bin/env python3
import sys
from pathlib import Path
if "--version" in sys.argv:
    print("stub clang-tidy 1.0.0")
    sys.exit(0)
tu = sys.argv[-1]
with open({log!r}, "a") as log:
    log.write(tu + "\\n")
if "BAD" in Path(tu).read_text():
    print(tu + ": warning: stub finding [stub-check]")
    sys.exit(1)
sys.exit(0)
"""


class TidyCacheTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.root = Path(self._tmp.name)
        (self.root / "src").mkdir()
        (self.root / "build").mkdir()
        (self.root / ".clang-tidy").write_text("Checks: '-*,bugprone-*'\n")
        (self.root / "src" / "shared.h").write_text(
            "#pragma once\nint shared();\n")
        self.a = self.root / "src" / "a.cc"
        self.b = self.root / "src" / "b.cc"
        self.a.write_text('#include "shared.h"\nint a() { return shared(); }\n')
        self.b.write_text("int b() { return 2; }\n")
        database = [
            {
                "directory": str(self.root),
                "command": f"g++ -I{self.root / 'src'} -c {tu}",
                "file": str(tu),
            }
            for tu in (self.a, self.b)
        ]
        (self.root / "build" / "compile_commands.json").write_text(
            json.dumps(database))
        self.log = self.root / "stub.log"
        self.stub = self.root / "clang-tidy-stub"
        self.stub.write_text(STUB.format(log=str(self.log)))
        self.stub.chmod(0o755)

    def run_runner(self, *extra):
        timing = self.root / "timing.json"
        proc = subprocess.run(
            [sys.executable, str(RUNNER),
             "--build-dir", str(self.root / "build"),
             "--source-root", str(self.root),
             "--clang-tidy", str(self.stub),
             "--jobs", "1",
             "--timing-report", str(timing),
             *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        return proc, json.loads(timing.read_text())

    def analyzed(self):
        """Every TU the stub has been asked to analyze so far, in order."""
        if not self.log.exists():
            return []
        return self.log.read_text().split()

    def test_cold_run_analyzes_everything_and_reports_misses(self):
        proc, timing = self.run_runner()
        self.assertEqual(0, proc.returncode, proc.stdout)
        self.assertEqual({str(self.a), str(self.b)}, set(self.analyzed()))
        self.assertEqual(0, timing["cache"]["hits"])
        self.assertEqual(2, timing["cache"]["misses"])
        self.assertEqual([str(self.a), str(self.b)],
                         [entry["file"] for entry in timing["files"]])

    def test_unchanged_tree_is_a_full_cache_hit(self):
        self.run_runner()
        before = self.analyzed()
        proc, timing = self.run_runner()
        self.assertEqual(0, proc.returncode, proc.stdout)
        self.assertEqual(before, self.analyzed())  # zero new analyses
        self.assertGreaterEqual(timing["cache"]["hit_ratio"], 0.95)
        self.assertTrue(all(entry["cached"] for entry in timing["files"]))

    def test_header_edit_reanalyzes_exactly_its_dependents(self):
        self.run_runner()
        before = self.analyzed()
        (self.root / "src" / "shared.h").write_text(
            "#pragma once\nint shared();\nint extra();\n")
        proc, timing = self.run_runner()
        self.assertEqual(0, proc.returncode, proc.stdout)
        # a.cc includes shared.h, b.cc does not: only a.cc re-runs.
        self.assertEqual([str(self.a)], self.analyzed()[len(before):])
        self.assertEqual(1, timing["cache"]["hits"])
        self.assertEqual(1, timing["cache"]["misses"])

    def test_config_edit_invalidates_every_entry(self):
        self.run_runner()
        before = self.analyzed()
        (self.root / ".clang-tidy").write_text(
            "Checks: '-*,bugprone-*,clang-analyzer-core*'\n")
        _, timing = self.run_runner()
        self.assertEqual({str(self.a), str(self.b)},
                         set(self.analyzed()[len(before):]))
        self.assertEqual(0, timing["cache"]["hits"])

    def test_no_cache_flag_bypasses_the_cache(self):
        self.run_runner()
        before = self.analyzed()
        _, timing = self.run_runner("--no-cache")
        self.assertEqual({str(self.a), str(self.b)},
                         set(self.analyzed()[len(before):]))
        self.assertFalse(timing["cache"]["enabled"])

    def test_findings_fail_the_run_even_when_cached(self):
        self.b.write_text("int b() { return 2; }  // BAD\n")
        proc, _ = self.run_runner()
        self.assertEqual(1, proc.returncode)
        self.assertIn("stub finding", proc.stdout)
        before = self.analyzed()
        proc, timing = self.run_runner()
        self.assertEqual(1, proc.returncode)      # cached failure still fails
        self.assertIn("stub finding", proc.stdout)
        self.assertEqual(before, self.analyzed())  # ... without re-analysis
        self.assertGreaterEqual(timing["cache"]["hit_ratio"], 0.95)

    def test_warm_budget_rejects_an_over_budget_warm_run(self):
        self.run_runner()
        proc, timing = self.run_runner("--warm-budget-seconds", "0.000001")
        self.assertEqual(1, proc.returncode, proc.stdout)
        self.assertTrue(timing["over_budget"])
        # A cold run must never be failed by the warm budget.
        proc, timing = self.run_runner("--no-cache",
                                       "--warm-budget-seconds", "0.000001")
        self.assertEqual(0, proc.returncode, proc.stdout)
        self.assertFalse(timing["over_budget"])


if __name__ == "__main__":
    unittest.main()

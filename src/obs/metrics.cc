#include "obs/metrics.h"

namespace emsim::obs {

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  if (!enabled_) {
    return sink_counter_;
  }
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  if (!enabled_) {
    return sink_gauge_;
  }
  return gauges_[name];
}

Timeline& MetricsRegistry::GetTimeline(const std::string& name) {
  if (!enabled_) {
    return sink_timeline_;
  }
  return timelines_[name];
}

void MetricsRegistry::FlushTimelines(double now) {
  for (auto& [name, timeline] : timelines_) {
    timeline.Flush(now);
  }
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Samples() const {
  std::vector<Sample> out;
  if (!enabled_) {
    return out;
  }
  out.reserve(counters_.size() + 2 * gauges_.size() + 3 * timelines_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, static_cast<double>(counter.value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, gauge.value()});
    out.push_back({name + ".max", gauge.max()});
  }
  for (const auto& [name, timeline] : timelines_) {
    const stats::TimeWeighted& s = timeline.series();
    out.push_back({name + ".active_ms", s.PositiveTime()});
    out.push_back({name + ".avg", s.Average()});
    out.push_back({name + ".avg_active", s.AverageWhilePositive()});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

}  // namespace emsim::obs

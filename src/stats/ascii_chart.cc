#include "stats/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/check.h"
#include "util/str.h"

namespace emsim::stats {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
}

std::string RenderAsciiChart(const Figure& figure, const AsciiChartOptions& options) {
  EMSIM_CHECK(options.width >= 8 && options.height >= 4);
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -min_x;
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -min_y;
  bool any = false;
  for (const Series& series : figure.series()) {
    for (const SeriesPoint& p : series.points()) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
      any = true;
    }
  }
  if (!any) {
    return "== " + figure.title() + " == (no data)\n";
  }
  if (max_x == min_x) {
    max_x = min_x + 1;
  }
  if (max_y == min_y) {
    max_y = min_y + 1;
  }
  const bool log_y = options.log_y && min_y > 0;

  auto y_to_row = [&](double y) {
    double lo = log_y ? std::log(min_y) : min_y;
    double hi = log_y ? std::log(max_y) : max_y;
    double v = log_y ? std::log(y) : y;
    double frac = (v - lo) / (hi - lo);
    int row = static_cast<int>(std::lround((1.0 - frac) * (options.height - 1)));
    return std::clamp(row, 0, options.height - 1);
  };
  auto x_to_col = [&](double x) {
    double frac = (x - min_x) / (max_x - min_x);
    int col = static_cast<int>(std::lround(frac * (options.width - 1)));
    return std::clamp(col, 0, options.width - 1);
  };

  std::vector<std::string> grid(static_cast<size_t>(options.height),
                                std::string(static_cast<size_t>(options.width), ' '));
  for (size_t s = 0; s < figure.series().size(); ++s) {
    char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (const SeriesPoint& p : figure.series()[s].points()) {
      char& cell = grid[static_cast<size_t>(y_to_row(p.y))][static_cast<size_t>(x_to_col(p.x))];
      // Overlapping series show a collision marker.
      cell = (cell == ' ' || cell == glyph) ? glyph : '?';
    }
  }

  std::string out = "== " + figure.title() + " ==\n";
  const size_t gutter = 10;
  for (int row = 0; row < options.height; ++row) {
    std::string label;
    if (row == 0) {
      label = StrFormat("%9.4g", max_y);
    } else if (row == options.height - 1) {
      label = StrFormat("%9.4g", min_y);
    } else {
      label = std::string(9, ' ');
    }
    out += PadLeft(label, gutter - 1) + "|" + grid[static_cast<size_t>(row)] + "\n";
  }
  out += std::string(gutter - 1, ' ') + "+" + std::string(static_cast<size_t>(options.width), '-') +
         "\n";
  std::string x_axis = StrFormat("%-10.4g", min_x);
  std::string max_label = StrFormat("%.4g", max_x);
  x_axis = std::string(gutter, ' ') + x_axis;
  size_t pad_to = gutter + static_cast<size_t>(options.width) - max_label.size();
  if (x_axis.size() < pad_to) {
    x_axis += std::string(pad_to - x_axis.size(), ' ');
  }
  out += x_axis + max_label + "\n";
  out += "legend:";
  for (size_t s = 0; s < figure.series().size(); ++s) {
    out += StrFormat(" %c %s ", kGlyphs[s % sizeof(kGlyphs)],
                     figure.series()[s].name().c_str());
  }
  out += "\n";
  return out;
}

}  // namespace emsim::stats

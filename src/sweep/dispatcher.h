#ifndef EMSIM_SWEEP_DISPATCHER_H_
#define EMSIM_SWEEP_DISPATCHER_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace emsim::sweep {

/// Dispatch-layer counters, reported next to the simulated fault counters in
/// the merged sweep JSON (opt-in). All zeros on a clean run — the explicit
/// zeros distinguish "nothing retried" from "nobody counted".
struct DispatchStats {
  int launches = 0;         ///< Worker processes spawned (including chaos kills).
  int resubmissions = 0;    ///< Failed attempts re-queued with backoff.
  int deadline_kills = 0;   ///< Stragglers killed past retry.timeout_ms.
  int chaos_kills = 0;      ///< Attempts killed by the chaos hook.
  int spawn_failures = 0;   ///< Subprocess::Start failures (retried).
  int drain_kills = 0;      ///< In-flight workers killed at the drain deadline.
};

/// Lifecycle notification for one shard attempt; the CLI's journal is wired
/// through this observer so every dispatch transition is durable.
struct ShardEvent {
  enum class Kind {
    kStart,   ///< Attempt launched; `path` = its artifact path.
    kDone,    ///< Attempt succeeded; `path` = the published artifact.
    kRetry,   ///< Attempt failed; resubmission queued (`detail` = why).
    kFailed,  ///< Retries exhausted (`detail` = why).
  };

  Kind kind = Kind::kStart;
  int shard = 0;
  int attempt = 0;
  std::string path;
  std::string detail;
};

/// Multi-process shard dispatcher: hands shard indices to a pool of worker
/// subprocesses with work-stealing handoff (a finished worker immediately
/// claims the next pending shard), per-shard wall-clock deadlines, and
/// straggler resubmission with exponential backoff — the same
/// fault::RetryPolicy shape the simulated I/O retry driver uses, applied to
/// real processes. Shard artifacts are deterministic per shard index, so a
/// resubmitted attempt reproduces exactly what the killed straggler would
/// have written and the merged result is unaffected by retries.
struct DispatcherOptions {
  int num_shards = 1;
  /// Shard indices to actually run; empty = all of [0, num_shards). Resume
  /// passes only the shards whose artifacts are missing or quarantined.
  std::vector<int> shards;
  /// Concurrent worker subprocesses; 0 = min(shard count, hardware threads).
  int max_workers = 0;
  /// retry.timeout_ms: per-shard wall-clock deadline before the attempt is
  /// killed and resubmitted (0 = no deadline). retry.max_retries:
  /// resubmissions allowed per shard. retry.backoff_base_ms/multiplier:
  /// real-time backoff before a resubmission.
  fault::RetryPolicy retry;
  /// Test/CI chaos hook: SIGKILL the first attempt of this shard right
  /// after it spawns, to prove the resubmission path end to end (-1 = off).
  int chaos_kill_shard = -1;
  /// Graceful-drain request (signal handlers flip it). Once set, no new
  /// shards launch; in-flight workers get `drain_grace_ms` to finish, then
  /// are killed. The run reports drained=true and is resumable.
  const std::atomic<bool>* drain = nullptr;
  double drain_grace_ms = 2000.0;
  /// Progress lines ("shard 3/7 attempt 2: exit 0"); null = silent.
  std::function<void(const std::string&)> log;
  /// Attempt lifecycle observer (journal hook); null = none.
  std::function<void(const ShardEvent&)> on_event;
};

/// Per-shard dispatch outcome.
struct ShardDispatch {
  int shard = 0;
  int attempts = 0;
  bool ok = false;
  std::string artifact_path;  ///< Written by the successful attempt.
  std::string error;          ///< Why the shard ultimately failed / drained.
};

/// Outcome of a dispatch round: one entry per *requested* shard in ascending
/// shard order, the drain verdict, and the dispatch counters.
struct DispatchReport {
  std::vector<ShardDispatch> shards;
  bool drained = false;  ///< Drain requested; incomplete shards are resumable.
  DispatchStats stats;
};

/// Thread-safe roll-up of dispatch counters and shard-event tallies across
/// concurrent dispatch rounds. One RunShardedSweep call is single-threaded,
/// but a driver fanning sweeps out over several dispatcher threads (the
/// multi-host transport direction) shares one collector: each round's
/// observer calls Note(), each finished round Add()s its report stats, and
/// Total()/Tally() read a consistent snapshot.
class StatsCollector {
 public:
  StatsCollector() = default;
  StatsCollector(const StatsCollector&) = delete;
  StatsCollector& operator=(const StatsCollector&) = delete;

  /// Folds one dispatch round's counters into the running total.
  void Add(const DispatchStats& stats) EMSIM_EXCLUDES(mu_);

  /// Records one observed shard-lifecycle event.
  void Note(const ShardEvent& event) EMSIM_EXCLUDES(mu_);

  /// An `on_event` observer bound to this collector (calls Note()).
  std::function<void(const ShardEvent&)> Observer();

  /// Event counts in ShardEvent::Kind order: starts, dones, retries, fails.
  struct EventTally {
    int starts = 0;
    int dones = 0;
    int retries = 0;
    int fails = 0;
  };

  DispatchStats Total() const EMSIM_EXCLUDES(mu_);
  EventTally Tally() const EMSIM_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  DispatchStats total_ EMSIM_GUARDED_BY(mu_);
  EventTally tally_ EMSIM_GUARDED_BY(mu_);
};

/// Builds the worker argv for one shard attempt; `out_path` is where the
/// worker must write its artifact (the dispatcher picks an attempt-unique
/// path so a killed attempt's partial file cannot shadow a good one).
using ShardCommandFn =
    std::function<std::vector<std::string>(int shard, const std::string& out_path)>;

/// Runs the requested shards to completion, permanent failure, or drain.
/// The call fails only on infrastructure errors (spawn failure, shard
/// exhausting its retries); per-task simulation failures live inside the
/// artifacts and are surfaced by the merger. A drained run is NOT an error:
/// the report comes back with drained=true and whatever shards finished.
Result<DispatchReport> RunShardedSweep(const DispatcherOptions& options,
                                       const std::string& shard_dir,
                                       const ShardCommandFn& command);

}  // namespace emsim::sweep

#endif  // EMSIM_SWEEP_DISPATCHER_H_

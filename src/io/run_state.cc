#include "io/run_state.h"

#include <cstddef>

#include "util/check.h"

namespace emsim::io {

RunStates::RunStates(int num_runs, int64_t blocks_per_run) {
  EMSIM_CHECK(num_runs >= 1);
  EMSIM_CHECK(blocks_per_run >= 1);
  states_.resize(static_cast<size_t>(num_runs));
  for (auto& s : states_) {
    s.blocks_total = blocks_per_run;
  }
}

RunStates::RunStates(const std::vector<int64_t>& run_blocks) {
  EMSIM_CHECK(!run_blocks.empty());
  states_.resize(run_blocks.size());
  for (size_t r = 0; r < run_blocks.size(); ++r) {
    EMSIM_CHECK(run_blocks[r] >= 1);
    states_[r].blocks_total = run_blocks[r];
  }
}

std::vector<int> RunStates::ActiveRuns() const {
  std::vector<int> active;
  for (int r = 0; r < size(); ++r) {
    if (!states_[static_cast<size_t>(r)].FullyConsumed()) {
      active.push_back(r);
    }
  }
  return active;
}

int64_t RunStates::TotalRemaining() const {
  int64_t total = 0;
  for (const auto& s : states_) {
    total += s.blocks_total - s.consumed;
  }
  return total;
}

}  // namespace emsim::io

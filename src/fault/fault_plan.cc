#include "fault/fault_plan.h"

#include <cstddef>
#include <limits>

#include "util/str.h"

namespace emsim::fault {

MediaErrorInjector::MediaErrorInjector(const MediaFaultOptions& options)
    : options_(options), rng_(options.seed) {}

bool MediaErrorInjector::NextReadFails() {
  ++read_attempts_;
  // The nth-failure override bypasses the Bernoulli stream entirely so tests
  // can place a fault at an exact attempt without perturbing random draws.
  bool fail = options_.fail_nth_read > 0 ? read_attempts_ == options_.fail_nth_read
                                         : rng_.Bernoulli(options_.read_failure_rate);
  if (fail) ++injected_reads_;
  return fail;
}

bool MediaErrorInjector::NextWriteFails() {
  ++write_attempts_;
  bool fail = options_.fail_nth_write > 0 ? write_attempts_ == options_.fail_nth_write
                                          : rng_.Bernoulli(options_.write_failure_rate);
  if (fail) ++injected_writes_;
  return fail;
}

double RetryPolicy::BackoffMs(int retry) const {
  double backoff = backoff_base_ms;
  for (int i = 0; i < retry; ++i) {
    backoff *= backoff_multiplier;
  }
  return backoff;
}

Status RetryPolicy::Validate() const {
  if (max_retries < 0) {
    return Status::InvalidArgument("fault: max_retries must be >= 0");
  }
  if (timeout_ms < 0.0) {
    return Status::InvalidArgument("fault: timeout_ms must be >= 0 (0 disables)");
  }
  if (backoff_base_ms < 0.0) {
    return Status::InvalidArgument("fault: backoff_base_ms must be >= 0");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("fault: backoff_multiplier must be >= 1");
  }
  return Status::OK();
}

bool FaultConfig::InjectionEnabled() const {
  return media_error_rate > 0.0 || latency_spike_rate > 0.0 || fail_slow_disk >= 0 ||
         fail_stop_disk >= 0;
}

Status FaultConfig::Validate(int num_disks) const {
  EMSIM_RETURN_IF_ERROR(retry.Validate());
  if (media_error_rate < 0.0 || media_error_rate >= 1.0) {
    return Status::InvalidArgument("fault: media_error_rate must be in [0, 1)");
  }
  if (latency_spike_rate < 0.0 || latency_spike_rate > 1.0) {
    return Status::InvalidArgument("fault: latency_spike_rate must be in [0, 1]");
  }
  if (latency_spike_ms < 0.0) {
    return Status::InvalidArgument("fault: latency_spike_ms must be >= 0");
  }
  if (fail_slow_disk >= num_disks) {
    return Status::InvalidArgument("fault: fail_slow_disk out of range");
  }
  if (fail_slow_disk >= 0 && fail_slow_factor < 1.0) {
    return Status::InvalidArgument("fault: fail_slow_factor must be >= 1");
  }
  if (fail_slow_disk >= 0 && fail_slow_start_ms < 0.0) {
    return Status::InvalidArgument("fault: fail_slow_start_ms must be >= 0");
  }
  if (fail_slow_disk >= 0 && fail_slow_end_ms >= 0.0 && fail_slow_end_ms <= fail_slow_start_ms) {
    return Status::InvalidArgument("fault: fail_slow window is empty");
  }
  if (fail_stop_disk >= num_disks) {
    return Status::InvalidArgument("fault: fail_stop_disk out of range");
  }
  if (fail_stop_disk >= 0 && fail_stop_start_ms < 0.0) {
    return Status::InvalidArgument("fault: fail_stop_start_ms must be >= 0");
  }
  if (fail_stop_disk >= 0 && fail_stop_end_ms >= 0.0 && fail_stop_end_ms <= fail_stop_start_ms) {
    return Status::InvalidArgument("fault: fail_stop window is empty");
  }
  return Status::OK();
}

std::string FaultConfig::ToString() const {
  if (!InjectionEnabled()) return "fault{off}";
  std::vector<std::string> parts;
  if (media_error_rate > 0.0) {
    parts.push_back(StrFormat("media_error_rate=%g", media_error_rate));
  }
  if (latency_spike_rate > 0.0) {
    parts.push_back(
        StrFormat("latency_spike=%g@%gms", latency_spike_rate, latency_spike_ms));
  }
  if (fail_slow_disk >= 0) {
    parts.push_back(StrFormat("fail_slow{disk=%d x%g [%g, %g)ms}", fail_slow_disk,
                              fail_slow_factor, fail_slow_start_ms, fail_slow_end_ms));
  }
  if (fail_stop_disk >= 0) {
    parts.push_back(StrFormat("fail_stop{disk=%d [%g, %g)ms}", fail_stop_disk,
                              fail_stop_start_ms, fail_stop_end_ms));
  }
  if (seed != 0) parts.push_back(StrFormat("fault_seed=%llu", (unsigned long long)seed));
  return "fault{" + StrJoin(parts, " ") + "}";
}

FaultPlan::FaultPlan(const FaultConfig& config, int num_disks, uint64_t base_seed)
    : config_(config) {
  // Expand one plan seed into independent per-disk streams: fault draws on
  // disk i never shift the stream of disk j.
  SplitMix64 expand(config.seed != 0 ? config.seed : base_seed ^ 0xFA177C0DEULL);
  media_.reserve(static_cast<size_t>(num_disks));
  spike_rngs_.reserve(static_cast<size_t>(num_disks));
  for (int d = 0; d < num_disks; ++d) {
    MediaFaultOptions media;
    media.read_failure_rate = config.media_error_rate;
    media.seed = expand.Next();
    media_.emplace_back(media);
    spike_rngs_.emplace_back(Rng(expand.Next()));
  }
}

bool FaultPlan::FailStopped(int disk, double now) const {
  if (disk != config_.fail_stop_disk) return false;
  if (now < config_.fail_stop_start_ms) return false;
  return config_.fail_stop_end_ms < 0.0 || now < config_.fail_stop_end_ms;
}

double FaultPlan::FailStopEndMs(int disk) const {
  if (disk != config_.fail_stop_disk || config_.fail_stop_end_ms < 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return config_.fail_stop_end_ms;
}

RequestFault FaultPlan::OnRequestStart(int disk, double now) {
  RequestFault fault;
  auto d = static_cast<size_t>(disk);
  if (config_.media_error_rate > 0.0) {
    fault.media_error = media_[d].NextReadFails();
  }
  if (config_.latency_spike_rate > 0.0 && spike_rngs_[d].Bernoulli(config_.latency_spike_rate)) {
    fault.extra_latency_ms = config_.latency_spike_ms;
  }
  if (disk == config_.fail_slow_disk && now >= config_.fail_slow_start_ms &&
      (config_.fail_slow_end_ms < 0.0 || now < config_.fail_slow_end_ms)) {
    fault.slow_factor = config_.fail_slow_factor;
  }
  return fault;
}

}  // namespace emsim::fault

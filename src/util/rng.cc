#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace emsim {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.Next();
  }
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  EMSIM_CHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  EMSIM_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 uniform mantissa bits.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

double Rng::Exponential(double mean) {
  EMSIM_CHECK(mean > 0);
  double u = UniformDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) {
    return false;
  }
  if (p >= 1) {
    return true;
  }
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  EMSIM_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  EMSIM_CHECK(total > 0);
  double u = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    EMSIM_CHECK(weights[i] >= 0);
    acc += weights[i];
    if (u < acc) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slack: return the last index.
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = static_cast<uint32_t>(UniformInt(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Split() { return Rng(Next64() ^ 0x9E3779B97F4A7C15ULL); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  EMSIM_CHECK(n >= 1);
  EMSIM_CHECK(theta >= 0);
  h_integral_x1_ = H(1.5) - 1.0;
  h_integral_num_elements_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

double ZipfGenerator::H(double x) const {
  // Integral of x^-theta: handles theta == 1 (log) separately.
  if (theta_ == 1.0) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  if (theta_ == 1.0) {
    return std::exp(x);
  }
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (n_ == 1) {
    return 0;
  }
  if (theta_ == 0.0) {
    return rng.UniformInt(n_);
  }
  while (true) {
    double u =
        h_integral_num_elements_ + rng.UniformDouble() * (h_integral_x1_ - h_integral_num_elements_);
    double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(n_)) {
      k = static_cast<double>(n_);
    }
    if (k - x <= s_ || u >= H(k + 0.5) - std::pow(k, -theta_)) {
      return static_cast<uint64_t>(k) - 1;  // 0-based rank.
    }
  }
}

}  // namespace emsim

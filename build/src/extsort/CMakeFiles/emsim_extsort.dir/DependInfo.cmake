
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extsort/block_device.cc" "src/extsort/CMakeFiles/emsim_extsort.dir/block_device.cc.o" "gcc" "src/extsort/CMakeFiles/emsim_extsort.dir/block_device.cc.o.d"
  "/root/repo/src/extsort/external_sort.cc" "src/extsort/CMakeFiles/emsim_extsort.dir/external_sort.cc.o" "gcc" "src/extsort/CMakeFiles/emsim_extsort.dir/external_sort.cc.o.d"
  "/root/repo/src/extsort/merge_plan.cc" "src/extsort/CMakeFiles/emsim_extsort.dir/merge_plan.cc.o" "gcc" "src/extsort/CMakeFiles/emsim_extsort.dir/merge_plan.cc.o.d"
  "/root/repo/src/extsort/merger.cc" "src/extsort/CMakeFiles/emsim_extsort.dir/merger.cc.o" "gcc" "src/extsort/CMakeFiles/emsim_extsort.dir/merger.cc.o.d"
  "/root/repo/src/extsort/packed_sort.cc" "src/extsort/CMakeFiles/emsim_extsort.dir/packed_sort.cc.o" "gcc" "src/extsort/CMakeFiles/emsim_extsort.dir/packed_sort.cc.o.d"
  "/root/repo/src/extsort/record.cc" "src/extsort/CMakeFiles/emsim_extsort.dir/record.cc.o" "gcc" "src/extsort/CMakeFiles/emsim_extsort.dir/record.cc.o.d"
  "/root/repo/src/extsort/run_formation.cc" "src/extsort/CMakeFiles/emsim_extsort.dir/run_formation.cc.o" "gcc" "src/extsort/CMakeFiles/emsim_extsort.dir/run_formation.cc.o.d"
  "/root/repo/src/extsort/run_io.cc" "src/extsort/CMakeFiles/emsim_extsort.dir/run_io.cc.o" "gcc" "src/extsort/CMakeFiles/emsim_extsort.dir/run_io.cc.o.d"
  "/root/repo/src/extsort/tag_sort.cc" "src/extsort/CMakeFiles/emsim_extsort.dir/tag_sort.cc.o" "gcc" "src/extsort/CMakeFiles/emsim_extsort.dir/tag_sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/emsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/emsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/emsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/emsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/emsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/emsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/emsim_cli.dir/emsim_cli.cc.o"
  "CMakeFiles/emsim_cli.dir/emsim_cli.cc.o.d"
  "emsim_cli"
  "emsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "core/depletion.h"

#include <cstddef>
#include <numeric>
#include <utility>

#include "util/check.h"

namespace emsim::core {

namespace {

/// Maintains the set of active runs with O(1) amortized sampling: runs are
/// removed lazily when a draw hits an exhausted one.
class ActiveSet {
 public:
  explicit ActiveSet(int num_runs) : runs_(static_cast<size_t>(num_runs)) {
    std::iota(runs_.begin(), runs_.end(), 0);
  }

  /// Drops exhausted runs that a draw stumbled on.
  void Prune(const io::RunStates& states, size_t index) {
    std::swap(runs_[index], runs_.back());
    runs_.pop_back();
    EMSIM_CHECK(!runs_.empty() || states.TotalRemaining() == 0);
  }

  size_t size() const { return runs_.size(); }
  int at(size_t i) const { return runs_[i]; }

 private:
  std::vector<int> runs_;
};

class UniformDepletion final : public DepletionModel {
 public:
  explicit UniformDepletion(int num_runs) : active_(num_runs) {}

  int Next(const io::RunStates& runs, Rng& rng) override {
    for (;;) {
      EMSIM_CHECK(active_.size() > 0);
      size_t i = static_cast<size_t>(rng.UniformInt(active_.size()));
      int run = active_.at(i);
      if (runs[run].FullyConsumed()) {
        active_.Prune(runs, i);
        continue;
      }
      return run;
    }
  }

  const char* name() const override { return "uniform"; }

 private:
  ActiveSet active_;
};

class ZipfDepletion final : public DepletionModel {
 public:
  ZipfDepletion(int num_runs, double theta) : theta_(theta) {
    active_.resize(static_cast<size_t>(num_runs));
    std::iota(active_.begin(), active_.end(), 0);
    Rebuild();
  }

  int Next(const io::RunStates& runs, Rng& rng) override {
    for (;;) {
      EMSIM_CHECK(!active_.empty());
      size_t rank = static_cast<size_t>(zipf_->Next(rng));
      int run = active_[rank];
      if (runs[run].FullyConsumed()) {
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(rank));
        if (!active_.empty()) {
          Rebuild();
        }
        continue;
      }
      return run;
    }
  }

  const char* name() const override { return "zipf"; }

 private:
  void Rebuild() { zipf_ = std::make_unique<ZipfGenerator>(active_.size(), theta_); }

  double theta_;
  std::vector<int> active_;  // Rank order: index 0 hottest.
  std::unique_ptr<ZipfGenerator> zipf_;
};

class TraceDepletion final : public DepletionModel {
 public:
  explicit TraceDepletion(std::vector<int> trace) : trace_(std::move(trace)) {}

  int Next(const io::RunStates& runs, Rng& /*rng*/) override {
    EMSIM_CHECK(position_ < trace_.size() && "trace exhausted before the merge finished");
    int run = trace_[position_++];
    EMSIM_CHECK(!runs[run].FullyConsumed() && "trace depletes an exhausted run");
    return run;
  }

  const char* name() const override { return "trace"; }

 private:
  std::vector<int> trace_;
  size_t position_ = 0;
};

}  // namespace

std::unique_ptr<DepletionModel> MakeUniformDepletion(int num_runs) {
  return std::make_unique<UniformDepletion>(num_runs);
}

std::unique_ptr<DepletionModel> MakeZipfDepletion(int num_runs, double theta) {
  return std::make_unique<ZipfDepletion>(num_runs, theta);
}

std::unique_ptr<DepletionModel> MakeTraceDepletion(std::vector<int> trace) {
  return std::make_unique<TraceDepletion>(std::move(trace));
}

}  // namespace emsim::core

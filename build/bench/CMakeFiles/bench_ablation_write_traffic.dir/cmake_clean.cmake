file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_write_traffic.dir/bench_ablation_write_traffic.cc.o"
  "CMakeFiles/bench_ablation_write_traffic.dir/bench_ablation_write_traffic.cc.o.d"
  "bench_ablation_write_traffic"
  "bench_ablation_write_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_write_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "disk/disk_params.h"

#include <cstdint>
#include <cstdlib>


#include "util/str.h"

namespace emsim::disk {

double DiskParams::SeekMs(int64_t cylinders) const {
  if (cylinders == 0) {
    return 0.0;
  }
  return seek_settle_ms + seek_ms_per_cylinder * static_cast<double>(std::llabs(cylinders));
}

Status DiskParams::Validate() const {
  EMSIM_RETURN_IF_ERROR(geometry.Validate());
  if (seek_ms_per_cylinder < 0 || seek_settle_ms < 0) {
    return Status::InvalidArgument("seek costs must be non-negative");
  }
  if (revolution_ms <= 0) {
    return Status::InvalidArgument("revolution time must be positive");
  }
  return Status::OK();
}

std::string DiskParams::ToString() const {
  return StrFormat(
      "DiskParams{S=%.4f ms/cyl, R=%.3f ms, T=%.4f ms/block, rot=%s, sched=%s, seq_opt=%d, %s}",
      seek_ms_per_cylinder, MeanRotationalLatencyMs(), TransferMsPerBlock(),
      rotation == RotationalLatencyModel::kUniform ? "uniform" : "fixed",
      scheduling == SchedulingPolicy::kFcfs ? "FCFS" : "SSTF",
      sequential_optimization ? 1 : 0, geometry.ToString().c_str());
}

DiskParams DiskParams::Paper() { return DiskParams{}; }

}  // namespace emsim::disk

# Empty compiler generated dependencies file for emsim_core.
# This may be replaced when dependencies are built.

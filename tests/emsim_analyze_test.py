#!/usr/bin/env python3
"""Fixture tests for tools/lint/emsim_analyze.py — every rule has at least
one positive (finding fires) and one negative (clean) fixture, including a
cross-TU case proving taint tracks through a call into another translation
unit, plus the suppression mechanics and the clean-tree gate.

Fixtures are synthetic mini-projects (sources + compile_commands.json) laid
out in a temp dir; the analyzer runs its internal frontend over them exactly
as it does over the real tree.
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools" / "lint"))

import emsim_analyze  # noqa: E402


def run_fixture(files, extra_args=(), frontend="internal"):
    """Runs the analyzer over a synthetic tree; returns (exit_code, report).
    `files` maps repo-relative paths to contents; every .cc file becomes a
    compilation-database entry."""
    tmp = Path(tempfile.mkdtemp(prefix="emsim_analyze_fixture_"))
    (tmp / "build").mkdir()
    db = []
    for rel, text in files.items():
        path = tmp / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        if rel.endswith(".cc"):
            db.append({
                "directory": str(tmp),
                "file": str(path),
                "command": f"c++ -I{tmp}/src -c {rel} -o {rel}.o",
            })
    (tmp / "build" / "compile_commands.json").write_text(
        json.dumps(db), encoding="utf-8")
    report_path = tmp / "report.json"
    code = emsim_analyze.main([
        "--build-dir", str(tmp / "build"),
        "--source-root", str(tmp),
        "--frontend", frontend,
        "--no-cache",
        "--report", str(report_path),
        *extra_args,
    ])
    return code, json.loads(report_path.read_text(encoding="utf-8"))


def rules_fired(files, **kwargs):
    _, report = run_fixture(files, **kwargs)
    return sorted({f["rule"] for f in report["findings"]})


# A minimal export sink: the file path matches EXPORT_SINK_PATTERNS, and the
# function defined in it pulls callees into the export surface.
SINK_CC = """
namespace emsim::stats {
void WriteJson() {}
}
"""


def sink_calling(callee_decl, callee_call):
    return (f"{callee_decl}\n"
            "namespace emsim::stats {\n"
            f"void WriteJson() {{ {callee_call}; }}\n"
            "}\n")


class DeterminismTaintTest(unittest.TestCase):
    def test_wall_clock_on_export_surface_fires(self):
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "double Sample();", "Sample()"),
            "src/core/sample.cc": """
#include <chrono>
double Sample() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
""",
        }
        code, report = run_fixture(files)
        self.assertEqual(code, 1)
        findings = report["findings"]
        self.assertEqual([f["rule"] for f in findings], ["determinism-taint"])
        self.assertEqual(findings[0]["path"], "src/core/sample.cc")
        # The finding names the cross-TU export path from the sink.
        self.assertIn("WriteJson", findings[0]["message"])
        self.assertIn("Sample", findings[0]["message"])

    def test_wall_clock_off_export_surface_is_clean(self):
        files = {
            "src/stats/json_writer.cc": SINK_CC,
            "src/core/sample.cc": """
#include <chrono>
double Sample() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
""",
        }
        self.assertEqual(rules_fired(files), [])

    def test_caller_of_sink_is_on_the_surface(self):
        files = {
            "src/stats/json_writer.cc": SINK_CC,
            "src/core/driver.cc": """
#include <chrono>
namespace emsim::stats { void WriteJson(); }
void Drive() {
  auto t = std::chrono::system_clock::now();
  (void)t;
  emsim::stats::WriteJson();
}
""",
        }
        self.assertEqual(rules_fired(files), ["determinism-taint"])

    def test_clock_alias_is_tracked(self):
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "double Sample();", "Sample()"),
            "src/core/sample.cc": """
#include <chrono>
using Clock = std::chrono::steady_clock;
double Sample() { return Clock::now().time_since_epoch().count(); }
""",
        }
        self.assertEqual(rules_fired(files), ["determinism-taint"])

    def test_thread_id_fires(self):
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "unsigned long Sample();", "Sample()"),
            "src/core/sample.cc": """
#include <thread>
unsigned long Sample() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}
""",
        }
        self.assertIn("determinism-taint", rules_fired(files))

    def test_pointer_hash_fires(self):
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "unsigned long Sample(void* p);", "Sample(nullptr)"),
            "src/core/sample.cc": """
#include <functional>
unsigned long Sample(void* p) { return std::hash<void*>{}(p); }
""",
        }
        self.assertEqual(rules_fired(files), ["determinism-taint"])

    def test_pointer_to_int_cast_fires(self):
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "unsigned long Sample(int* p);", "Sample(nullptr)"),
            "src/core/sample.cc": """
#include <cstdint>
unsigned long Sample(int* p) { return reinterpret_cast<uintptr_t>(p); }
""",
        }
        self.assertEqual(rules_fired(files), ["determinism-taint"])

    def test_pointer_to_pointer_cast_is_clean(self):
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "char Sample(int* p);", "Sample(nullptr)"),
            "src/core/sample.cc": """
char Sample(int* p) { return *reinterpret_cast<char*>(p); }
""",
        }
        self.assertEqual(rules_fired(files), [])

    def test_unordered_iteration_fires(self):
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "int Sample();", "Sample()"),
            "src/core/sample.cc": """
#include <unordered_map>
std::unordered_map<int, int> table;
int Sample() {
  int sum = 0;
  for (const auto& kv : table) sum += kv.second;
  return sum;
}
""",
        }
        self.assertEqual(rules_fired(files), ["determinism-taint"])

    def test_ordered_iteration_is_clean(self):
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "int Sample();", "Sample()"),
            "src/core/sample.cc": """
#include <map>
std::map<int, int> table;
int Sample() {
  int sum = 0;
  for (const auto& kv : table) sum += kv.second;
  return sum;
}
""",
        }
        self.assertEqual(rules_fired(files), [])

    def test_taint_tracks_two_calls_deep_across_tus(self):
        # Sink -> Middle (TU 2) -> Leaf (TU 3): the source sits two hops
        # from the sink, each hop in a different translation unit.
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "double Middle();", "Middle()"),
            "src/core/middle.cc": """
double Leaf();
double Middle() { return Leaf() * 2.0; }
""",
            "src/core/leaf.cc": """
#include <chrono>
double Leaf() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
""",
        }
        code, report = run_fixture(files)
        self.assertEqual(code, 1)
        finding = report["findings"][0]
        self.assertEqual(finding["path"], "src/core/leaf.cc")
        self.assertIn("Middle", finding["message"])
        self.assertIn("Leaf", finding["message"])


class PointerOrderingTest(unittest.TestCase):
    def test_set_of_pointers_fires(self):
        files = {"src/core/owners.cc": """
#include <set>
struct Run {};
std::set<Run*> live_runs;
"""}
        self.assertEqual(rules_fired(files), ["pointer-ordering"])

    def test_set_of_values_is_clean(self):
        files = {"src/core/owners.cc": """
#include <set>
std::set<int> live_ids;
"""}
        self.assertEqual(rules_fired(files), [])

    def test_map_keyed_on_pointer_fires(self):
        files = {"src/core/owners.cc": """
#include <map>
struct Run {};
std::map<Run*, int> credit;
"""}
        self.assertEqual(rules_fired(files), ["pointer-ordering"])

    def test_map_with_pointer_value_is_clean(self):
        # The *key* must be the pointer; pointer mapped-to values are fine.
        files = {"src/core/owners.cc": """
#include <map>
struct Run {};
std::map<int, Run*> by_id;
"""}
        self.assertEqual(rules_fired(files), [])

    def test_comparator_ordering_pointer_params_fires(self):
        files = {"src/core/sorter.cc": """
#include <algorithm>
#include <vector>
struct Run { int id; };
void Arrange(std::vector<Run*>& runs) {
  std::sort(runs.begin(), runs.end(),
            [](const Run* a, const Run* b) { return a < b; });
}
"""}
        self.assertEqual(rules_fired(files), ["pointer-ordering"])

    def test_comparator_on_stable_field_is_clean(self):
        files = {"src/core/sorter.cc": """
#include <algorithm>
#include <vector>
struct Run { int id; };
void Arrange(std::vector<Run*>& runs) {
  std::sort(runs.begin(), runs.end(),
            [](const Run* a, const Run* b) { return a->id < b->id; });
}
"""}
        self.assertEqual(rules_fired(files), [])


class FloatReductionOrderTest(unittest.TestCase):
    def test_ad_hoc_sum_in_aggregation_fires(self):
        files = {"src/core/agg.cc": """
#include <vector>
struct Trial { double ms; };
double AggregateTrials(const std::vector<Trial>& trials) {
  double total = 0.0;
  for (const auto& t : trials) total += t.ms;
  return total;
}
"""}
        self.assertEqual(rules_fired(files), ["float-reduction-order"])

    def test_same_body_outside_aggregation_is_clean(self):
        files = {"src/core/agg.cc": """
#include <vector>
struct Trial { double ms; };
double SumForDebugging(const std::vector<Trial>& trials) {
  double total = 0.0;
  for (const auto& t : trials) total += t.ms;
  return total;
}
"""}
        self.assertEqual(rules_fired(files), [])

    def test_same_file_helper_of_aggregation_fires(self):
        files = {"src/core/agg.cc": """
#include <vector>
struct Trial { double ms; };
double SumHelper(const std::vector<Trial>& trials) {
  double total = 0.0;
  for (const auto& t : trials) total += t.ms;
  return total;
}
double AggregateTrials(const std::vector<Trial>& trials) {
  return SumHelper(trials);
}
"""}
        self.assertEqual(rules_fired(files), ["float-reduction-order"])

    def test_reassignment_form_fires(self):
        files = {"src/core/agg.cc": """
double MergeShardArtifacts(const double* xs, int n) {
  double mean = 0.0;
  for (int i = 0; i < n; ++i) mean = mean + xs[i];
  return mean;
}
"""}
        self.assertEqual(rules_fired(files), ["float-reduction-order"])

    def test_stats_accumulator_implementation_is_exempt(self):
        # src/stats/ is the sanctioned Welford implementation.
        files = {"src/stats/accumulator_fixture.cc": """
struct Acc { double mean; long long count; };
void AggregateTrials(Acc& a, double x) {
  a.count += 1;
  double delta = x - a.mean;
  a.mean += delta / a.count;
}
"""}
        self.assertEqual(rules_fired(files), [])


class CoroutineRulesTest(unittest.TestCase):
    def test_ref_capture_in_lambda_coroutine_fires(self):
        files = {"src/core/pipeline.cc": """
struct Task { };
struct Event { };
void Spawn() {
  int credit = 3;
  auto body = [&credit]() -> Task {
    co_await Event{};
    co_return;
  };
  (void)body;
}
"""}
        self.assertEqual(rules_fired(files), ["coro-ref-capture"])

    def test_value_capture_in_lambda_coroutine_is_clean(self):
        files = {"src/core/pipeline.cc": """
struct Task { };
struct Event { };
void Spawn() {
  int credit = 3;
  auto body = [credit]() -> Task {
    co_await Event{};
    co_return;
  };
  (void)body;
}
"""}
        self.assertEqual(rules_fired(files), [])

    def test_ref_param_read_after_suspension_fires(self):
        files = {"src/core/pipeline.cc": """
struct Task { };
struct Event { };
void Spawn() {
  auto body = [](const int& credit) -> Task {
    co_await Event{};
    int local = credit;
    (void)local;
    co_return;
  };
  (void)body;
}
"""}
        self.assertEqual(rules_fired(files), ["coro-ref-capture"])

    def test_value_param_read_after_suspension_is_clean(self):
        files = {"src/core/pipeline.cc": """
struct Task { };
struct Event { };
void Spawn() {
  auto body = [](int credit) -> Task {
    co_await Event{};
    int local = credit;
    (void)local;
    co_return;
  };
  (void)body;
}
"""}
        self.assertEqual(rules_fired(files), [])

    def test_raw_handle_outside_sim_fires(self):
        files = {"src/core/scheduler.cc": """
#include <coroutine>
std::coroutine_handle<> parked;
"""}
        self.assertEqual(rules_fired(files), ["coro-raw-handle"])

    def test_raw_handle_inside_sim_kernel_is_clean(self):
        files = {"src/sim/scheduler.cc": """
#include <coroutine>
std::coroutine_handle<> parked;
"""}
        self.assertEqual(rules_fired(files), [])

    def test_handle_in_comment_does_not_fire(self):
        # Token-level matching: prose mentioning the type is not a finding
        # (the regex tier needed an allow for this).
        files = {"src/core/scheduler.cc": """
// The kernel parks a std::coroutine_handle for each waiter.
int parked = 0;
"""}
        self.assertEqual(rules_fired(files), [])

    def test_mutex_in_coroutine_tu_fires(self):
        files = {"src/core/worker.cc": """
#include <mutex>
struct Task { };
struct Event { };
Task Pump() {
  std::mutex m;
  co_await Event{};
  co_return;
}
"""}
        self.assertIn("no-blocking-in-sim", rules_fired(files))

    def test_mutex_without_coroutines_is_clean(self):
        files = {"src/core/worker.cc": """
#include <mutex>
void Pump() {
  std::mutex m;
  (void)m;
}
"""}
        self.assertEqual(rules_fired(files), [])


class SuppressionTest(unittest.TestCase):
    FILES = {
        "src/core/owners.cc": """
#include <set>
struct Run {};
std::set<Run*> live;  // emsim-analyze: allow(pointer-ordering)
""",
    }

    def test_trailing_allow_suppresses_and_is_recorded(self):
        code, report = run_fixture(self.FILES)
        self.assertEqual(code, 0)
        self.assertEqual(report["findings"], [])
        self.assertEqual(len(report["suppressions"]), 1)
        self.assertEqual(report["suppressions"][0]["rule"], "pointer-ordering")

    def test_allow_on_preceding_comment_line_suppresses(self):
        files = {"src/core/owners.cc": """
#include <set>
struct Run {};
// emsim-analyze: allow(pointer-ordering)
std::set<Run*> live;
"""}
        code, report = run_fixture(files)
        self.assertEqual(code, 0)
        self.assertEqual(len(report["suppressions"]), 1)

    def test_allow_for_other_rule_does_not_suppress(self):
        files = {"src/core/owners.cc": """
#include <set>
struct Run {};
std::set<Run*> live;  // emsim-analyze: allow(determinism-taint)
"""}
        code, report = run_fixture(files)
        self.assertEqual(code, 1)
        self.assertEqual(len(report["findings"]), 1)

    def test_advisory_mode_reports_but_exits_zero(self):
        files = {"src/core/owners.cc": """
#include <set>
struct Run {};
std::set<Run*> live;
"""}
        code, report = run_fixture(files, extra_args=("--advisory",))
        self.assertEqual(code, 0)
        self.assertEqual(len(report["findings"]), 1)


class SharedStateUnguardedTest(unittest.TestCase):
    def test_unguarded_member_in_capability_class_fires(self):
        files = {"src/core/reg.cc": """
namespace util { class Mutex {}; }
class Registry {
 public:
  void Add(int v);
 private:
  util::Mutex mu_;
  int count_;
};
"""}
        self.assertEqual(rules_fired(files), ["shared-state-unguarded"])

    def test_guarded_and_exempt_members_are_clean(self):
        files = {"src/core/reg.cc": """
#include <atomic>
namespace util { class Mutex {}; }
class Registry {
 private:
  util::Mutex mu_;
  int count_ EMSIM_GUARDED_BY(mu_);
  std::atomic<int> generation_;
  static constexpr int kLimit = 8;
};
"""}
        self.assertEqual(rules_fired(files), [])

    def test_members_of_lockless_class_are_clean(self):
        files = {"src/core/plain.cc": """
struct Options {
  int shards = 1;
  double budget_ms = 0.0;
};
"""}
        self.assertEqual(rules_fired(files), [])

    def test_mutated_local_static_on_parallel_path_fires_cross_tu(self):
        files = {
            "src/sweep/run.cc": """
void Bump();
namespace emsim {
void RunSweepRange(int n) {
  for (int i = 0; i < n; ++i) Bump();
}
}
""",
            "src/core/bump.cc": """
void Bump() {
  static int counter = 0;
  ++counter;
}
""",
        }
        code, report = run_fixture(files)
        self.assertEqual(code, 1)
        finding = report["findings"][0]
        self.assertEqual(finding["rule"], "shared-state-unguarded")
        self.assertIn("RunSweepRange", finding["message"])
        self.assertIn("counter", finding["message"])

    def test_local_static_off_parallel_paths_is_clean(self):
        files = {"src/core/bump.cc": """
void Bump() {
  static int counter = 0;
  ++counter;
}
"""}
        self.assertEqual(rules_fired(files), [])

    def test_unmutated_and_sync_local_statics_are_clean(self):
        files = {
            "src/sweep/run.cc": """
int Lookup(int i);
namespace emsim {
int RunSweepRange(int n) { return Lookup(n); }
}
""",
            "src/core/table.cc": """
#include <mutex>
int Lookup(int i) {
  static const int kTable[4] = {1, 2, 3, 4};
  static std::mutex mu;
  (void)mu;
  return kTable[i & 3];
}
""",
        }
        self.assertEqual(rules_fired(files), [])


class LockOrderCycleTest(unittest.TestCase):
    def test_inverse_order_in_one_tu_fires_once(self):
        files = {"src/core/ab.cc": """
#include <mutex>
std::mutex a;
std::mutex b;
void AB() {
  std::lock_guard<std::mutex> la(a);
  std::lock_guard<std::mutex> lb(b);
}
void BA() {
  std::lock_guard<std::mutex> lb(b);
  std::lock_guard<std::mutex> la(a);
}
"""}
        code, report = run_fixture(files)
        self.assertEqual(code, 1)
        cycles = [f for f in report["findings"]
                  if f["rule"] == "lock-order-cycle"]
        self.assertEqual(len(cycles), 1)

    def test_cycle_through_cross_tu_call_under_lock_fires(self):
        files = {
            "src/core/one.cc": """
#include <mutex>
extern std::mutex a;
void TakeB();
void CallUnder() {
  std::lock_guard<std::mutex> la(a);
  TakeB();
}
""",
            "src/core/two.cc": """
#include <mutex>
std::mutex a;
std::mutex b;
void TakeB() { std::lock_guard<std::mutex> lb(b); }
void Reverse() {
  std::lock_guard<std::mutex> lb(b);
  std::lock_guard<std::mutex> la(a);
}
""",
        }
        self.assertIn("lock-order-cycle", rules_fired(files))

    def test_double_acquisition_is_a_self_cycle(self):
        files = {"src/core/dbl.cc": """
#include <mutex>
std::mutex m;
void Doubled() {
  std::lock_guard<std::mutex> l1(m);
  std::lock_guard<std::mutex> l2(m);
}
"""}
        code, report = run_fixture(files)
        self.assertEqual(code, 1)
        finding = report["findings"][0]
        self.assertEqual(finding["rule"], "lock-order-cycle")
        self.assertIn("re-acquired", finding["message"])

    def test_consistent_order_is_clean(self):
        files = {"src/core/ok.cc": """
#include <mutex>
std::mutex a;
std::mutex b;
void First() {
  std::lock_guard<std::mutex> la(a);
  std::lock_guard<std::mutex> lb(b);
}
void Second() {
  std::lock_guard<std::mutex> la(a);
  std::lock_guard<std::mutex> lb(b);
}
"""}
        self.assertEqual(rules_fired(files), [])

    def test_same_method_on_sibling_instance_is_not_a_self_cycle(self):
        # `parent_->Bump()` resolves by simple name to the caller itself;
        # the closure must skip same-qname candidates or every delegating
        # method becomes a false double-lock.
        files = {"src/core/sibling.cc": """
namespace util { class Mutex {}; class MutexLock {
 public: explicit MutexLock(Mutex* m); }; }
class Registry {
 public:
  void Bump(int n);
 private:
  util::Mutex mu_;
  Registry* parent_ EMSIM_GUARDED_BY(mu_) = nullptr;
  int count_ EMSIM_GUARDED_BY(mu_) = 0;
};
void Registry::Bump(int n) {
  util::MutexLock lock(&mu_);
  count_ += n;
  if (parent_) parent_->Bump(n);
}
"""}
        self.assertEqual(rules_fired(files), [])

    def test_adopt_and_defer_tags_are_not_acquisitions(self):
        files = {"src/core/adopt.cc": """
#include <mutex>
std::mutex m;
void Adopted() {
  m.lock();
  std::unique_lock<std::mutex> l1(m, std::adopt_lock);
  std::unique_lock<std::mutex> l2(m, std::adopt_lock);
}
"""}
        self.assertEqual(rules_fired(files), [])


class LockHeldBlockingTest(unittest.TestCase):
    def test_direct_blocking_call_under_lock_fires(self):
        files = {"src/core/flush.cc": """
#include <mutex>
#include <unistd.h>
std::mutex m;
void Flush(int fd) {
  std::lock_guard<std::mutex> l(m);
  fsync(fd);
}
"""}
        code, report = run_fixture(files)
        self.assertEqual(code, 1)
        finding = report["findings"][0]
        self.assertEqual(finding["rule"], "lock-held-blocking")
        self.assertIn("fsync", finding["message"])

    def test_transitive_blocking_through_cross_tu_call_fires(self):
        files = {
            "src/core/hold.cc": """
#include <mutex>
std::mutex m;
void WriteDurable(int fd);
void Publish(int fd) {
  std::lock_guard<std::mutex> l(m);
  WriteDurable(fd);
}
""",
            "src/core/durable.cc": """
#include <unistd.h>
void WriteDurable(int fd) { fsync(fd); }
""",
        }
        self.assertEqual(rules_fired(files), ["lock-held-blocking"])

    def test_blocking_outside_the_lock_scope_is_clean(self):
        files = {"src/core/flush.cc": """
#include <mutex>
#include <unistd.h>
std::mutex m;
void Flush(int fd) {
  {
    std::lock_guard<std::mutex> l(m);
  }
  fsync(fd);
}
"""}
        self.assertEqual(rules_fired(files), [])

    def test_blocking_in_deferred_lambda_under_lock_is_clean(self):
        files = {"src/core/defer.cc": """
#include <functional>
#include <mutex>
#include <unistd.h>
std::mutex m;
std::function<void()> pending;
void Queue(int fd) {
  std::lock_guard<std::mutex> l(m);
  pending = [fd] { fsync(fd); };
}
"""}
        self.assertEqual(rules_fired(files), [])

    def test_bare_cv_wait_outside_a_recheck_loop_fires(self):
        files = {"src/core/wait.cc": """
#include <condition_variable>
#include <mutex>
std::mutex m;
std::condition_variable cv;
void BadWait() {
  std::unique_lock<std::mutex> l(m);
  cv.wait(l);
}
"""}
        code, report = run_fixture(files)
        self.assertEqual(code, 1)
        self.assertEqual(report["findings"][0]["rule"], "lock-held-blocking")
        self.assertIn("re-check loop", report["findings"][0]["message"])

    def test_loop_wrapped_and_predicate_waits_are_clean(self):
        files = {"src/core/wait.cc": """
#include <condition_variable>
#include <mutex>
bool ready;
std::mutex m;
std::condition_variable cv;
void LoopWait() {
  std::unique_lock<std::mutex> l(m);
  while (!ready) cv.wait(l);
}
void BracedWait() {
  std::unique_lock<std::mutex> l(m);
  while (!ready) {
    cv.wait(l);
  }
}
void PredicateWait() {
  std::unique_lock<std::mutex> l(m);
  cv.wait(l, [] { return ready; });
}
"""}
        self.assertEqual(rules_fired(files), [])


class AnnotationParseTest(unittest.TestCase):
    def test_annotated_function_still_carries_taint(self):
        # Capability macros on declarations must not derail function
        # discovery: taint inside an EMSIM_EXCLUDES-annotated definition
        # still reaches the export surface.
        files = {
            "src/stats/json_writer.cc": sink_calling(
                "double Tick();", "Tick()"),
            "src/core/tick.cc": """
#include <chrono>
namespace util { class Mutex {}; }
util::Mutex mu;
double Tick() EMSIM_EXCLUDES(mu) {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
""",
        }
        self.assertEqual(rules_fired(files), ["determinism-taint"])

    def test_annotated_class_members_parse(self):
        files = {"src/core/annotated.cc": """
namespace util { class EMSIM_CAPABILITY("mutex") Mutex {}; }
class EMSIM_SCOPED_CAPABILITY Holder {
 public:
  explicit Holder(util::Mutex* m) EMSIM_ACQUIRE(m);
  ~Holder() EMSIM_RELEASE();
 private:
  util::Mutex* held_;
};
"""}
        self.assertEqual(rules_fired(files), [])


class CleanTreeGateTest(unittest.TestCase):
    """The real tree must analyze clean (suppressions allowed, findings not).
    Mirrors the emsim_lint clean-tree gate; requires a configured build."""

    def test_repo_is_clean(self):
        build = REPO_ROOT / "build"
        if not (build / "compile_commands.json").is_file():
            self.skipTest("no compile_commands.json (build not configured)")
        report_path = Path(tempfile.mkdtemp()) / "report.json"
        code = emsim_analyze.main([
            "--build-dir", str(build),
            "--source-root", str(REPO_ROOT),
            "--frontend", "internal",
            "--no-cache",
            "--report", str(report_path),
        ])
        report = json.loads(report_path.read_text(encoding="utf-8"))
        self.assertEqual(
            [(-1, f["path"], f["line"], f["rule"]) for f in
             report["findings"]], [],
            "unsuppressed analyzer findings in the tree")
        self.assertEqual(code, 0)
        # Every suppression must carry an allow() the auditor can find.
        for s in report["suppressions"]:
            self.assertIn(s["rule"], emsim_analyze.RULES)


if __name__ == "__main__":
    unittest.main(verbosity=2)

#ifndef EMSIM_CORE_RESULT_H_
#define EMSIM_CORE_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/block_cache.h"
#include "disk/disk.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "stats/accumulator.h"

namespace emsim::core {

/// Outcome of one simulated merge (one trial).
struct MergeResult {
  /// Simulated time at which the last block was merged — the paper's "total
  /// execution time" (equals total I/O time under an infinitely fast CPU).
  double total_ms = 0.0;

  int64_t blocks_merged = 0;

  /// Demand I/O operations initiated after the initial cache load.
  uint64_t io_operations = 0;

  /// Of those, operations whose full prefetch wish list fit in the cache —
  /// the numerator of the paper's success ratio.
  uint64_t full_admissions = 0;

  /// Depletions that had to wait for disk I/O.
  uint64_t demand_stalls = 0;

  /// Depletions served straight from the cache.
  uint64_t cache_hits = 0;

  double cpu_busy_ms = 0.0;

  /// Time-averaged number of busy disks over intervals with >= 1 busy disk.
  double avg_concurrency = 0.0;

  /// Fraction of the merge during which >= 1 disk was busy.
  double disk_active_fraction = 0.0;

  double mean_cache_occupancy = 0.0;

  disk::DiskStats disk_totals;
  cache::CacheStats cache_stats;

  /// Distribution of demand-stall durations (ms): how long the merge sat
  /// blocked each time a run ran dry. Mean * count is the total stalled
  /// time; with an infinitely fast CPU it equals total_ms.
  stats::Accumulator stall_ms;

  /// Write-behind statistics (zero when write_traffic == kNone).
  uint64_t write_blocks = 0;       ///< Output blocks written.
  uint64_t write_requests = 0;     ///< Write batches issued.
  uint64_t write_stalls = 0;       ///< CPU stalls on write backpressure.
  double write_drain_ms = 0.0;     ///< Time spent flushing after the last merge.

  uint64_t sim_events = 0;

  /// Fault-injection and recovery outcome. All-zero (injection_enabled
  /// false) for fault-free trials; the JSON export omits the block then.
  fault::FaultStats fault;

  /// Per-disk utilization (busy fraction, mean queue length, cumulative
  /// counters), ordered by disk id. Always collected.
  std::vector<disk::DiskUtilization> per_disk;

  /// Flat registry export (sorted by name); empty unless the trial ran with
  /// MergeConfig::collect_metrics.
  std::vector<obs::MetricsRegistry::Sample> metrics;

  /// The paper's success ratio: P(full prefetch could be initiated).
  double SuccessRatio() const {
    return io_operations == 0 ? 1.0
                              : static_cast<double>(full_admissions) /
                                    static_cast<double>(io_operations);
  }

  double TotalSeconds() const { return total_ms / 1000.0; }

  std::string ToString() const;
};

}  // namespace emsim::core

#endif  // EMSIM_CORE_RESULT_H_

# Empty dependencies file for bench_merge_passes.
# This may be replaced when dependencies are built.

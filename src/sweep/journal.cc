#include "sweep/journal.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <string_view>
#include <sys/stat.h>
#include <unistd.h>
#include <utility>

#include "stats/json_writer.h"
#include "sweep/json_value.h"
#include "util/str.h"

namespace emsim::sweep {

namespace {

Status Errno(const char* what, const std::string& path) {
  return Status::IoError(StrFormat("%s %s: %s", what, path.c_str(), std::strerror(errno)));
}

constexpr struct {
  JournalRecord::Kind kind;
  const char* name;
} kKindNames[] = {
    {JournalRecord::Kind::kRunStart, "run_start"},
    {JournalRecord::Kind::kShardStart, "shard_start"},
    {JournalRecord::Kind::kShardDone, "shard_done"},
    {JournalRecord::Kind::kShardRetry, "shard_retry"},
    {JournalRecord::Kind::kShardFailed, "shard_failed"},
    {JournalRecord::Kind::kQuarantine, "quarantine"},
    {JournalRecord::Kind::kReclaim, "reclaim"},
    {JournalRecord::Kind::kDrain, "drain"},
    {JournalRecord::Kind::kRunDone, "run_done"},
};

std::string EncodeRecord(const JournalRecord& r) {
  // One-line rendering: JsonWriter pretty-prints multi-line, so the journal
  // formats its (flat, few-field) records directly. Strings go through
  // JsonWriter::Escape for correctness.
  std::string out = StrFormat("{\"kind\": \"%s\"", JournalRecordKindName(r.kind));
  if (r.shard >= 0) {
    out += StrFormat(", \"shard\": %d", r.shard);
  }
  if (r.attempt > 0) {
    out += StrFormat(", \"attempt\": %d", r.attempt);
  }
  if (!r.path.empty()) {
    out += StrFormat(", \"path\": \"%s\"", stats::JsonWriter::Escape(r.path).c_str());
  }
  if (r.kind == JournalRecord::Kind::kShardDone) {
    out += StrFormat(", \"digest\": \"%016llx\", \"size\": %llu",
                     static_cast<unsigned long long>(r.digest),
                     static_cast<unsigned long long>(r.size));
  }
  if (!r.detail.empty()) {
    out += StrFormat(", \"detail\": \"%s\"", stats::JsonWriter::Escape(r.detail).c_str());
  }
  if (r.kind == JournalRecord::Kind::kRunStart) {
    out += StrFormat(", \"spec_digest\": \"%016llx\", \"num_shards\": %d, \"total_tasks\": %d",
                     static_cast<unsigned long long>(r.spec_digest), r.num_shards,
                     r.total_tasks);
  }
  out += "}\n";
  return out;
}

Status ReadHex64(const JsonValue& obj, const char* key, uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return Status::Corruption(StrFormat("journal: missing hex field '%s'", key));
  }
  char* end = nullptr;
  *out = std::strtoull(v->string.c_str(), &end, 16);
  if (v->string.empty() || end != v->string.c_str() + v->string.size()) {
    return Status::Corruption(StrFormat("journal: malformed hex field '%s'", key));
  }
  return Status::OK();
}

int FindInt(const JsonValue& obj, const char* key, int fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber || !v->is_integral) {
    return fallback;
  }
  return static_cast<int>(v->is_negative ? -static_cast<int64_t>(v->magnitude)
                                         : static_cast<int64_t>(v->magnitude));
}

std::string FindString(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kString) ? v->string : std::string();
}

Result<JournalRecord> DecodeRecord(const std::string& line) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    return Status::Corruption(StrFormat("journal: %s", parsed.status().message().c_str()));
  }
  const JsonValue& obj = *parsed;
  std::string kind_name = FindString(obj, "kind");
  JournalRecord record;
  bool known = false;
  for (const auto& entry : kKindNames) {
    if (kind_name == entry.name) {
      record.kind = entry.kind;
      known = true;
      break;
    }
  }
  if (!known) {
    return Status::Corruption(StrFormat("journal: unknown record kind '%s'", kind_name.c_str()));
  }
  record.shard = FindInt(obj, "shard", -1);
  record.attempt = FindInt(obj, "attempt", 0);
  record.path = FindString(obj, "path");
  record.detail = FindString(obj, "detail");
  if (record.kind == JournalRecord::Kind::kShardDone) {
    EMSIM_RETURN_IF_ERROR(ReadHex64(obj, "digest", &record.digest));
    const JsonValue* size = obj.Find("size");
    if (size == nullptr || size->kind != JsonValue::Kind::kNumber || !size->is_integral ||
        size->is_negative) {
      return Status::Corruption("journal: shard_done record without a valid size");
    }
    record.size = size->magnitude;
  }
  if (record.kind == JournalRecord::Kind::kRunStart) {
    EMSIM_RETURN_IF_ERROR(ReadHex64(obj, "spec_digest", &record.spec_digest));
    record.num_shards = FindInt(obj, "num_shards", 0);
    record.total_tasks = FindInt(obj, "total_tasks", -1);
    if (record.num_shards < 1 || record.total_tasks < 0) {
      return Status::Corruption("journal: run_start record without a valid shard plan");
    }
  }
  return record;
}

}  // namespace

const char* JournalRecordKindName(JournalRecord::Kind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "unknown";
}

Result<RunJournal> RunJournal::Open(const std::string& run_dir) {
  if (::mkdir(run_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("cannot create run dir", run_dir);
  }
  RunJournal journal;
  journal.path_ = run_dir + "/" + kFileName;
  journal.fd_ =
      ::open(journal.path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (journal.fd_ < 0) {
    return Errno("cannot open journal", journal.path_);
  }
  return journal;
}

RunJournal::RunJournal(RunJournal&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_) {
  other.fd_ = -1;
}

RunJournal& RunJournal::operator=(RunJournal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      (void)::close(fd_);
    }
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

RunJournal::~RunJournal() {
  if (fd_ >= 0) {
    (void)::close(fd_);
  }
}

Status RunJournal::Append(const JournalRecord& record) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("journal: append on a moved-from journal");
  }
  std::string line = EncodeRecord(record);
  std::string_view data = line;
  while (!data.empty()) {
    ssize_t wrote = ::write(fd_, data.data(), data.size());
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("cannot append to journal", path_);
    }
    data.remove_prefix(static_cast<size_t>(wrote));
  }
  if (::fsync(fd_) != 0) {
    return Errno("cannot fsync journal", path_);
  }
  return Status::OK();
}

Result<std::vector<JournalRecord>> RunJournal::Load(const std::string& run_dir) {
  std::string path = run_dir + "/" + kFileName;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(StrFormat("no journal at %s — not a sweep run directory?",
                                      path.c_str()));
  }
  std::string text;
  char buf[1 << 16];
  ssize_t got = 0;
  while ((got = ::read(fd, buf, sizeof(buf))) > 0) {
    text.append(buf, static_cast<size_t>(got));
  }
  (void)::close(fd);

  std::vector<JournalRecord> records;
  size_t start = 0;
  while (start < text.size()) {
    size_t newline = text.find('\n', start);
    if (newline == std::string::npos) {
      break;  // Torn final record: the crash lost it; artifacts re-verify.
    }
    std::string line = text.substr(start, newline - start);
    start = newline + 1;
    if (line.empty()) {
      continue;
    }
    auto record = DecodeRecord(line);
    if (!record.ok()) {
      return Status::Corruption(StrFormat("%s:%zu: %s", path.c_str(), records.size() + 1,
                                          record.status().message().c_str()));
    }
    records.push_back(*std::move(record));
  }
  return records;
}

Result<RunLedger> ReplayJournal(const std::vector<JournalRecord>& records) {
  if (records.empty() || records.front().kind != JournalRecord::Kind::kRunStart) {
    return Status::Corruption("journal: no run_start record — empty or corrupt journal");
  }
  RunLedger ledger;
  ledger.spec_digest = records.front().spec_digest;
  ledger.num_shards = records.front().num_shards;
  ledger.total_tasks = records.front().total_tasks;
  for (const JournalRecord& r : records) {
    switch (r.kind) {
      case JournalRecord::Kind::kRunStart:
        break;
      case JournalRecord::Kind::kShardStart: {
        ShardLedger& shard = ledger.shards[r.shard];
        if (r.attempt > shard.attempts) {
          shard.attempts = r.attempt;
        }
        break;
      }
      case JournalRecord::Kind::kShardDone: {
        ShardLedger& shard = ledger.shards[r.shard];
        shard.done = true;
        shard.artifact_path = r.path;
        shard.artifact_digest = r.digest;
        break;
      }
      case JournalRecord::Kind::kShardRetry:
      case JournalRecord::Kind::kShardFailed:
        ledger.shards[r.shard].last_error = r.detail;
        break;
      case JournalRecord::Kind::kQuarantine: {
        // The artifact this shard had published is no longer trustworthy.
        ShardLedger& shard = ledger.shards[r.shard];
        shard.done = false;
        shard.artifact_path.clear();
        shard.artifact_digest = 0;
        break;
      }
      case JournalRecord::Kind::kReclaim:
        break;
      case JournalRecord::Kind::kDrain:
        ledger.drained = true;
        break;
      case JournalRecord::Kind::kRunDone:
        ledger.completed = true;
        break;
    }
  }
  return ledger;
}

}  // namespace emsim::sweep

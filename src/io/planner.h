#ifndef EMSIM_IO_PLANNER_H_
#define EMSIM_IO_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/victim_chooser.h"

namespace emsim::io {

/// One planned read: `nblocks` contiguous blocks of `run` starting at
/// `offset` (which is always the run's next unrequested block).
struct FetchOp {
  int run = 0;
  int64_t offset = 0;
  int64_t nblocks = 1;
  bool is_demand = false;  ///< True for the op that unblocks the merge.
};

/// A prefetching strategy: given the run whose leading block the merge needs
/// (the demand-fetch run), produce the *wish list* of reads to issue. The
/// driver applies the cache admission policy (all-or-nothing vs greedy) to
/// the wish list — planners express intent only.
///
/// Two concrete planners reproduce the paper's strategies:
///  * DemandOnly   — "Demand Run Only": N blocks of the demand run
///                   (intra-run prefetching; N = 1 degenerates to the
///                   Kwan-Baer no-prefetching baseline).
///  * AllDisksOneRun — "All Disks One Run": N blocks of the demand run plus
///                   N blocks of one victim run on every other disk
///                   (inter-run prefetching combined with intra-run depth N).
class PrefetchPlanner {
 public:
  virtual ~PrefetchPlanner() = default;

  /// Produces the wish list for a demand fetch on `demand_run`. Ops are
  /// ordered with the demand op first. Never returns an empty list while
  /// the demand run has blocks on disk.
  virtual std::vector<FetchOp> Plan(const VictimChooser::Context& ctx, int demand_run) = 0;

  virtual std::string name() const = 0;
};

/// Intra-run ("Demand Run Only") planner with prefetch depth `n`.
std::unique_ptr<PrefetchPlanner> MakeDemandOnlyPlanner(int n);

/// Inter-run ("All Disks One Run") planner with intra-run depth `n` and the
/// given victim chooser (the paper uses the random chooser).
std::unique_ptr<PrefetchPlanner> MakeAllDisksOneRunPlanner(int n,
                                                           std::unique_ptr<VictimChooser> chooser);

}  // namespace emsim::io

#endif  // EMSIM_IO_PLANNER_H_

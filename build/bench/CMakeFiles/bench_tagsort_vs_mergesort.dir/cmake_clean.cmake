file(REMOVE_RECURSE
  "CMakeFiles/bench_tagsort_vs_mergesort.dir/bench_tagsort_vs_mergesort.cc.o"
  "CMakeFiles/bench_tagsort_vs_mergesort.dir/bench_tagsort_vs_mergesort.cc.o.d"
  "bench_tagsort_vs_mergesort"
  "bench_tagsort_vs_mergesort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tagsort_vs_mergesort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/emsim_workload.dir/depletion_generator.cc.o"
  "CMakeFiles/emsim_workload.dir/depletion_generator.cc.o.d"
  "CMakeFiles/emsim_workload.dir/experiment_spec.cc.o"
  "CMakeFiles/emsim_workload.dir/experiment_spec.cc.o.d"
  "CMakeFiles/emsim_workload.dir/paper_configs.cc.o"
  "CMakeFiles/emsim_workload.dir/paper_configs.cc.o.d"
  "CMakeFiles/emsim_workload.dir/record_generator.cc.o"
  "CMakeFiles/emsim_workload.dir/record_generator.cc.o.d"
  "libemsim_workload.a"
  "libemsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/extsort_record_test.dir/extsort_record_test.cc.o"
  "CMakeFiles/extsort_record_test.dir/extsort_record_test.cc.o.d"
  "extsort_record_test"
  "extsort_record_test.pdb"
  "extsort_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extsort_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

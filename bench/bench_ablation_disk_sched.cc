// Ablation: disk request scheduling. The paper's disks serve requests FCFS;
// this bench measures what SSTF (shortest-seek-time-first) and the
// sequential-access optimization (no seek/latency when the arm is already
// positioned) would change. With S = 0.01 ms/cylinder the seek component is
// tiny, so FCFS vs SSTF should be close — the paper's implicit justification
// for not modeling smarter scheduling.

#include "bench_util.h"
#include "core/config.h"
#include "disk/disk_params.h"
#include "stats/table.h"

int main() {
  using namespace emsim;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using disk::SchedulingPolicy;
  using stats::Table;

  bench::Banner("Ablation A-SCHED: disk scheduling and sequential optimization",
                "All Disks One Run and Demand Run Only at k=25, D=5, N=10.\n"
                "Expected shape: SSTF ~= FCFS (seek is a tiny cost share);\n"
                "sequential optimization helps most when requests stay on one\n"
                "run (demand-only, large N).");

  struct Variant {
    const char* name;
    SchedulingPolicy sched;
    bool seq_opt;
    bool angular;
  };
  const Variant variants[] = {
      {"FCFS (paper)", SchedulingPolicy::kFcfs, false, false},
      {"SSTF", SchedulingPolicy::kSstf, false, false},
      {"FCFS + sequential-opt", SchedulingPolicy::kFcfs, true, false},
      {"SSTF + sequential-opt", SchedulingPolicy::kSstf, true, false},
      {"FCFS + angular rotation", SchedulingPolicy::kFcfs, false, true},
  };

  for (auto strategy : {Strategy::kDemandRunOnly, Strategy::kAllDisksOneRun}) {
    Table table({"variant", "time (s)", "concurrency", "seek ms total", "rotation ms total"});
    for (const Variant& v : variants) {
      MergeConfig cfg = MergeConfig::Paper(25, 5, 10, strategy, SyncMode::kUnsynchronized);
      cfg.disk_params.scheduling = v.sched;
      cfg.disk_params.sequential_optimization = v.seq_opt;
      if (v.angular) {
        cfg.disk_params.rotation = disk::RotationalLatencyModel::kAngular;
      }
      auto result = bench::Run(cfg);
      const auto& trial = result.trials.front();
      table.AddRow({v.name, bench::TimeCell(result),
                    Table::Cell(result.MeanConcurrency(), 3),
                    Table::Cell(trial.disk_totals.seek_ms, 0),
                    Table::Cell(trial.disk_totals.rotation_ms, 0)});
    }
    bench::EmitTable(strategy == Strategy::kDemandRunOnly ? "Demand Run Only"
                                                          : "All Disks One Run",
                     table);
  }
  emsim::bench::WriteJsonArtifact("ablation_disk_sched");
  return 0;
}

#include "io/retry.h"

#include <utility>

#include "util/check.h"

namespace emsim::io {

FetchRetryDriver::FetchRetryDriver(sim::Simulation* sim, disk::DiskArray* disks,
                                   fault::HealthTracker* health, fault::RetryPolicy policy,
                                   obs::MetricsRegistry* metrics)
    : sim_(sim), disks_(disks), health_(health), policy_(policy) {
  EMSIM_CHECK(sim != nullptr);
  EMSIM_CHECK(disks != nullptr);
  EMSIM_CHECK(health != nullptr);
  EMSIM_CHECK(policy_.Validate().ok());
  if (metrics != nullptr) {
    metric_retries_ = &metrics->GetCounter("fault.retries");
    metric_timeouts_ = &metrics->GetCounter("fault.timeouts");
    metric_backoff_ms_ = &metrics->GetGauge("fault.backoff_ms");
  }
}

void FetchRetryDriver::Submit(int disk, disk::DiskRequest request) {
  EMSIM_CHECK(request.on_error == nullptr && request.progress == nullptr);
  auto job = std::make_shared<Job>();
  job->disk = disk;
  job->request = std::move(request);
  Attempt(job);
}

void FetchRetryDriver::Attempt(const std::shared_ptr<Job>& job) {
  ++job->attempts;
  auto progress = std::make_shared<disk::RequestProgress>();
  disk::DiskRequest attempt;
  attempt.start_block = job->request.start_block;
  attempt.nblocks = job->request.nblocks;
  attempt.kind = job->request.kind;
  attempt.on_block = job->request.on_block;
  attempt.progress = progress;
  attempt.on_complete = [this, job] {
    health_->NoteSuccess(job->disk);
    if (job->request.on_complete) {
      job->request.on_complete();
    }
  };
  attempt.on_error = [this, job] { HandleFailure(job); };
  disks_->Submit(job->disk, std::move(attempt));
  ArmTimeout(job, progress);
}

void FetchRetryDriver::ArmTimeout(const std::shared_ptr<Job>& job,
                                  const std::shared_ptr<disk::RequestProgress>& progress) {
  if (policy_.timeout_ms <= 0) {
    return;
  }
  sim_->ScheduleCallback(sim_->Now() + policy_.timeout_ms, [this, job, progress] {
    switch (progress->phase) {
      case disk::RequestPhase::kDone:
      case disk::RequestPhase::kFailed:
        return;  // Settled; the error path (if any) already ran.
      case disk::RequestPhase::kServing:
        // Service is non-preemptive and always finite (a fail-slow disk is
        // slow, not stuck) — keep watching the same attempt.
        ArmTimeout(job, progress);
        return;
      case disk::RequestPhase::kQueued:
        // Stuck in a queue that is not draining (fail-stopped disk).
        // Disown the attempt; the disk drops it if it ever surfaces.
        progress->abandoned = true;
        ++stats_.timeouts;
        if (metric_timeouts_ != nullptr) {
          metric_timeouts_->Increment();
        }
        HandleFailure(job);
        return;
    }
  });
}

void FetchRetryDriver::HandleFailure(const std::shared_ptr<Job>& job) {
  health_->NoteFailure(job->disk, sim_->Now());
  if (job->attempts > policy_.max_retries) {
    ++stats_.permanent_failures;
    if (on_permanent_failure) {
      on_permanent_failure(job->disk, job->request);
    }
    return;
  }
  const double backoff = policy_.BackoffMs(job->attempts - 1);
  ++stats_.retries;
  stats_.backoff_ms += backoff;
  if (metric_retries_ != nullptr) {
    metric_retries_->Increment();
  }
  if (metric_backoff_ms_ != nullptr) {
    metric_backoff_ms_->Add(backoff);
  }
  if (backoff > 0) {
    sim_->ScheduleCallback(sim_->Now() + backoff, [this, job] { Attempt(job); });
  } else {
    Attempt(job);
  }
}

}  // namespace emsim::io

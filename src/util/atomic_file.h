#ifndef EMSIM_UTIL_ATOMIC_FILE_H_
#define EMSIM_UTIL_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace emsim::util {

/// Crash-safe file publication: content is staged in a temp file next to the
/// destination, fsync'd, then renamed into place (and the parent directory
/// fsync'd), so readers observe either the complete old file or the complete
/// new file — never a torn or partially flushed artifact. Every artifact
/// writer (shard artifacts, merged sweep JSON, bench exports, the sweep
/// journal's sibling files) must publish through this class; the
/// `artifact-raw-write` lint rule enforces it.
///
///     auto file = util::AtomicFile::Create(path);
///     EMSIM_RETURN_IF_ERROR(file.status());
///     EMSIM_RETURN_IF_ERROR(file->Append(doc));
///     EMSIM_RETURN_IF_ERROR(file->Commit());
///
/// An AtomicFile that is destroyed before Commit() removes its temp file, so
/// an error unwind leaves no debris behind.
class AtomicFile {
 public:
  /// Stages a temp file (`<path>.tmp.<pid>`) for `path`. Fails if the temp
  /// file cannot be created.
  static Result<AtomicFile> Create(const std::string& path);

  AtomicFile(AtomicFile&& other) noexcept;
  AtomicFile& operator=(AtomicFile&& other) noexcept;
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;
  ~AtomicFile();

  /// Appends bytes to the staged temp file.
  Status Append(std::string_view data);

  /// fsync + close the temp file, rename it over the destination, fsync the
  /// parent directory. After an OK Commit the file is durably published;
  /// after a failed Commit the temp file is removed.
  Status Commit();

  /// Removes the temp file without publishing (idempotent; Commit's
  /// destructor fallback).
  void Discard();

 private:
  AtomicFile() = default;

  std::string path_;       ///< Final destination.
  std::string temp_path_;  ///< Staged content lives here until Commit.
  int fd_ = -1;
};

/// One-shot convenience: stage `contents`, then atomically publish it at
/// `path`.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace emsim::util

#endif  // EMSIM_UTIL_ATOMIC_FILE_H_

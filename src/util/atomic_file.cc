#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <string>
#include <string_view>
#include <sys/stat.h>
#include <unistd.h>
#include <utility>

#include "util/str.h"

namespace emsim::util {

namespace {

Status Errno(const char* what, const std::string& path) {
  return Status::IoError(StrFormat("%s %s: %s", what, path.c_str(), std::strerror(errno)));
}

/// fsync on the directory containing `path`, so the rename itself is
/// durable. Best-effort on filesystems that reject directory fsync.
void SyncParentDir(const std::string& path) {
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    dir = slash == 0 ? "/" : path.substr(0, slash);
  }
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}

}  // namespace

Result<AtomicFile> AtomicFile::Create(const std::string& path) {
  AtomicFile file;
  file.path_ = path;
  file.temp_path_ = StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  file.fd_ = ::open(file.temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (file.fd_ < 0) {
    return Errno("cannot stage", file.temp_path_);
  }
  return file;
}

AtomicFile::AtomicFile(AtomicFile&& other) noexcept
    : path_(std::move(other.path_)), temp_path_(std::move(other.temp_path_)), fd_(other.fd_) {
  other.fd_ = -1;
  other.temp_path_.clear();
}

AtomicFile& AtomicFile::operator=(AtomicFile&& other) noexcept {
  if (this != &other) {
    Discard();
    path_ = std::move(other.path_);
    temp_path_ = std::move(other.temp_path_);
    fd_ = other.fd_;
    other.fd_ = -1;
    other.temp_path_.clear();
  }
  return *this;
}

AtomicFile::~AtomicFile() { Discard(); }

Status AtomicFile::Append(std::string_view data) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("AtomicFile: append after commit/discard");
  }
  while (!data.empty()) {
    ssize_t wrote = ::write(fd_, data.data(), data.size());
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("cannot write", temp_path_);
    }
    data.remove_prefix(static_cast<size_t>(wrote));
  }
  return Status::OK();
}

Status AtomicFile::Commit() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("AtomicFile: commit after commit/discard");
  }
  if (::fsync(fd_) != 0) {
    Status failed = Errno("cannot fsync", temp_path_);
    Discard();
    return failed;
  }
  (void)::close(fd_);
  fd_ = -1;
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    Status failed = Errno("cannot publish", path_);
    (void)::unlink(temp_path_.c_str());
    temp_path_.clear();
    return failed;
  }
  temp_path_.clear();
  SyncParentDir(path_);
  return Status::OK();
}

void AtomicFile::Discard() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
  if (!temp_path_.empty()) {
    (void)::unlink(temp_path_.c_str());
    temp_path_.clear();
  }
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  auto file = AtomicFile::Create(path);
  EMSIM_RETURN_IF_ERROR(file.status());
  EMSIM_RETURN_IF_ERROR(file->Append(contents));
  return file->Commit();
}

}  // namespace emsim::util

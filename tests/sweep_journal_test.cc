// Durability layer tests: artifact integrity footers (seal/unseal), the
// append-only run journal with torn-line tolerance, ledger replay, and the
// sealed-merge negative paths — every corruption mode must be detected and
// must name the culprit artifact.

#include "sweep/journal.h"

#include <cstddef>
#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "sweep/merge.h"
#include "sweep/shard.h"
#include "util/atomic_file.h"
#include "util/status.h"
#include "util/str.h"

namespace emsim::sweep {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  (void)::mkdir(dir.c_str(), 0755);
  std::string journal = dir + "/" + RunJournal::kFileName;
  (void)::unlink(journal.c_str());
  return dir;
}

TEST(Fnv1aDigestTest, MatchesKnownVectorsAndSeparatesInputs) {
  // FNV-1a offset basis is the digest of the empty string by construction.
  EXPECT_EQ(Fnv1aDigest(""), 14695981039346656037ULL);
  EXPECT_NE(Fnv1aDigest("a"), Fnv1aDigest("b"));
  EXPECT_NE(Fnv1aDigest("ab"), Fnv1aDigest("ba"));
  EXPECT_EQ(Fnv1aDigest("payload"), Fnv1aDigest("payload"));
}

TEST(ArtifactSealTest, SealThenUnsealIsIdentity) {
  std::string payload = "{\"doc\": 1}\n";
  std::string sealed = SealShardArtifact(payload);
  ASSERT_GT(sealed.size(), payload.size());
  EXPECT_NE(sealed.find("#emsim-shard-footer v1 "), std::string::npos);
  auto unsealed = UnsealShardArtifact(sealed);
  ASSERT_TRUE(unsealed.ok()) << unsealed.status().ToString();
  EXPECT_EQ(*unsealed, payload);
}

TEST(ArtifactSealTest, SealAppendsMissingTrailingNewline) {
  std::string sealed = SealShardArtifact("{\"doc\": 1}");
  auto unsealed = UnsealShardArtifact(sealed);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(*unsealed, "{\"doc\": 1}\n");
}

TEST(ArtifactSealTest, MissingFooterIsCorruption) {
  auto unsealed = UnsealShardArtifact("{\"doc\": 1}\n");
  ASSERT_FALSE(unsealed.ok());
  EXPECT_EQ(unsealed.status().code(), StatusCode::kCorruption);
  EXPECT_NE(unsealed.status().message().find("integrity footer missing"),
            std::string::npos)
      << unsealed.status().ToString();
}

TEST(ArtifactSealTest, TruncatedPayloadIsDetected) {
  std::string sealed = SealShardArtifact("line one\nline two\n");
  // Cut bytes out of the middle, keeping the (now stale) footer intact.
  std::string truncated = sealed.substr(0, 4) + sealed.substr(9);
  auto unsealed = UnsealShardArtifact(truncated);
  ASSERT_FALSE(unsealed.ok());
  EXPECT_NE(unsealed.status().message().find("truncated or spliced"), std::string::npos)
      << unsealed.status().ToString();
}

TEST(ArtifactSealTest, BitFlipUnderStaleFooterIsDetected) {
  std::string sealed = SealShardArtifact("deterministic payload bytes\n");
  sealed[3] ^= 0x20;  // Same length, different content: only the digest sees it.
  auto unsealed = UnsealShardArtifact(sealed);
  ASSERT_FALSE(unsealed.ok());
  EXPECT_NE(unsealed.status().message().find("does not match footer"), std::string::npos)
      << unsealed.status().ToString();
}

TEST(ArtifactSealTest, MangledFooterIsDetected) {
  std::string sealed = SealShardArtifact("payload\n");
  sealed.replace(sealed.find("fnv1a="), 6, "fnv1x=");
  auto unsealed = UnsealShardArtifact(sealed);
  ASSERT_FALSE(unsealed.ok());
  EXPECT_EQ(unsealed.status().code(), StatusCode::kCorruption);
}

TEST(RunJournalTest, AppendThenLoadRoundTrips) {
  std::string dir = FreshDir("journal_roundtrip");
  auto journal = RunJournal::Open(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  JournalRecord start;
  start.kind = JournalRecord::Kind::kRunStart;
  start.spec_digest = 0xdeadbeefcafef00dULL;
  start.num_shards = 3;
  start.total_tasks = 11;
  ASSERT_TRUE(journal->Append(start).ok());

  JournalRecord launch;
  launch.kind = JournalRecord::Kind::kShardStart;
  launch.shard = 2;
  launch.attempt = 1;
  launch.path = "shard_2_of_3.attempt1.json";
  ASSERT_TRUE(journal->Append(launch).ok());

  JournalRecord done;
  done.kind = JournalRecord::Kind::kShardDone;
  done.shard = 2;
  done.attempt = 1;
  done.path = "shard_2_of_3.attempt1.json";
  done.digest = 0x0123456789abcdefULL;
  done.size = 4096;
  ASSERT_TRUE(journal->Append(done).ok());

  JournalRecord retry;
  retry.kind = JournalRecord::Kind::kShardRetry;
  retry.shard = 0;
  retry.attempt = 1;
  retry.detail = "signal 9 with \"quotes\"";
  ASSERT_TRUE(journal->Append(retry).ok());

  auto records = RunJournal::Load(dir);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 4u);
  EXPECT_EQ((*records)[0].kind, JournalRecord::Kind::kRunStart);
  EXPECT_EQ((*records)[0].spec_digest, 0xdeadbeefcafef00dULL);
  EXPECT_EQ((*records)[0].num_shards, 3);
  EXPECT_EQ((*records)[0].total_tasks, 11);
  EXPECT_EQ((*records)[1].kind, JournalRecord::Kind::kShardStart);
  EXPECT_EQ((*records)[1].shard, 2);
  EXPECT_EQ((*records)[1].attempt, 1);
  EXPECT_EQ((*records)[1].path, "shard_2_of_3.attempt1.json");
  EXPECT_EQ((*records)[2].kind, JournalRecord::Kind::kShardDone);
  EXPECT_EQ((*records)[2].digest, 0x0123456789abcdefULL);
  EXPECT_EQ((*records)[2].size, 4096u);
  EXPECT_EQ((*records)[3].kind, JournalRecord::Kind::kShardRetry);
  EXPECT_EQ((*records)[3].detail, "signal 9 with \"quotes\"");
}

TEST(RunJournalTest, TornFinalLineIsDropped) {
  std::string dir = FreshDir("journal_torn");
  auto journal = RunJournal::Open(dir);
  ASSERT_TRUE(journal.ok());
  JournalRecord start;
  start.kind = JournalRecord::Kind::kRunStart;
  start.spec_digest = 1;
  start.num_shards = 1;
  start.total_tasks = 1;
  ASSERT_TRUE(journal->Append(start).ok());

  // Simulate a crash mid-append: a record with no trailing newline.
  FILE* f = fopen((dir + "/" + RunJournal::kFileName).c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char torn[] = "{\"kind\": \"shard_done\", \"shard\": 0";
  fwrite(torn, 1, sizeof(torn) - 1, f);
  fclose(f);

  auto records = RunJournal::Load(dir);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 1u);
}

TEST(RunJournalTest, CorruptCompleteLineIsAnError) {
  std::string dir = FreshDir("journal_corrupt");
  FILE* f = fopen((dir + "/" + RunJournal::kFileName).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char bogus[] = "not json at all\n";
  fwrite(bogus, 1, sizeof(bogus) - 1, f);
  fclose(f);
  auto records = RunJournal::Load(dir);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
}

TEST(RunJournalTest, MissingJournalIsNotFound) {
  std::string dir = FreshDir("journal_missing");
  auto records = RunJournal::Load(dir);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kNotFound);
}

JournalRecord MakeStart(int num_shards, int total_tasks) {
  JournalRecord r;
  r.kind = JournalRecord::Kind::kRunStart;
  r.spec_digest = 42;
  r.num_shards = num_shards;
  r.total_tasks = total_tasks;
  return r;
}

TEST(ReplayJournalTest, FoldsShardLifecyclesIntoLedger) {
  std::vector<JournalRecord> records;
  records.push_back(MakeStart(3, 9));

  JournalRecord s0_start;
  s0_start.kind = JournalRecord::Kind::kShardStart;
  s0_start.shard = 0;
  s0_start.attempt = 1;
  records.push_back(s0_start);

  JournalRecord s0_done;
  s0_done.kind = JournalRecord::Kind::kShardDone;
  s0_done.shard = 0;
  s0_done.attempt = 1;
  s0_done.path = "shard_0_of_3.attempt1.json";
  s0_done.digest = 7;
  records.push_back(s0_done);

  JournalRecord s1_retry;
  s1_retry.kind = JournalRecord::Kind::kShardRetry;
  s1_retry.shard = 1;
  s1_retry.attempt = 1;
  s1_retry.detail = "signal 9";
  records.push_back(s1_retry);

  auto ledger = ReplayJournal(records);
  ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
  EXPECT_EQ(ledger->spec_digest, 42u);
  EXPECT_EQ(ledger->num_shards, 3);
  EXPECT_EQ(ledger->total_tasks, 9);
  EXPECT_FALSE(ledger->drained);
  EXPECT_FALSE(ledger->completed);
  ASSERT_TRUE(ledger->shards.count(0));
  EXPECT_TRUE(ledger->shards.at(0).done);
  EXPECT_EQ(ledger->shards.at(0).artifact_path, "shard_0_of_3.attempt1.json");
  EXPECT_EQ(ledger->shards.at(0).artifact_digest, 7u);
  ASSERT_TRUE(ledger->shards.count(1));
  EXPECT_FALSE(ledger->shards.at(1).done);
  EXPECT_EQ(ledger->shards.at(1).last_error, "signal 9");
}

TEST(ReplayJournalTest, QuarantineRevokesACompletedShard) {
  std::vector<JournalRecord> records;
  records.push_back(MakeStart(1, 2));
  JournalRecord done;
  done.kind = JournalRecord::Kind::kShardDone;
  done.shard = 0;
  done.attempt = 1;
  done.path = "shard_0_of_1.attempt1.json";
  done.digest = 9;
  records.push_back(done);
  JournalRecord quarantine;
  quarantine.kind = JournalRecord::Kind::kQuarantine;
  quarantine.shard = 0;
  quarantine.path = "shard_0_of_1.attempt1.json";
  quarantine.detail = "digest mismatch";
  records.push_back(quarantine);

  auto ledger = ReplayJournal(records);
  ASSERT_TRUE(ledger.ok());
  EXPECT_FALSE(ledger->shards.at(0).done);
  EXPECT_TRUE(ledger->shards.at(0).artifact_path.empty());
}

TEST(ReplayJournalTest, DrainAndRunDoneSetVerdictFlags) {
  std::vector<JournalRecord> records;
  records.push_back(MakeStart(1, 1));
  JournalRecord drain;
  drain.kind = JournalRecord::Kind::kDrain;
  drain.detail = "signal";
  records.push_back(drain);
  JournalRecord run_done;
  run_done.kind = JournalRecord::Kind::kRunDone;
  records.push_back(run_done);
  auto ledger = ReplayJournal(records);
  ASSERT_TRUE(ledger.ok());
  EXPECT_TRUE(ledger->drained);
  EXPECT_TRUE(ledger->completed);
}

TEST(ReplayJournalTest, MissingRunStartIsCorruption) {
  auto empty = ReplayJournal({});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kCorruption);

  JournalRecord stray;
  stray.kind = JournalRecord::Kind::kShardDone;
  stray.shard = 0;
  auto headless = ReplayJournal({stray});
  ASSERT_FALSE(headless.ok());
  EXPECT_EQ(headless.status().code(), StatusCode::kCorruption);
}

// --- Sealed-merge negative paths: every corruption names its culprit. ---

std::vector<core::SweepUnit> SmallUnits() {
  core::SweepUnit unit;
  unit.name = "unit";
  unit.config.num_runs = 4;
  unit.config.num_disks = 2;
  unit.config.blocks_per_run = 20;
  unit.config.prefetch_depth = 2;
  unit.trials = 2;
  return {unit};
}

std::vector<NamedArtifact> SealedArtifacts(const std::vector<core::SweepUnit>& units,
                                           int shard_count) {
  core::SweepGrid grid(units);
  std::vector<NamedArtifact> artifacts;
  for (int s = 0; s < shard_count; ++s) {
    ShardArtifact artifact = RunShard(grid, s, shard_count, 1, core::TrialDeadline{});
    artifacts.push_back(NamedArtifact{StrFormat("shard_%d_of_%d.json", s, shard_count),
                                      SealShardArtifact(EncodeShardArtifact(artifact))});
  }
  return artifacts;
}

TEST(SealedMergeTest, CleanSealedArtifactsMerge) {
  auto units = SmallUnits();
  auto merged = MergeShardArtifacts(units, SealedArtifacts(units, 2));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->size(), 1u);
}

TEST(SealedMergeTest, TruncatedBodyNamesTheCulpritFile) {
  auto units = SmallUnits();
  auto artifacts = SealedArtifacts(units, 2);
  // Losing the tail of the file takes the footer with it.
  artifacts[1].contents.resize(artifacts[1].contents.size() / 2);
  auto merged = MergeShardArtifacts(units, artifacts);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kCorruption);
  EXPECT_NE(merged.status().message().find("shard_1_of_2.json"), std::string::npos)
      << merged.status().ToString();
  EXPECT_NE(merged.status().message().find("integrity footer missing"), std::string::npos)
      << merged.status().ToString();
}

TEST(SealedMergeTest, BitFlippedPayloadUnderStaleFooterNamesTheCulpritFile) {
  auto units = SmallUnits();
  auto artifacts = SealedArtifacts(units, 2);
  artifacts[0].contents[40] ^= 0x01;  // Footer left stale: digest must catch it.
  auto merged = MergeShardArtifacts(units, artifacts);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kCorruption);
  EXPECT_NE(merged.status().message().find("shard_0_of_2.json"), std::string::npos)
      << merged.status().ToString();
  EXPECT_NE(merged.status().message().find("does not match footer"), std::string::npos)
      << merged.status().ToString();
}

TEST(SealedMergeTest, ForeignSpecDigestNamesTheCulpritFile) {
  auto units = SmallUnits();
  auto artifacts = SealedArtifacts(units, 2);
  // Rebuild shard 1 from a different sweep: valid seal, wrong spec digest.
  auto foreign_units = SmallUnits();
  foreign_units[0].config.prefetch_depth = 3;
  auto foreign = SealedArtifacts(foreign_units, 2);
  artifacts[1].contents = foreign[1].contents;
  auto merged = MergeShardArtifacts(units, artifacts);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("shard_1_of_2.json"), std::string::npos)
      << merged.status().ToString();
  EXPECT_NE(merged.status().message().find("different sweep"), std::string::npos)
      << merged.status().ToString();
}

TEST(AtomicFileTest, WriteFileAtomicPublishesAllOrNothing) {
  std::string dir = FreshDir("atomic_file");
  std::string path = dir + "/doc.json";
  ASSERT_TRUE(util::WriteFileAtomic(path, "first\n").ok());
  ASSERT_TRUE(util::WriteFileAtomic(path, "second\n").ok());
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  size_t got = fread(buf, 1, sizeof(buf), f);
  fclose(f);
  EXPECT_EQ(std::string(buf, got), "second\n");
  // No temp droppings left behind.
  std::string temp_probe = path + ".tmp";
  struct stat st{};
  EXPECT_NE(::stat((temp_probe + StrFormat(".%d", getpid())).c_str(), &st), 0);
}

TEST(AtomicFileTest, DiscardLeavesNoFile) {
  std::string dir = FreshDir("atomic_discard");
  std::string path = dir + "/doc.json";
  {
    auto file = util::AtomicFile::Create(path);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_TRUE(file->Append("half-written").ok());
    // Destructor discards: no Commit().
  }
  struct stat st{};
  EXPECT_NE(::stat(path.c_str(), &st), 0);
}

}  // namespace
}  // namespace emsim::sweep

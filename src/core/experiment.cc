#include "core/experiment.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "core/merge_simulator.h"
#include "core/result.h"
#include "extsort/record.h"
#include "util/check.h"
#include "util/status.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace emsim::core {

namespace {

/// Collects the first failure by *task index* (not arrival order) so the
/// abort message is deterministic across thread counts, and defers the abort
/// itself to the joining thread: pool workers must never call abort() while
/// sibling tasks are mid-flight.
class FailureCapture {
 public:
  void Record(int index, const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (index < first_index_) {
      first_index_ = index;
      status_ = status;
    }
  }

  /// Called on the joining thread after all tasks completed.
  void CheckOk(const char* what) const {
    if (first_index_ == std::numeric_limits<int>::max()) {
      return;
    }
    EMSIM_CHECK_MSG(false, StrFormat("%s %d failed: %s", what, first_index_,
                                     status_.ToString().c_str())
                               .c_str());
  }

 private:
  mutable std::mutex mu_;
  int first_index_ = std::numeric_limits<int>::max();
  Status status_;
};

int ResolveThreads(int num_threads) {
  if (num_threads > 0) {
    return num_threads;
  }
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 2;
}

/// Stamps the harness deadline onto one trial's config. Config-level bounds
/// take precedence where they are tighter (events) or set at all (wall
/// clock); see TrialDeadline's doc for the rationale.
void ApplyDeadline(MergeConfig& config, const TrialDeadline& deadline) {
  if (deadline.max_sim_events > 0 &&
      (config.max_sim_events == 0 || deadline.max_sim_events < config.max_sim_events)) {
    config.max_sim_events = deadline.max_sim_events;
  }
  if (deadline.max_wall_ms > 0 && config.max_wall_ms == 0) {
    config.max_wall_ms = deadline.max_wall_ms;
  }
}

ExperimentResult Aggregate(std::vector<MergeResult> trials) {
  ExperimentResult out;
  for (MergeResult& r : trials) {
    out.total_ms.Add(r.total_ms);
    out.success_ratio.Add(r.SuccessRatio());
    out.concurrency.Add(r.avg_concurrency);
    out.io_operations.Add(static_cast<double>(r.io_operations));
    out.cache_occupancy.Add(r.mean_cache_occupancy);
    out.trials.push_back(std::move(r));
  }
  return out;
}

}  // namespace

std::string ExperimentResult::ToString() const {
  auto ci = stats::MeanConfidence95(total_ms);
  return StrFormat("Experiment{trials=%zu, total=%.2f±%.2f s, success=%.3f, conc=%.3f}",
                   trials.size(), ci.mean / 1000.0, ci.half_width / 1000.0,
                   MeanSuccessRatio(), MeanConcurrency());
}

ExperimentResult RunTrials(const MergeConfig& config, int num_trials,
                           const TrialDeadline& deadline) {
  EMSIM_CHECK(num_trials >= 1);
  std::vector<MergeResult> trials;
  trials.reserve(static_cast<size_t>(num_trials));
  for (int t = 0; t < num_trials; ++t) {
    MergeConfig trial_config = config;
    trial_config.seed = config.seed + static_cast<uint64_t>(t);
    ApplyDeadline(trial_config, deadline);
    Result<MergeResult> result = SimulateMerge(trial_config);
    EMSIM_CHECK_MSG(result.ok(), StrFormat("trial %d failed: %s", t,
                                           result.status().ToString().c_str())
                                     .c_str());
    trials.push_back(*std::move(result));
  }
  return Aggregate(std::move(trials));
}

ExperimentResult RunTrialsParallel(const MergeConfig& config, int num_trials,
                                   int num_threads, const TrialDeadline& deadline) {
  EMSIM_CHECK(num_trials >= 1);
  std::vector<MergeResult> trials(static_cast<size_t>(num_trials));
  FailureCapture failure;
  auto task = [&](int t) {
    MergeConfig trial_config = config;
    trial_config.seed = config.seed + static_cast<uint64_t>(t);
    ApplyDeadline(trial_config, deadline);
    Result<MergeResult> result = SimulateMerge(trial_config);
    if (!result.ok()) {
      failure.Record(t, result.status());
      return;
    }
    trials[static_cast<size_t>(t)] = *std::move(result);
  };
  ThreadPool::Instance().Run(ResolveThreads(num_threads), num_trials, task);
  failure.CheckOk("trial");
  return Aggregate(std::move(trials));
}

std::vector<ExperimentResult> RunSweepParallel(const std::vector<MergeConfig>& configs,
                                               int num_trials, int num_threads,
                                               const TrialDeadline& deadline) {
  EMSIM_CHECK(num_trials >= 1);
  if (configs.empty()) {
    return {};
  }
  const int num_configs = static_cast<int>(configs.size());
  const int total = num_configs * num_trials;
  std::vector<MergeResult> grid(static_cast<size_t>(total));
  FailureCapture failure;
  auto task = [&](int index) {
    int c = index / num_trials;
    int t = index % num_trials;
    MergeConfig trial_config = configs[static_cast<size_t>(c)];
    trial_config.seed = trial_config.seed + static_cast<uint64_t>(t);
    ApplyDeadline(trial_config, deadline);
    Result<MergeResult> result = SimulateMerge(trial_config);
    if (!result.ok()) {
      failure.Record(index, result.status());
      return;
    }
    grid[static_cast<size_t>(index)] = *std::move(result);
  };
  ThreadPool::Instance().Run(ResolveThreads(num_threads), total, task);
  failure.CheckOk("sweep task");
  std::vector<ExperimentResult> out;
  out.reserve(configs.size());
  for (int c = 0; c < num_configs; ++c) {
    auto first = grid.begin() + static_cast<ptrdiff_t>(c) * num_trials;
    out.push_back(Aggregate(std::vector<MergeResult>(
        std::make_move_iterator(first), std::make_move_iterator(first + num_trials))));
  }
  return out;
}

}  // namespace emsim::core

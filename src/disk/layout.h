#ifndef EMSIM_DISK_LAYOUT_H_
#define EMSIM_DISK_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "disk/geometry.h"
#include "util/status.h"

namespace emsim::disk {

/// How runs are assigned to disks.
enum class RunPlacement {
  /// Run r lives on disk r mod D (the paper's "runs equally distributed over
  /// D disks"); runs on a disk are placed contiguously in assignment order.
  kRoundRobin,
  /// Runs 0..k/D-1 on disk 0, the next k/D on disk 1, etc.
  kBlocked,
  /// Declustered (Salem & Garcia-Molina striping): block o of every run
  /// lives on disk o mod D, so a single run's sequential read engages all
  /// disks. Requires uniform run lengths divisible by D. Only the
  /// demand-run-only strategy is meaningful on a striped layout (there is
  /// no "other disk" holding a whole run to prefetch from).
  kStriped,
};

/// Maps (run, block-within-run) to (disk, disk-local block) for `k` sorted
/// runs striped over `D` disks, each run `blocks_per_run` blocks long and
/// stored contiguously. This is the data layout the paper's merge reads.
class RunLayout {
 public:
  struct Options {
    int num_runs = 25;
    int num_disks = 5;
    int64_t blocks_per_run = 1000;
    Geometry geometry;  // Supplies blocks-per-cylinder for cylinder math.
    RunPlacement placement = RunPlacement::kRoundRobin;
    /// Optional per-run lengths (size num_runs) overriding the uniform
    /// blocks_per_run — real run formation (e.g. replacement selection)
    /// produces unequal runs. Empty means uniform.
    std::vector<int64_t> run_blocks;
  };

  explicit RunLayout(const Options& options);

  /// Fails if a disk would overflow its cylinder count.
  Status Validate() const;

  int num_runs() const { return options_.num_runs; }
  int num_disks() const { return options_.num_disks; }

  /// Uniform run length; with per-run lengths this is the mean (used only
  /// for reporting).
  int64_t blocks_per_run() const { return options_.blocks_per_run; }

  /// Length of a specific run in blocks.
  int64_t RunBlocks(int run) const;

  /// Disk storing run `run`.
  int DiskOf(int run) const;

  /// Position of `run` among the runs of its disk (0-based placement order).
  int IndexOnDisk(int run) const;

  /// Number of runs stored on `disk`.
  int RunsOnDisk(int disk) const;

  /// The runs stored on `disk`, in placement order.
  std::vector<int> RunsOf(int disk) const;

  /// Disk-local block index of block `offset` of run `run`. For striped
  /// placement the owning disk varies per offset — use Locate/Spans.
  int64_t LocalBlock(int run, int64_t offset) const;

  /// Disk-local cylinder of block `offset` of run `run`.
  int64_t CylinderOf(int run, int64_t offset) const;

  /// Physical location of one block.
  struct Location {
    int disk = 0;
    int64_t local_block = 0;
  };
  Location Locate(int run, int64_t offset) const;

  /// One physically contiguous piece of a logical read: `nblocks` blocks on
  /// `disk` starting at `local_start`, covering run offsets
  /// first_offset, first_offset + offset_stride, ... (stride 1 when the run
  /// is contiguous on the disk, D when striped).
  struct Span {
    int disk = 0;
    int64_t local_start = 0;
    int64_t nblocks = 0;
    int64_t first_offset = 0;
    int64_t offset_stride = 1;
  };

  /// Splits a logical read of `nblocks` run blocks starting at `offset`
  /// into per-disk contiguous spans (a single span on contiguous layouts).
  std::vector<Span> Spans(int run, int64_t offset, int64_t nblocks) const;

  bool striped() const { return options_.placement == RunPlacement::kStriped; }

  /// Cylinders each run spans (the paper's m = blocks_per_run / 104).
  double RunLengthCylinders() const;

  /// Total blocks across all runs.
  int64_t TotalBlocks() const;

  std::string ToString() const;

 private:
  /// Disk-local block at which `run` starts.
  int64_t StartBlockOnDisk(int run) const;

  Options options_;
};

}  // namespace emsim::disk

#endif  // EMSIM_DISK_LAYOUT_H_

#ifndef EMSIM_STATS_CONFIDENCE_H_
#define EMSIM_STATS_CONFIDENCE_H_

#include <cstdint>

#include "stats/accumulator.h"

namespace emsim::stats {

/// A symmetric confidence interval around a mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  // mean ± half_width

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }

  /// True if `value` lies within the interval.
  bool Contains(double value) const { return value >= lower() && value <= upper(); }
};

/// Two-sided Student-t critical value for the given degrees of freedom at
/// 95% confidence. Exact tabulated values for df <= 30, normal approximation
/// beyond.
double StudentT95(uint64_t degrees_of_freedom);

/// 95% confidence interval for the mean of the accumulated observations.
/// With fewer than 2 samples the half-width is 0.
ConfidenceInterval MeanConfidence95(const Accumulator& acc);

}  // namespace emsim::stats

#endif  // EMSIM_STATS_CONFIDENCE_H_

file(REMOVE_RECURSE
  "CMakeFiles/extsort_device_test.dir/extsort_device_test.cc.o"
  "CMakeFiles/extsort_device_test.dir/extsort_device_test.cc.o.d"
  "extsort_device_test"
  "extsort_device_test.pdb"
  "extsort_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extsort_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Extension X-SORT: the real external mergesort driving the timing
// simulator. Records are generated, sorted into runs, and the *actual*
// block-depletion order of the real k-way merge replaces the paper's random
// depletion model; the simulator then times that trace under each
// prefetching strategy. This checks that the paper's conclusions transfer
// from the stochastic model to genuine merges.


#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "core/config.h"
#include "core/merge_simulator.h"
#include "extsort/block_device.h"
#include "extsort/merger.h"
#include "extsort/record.h"
#include "extsort/run_formation.h"
#include "stats/table.h"
#include "util/check.h"
#include "workload/record_generator.h"

namespace emsim {
namespace {

using core::MergeConfig;
using core::Strategy;
using core::SyncMode;
using stats::Table;
using workload::KeyDistribution;

struct TraceBundle {
  std::vector<int> trace;
  std::vector<int64_t> run_blocks;
  size_t runs = 0;
};

TraceBundle BuildTrace(KeyDistribution dist, extsort::RunFormationStrategy strategy) {
  workload::RecordGeneratorOptions gen_opt;
  gen_opt.distribution = dist;
  gen_opt.seed = 2026;
  workload::RecordGenerator gen(gen_opt);
  std::vector<extsort::Record> input;
  const size_t n = 1000000;
  input.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    input.push_back({gen.NextKey(), i});
  }
  extsort::MemoryBlockDevice scratch(1 << 16, 4096);
  extsort::RunFormationOptions rf;
  rf.memory_records = 40000;  // 25 load-sort runs of ~157 blocks each.
  rf.strategy = strategy;
  auto runs = extsort::FormRuns(input, &scratch, rf);
  EMSIM_CHECK_MSG(runs.ok(), runs.status().ToString().c_str());
  auto outcome = extsort::ExtractDepletionTrace(&scratch, runs->runs);
  EMSIM_CHECK_MSG(outcome.ok(), outcome.status().ToString().c_str());
  return {outcome->depletion_trace, outcome->run_blocks, runs->runs.size()};
}

double TimeTrace(const TraceBundle& bundle, Strategy strategy, int n, int64_t cache) {
  MergeConfig cfg;
  cfg.num_runs = static_cast<int>(bundle.runs);
  cfg.num_disks = 5;
  cfg.run_lengths = bundle.run_blocks;
  cfg.prefetch_depth = n;
  cfg.cache_blocks = cache;
  cfg.strategy = strategy;
  cfg.sync = SyncMode::kUnsynchronized;
  cfg.depletion = core::DepletionKind::kTrace;
  cfg.trace = bundle.trace;
  auto result = core::SimulateMerge(cfg);
  EMSIM_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return result->total_ms / 1e3;
}

const char* DistName(KeyDistribution dist) {
  switch (dist) {
    case KeyDistribution::kUniform:
      return "uniform keys";
    case KeyDistribution::kZipf:
      return "zipf keys";
    case KeyDistribution::kNearlySorted:
      return "nearly-sorted keys";
    case KeyDistribution::kReverseSorted:
      return "reverse-sorted keys";
  }
  return "?";
}

}  // namespace
}  // namespace emsim

int main() {
  using namespace emsim;
  bench::Banner(
      "Extension X-SORT: real external sort -> trace-driven timing",
      "250k 16-byte records, load-sort runs (10k records each), real k-way\n"
      "merge depletion traces timed on 5 disks at N in {1,10}. Expected\n"
      "shape: All Disks One Run beats Demand Run Only on real traces too;\n"
      "nearly-sorted input (disjoint ranges -> sequential depletion) is the\n"
      "stress case for inter-run prefetching.");

  // Fair comparison at equal memory: both strategies get the same cache
  // (1000 blocks, ~1/4 of the ~3925-block dataset).
  const int64_t kCache = 1000;
  Table table({"key distribution", "runs", "DRO N=1 (s)", "DRO N=10 (s)",
               "ADOR N=10 (s)", "ADOR speedup"});
  for (auto dist : {workload::KeyDistribution::kUniform, workload::KeyDistribution::kZipf,
                    workload::KeyDistribution::kNearlySorted}) {
    auto bundle = BuildTrace(dist, extsort::RunFormationStrategy::kLoadSort);
    double dro1 = TimeTrace(bundle, core::Strategy::kDemandRunOnly, 1,
                            static_cast<int64_t>(bundle.runs));
    double dro10 = TimeTrace(bundle, core::Strategy::kDemandRunOnly, 10, kCache);
    double ador10 = TimeTrace(bundle, core::Strategy::kAllDisksOneRun, 10, kCache);
    table.AddRow({DistName(dist), Table::Cell(static_cast<double>(bundle.runs), 0),
                  Table::Cell(dro1), Table::Cell(dro10), Table::Cell(ador10),
                  Table::Cell(dro10 / ador10, 2)});
  }
  bench::EmitTable("Real-merge traces under the paper's strategies (cache = 1000 blocks)",
                   table);

  // Replacement selection: fewer, longer, unequal runs.
  auto rs = BuildTrace(workload::KeyDistribution::kUniform,
                       extsort::RunFormationStrategy::kReplacementSelection);
  auto ls = BuildTrace(workload::KeyDistribution::kUniform,
                       extsort::RunFormationStrategy::kLoadSort);
  Table table2({"run formation", "runs", "DRO N=10 (s)", "ADOR N=10 (s)"});
  table2.AddRow({"load-sort", Table::Cell(static_cast<double>(ls.runs), 0),
                 Table::Cell(TimeTrace(ls, core::Strategy::kDemandRunOnly, 10, kCache)),
                 Table::Cell(TimeTrace(ls, core::Strategy::kAllDisksOneRun, 10, kCache))});
  table2.AddRow({"replacement selection", Table::Cell(static_cast<double>(rs.runs), 0),
                 Table::Cell(TimeTrace(rs, core::Strategy::kDemandRunOnly, 10, kCache)),
                 Table::Cell(TimeTrace(rs, core::Strategy::kAllDisksOneRun, 10, kCache))});
  bench::EmitTable("Run formation strategy (fewer, longer runs -> fewer seeks)", table2);
  return 0;
}

#ifndef EMSIM_OBS_METRICS_H_
#define EMSIM_OBS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/time_weighted.h"

namespace emsim::obs {

/// Monotonically increasing event count (requests served, events dispatched).
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-value-wins instantaneous measurement with a running maximum
/// (calendar depth, outstanding writes). Meaningful for signals >= 0.
class Gauge {
 public:
  void Set(double v) {
    value_ = v;
    max_ = std::max(max_, v);
  }
  void Add(double delta) { Set(value_ + delta); }
  double value() const { return value_; }
  double max() const { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Piecewise-constant signal integrated over simulated time (disk busy
/// state, queue length, cache occupancy). A thin veneer over
/// stats::TimeWeighted so exporters can treat it uniformly with the other
/// instrument kinds.
class Timeline {
 public:
  /// Signal takes value `value` from time `now` on; times non-decreasing.
  void Update(double now, double value) { series_.Update(now, value); }

  /// Closes the integration window at `now` without changing the value.
  void Flush(double now) { series_.Flush(now); }

  const stats::TimeWeighted& series() const { return series_; }

 private:
  stats::TimeWeighted series_;
};

/// Name-keyed registry of Counters, Gauges and Timelines for one simulation.
///
/// Instrument references stay valid for the registry's lifetime (node-based
/// storage), so components look their instruments up once at wiring time and
/// touch only the instrument on the hot path.
///
/// A registry constructed disabled hands every caller the same internal
/// sink instruments: the instrumented code runs unchanged (one arithmetic
/// op per hook, no branches, no allocation, no lookup) but nothing is
/// retained per name and Samples() is empty. This is the "near-zero
/// overhead when off" mode the simulator uses by default.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Finds or creates the named instrument. Disabled registries return a
  /// shared sink instead (never exported).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Timeline& GetTimeline(const std::string& name);

  /// True if the named instrument exists (always false when disabled).
  bool HasCounter(const std::string& name) const { return counters_.contains(name); }
  bool HasGauge(const std::string& name) const { return gauges_.contains(name); }
  bool HasTimeline(const std::string& name) const { return timelines_.contains(name); }

  /// Closes every timeline's window at `now` (call once at end of run).
  void FlushTimelines(double now);

  /// One exported scalar. Timelines fan out into derived samples
  /// ("<name>.avg", "<name>.avg_active", "<name>.active_ms"), gauges into
  /// "<name>" and "<name>.max".
  struct Sample {
    std::string name;
    double value;
  };

  /// Deterministic flat export: samples sorted by name, one vector for all
  /// instrument kinds. Empty when the registry is disabled.
  std::vector<Sample> Samples() const;

 private:
  bool enabled_;
  // std::map: stable references + deterministic (sorted) iteration.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Timeline> timelines_;
  Counter sink_counter_;
  Gauge sink_gauge_;
  Timeline sink_timeline_;
};

}  // namespace emsim::obs

#endif  // EMSIM_OBS_METRICS_H_

# Empty compiler generated dependencies file for emsim_extsort.
# This may be replaced when dependencies are built.

#include "stats/time_weighted.h"

#include "util/check.h"

namespace emsim::stats {

void TimeWeighted::Accumulate(double now) {
  EMSIM_CHECK(now >= last_time_);
  double dt = now - last_time_;
  weighted_sum_ += value_ * dt;
  total_time_ += dt;
  if (value_ > 0) {
    positive_weighted_sum_ += value_ * dt;
    positive_time_ += dt;
  }
  last_time_ = now;
}

void TimeWeighted::Update(double now, double value) {
  if (!started_) {
    started_ = true;
    last_time_ = now;
  } else {
    Accumulate(now);
  }
  value_ = value;
}

void TimeWeighted::Flush(double now) {
  if (!started_) {
    started_ = true;
    last_time_ = now;
    return;
  }
  Accumulate(now);
}

double TimeWeighted::Average() const {
  if (total_time_ <= 0) {
    return 0.0;
  }
  return weighted_sum_ / total_time_;
}

double TimeWeighted::AverageWhilePositive() const {
  if (positive_time_ <= 0) {
    return 0.0;
  }
  return positive_weighted_sum_ / positive_time_;
}

}  // namespace emsim::stats

// External sort demo: the library is not only a simulator — it contains a
// complete external mergesort. This demo sorts one million records on
// in-memory block devices, verifies the result, accounts simulated disk
// time for the full job, and then shows the bridge to the paper: the real
// merge's block-depletion trace timed under both prefetching strategies.
//
//   $ ./external_sort_demo [zipf|uniform|sorted|reverse]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/merge_simulator.h"
#include "disk/disk_params.h"
#include "extsort/block_device.h"
#include "extsort/external_sort.h"
#include "extsort/record.h"
#include "extsort/run_formation.h"
#include "workload/record_generator.h"

using namespace emsim;

int main(int argc, char** argv) {
  workload::RecordGeneratorOptions gen_opt;
  gen_opt.seed = 7;
  std::string dist = argc > 1 ? argv[1] : "uniform";
  if (dist == "zipf") {
    gen_opt.distribution = workload::KeyDistribution::kZipf;
  } else if (dist == "sorted") {
    gen_opt.distribution = workload::KeyDistribution::kNearlySorted;
  } else if (dist == "reverse") {
    gen_opt.distribution = workload::KeyDistribution::kReverseSorted;
  } else if (dist != "uniform") {
    std::fprintf(stderr, "usage: external_sort_demo [zipf|uniform|sorted|reverse]\n");
    return 2;
  }

  // 1. Generate one million 16-byte records.
  const size_t kRecords = 1000000;
  workload::RecordGenerator gen(gen_opt);
  std::vector<extsort::Record> input;
  input.reserve(kRecords);
  for (size_t i = 0; i < kRecords; ++i) {
    input.push_back({gen.NextKey(), i});
  }
  std::printf("sorting %zu records with %s keys (%.1f MB)\n", kRecords, dist.c_str(),
              kRecords * sizeof(extsort::Record) / 1e6);

  // 2. Sort over block devices with simulated disk-time accounting.
  auto scratch = std::make_unique<extsort::TimedBlockDevice>(
      std::make_unique<extsort::MemoryBlockDevice>(1 << 16, 4096),
      disk::DiskParams::Paper(), /*seed=*/1);
  auto output = std::make_unique<extsort::TimedBlockDevice>(
      std::make_unique<extsort::MemoryBlockDevice>(1 << 13, 4096),
      disk::DiskParams::Paper(), /*seed=*/2);

  extsort::ExternalSortOptions options;
  options.run_formation.memory_records = 40000;  // ~640 KB sort workspace.
  options.run_formation.strategy = extsort::RunFormationStrategy::kReplacementSelection;
  options.merge.reader_buffer_blocks = 10;  // Intra-run prefetch depth.

  extsort::ExternalSorter sorter(options);
  auto result = sorter.Sort(input, scratch.get(), output.get());
  if (!result.ok()) {
    std::fprintf(stderr, "sort failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 3. Verify.
  auto sorted = extsort::ExternalSorter::ReadRun(output.get(), result->merge.output);
  if (!sorted.ok() || !extsort::IsSorted(*sorted) || sorted->size() != kRecords) {
    std::fprintf(stderr, "verification FAILED\n");
    return 1;
  }
  std::printf("verified: output of %zu records is sorted\n\n", sorted->size());

  std::printf("run formation (replacement selection): %zu initial runs\n",
              result->initial_runs.size());
  int64_t min_blocks = result->initial_runs.front().num_blocks;
  int64_t max_blocks = min_blocks;
  for (const auto& run : result->initial_runs) {
    min_blocks = std::min(min_blocks, run.num_blocks);
    max_blocks = std::max(max_blocks, run.num_blocks);
  }
  std::printf("run lengths: %lld..%lld blocks (unequal runs, as replacement "
              "selection produces)\n",
              static_cast<long long>(min_blocks), static_cast<long long>(max_blocks));
  std::printf("device I/O: %llu reads, %llu writes\n",
              static_cast<unsigned long long>(result->device_reads),
              static_cast<unsigned long long>(result->device_writes));
  std::printf("single-arm simulated disk time: scratch %.2f s, output %.2f s\n\n",
              scratch->elapsed_ms() / 1e3, output->elapsed_ms() / 1e3);

  // 4. The bridge to the paper: time the real merge's depletion trace on a
  //    5-disk array under both prefetching strategies.
  core::MergeConfig cfg;
  cfg.num_runs = static_cast<int>(result->merge.run_blocks.size());
  cfg.num_disks = 5;
  cfg.run_lengths = result->merge.run_blocks;
  cfg.prefetch_depth = 10;
  cfg.depletion = core::DepletionKind::kTrace;
  cfg.trace = result->merge.depletion_trace;
  cfg.sync = core::SyncMode::kUnsynchronized;

  cfg.strategy = core::Strategy::kDemandRunOnly;
  auto demand = core::SimulateMerge(cfg);
  cfg.strategy = core::Strategy::kAllDisksOneRun;
  auto ador = core::SimulateMerge(cfg);
  if (!demand.ok() || !ador.ok()) {
    std::fprintf(stderr, "trace simulation failed\n");
    return 1;
  }
  std::printf("merge phase on 5 disks (real depletion trace, N=10):\n");
  std::printf("  Demand Run Only:   %.2f s\n", demand->total_ms / 1e3);
  std::printf("  All Disks One Run: %.2f s (%.2f disks busy on average)\n",
              ador->total_ms / 1e3, ador->avg_concurrency);
  std::printf("  -> inter-run prefetching is %.2fx faster on this data\n",
              demand->total_ms / ador->total_ms);
  return 0;
}

#ifndef EMSIM_STATS_ASCII_CHART_H_
#define EMSIM_STATS_ASCII_CHART_H_

#include <string>

#include "stats/series.h"

namespace emsim::stats {

/// Options for the terminal line-chart renderer.
struct AsciiChartOptions {
  int width = 72;    ///< Plot-area columns (excluding the y-axis gutter).
  int height = 20;   ///< Plot-area rows.
  bool log_y = false;  ///< Logarithmic y axis (all y must be > 0).
};

/// Renders a Figure as a terminal scatter/line chart with axes, per-series
/// glyphs and a legend — so every bench binary's output is eyeballable
/// against the paper's plots without leaving the terminal.
///
///     == Figure 3.2(a) ==
///     292.7 |*
///           | *
///           |   *  o ...
///       ...
///      14.4 +------------------
///            1               30
///     legend: * Demand Run Only (1 disk) ...
std::string RenderAsciiChart(const Figure& figure, const AsciiChartOptions& options = {});

}  // namespace emsim::stats

#endif  // EMSIM_STATS_ASCII_CHART_H_

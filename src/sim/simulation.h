#ifndef EMSIM_SIM_SIMULATION_H_
#define EMSIM_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace emsim::sim {

/// Simulated time in milliseconds (the paper's disk parameters are natural in
/// ms; nothing in the kernel depends on the unit).
using SimTime = double;

class Process;

/// Process-oriented discrete-event simulation kernel — the library's
/// replacement for Rice CSIM, which the paper used. Model code is written as
/// C++20 coroutines (`Process` functions) that `co_await` delays and
/// synchronization primitives; the kernel owns the event calendar and resumes
/// coroutines in nondecreasing time order with FIFO tie-breaking, which makes
/// every simulation fully deterministic for a given RNG seed.
///
/// Single-threaded by design: determinism and reproducibility outrank
/// parallel speed for a simulation that completes in milliseconds.
class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Starts a process: the coroutine body begins executing at the current
  /// simulated time (processes start suspended). Ownership of the coroutine
  /// frame transfers to the kernel; the frame frees itself on completion.
  void Spawn(Process&& process);

  /// Schedules `handle` to be resumed at absolute time `at` (>= Now()).
  void ScheduleHandle(SimTime at, std::coroutine_handle<> handle);

  /// Schedules a plain callback at absolute time `at`.
  void ScheduleCallback(SimTime at, std::function<void()> callback);

  /// Executes the single next event. Returns false if the calendar is empty.
  bool Step();

  /// Runs until the calendar is empty. If live processes remain blocked on
  /// synchronization objects afterwards, the model deadlocked; callers can
  /// inspect live_processes().
  void Run();

  /// Runs until the calendar is empty or simulated time would exceed
  /// `deadline`; events after the deadline stay queued.
  void RunUntil(SimTime deadline);

  /// Number of calendar events executed so far.
  uint64_t events_processed() const { return events_processed_; }

  /// Events waiting in the calendar right now.
  size_t CalendarDepth() const { return calendar_.size(); }

  /// Wires kernel instrumentation into `metrics` ("sim.*" namespace):
  /// coroutine resumes vs plain callbacks dispatched, processes spawned,
  /// and the calendar-depth timeline. Pass nullptr to detach. When nothing
  /// is attached (the default) the kernel hot path pays one pointer test.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Number of spawned processes that have not finished.
  int live_processes() const { return live_processes_; }

  /// Internal: process lifetime accounting (called by Spawn / the Process
  /// promise). Live frames are tracked so that a Simulation destroyed while
  /// processes are still blocked (e.g. server loops) reclaims their frames.
  void OnProcessCreated(std::coroutine_handle<> handle) {
    ++live_processes_;
    live_handles_.push_back(handle);
    if (metric_spawns_ != nullptr) {
      metric_spawns_->Increment();
    }
  }
  void OnProcessFinished(std::coroutine_handle<> handle) {
    --live_processes_;
    for (auto& h : live_handles_) {
      if (h.address() == handle.address()) {
        h = live_handles_.back();
        live_handles_.pop_back();
        break;
      }
    }
  }

  ~Simulation();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for equal times.
    std::coroutine_handle<> handle;
    std::function<void()> callback;  // Used when handle is null.
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  int live_processes_ = 0;
  std::vector<std::coroutine_handle<>> live_handles_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> calendar_;

  // Instrumentation (all null unless AttachMetrics was called).
  obs::Counter* metric_resumes_ = nullptr;
  obs::Counter* metric_callbacks_ = nullptr;
  obs::Counter* metric_spawns_ = nullptr;
  obs::Timeline* metric_calendar_depth_ = nullptr;
};

}  // namespace emsim::sim

#endif  // EMSIM_SIM_SIMULATION_H_

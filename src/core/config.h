#ifndef EMSIM_CORE_CONFIG_H_
#define EMSIM_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "disk/disk_params.h"
#include "disk/layout.h"
#include "fault/fault_plan.h"
#include "sim/calendar.h"
#include "util/status.h"

namespace emsim::core {

/// The two prefetching strategies of the paper (its figure legends).
enum class Strategy {
  /// "Demand Run Only": intra-run prefetching — fetch N contiguous blocks of
  /// the demand run. N = 1 is the Kwan-Baer no-prefetching baseline.
  kDemandRunOnly,
  /// "All Disks One Run": inter-run prefetching combined with intra-run
  /// depth N — also fetch N blocks of one run on every other disk.
  kAllDisksOneRun,
};

/// Whether the CPU waits for the whole batch or only the demand block.
enum class SyncMode {
  kSynchronized,
  kUnsynchronized,
};

/// What to do when the cache cannot hold the full prefetch wish list.
enum class AdmissionPolicy {
  /// Fetch only the demand block (the paper's choice, backed by its Markov
  /// analysis: sacrificing partial concurrency frees cache space sooner).
  kConservative,
  /// Fetch as many of the wished blocks as fit, chosen randomly (the
  /// paper's rejected "greedy" alternative, kept for the ablation).
  kGreedy,
};

/// Which run to prefetch from on each non-demand disk.
enum class VictimPolicy {
  kRandom,          ///< The paper's policy.
  kRoundRobin,
  kFewestBuffered,
  kNearestHead,
  /// Optimal prediction from the full depletion trace (Aggarwal & Vitter);
  /// only valid with DepletionKind::kTrace.
  kClairvoyant,
};

/// Whether and where the merged output is written (extension; the paper
/// assumes separate write disks and excludes the traffic from its study).
enum class WriteTraffic {
  /// Ignore writes entirely (the paper's model).
  kNone,
  /// Write-behind to a separate disk set, as the paper assumes exists;
  /// quantifies how much bandwidth that assumption consumes.
  kSeparateDisks,
  /// Write-behind to the SAME disks as the input runs — the contention the
  /// paper's assumption avoids.
  kSharedDisks,
};

/// How the merge consumes blocks.
enum class DepletionKind {
  /// Uniform random run choice (Kwan & Baer's model; the paper's).
  kUniform,
  /// Zipf-skewed run choice (extension: non-uniform key distributions).
  kZipf,
  /// Replay of an explicit run-id sequence (e.g. from a real merge).
  kTrace,
};

/// Full configuration of one merge-phase simulation.
struct MergeConfig {
  int num_runs = 25;                        ///< k
  int num_disks = 5;                        ///< D
  int64_t blocks_per_run = 1000;
  /// Optional per-run lengths (size k) overriding blocks_per_run — used
  /// when simulating real run formation (replacement selection produces
  /// unequal runs). Empty means uniform.
  std::vector<int64_t> run_lengths;
  int prefetch_depth = 1;                   ///< N
  /// Cache capacity in blocks; kAutoCache sizes it to k*N (the intra-run
  /// requirement) for kDemandRunOnly and to k*N + D*N for kAllDisksOneRun
  /// (ample enough for a success ratio near 1).
  int64_t cache_blocks = kAutoCache;

  Strategy strategy = Strategy::kDemandRunOnly;
  SyncMode sync = SyncMode::kUnsynchronized;
  AdmissionPolicy admission = AdmissionPolicy::kConservative;
  VictimPolicy victim = VictimPolicy::kRandom;

  /// CPU time to merge one block; 0 models the paper's infinitely fast CPU.
  double cpu_ms_per_block = 0.0;

  /// Output write modeling (extension; kNone is the paper's model).
  WriteTraffic write_traffic = WriteTraffic::kNone;
  /// Disks in the separate write set (kSeparateDisks only).
  int num_write_disks = 1;
  /// Merged blocks buffered before one write request is issued (seek and
  /// latency amortization on the write side).
  int write_batch_blocks = 10;
  /// Maximum merged-but-unwritten blocks (buffered + in flight) before the
  /// CPU stalls — the write-behind backpressure limit.
  int64_t write_buffer_blocks = 200;

  disk::DiskParams disk_params;
  disk::RunPlacement placement = disk::RunPlacement::kRoundRobin;

  DepletionKind depletion = DepletionKind::kUniform;
  double zipf_theta = 0.0;                  ///< For kZipf.
  std::vector<int> trace;                   ///< For kTrace: run ids in depletion order.

  uint64_t seed = 1;

  /// Event-calendar backend for the kernel (runtime A/B knob; kDefault
  /// resolves EMSIM_CALENDAR, unset meaning heap). Deliberately excluded
  /// from ToString(), specs and every exported artifact: backends are
  /// result-equivalent by contract, so nothing downstream may depend on the
  /// choice — byte-identical sweep artifacts under either backend are pinned
  /// by test.
  sim::CalendarBackend calendar = sim::CalendarBackend::kDefault;

  /// Fault injection and recovery policy (robustness extension). The
  /// all-defaults config disables injection entirely: the merge takes the
  /// exact fault-free code paths and its output stays byte-identical.
  fault::FaultConfig fault;

  /// Trial deadline: abort with Status kDeadlineExceeded after this many
  /// simulated events (0 = unlimited). Guards the trial harness against a
  /// model change that livelocks the calendar.
  uint64_t max_sim_events = 0;

  /// Trial deadline: abort with kDeadlineExceeded once the trial has
  /// consumed this much wall-clock time (0 = unlimited). Checked between
  /// bounded calendar chunks, so a stuck trial is caught within one chunk.
  double max_wall_ms = 0.0;

  /// Run full cache-invariant checks on every step (tests; slow).
  bool check_invariants = false;

  /// Collect the named metrics registry (sim kernel, per-disk and cache
  /// timelines) into MergeResult::metrics. Off by default: the merge's
  /// headline statistics are always collected and the hooks then cost one
  /// pointer test each.
  bool collect_metrics = false;

  static constexpr int64_t kAutoCache = -1;

  /// Resolved cache size.
  int64_t EffectiveCacheBlocks() const;

  /// Total blocks across all runs.
  int64_t TotalBlocks() const;

  /// Validates ranges and cross-field consistency (e.g. the cache must hold
  /// at least one block per run for the merge to make progress).
  Status Validate() const;

  std::string ToString() const;

  /// Shorthand used throughout benches: the paper's disk with k runs over D
  /// disks at depth N.
  static MergeConfig Paper(int num_runs, int num_disks, int n, Strategy strategy,
                           SyncMode sync);
};

/// Stable string names for the configuration enums (used by the CLI tool,
/// experiment specs and logs) and their parsers.
const char* StrategyName(Strategy strategy);
const char* SyncModeName(SyncMode sync);
const char* AdmissionPolicyName(AdmissionPolicy policy);
const char* VictimPolicyName(VictimPolicy policy);
const char* DepletionKindName(DepletionKind kind);
const char* WriteTrafficName(WriteTraffic traffic);

Result<Strategy> ParseStrategy(const std::string& name);
Result<SyncMode> ParseSyncMode(const std::string& name);
Result<AdmissionPolicy> ParseAdmissionPolicy(const std::string& name);
Result<VictimPolicy> ParseVictimPolicy(const std::string& name);
Result<DepletionKind> ParseDepletionKind(const std::string& name);
Result<WriteTraffic> ParseWriteTraffic(const std::string& name);

}  // namespace emsim::core

#endif  // EMSIM_CORE_CONFIG_H_

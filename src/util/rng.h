#ifndef EMSIM_UTIL_RNG_H_
#define EMSIM_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace emsim {

/// SplitMix64: used to expand a single 64-bit seed into the state of larger
/// generators. Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom
/// Number Generators".
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic pseudo-random generator (xoshiro256++). Every stochastic
/// component of the simulator draws from an explicitly seeded Rng so that
/// experiments are exactly reproducible; there is no global RNG state.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce identical streams on every
  /// platform.
  explicit Rng(uint64_t seed = 0x243F6A8885A308D3ULL);

  /// Raw 64 uniform bits. Inline (with the bounded draws below): every
  /// priced disk access draws rotational latency, so these sit on the
  /// simulator's per-request hot path.
  uint64_t Next64() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless unbiased bounded generation.
  uint64_t UniformInt(uint64_t bound) {
    EMSIM_CHECK(bound > 0);
    // Lemire's method: multiply-shift with rejection to remove modulo bias.
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble() {
    // 53 uniform mantissa bits.
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

  /// Exponentially distributed double with the given mean (> 0).
  double Exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Picks an index in [0, weights.size()) proportionally to weights; the
  /// weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<uint32_t> Permutation(uint32_t n);

  /// Creates an independent generator derived from this one (stream split).
  Rng Split();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

/// Zipf(θ) sampler over {0, ..., n-1} using the rejection-inversion method of
/// Hörmann & Derflinger, O(1) per sample after O(1) setup. θ = 0 degenerates
/// to uniform; larger θ skews mass toward low indices.
class ZipfGenerator {
 public:
  /// `n` must be >= 1 and `theta` >= 0.
  ZipfGenerator(uint64_t n, double theta);

  /// Draws one sample in [0, n).
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double s_;
};

}  // namespace emsim

#endif  // EMSIM_UTIL_RNG_H_

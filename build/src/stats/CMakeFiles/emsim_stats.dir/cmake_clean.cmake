file(REMOVE_RECURSE
  "CMakeFiles/emsim_stats.dir/accumulator.cc.o"
  "CMakeFiles/emsim_stats.dir/accumulator.cc.o.d"
  "CMakeFiles/emsim_stats.dir/ascii_chart.cc.o"
  "CMakeFiles/emsim_stats.dir/ascii_chart.cc.o.d"
  "CMakeFiles/emsim_stats.dir/confidence.cc.o"
  "CMakeFiles/emsim_stats.dir/confidence.cc.o.d"
  "CMakeFiles/emsim_stats.dir/histogram.cc.o"
  "CMakeFiles/emsim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/emsim_stats.dir/series.cc.o"
  "CMakeFiles/emsim_stats.dir/series.cc.o.d"
  "CMakeFiles/emsim_stats.dir/table.cc.o"
  "CMakeFiles/emsim_stats.dir/table.cc.o.d"
  "CMakeFiles/emsim_stats.dir/time_weighted.cc.o"
  "CMakeFiles/emsim_stats.dir/time_weighted.cc.o.d"
  "libemsim_stats.a"
  "libemsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

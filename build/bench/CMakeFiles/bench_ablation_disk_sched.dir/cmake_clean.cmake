file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_disk_sched.dir/bench_ablation_disk_sched.cc.o"
  "CMakeFiles/bench_ablation_disk_sched.dir/bench_ablation_disk_sched.cc.o.d"
  "bench_ablation_disk_sched"
  "bench_ablation_disk_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_disk_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef EMSIM_STATS_TIME_WEIGHTED_H_
#define EMSIM_STATS_TIME_WEIGHTED_H_

#include "util/check.h"

namespace emsim::stats {

/// Time-weighted average of a piecewise-constant signal, e.g. queue length or
/// the number of busy disks. Call `Update(t, v)` whenever the signal changes
/// to value `v` at time `t`; queries integrate up to the last update.
class TimeWeighted {
 public:
  /// Records that the signal takes value `value` starting at time `now`.
  /// Times must be non-decreasing. Inline: simulations call this on every
  /// queue/occupancy transition (tens of millions of times per sweep), so
  /// the call must melt into the caller.
  void Update(double now, double value) {
    if (!started_) {
      started_ = true;
      last_time_ = now;
    } else {
      Accumulate(now);
    }
    value_ = value;
  }

  /// Closes the window at time `now` without changing the value.
  void Flush(double now) {
    if (!started_) {
      started_ = true;
      last_time_ = now;
      return;
    }
    Accumulate(now);
  }

  /// Average over all elapsed time since the first update.
  double Average() const;

  /// Average restricted to intervals where the signal was > 0 (e.g. mean
  /// concurrency while at least one disk is busy). 0 if never positive.
  double AverageWhilePositive() const;

  /// Total time with signal > 0.
  double PositiveTime() const { return positive_time_; }

  /// Total observed time span.
  double TotalTime() const { return total_time_; }

  double Current() const { return value_; }

 private:
  void Accumulate(double now) {
    EMSIM_CHECK(now >= last_time_);
    double dt = now - last_time_;
    weighted_sum_ += value_ * dt;
    total_time_ += dt;
    if (value_ > 0) {
      positive_weighted_sum_ += value_ * dt;
      positive_time_ += dt;
    }
    last_time_ = now;
  }

  bool started_ = false;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  double positive_weighted_sum_ = 0.0;
  double positive_time_ = 0.0;
  double total_time_ = 0.0;
};

}  // namespace emsim::stats

#endif  // EMSIM_STATS_TIME_WEIGHTED_H_

#ifndef EMSIM_SIM_PROCESS_H_
#define EMSIM_SIM_PROCESS_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "sim/calendar.h"
#include "sim/frame_pool.h"
#include "sim/simulation.h"
#include "util/check.h"

namespace emsim::sim {

/// A detached simulation process — the coroutine analogue of a CSIM process.
///
/// Usage:
///
///     Process Worker(Simulation& sim, Disk& disk) {
///       co_await Delay(5.0);           // hold for 5 ms of simulated time
///       co_await disk.idle().Wait();   // block on a synchronization object
///     }
///     sim.Spawn(Worker(sim, disk));
///
/// Processes are fire-and-forget: completion is communicated through Events,
/// Semaphores or Mailboxes, exactly as in CSIM models. The coroutine frame is
/// owned by the kernel once spawned and frees itself at completion.
class Process {
 public:
  struct promise_type {
    Simulation* sim = nullptr;
    /// Index into the owning Simulation's live-process table; kept current
    /// by the kernel so finishing is O(1) instead of a linear scan.
    uint32_t live_slot = 0;

    /// Coroutine frames come from the thread-local FramePool slab allocator:
    /// steady-state spawn/finish cycles never touch the heap.
    static void* operator new(std::size_t bytes) { return FramePool::Allocate(bytes); }
    static void operator delete(void* ptr, std::size_t bytes) noexcept {
      FramePool::Deallocate(ptr, bytes);
    }

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        promise_type& p = h.promise();
        if (p.sim != nullptr) {
          p.sim->OnProcessFinished(p.live_slot);
        }
        h.destroy();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      // Simulation models are exception-free; escaping exceptions are bugs.
      EMSIM_CHECK(false && "exception escaped a sim::Process");
    }
  };

  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      DestroyIfOwned();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ~Process() { DestroyIfOwned(); }

  /// Internal: used by Simulation::Spawn to take ownership.
  std::coroutine_handle<promise_type> Release() { return std::exchange(handle_, nullptr); }

 private:
  explicit Process(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  void DestroyIfOwned() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable that suspends the current process for `dt` milliseconds of
/// simulated time (CSIM's `hold`). `dt` must be >= 0; a zero delay yields to
/// other events already scheduled at the current time.
class Delay {
 public:
  explicit Delay(SimTime dt) : dt_(dt) { EMSIM_CHECK(dt >= 0); }

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<Process::promise_type> h) {
    Simulation* sim = h.promise().sim;
    EMSIM_CHECK(sim != nullptr);
    SimTime at = sim->Now() + dt_;
    // Lone-runner fast path: if the calendar is empty inside Run/RunUntil,
    // this process is the only runnable entity, so the event the slow path
    // would push is by construction the very next one popped. AdvanceInline
    // performs exactly the pop's observable effects (time, seq, event count)
    // and we keep running without a suspend/resume round trip.
    if (sim->AdvanceInline(at)) {
      return false;
    }
    sim->ScheduleHandle(at, h);
    return true;
  }
  void await_resume() const noexcept {}

 private:
  SimTime dt_;
};

}  // namespace emsim::sim

#endif  // EMSIM_SIM_PROCESS_H_

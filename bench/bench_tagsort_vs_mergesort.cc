// Baseline comparison from the paper's foundation: Kwan & Baer studied the
// I/O performance of multiway mergesort AND tag sort. This bench reruns
// that comparison on this repository's substrate: both sorters run on
// timed block devices (the paper's disk), and the simulated I/O time is
// reported across record sizes. Expected shape (Kwan & Baer's result):
// tag sort's smaller sorted volume cannot compensate for its random-read
// permutation pass, and mergesort wins except at very large records with a
// generous permute cache.

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "disk/disk_params.h"
#include "extsort/block_device.h"
#include "extsort/packed_sort.h"
#include "extsort/tag_sort.h"
#include "stats/table.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/str.h"

namespace emsim {
namespace {

using extsort::MemoryBlockDevice;
using extsort::PackedRecordFile;
using extsort::TimedBlockDevice;
using stats::Table;

std::unique_ptr<TimedBlockDevice> TimedDevice(int64_t blocks, uint64_t seed) {
  return std::make_unique<TimedBlockDevice>(
      std::make_unique<MemoryBlockDevice>(blocks, 4096), disk::DiskParams::Paper(), seed);
}

}  // namespace
}  // namespace emsim

int main() {
  using namespace emsim;
  bench::Banner(
      "Baseline B-TAG: mergesort vs tag sort (Kwan & Baer's comparison)",
      "2 MB of packed records on the paper's disk (one arm per device);\n"
      "mergesort: load-sort runs + one merge pass; tag sort: sort 16-byte\n"
      "tags + random-read permutation (with/without a 64-block LRU).\n"
      "Expected shape: mergesort wins at small records; tag sort's gap\n"
      "narrows as records grow (tag volume shrinks relative to data).");

  Table table({"record bytes", "records", "mergesort (s)", "tag sort (s)",
               "tag sort +LRU64 (s)", "merge/tag"});
  const size_t kTotalBytes = 2 << 20;
  for (size_t record_bytes : {size_t{16}, size_t{64}, size_t{256}, size_t{1024}}) {
    size_t count = kTotalBytes / record_bytes;
    // Build identical inputs on three timed devices.
    Rng rng(record_bytes);
    std::vector<uint8_t> bytes(count * record_bytes, 0);
    for (size_t i = 0; i < count; ++i) {
      uint64_t key = rng.Next64();
      std::memcpy(bytes.data() + i * record_bytes, &key, 8);
    }

    auto run_merge = [&]() {
      auto input = TimedDevice(4096, 1);
      auto scratch = TimedDevice(4096, 2);
      auto output = TimedDevice(4096, 3);
      PackedRecordFile file(input.get(), record_bytes);
      EMSIM_CHECK(file.WriteAll(bytes, count).ok());
      input->ResetClock();
      extsort::PackedSortOptions options;
      options.record_bytes = record_bytes;
      options.memory_records = 64 * (4096 / record_bytes);  // 64-block workspace.
      options.reader_buffer_blocks = 4;
      auto stats = extsort::PackedExternalSorter(options).Sort(input.get(), count,
                                                               scratch.get(), output.get());
      EMSIM_CHECK_MSG(stats.ok(), stats.status().ToString().c_str());
      return (input->elapsed_ms() + scratch->elapsed_ms() + output->elapsed_ms()) / 1e3;
    };

    auto run_tag = [&](size_t lru_blocks) {
      auto input = TimedDevice(4096, 1);
      auto scratch = TimedDevice(4096, 2);
      auto output = TimedDevice(4096, 3);
      PackedRecordFile file(input.get(), record_bytes);
      EMSIM_CHECK(file.WriteAll(bytes, count).ok());
      input->ResetClock();
      extsort::TagSortOptions options;
      options.record_bytes = record_bytes;
      options.tag_memory_records = 64 * 255;  // Same 64-block workspace.
      options.permute_cache_blocks = lru_blocks;
      auto stats = extsort::TagSorter(options).Sort(input.get(), count, scratch.get(),
                                                    output.get());
      EMSIM_CHECK_MSG(stats.ok(), stats.status().ToString().c_str());
      return (input->elapsed_ms() + scratch->elapsed_ms() + output->elapsed_ms()) / 1e3;
    };

    double merge_s = run_merge();
    double tag_s = run_tag(0);
    double tag_lru_s = run_tag(64);
    table.AddRow({Table::Cell(static_cast<double>(record_bytes), 0),
                  Table::Cell(static_cast<double>(count), 0), Table::Cell(merge_s),
                  Table::Cell(tag_s), Table::Cell(tag_lru_s),
                  StrFormat("%.2fx", merge_s / tag_s)});
  }
  bench::EmitTable("Simulated single-arm I/O time, 2 MB of data", table);
  return 0;
}

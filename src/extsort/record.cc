#include "extsort/record.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "util/check.h"
#include "util/str.h"

namespace emsim::extsort {

void RecordBlock::Encode(std::span<const Record> records, std::span<uint8_t> block) {
  EMSIM_CHECK(records.size() <= Capacity(block.size()));
  uint32_t count = static_cast<uint32_t>(records.size());
  std::memcpy(block.data(), &count, sizeof(count));
  if (!records.empty()) {  // memcpy from a null data() is UB even for n=0.
    std::memcpy(block.data() + sizeof(count), records.data(),
                records.size() * sizeof(Record));
  }
  size_t used = sizeof(count) + records.size() * sizeof(Record);
  std::fill(block.begin() + static_cast<std::ptrdiff_t>(used), block.end(), uint8_t{0});
}

Status RecordBlock::Decode(std::span<const uint8_t> block, std::vector<Record>* records) {
  if (block.size() < sizeof(uint32_t)) {
    return Status::Corruption("block smaller than header");
  }
  uint32_t count = 0;
  std::memcpy(&count, block.data(), sizeof(count));
  if (count > Capacity(block.size())) {
    return Status::Corruption(StrFormat("record count %u exceeds block capacity %zu", count,
                                        Capacity(block.size())));
  }
  records->resize(count);
  std::memcpy(records->data(), block.data() + sizeof(count), count * sizeof(Record));
  return Status::OK();
}

bool IsSorted(std::span<const Record> records) {
  return std::is_sorted(records.begin(), records.end());
}

}  // namespace emsim::extsort

#ifndef EMSIM_CORE_RESULT_JSON_H_
#define EMSIM_CORE_RESULT_JSON_H_

#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/experiment.h"
#include "core/result.h"
#include "stats/json_writer.h"

namespace emsim::core {

/// Version of the JSON export schema below. Bump on any breaking change to
/// key names or structure; additive changes keep the version.
inline constexpr int kJsonSchemaVersion = 1;

/// One named experiment for export: the configuration it ran and its
/// aggregated trials.
struct NamedExperiment {
  std::string name;
  MergeConfig config;
  const ExperimentResult* result = nullptr;
};

/// Appends the configuration / result as a JSON object to `w` (the caller
/// owns surrounding structure). Deterministic: identical inputs produce
/// identical bytes.
void WriteJson(stats::JsonWriter& w, const MergeConfig& config);
void WriteJson(stats::JsonWriter& w, const MergeResult& result);
void WriteJson(stats::JsonWriter& w, const ExperimentResult& result);

/// Full export document: {"schema_version", "generator", "experiments":[...]}.
/// This is the format `emsim_cli --json` and the bench JSON artifacts emit
/// and CI diffs across commits.
///
/// `extra_fields`, when non-null, writes additional top-level key/value
/// pairs after "experiments" (the caller supplies Key()+value calls). The
/// export is byte-identical to the plain form when null — opt-in blocks
/// like the sweep dispatch counters must not perturb default artifacts.
std::string ExperimentSetToJson(
    const std::vector<NamedExperiment>& experiments,
    const std::function<void(stats::JsonWriter&)>& extra_fields = nullptr);

}  // namespace emsim::core

#endif  // EMSIM_CORE_RESULT_JSON_H_

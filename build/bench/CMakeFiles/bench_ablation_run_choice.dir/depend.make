# Empty dependencies file for bench_ablation_run_choice.
# This may be replaced when dependencies are built.

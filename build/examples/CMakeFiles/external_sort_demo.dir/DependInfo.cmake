
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/external_sort_demo.cpp" "examples/CMakeFiles/external_sort_demo.dir/external_sort_demo.cpp.o" "gcc" "examples/CMakeFiles/external_sort_demo.dir/external_sort_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extsort/CMakeFiles/emsim_extsort.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/emsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/emsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/emsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/emsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/emsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/emsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for extsort_plan_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for emsim_sim.
# This may be replaced when dependencies are built.

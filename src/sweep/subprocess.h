#ifndef EMSIM_SWEEP_SUBPROCESS_H_
#define EMSIM_SWEEP_SUBPROCESS_H_

#include <string>
#include <sys/types.h>
#include <vector>

#include "util/status.h"

namespace emsim::sweep {

/// A spawned worker process (POSIX fork/exec). Non-blocking by design: the
/// dispatcher polls many workers from one thread. The destructor kills and
/// reaps a still-running child so a dispatcher unwind cannot leak zombies.
class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess();

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Spawns `argv` (argv[0] is the executable, resolved via PATH). The
  /// child inherits the parent's environment and stdio.
  static Result<Subprocess> Start(const std::vector<std::string>& argv);

  /// Reaps the child if it has exited; returns true once it is done
  /// (thereafter exit state is readable). Never blocks.
  bool Poll();

  /// SIGKILLs a running child (the exit is still collected via Poll).
  void Kill();

  bool running() const { return pid_ > 0 && !done_; }
  pid_t pid() const { return pid_; }

  /// Valid after Poll() returned true.
  bool exited_cleanly() const { return done_ && !signaled_ && exit_code_ == 0; }
  bool was_signaled() const { return signaled_; }
  int exit_code() const { return exit_code_; }

  /// "exit 3" / "signal 9" — for dispatcher diagnostics.
  std::string DescribeExit() const;

 private:
  pid_t pid_ = -1;
  bool done_ = false;
  bool signaled_ = false;
  int exit_code_ = 0;  ///< Exit status, or the terminating signal number.
};

}  // namespace emsim::sweep

#endif  // EMSIM_SWEEP_SUBPROCESS_H_

file(REMOVE_RECURSE
  "libemsim_core.a"
)

file(REMOVE_RECURSE
  "libemsim_io.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/extensions_properties_test.dir/extensions_properties_test.cc.o"
  "CMakeFiles/extensions_properties_test.dir/extensions_properties_test.cc.o.d"
  "extensions_properties_test"
  "extensions_properties_test.pdb"
  "extensions_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

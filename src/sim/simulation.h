#ifndef EMSIM_SIM_SIMULATION_H_
#define EMSIM_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace emsim::sim {

/// Simulated time in milliseconds (the paper's disk parameters are natural in
/// ms; nothing in the kernel depends on the unit).
using SimTime = double;

class Process;

/// Process-oriented discrete-event simulation kernel — the library's
/// replacement for Rice CSIM, which the paper used. Model code is written as
/// C++20 coroutines (`Process` functions) that `co_await` delays and
/// synchronization primitives; the kernel owns the event calendar and resumes
/// coroutines in nondecreasing time order with FIFO tie-breaking, which makes
/// every simulation fully deterministic for a given RNG seed.
///
/// Single-threaded by design: determinism and reproducibility outrank
/// parallel speed for a simulation that completes in milliseconds. (Whole
/// trials parallelize across Simulations; see core::RunTrialsParallel.)
///
/// Hot-path layout: the calendar is an indexed 4-ary min-heap over 24-byte
/// trivially copyable entries. Each entry carries a tagged payload — either a
/// coroutine handle (the dominant case) or the id of a pooled callback slot —
/// so sift operations move three words instead of a std::function. The 4-ary
/// shape halves the sift depth of a binary heap and keeps the children of a
/// node on one cache line.
class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Starts a process: the coroutine body begins executing at the current
  /// simulated time (processes start suspended). Ownership of the coroutine
  /// frame transfers to the kernel; the frame frees itself on completion.
  void Spawn(Process&& process);

  /// Schedules `handle` to be resumed at absolute time `at` (>= Now()).
  void ScheduleHandle(SimTime at, std::coroutine_handle<> handle) {
    EMSIM_CHECK(at >= now_);
    // The pointer bits are an opaque resume token: the calendar heap orders
    // strictly by (time, seq), and the payload is never compared or exported.
    // emsim-analyze: allow(determinism-taint)
    HeapPush(CalEntry{at, next_seq_++, reinterpret_cast<uintptr_t>(handle.address())});
  }

  /// Schedules a plain callback at absolute time `at`. The callable is
  /// constructed directly into a recycled pool cell (no std::function, no
  /// per-call allocation for small trivially copyable callables); the
  /// calendar entry itself stays slim and carries only the cell's slot id.
  template <typename F>
  void ScheduleCallback(SimTime at, F&& callback) {
    EMSIM_CHECK(at >= now_);
    uint32_t slot = AcquireCallbackSlot();
    callback_pool_[slot].Emplace(std::forward<F>(callback));
    HeapPush(CalEntry{at, next_seq_++,
                      (static_cast<uintptr_t>(slot) << 1) | kCallbackTag});
  }

  /// Lone-runner fast path used by awaiters (see Delay::await_suspend): when
  /// the calendar is empty inside Run/RunUntil, an event scheduled now would
  /// be the next one dispatched, so the kernel can advance time in place and
  /// let the caller keep running. Replays the pop's exact observable effects
  /// (now_, one seq number, events_processed_) so results stay byte-identical
  /// with the scheduled path. Declined outside the run loop (direct Step()
  /// callers see one event per call), past a RunUntil deadline, or while
  /// metrics are attached (the calendar-depth timeline must record the
  /// push/pop it would otherwise miss).
  bool AdvanceInline(SimTime at) {
    if (!in_run_loop_ || !calendar_.empty() || at > run_deadline_ ||
        metric_calendar_depth_ != nullptr || events_processed_ >= event_cap_) {
      return false;
    }
    EMSIM_CHECK(at >= now_);
    now_ = at;
    ++next_seq_;
    ++events_processed_;
    return true;
  }

  /// Executes the single next event. Returns false if the calendar is empty.
  bool Step();

  /// Runs until the calendar is empty. If live processes remain blocked on
  /// synchronization objects afterwards, the model deadlocked; callers can
  /// inspect live_processes().
  void Run();

  /// Runs until the calendar is empty or simulated time would exceed
  /// `deadline`; events after the deadline stay queued.
  void RunUntil(SimTime deadline);

  /// Runs until the calendar is empty or `max_events` further events have
  /// executed, whichever comes first. Returns true when the calendar drained.
  /// Chunked callers (trial deadlines, wall-clock watchdogs) interleave
  /// bounded runs with their own checks; the pop sequence is byte-identical
  /// to one uninterrupted Run() because the cap also disables the
  /// AdvanceInline fast path once reached (a lone runner could otherwise
  /// spin past any bound inside a single Step()).
  bool RunBounded(uint64_t max_events);

  /// Number of calendar events executed so far.
  uint64_t events_processed() const { return events_processed_; }

  /// Events waiting in the calendar right now.
  size_t CalendarDepth() const { return calendar_.size(); }

  /// Callback slots currently owned by the pool (allocated high-water mark;
  /// introspection for tests and benches — slots are recycled, so this stays
  /// at the peak number of simultaneously scheduled callbacks).
  size_t CallbackPoolSize() const { return callback_pool_.size(); }

  /// Wires kernel instrumentation into `metrics` ("sim.*" namespace):
  /// coroutine resumes vs plain callbacks dispatched, processes spawned,
  /// and the calendar-depth timeline. Pass nullptr to detach. When nothing
  /// is attached (the default) the kernel hot path pays one pointer test.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Number of spawned processes that have not finished.
  int live_processes() const { return static_cast<int>(live_.size()); }

  /// Internal: process lifetime accounting (called by Spawn / the Process
  /// promise). Live frames are tracked so that a Simulation destroyed while
  /// processes are still blocked (e.g. server loops) reclaims their frames.
  /// The promise's `live_slot` field stores the frame's index in the live
  /// table; swap-with-back removal keeps both directions O(1).
  void OnProcessCreated(std::coroutine_handle<> handle, uint32_t* slot) {
    *slot = static_cast<uint32_t>(live_.size());
    live_.push_back(LiveProcess{handle, slot});
    if (metric_spawns_ != nullptr) {
      metric_spawns_->Increment();
    }
  }
  void OnProcessFinished(uint32_t slot) {
    EMSIM_DCHECK(slot < live_.size());
    live_[slot] = live_.back();
    *live_[slot].slot = slot;
    live_.pop_back();
  }

  ~Simulation();

 private:
  /// One calendar entry. `payload` is a tagged word: an aligned coroutine
  /// frame address (low bit clear), or a callback slot id shifted left with
  /// the low bit set. Trivially copyable so heap sifts are plain word moves.
  struct CalEntry {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for equal times.
    uintptr_t payload;
  };
  static constexpr uintptr_t kCallbackTag = 1;

  struct LiveProcess {
    std::coroutine_handle<> handle;
    uint32_t* slot;  // Points at the owning promise's live_slot field.
  };

  /// A pooled one-shot callable. Small trivially copyable callables (every
  /// lambda capturing references, pointers or scalars) live inline in
  /// `storage`; anything else is boxed on the heap with the box pointer in
  /// `storage`. Inline callables are relocated by byte copy — legal exactly
  /// because they are trivially copyable — which lets Step() move the cell
  /// to a local before invoking, so a callback that schedules callbacks
  /// (growing/reusing the pool) can never invalidate the one running.
  struct CallbackCell {
    using TrampolineFn = void (*)(unsigned char* storage);
    TrampolineFn invoke_and_destroy = nullptr;  // Null when the cell is free.
    TrampolineFn destroy_only = nullptr;        // Null when destruction is a no-op.
    alignas(16) unsigned char storage[48];

    template <typename F>
    void Emplace(F&& callable) {
      using D = std::decay_t<F>;
      if constexpr (sizeof(D) <= sizeof(storage) && alignof(D) <= 16 &&
                    std::is_trivially_copyable_v<D>) {
        ::new (static_cast<void*>(storage)) D(std::forward<F>(callable));
        invoke_and_destroy = [](unsigned char* s) {
          D* fn = std::launder(reinterpret_cast<D*>(s));
          (*fn)();
          fn->~D();
        };
        if constexpr (!std::is_trivially_destructible_v<D>) {
          destroy_only = [](unsigned char* s) {
            std::launder(reinterpret_cast<D*>(s))->~D();
          };
        }
      } else {
        D* boxed = new D(std::forward<F>(callable));
        std::memcpy(storage, &boxed, sizeof(boxed));
        invoke_and_destroy = [](unsigned char* s) {
          D* fn;
          std::memcpy(&fn, s, sizeof(fn));
          (*fn)();
          delete fn;
        };
        destroy_only = [](unsigned char* s) {
          D* fn;
          std::memcpy(&fn, s, sizeof(fn));
          delete fn;
        };
      }
    }
  };

  /// Strict total order (seq is unique), so the pop sequence is identical to
  /// the old std::priority_queue calendar: time-ordered, FIFO within a tick.
  /// Written with forced evaluation (`|`/`&`, not `||`/`&&`) so compilers
  /// emit setcc/cmov instead of branches: inside heap sifts the outcome is
  /// data-dependent and unpredictable, and mispredictions were the dominant
  /// cost of the sift loops when this was measured.
  static bool EarlierThan(const CalEntry& a, const CalEntry& b) {
    return (a.time < b.time) | ((a.time == b.time) & (a.seq < b.seq));
  }

  void HeapPush(CalEntry entry);
  void HeapPopRoot();
  uint32_t AcquireCallbackSlot();

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t event_cap_ = UINT64_MAX;  // Valid only while in_run_loop_ is true.
  bool in_run_loop_ = false;
  SimTime run_deadline_ = 0.0;  // Valid only while in_run_loop_ is true.
  std::vector<LiveProcess> live_;
  std::vector<CalEntry> calendar_;  // 4-ary min-heap ordered by EarlierThan.

  // Scheduled-callback storage: slot ids are recycled through a free list so
  // steady-state callback traffic reuses the same cells.
  std::vector<CallbackCell> callback_pool_;
  std::vector<uint32_t> free_callback_slots_;

  // Instrumentation (all null unless AttachMetrics was called).
  obs::Counter* metric_resumes_ = nullptr;
  obs::Counter* metric_callbacks_ = nullptr;
  obs::Counter* metric_spawns_ = nullptr;
  obs::Timeline* metric_calendar_depth_ = nullptr;
};

}  // namespace emsim::sim

#endif  // EMSIM_SIM_SIMULATION_H_

#include "analysis/seek_distribution.h"

#include <cstddef>

#include "util/check.h"

namespace emsim::analysis {

SeekDistribution::SeekDistribution(int num_runs) : k_(num_runs) { EMSIM_CHECK(num_runs >= 1); }

double SeekDistribution::Pmf(int moves) const {
  if (moves < 0 || moves >= k_) {
    return 0.0;
  }
  double k = k_;
  if (moves == 0) {
    return 1.0 / k;
  }
  return 2.0 * (k - moves) / (k * k);
}

double SeekDistribution::Cdf(int moves) const {
  double acc = 0;
  for (int i = 0; i <= moves && i < k_; ++i) {
    acc += Pmf(i);
  }
  return acc;
}

double SeekDistribution::ExpectedMovesExact() const {
  double k = k_;
  return (k * k - 1.0) / (3.0 * k);
}

double SeekDistribution::ExpectedMovesApprox() const { return static_cast<double>(k_) / 3.0; }

std::vector<double> SeekDistribution::PmfVector() const {
  std::vector<double> pmf(static_cast<size_t>(k_));
  for (int i = 0; i < k_; ++i) {
    pmf[static_cast<size_t>(i)] = Pmf(i);
  }
  return pmf;
}

}  // namespace emsim::analysis

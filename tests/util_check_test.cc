#include "util/check.h"

#include <string>

#include <gtest/gtest.h>

namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  EMSIM_CHECK(1 + 1 == 2);
  EMSIM_CHECK_MSG(true, "never printed");
  EMSIM_CHECK_EQ(4, 2 + 2);
  EMSIM_CHECK_NE(std::string("a"), std::string("b"));
  EMSIM_DCHECK(true);
}

TEST(CheckDeathTest, CheckAbortsWithCondition) {
  EXPECT_DEATH(EMSIM_CHECK(2 < 1), "EMSIM_CHECK failed");
}

TEST(CheckDeathTest, CheckEqPrintsBothValues) {
  int lhs = 3;
  int rhs = 7;
  EXPECT_DEATH(EMSIM_CHECK_EQ(lhs, rhs), "3 vs 7");
}

TEST(CheckDeathTest, CheckNePrintsBothValues) {
  std::string word = "same";
  EXPECT_DEATH(EMSIM_CHECK_NE(word, std::string("same")), "same vs same");
}

TEST(CheckTest, DcheckConditionIsTypeCheckedButUnevaluatedInRelease) {
  int evaluations = 0;
  // `evaluations` is referenced by the DCHECK in both build modes, so this
  // compiles warning-free under -Werror with or without NDEBUG — the bug the
  // old empty-expansion DCHECK had.
  EMSIM_DCHECK(++evaluations >= 0);
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0) << "NDEBUG DCHECK must not evaluate its condition";
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

TEST(CheckDeathTest, DcheckFiresOnlyInDebugBuilds) {
#ifdef NDEBUG
  EMSIM_DCHECK(false);  // No-op in release.
#else
  EXPECT_DEATH(EMSIM_DCHECK(false), "EMSIM_CHECK failed");
#endif
}

}  // namespace

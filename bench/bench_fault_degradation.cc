// Robustness: graceful degradation under a fail-slow disk. Sweeps the
// fail-slow severity multiplier on one of D=5 disks and charts merge time
// and prefetch success ratio for both strategies (docs/ROBUSTNESS.md). The
// first point of each series is the fault-free baseline (no fault machinery
// constructed at all).
//
// Expected shape: demand-run-only degrades roughly linearly with the
// multiplier (every Dth batch lands on the slow disk and serializes the
// merge behind it); all-disks-one-run degrades more gently at first because
// the health tracker drops the quarantined disk from the fan-out (partial
// batches keep the other D-1 disks busy), at the price of a falling success
// ratio.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/result.h"
#include "stats/table.h"
#include "util/str.h"

int main() {
  using namespace emsim;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using stats::Table;

  bench::Banner("Robustness R-SLOW: merge under a fail-slow disk",
                "k=25, D=5, N=10; disk 2 serves at x{2,4,8,16} from t=0.\n"
                "Expected shape: demand-run-only slows with the multiplier;\n"
                "all-disks-one-run sheds the slow disk from its fan-out, so\n"
                "success ratio drops before merge time does.");

  const double factors[] = {2.0, 4.0, 8.0, 16.0};

  for (auto strategy : {Strategy::kDemandRunOnly, Strategy::kAllDisksOneRun}) {
    const char* strategy_name = core::StrategyName(strategy);
    Table table({"severity", "time (s)", "success", "concurrency", "retries",
                 "degraded plans"});

    MergeConfig baseline =
        MergeConfig::Paper(25, 5, 10, strategy, SyncMode::kUnsynchronized);
    auto base_result =
        bench::Run(baseline, StrFormat("%s/baseline", strategy_name));
    table.AddRow({"fault-free", bench::TimeCell(base_result),
                  Table::Cell(base_result.MeanSuccessRatio(), 3),
                  Table::Cell(base_result.MeanConcurrency(), 2), "0", "0"});

    std::vector<MergeConfig> sweep;
    for (double factor : factors) {
      MergeConfig cfg =
          MergeConfig::Paper(25, 5, 10, strategy, SyncMode::kUnsynchronized);
      cfg.fault.fail_slow_disk = 2;
      cfg.fault.fail_slow_factor = factor;
      sweep.push_back(cfg);
    }
    std::vector<core::ExperimentResult> results = bench::RunSweep(sweep);
    for (size_t i = 0; i < results.size(); ++i) {
      const core::ExperimentResult& result = results[i];
      uint64_t retries = 0;
      uint64_t degraded = 0;
      for (const core::MergeResult& trial : result.trials) {
        retries += trial.fault.retries;
        degraded += trial.fault.degraded_plans;
      }
      table.AddRow({StrFormat("x%g", factors[i]), bench::TimeCell(result),
                    Table::Cell(result.MeanSuccessRatio(), 3),
                    Table::Cell(result.MeanConcurrency(), 2),
                    StrFormat("%llu", static_cast<unsigned long long>(retries)),
                    StrFormat("%llu", static_cast<unsigned long long>(degraded))});
    }
    bench::EmitTable(StrFormat("%s under fail-slow disk 2", strategy_name), table);
  }
  emsim::bench::WriteJsonArtifact("fault_degradation");
  return 0;
}

// The metrics registry's threading contract: one registry per simulation,
// never shared across threads. RunTrialsParallel runs one simulation (and
// thus one registry) per trial on worker threads, so the supported
// concurrent pattern is many independent registries ticking at once. These
// tests exercise exactly that pattern and carry the `thread` label so the
// EMSIM_SANITIZE=thread CI job verifies there is no hidden shared state
// (a static, a shared sink, an interned name table) behind the API.

#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace emsim::obs {
namespace {

TEST(MetricsRegistryConcurrencyTest, IndependentRegistriesPerThread) {
  constexpr int kThreads = 4;
  constexpr int kTicks = 20000;
  std::vector<std::vector<MetricsRegistry::Sample>> samples(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&samples, w] {
      MetricsRegistry registry(/*enabled=*/true);
      Counter& events = registry.GetCounter("sim.events");
      Gauge& depth = registry.GetGauge("calendar.depth");
      Timeline& busy = registry.GetTimeline("disk.busy");
      for (int i = 0; i < kTicks; ++i) {
        events.Increment();
        depth.Set(static_cast<double>(i % 7));
        busy.Update(static_cast<double>(i), static_cast<double>(i % 2));
      }
      registry.FlushTimelines(static_cast<double>(kTicks));
      samples[static_cast<size_t>(w)] = registry.Samples();
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  // Every thread ran the identical deterministic program, so every export
  // must be identical — and nonempty.
  ASSERT_FALSE(samples[0].empty());
  for (int w = 1; w < kThreads; ++w) {
    ASSERT_EQ(samples[static_cast<size_t>(w)].size(), samples[0].size());
    for (size_t i = 0; i < samples[0].size(); ++i) {
      EXPECT_EQ(samples[static_cast<size_t>(w)][i].name, samples[0][i].name);
      EXPECT_EQ(samples[static_cast<size_t>(w)][i].value, samples[0][i].value);
    }
  }
}

TEST(MetricsRegistryConcurrencyTest, DisabledRegistriesPerThread) {
  // Disabled registries hand out per-registry sink instruments; with one
  // registry per thread the sinks are thread-local by construction.
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([] {
      MetricsRegistry registry(/*enabled=*/false);
      Counter& events = registry.GetCounter("sim.events");
      for (int i = 0; i < 10000; ++i) {
        events.Increment();
      }
      EXPECT_TRUE(registry.Samples().empty());
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
}

}  // namespace
}  // namespace emsim::obs


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/accumulator.cc" "src/stats/CMakeFiles/emsim_stats.dir/accumulator.cc.o" "gcc" "src/stats/CMakeFiles/emsim_stats.dir/accumulator.cc.o.d"
  "/root/repo/src/stats/ascii_chart.cc" "src/stats/CMakeFiles/emsim_stats.dir/ascii_chart.cc.o" "gcc" "src/stats/CMakeFiles/emsim_stats.dir/ascii_chart.cc.o.d"
  "/root/repo/src/stats/confidence.cc" "src/stats/CMakeFiles/emsim_stats.dir/confidence.cc.o" "gcc" "src/stats/CMakeFiles/emsim_stats.dir/confidence.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/emsim_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/emsim_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/series.cc" "src/stats/CMakeFiles/emsim_stats.dir/series.cc.o" "gcc" "src/stats/CMakeFiles/emsim_stats.dir/series.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/stats/CMakeFiles/emsim_stats.dir/table.cc.o" "gcc" "src/stats/CMakeFiles/emsim_stats.dir/table.cc.o.d"
  "/root/repo/src/stats/time_weighted.cc" "src/stats/CMakeFiles/emsim_stats.dir/time_weighted.cc.o" "gcc" "src/stats/CMakeFiles/emsim_stats.dir/time_weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// End-to-end fault injection and graceful degradation (docs/ROBUSTNESS.md):
// a fail-stop outage mid-merge completes through degraded fan-out instead of
// deadlocking; an unrecoverable outage surfaces a Status; and, whenever
// every retry eventually succeeds, fault injection changes timing only —
// the merge consumes the same blocks in the same order as the fault-free
// run (the depletion stream is drawn independently of I/O timing).

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/merge_simulator.h"
#include "core/result.h"
#include "util/status.h"

namespace emsim::core {
namespace {

MergeConfig InterRunConfig() {
  MergeConfig cfg = MergeConfig::Paper(10, 5, 4, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 100;
  cfg.check_invariants = true;
  return cfg;
}

TEST(FaultDegradationTest, FailStopMidMergeCompletesWithDegradedFanout) {
  // Acceptance scenario: disk 1 stops serving inside [500, 2000) ms while
  // the inter-run strategy is mid-merge. Timeouts abandon its queued work,
  // the health tracker quarantines it, and subsequent prefetch batches fan
  // out over the remaining disks (partial admission) until the outage lifts.
  MergeConfig cfg = InterRunConfig();
  cfg.fault.fail_stop_disk = 1;
  cfg.fault.fail_stop_start_ms = 500.0;
  cfg.fault.fail_stop_end_ms = 2000.0;
  cfg.fault.retry.timeout_ms = 100.0;
  // Constant backoff keeps the retry cadence tight across the whole outage:
  // the stuck span succeeds shortly after 2000 ms, while the quarantine
  // window (extended by every failed attempt) is still in force — so the
  // resumed merge provably plans with a reduced fan-out for a while.
  cfg.fault.retry.backoff_base_ms = 20.0;
  cfg.fault.retry.backoff_multiplier = 1.0;
  cfg.fault.retry.max_retries = 30;

  Result<MergeResult> faulted = SimulateMerge(cfg);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  MergeConfig clean = InterRunConfig();
  Result<MergeResult> baseline = SimulateMerge(clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // The merge is correct: every block of every run was consumed.
  EXPECT_EQ(faulted->blocks_merged, cfg.TotalBlocks());
  EXPECT_EQ(faulted->blocks_merged, baseline->blocks_merged);
  EXPECT_EQ(faulted->cache_stats.consumptions, baseline->cache_stats.consumptions);

  // ... but it ran degraded: attempts timed out, the disk was quarantined,
  // plans were issued with a reduced fan-out, and the paper's success ratio
  // dropped below the fault-free run's.
  EXPECT_TRUE(faulted->fault.injection_enabled);
  EXPECT_GT(faulted->fault.timeouts, 0u);
  EXPECT_GT(faulted->fault.retries, 0u);
  EXPECT_GT(faulted->fault.quarantine_events, 0u);
  EXPECT_GT(faulted->fault.degraded_plans, 0u);
  EXPECT_EQ(faulted->fault.permanent_failures, 0u);
  EXPECT_LT(faulted->SuccessRatio(), baseline->SuccessRatio());
  EXPECT_GT(faulted->total_ms, baseline->total_ms);
}

TEST(FaultDegradationTest, UnrecoverableFailStopSurfacesStatus) {
  // Disk 1 never comes back and retries are tight: the merge must surface
  // an error Status (run unreadable) instead of hanging or aborting.
  MergeConfig cfg = InterRunConfig();
  cfg.fault.fail_stop_disk = 1;
  cfg.fault.fail_stop_start_ms = 0.0;
  cfg.fault.fail_stop_end_ms = -1.0;
  cfg.fault.retry.timeout_ms = 50.0;
  cfg.fault.retry.max_retries = 2;
  // Belt and braces: if abort ever regressed into a hang, the event deadline
  // converts it into a failing Status instead of a stuck test.
  cfg.max_sim_events = 10'000'000;

  Result<MergeResult> result = SimulateMerge(cfg);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("unreadable"), std::string::npos)
      << result.status().ToString();
}

TEST(FaultDegradationTest, DemandFallbackCompletesUnderQuarantine) {
  // Demand-run-only with a finite outage on the demand disk: the planner
  // falls back to one-block demand fetches while the disk is quarantined
  // and the merge still completes every block.
  MergeConfig cfg = MergeConfig::Paper(6, 3, 4, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 80;
  cfg.check_invariants = true;
  cfg.fault.fail_stop_disk = 0;
  cfg.fault.fail_stop_start_ms = 200.0;
  cfg.fault.fail_stop_end_ms = 1200.0;
  cfg.fault.retry.timeout_ms = 80.0;
  cfg.fault.retry.max_retries = 20;

  Result<MergeResult> result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->blocks_merged, cfg.TotalBlocks());
  EXPECT_GT(result->fault.timeouts, 0u);
}

// Property: under any injected fault schedule in which every retry
// eventually succeeds, fault injection is invisible to merge semantics —
// identical blocks merged, identical consumption totals, identical total
// blocks transferred (each span is served successfully exactly once) —
// across seeds, both strategies, and both sync modes.
TEST(FaultDegradationTest, RecoveredFaultsPreserveMergeSemantics) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    for (Strategy strategy : {Strategy::kDemandRunOnly, Strategy::kAllDisksOneRun}) {
      for (SyncMode sync : {SyncMode::kSynchronized, SyncMode::kUnsynchronized}) {
        MergeConfig clean = MergeConfig::Paper(6, 3, 4, strategy, sync);
        clean.blocks_per_run = 60;
        clean.seed = seed;
        clean.check_invariants = true;

        MergeConfig faulty = clean;
        faulty.fault.media_error_rate = 0.05;
        faulty.fault.latency_spike_rate = 0.1;
        faulty.fault.latency_spike_ms = 30.0;
        // Effectively inexhaustible retries: P(30 consecutive injected
        // errors) ~ 8e-40, so every span eventually succeeds.
        faulty.fault.retry.max_retries = 30;
        faulty.fault.retry.timeout_ms = 0.0;  // Error-triggered retries only.
        faulty.fault.retry.backoff_base_ms = 5.0;

        Result<MergeResult> base = SimulateMerge(clean);
        Result<MergeResult> injected = SimulateMerge(faulty);
        ASSERT_TRUE(base.ok()) << base.status().ToString();
        ASSERT_TRUE(injected.ok()) << injected.status().ToString();

        const std::string label =
            std::string(StrategyName(strategy)) + "/" + SyncModeName(sync) +
            "/seed=" + std::to_string(seed);
        EXPECT_EQ(injected->blocks_merged, base->blocks_merged) << label;
        EXPECT_EQ(injected->blocks_merged, clean.TotalBlocks()) << label;
        EXPECT_EQ(injected->cache_stats.consumptions,
                  base->cache_stats.consumptions)
            << label;
        EXPECT_EQ(injected->disk_totals.blocks_transferred,
                  base->disk_totals.blocks_transferred)
            << label;
        EXPECT_EQ(injected->fault.permanent_failures, 0u) << label;
        EXPECT_GT(injected->fault.media_errors, 0u) << label;
        EXPECT_EQ(injected->fault.media_errors, injected->fault.retries) << label;
      }
    }
  }
}

TEST(FaultDegradationTest, FaultFreeResultCarriesNoFaultStats) {
  MergeConfig cfg = InterRunConfig();
  Result<MergeResult> result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->fault.injection_enabled);
  EXPECT_EQ(result->fault.media_errors, 0u);
  EXPECT_EQ(result->fault.retries, 0u);
  EXPECT_EQ(result->fault.degraded_plans, 0u);
}

TEST(FaultDegradationTest, FaultDrawsDoNotPerturbModelStreams) {
  // A harmless injection (spike rate 0 would disable injection; use a
  // fail-slow factor of 1 on an in-range disk) keeps every model stream
  // untouched: identical merged output AND identical simulated time.
  MergeConfig clean = InterRunConfig();
  MergeConfig harmless = InterRunConfig();
  harmless.fault.fail_slow_disk = 2;
  harmless.fault.fail_slow_factor = 1.0;

  Result<MergeResult> base = SimulateMerge(clean);
  Result<MergeResult> injected = SimulateMerge(harmless);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(injected.ok());
  EXPECT_DOUBLE_EQ(injected->total_ms, base->total_ms);
  EXPECT_EQ(injected->blocks_merged, base->blocks_merged);
  EXPECT_EQ(injected->io_operations, base->io_operations);
  EXPECT_EQ(injected->full_admissions, base->full_admissions);
  EXPECT_TRUE(injected->fault.injection_enabled);
}

}  // namespace
}  // namespace emsim::core

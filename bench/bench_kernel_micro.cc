// Google-benchmark microbenchmarks of the simulation substrate: event
// calendar throughput, coroutine process switching, disk service pricing and
// full merge-trial cost. These calibrate how much simulated work one wall
// second buys (the figure benches run hundreds of trials).

#include <benchmark/benchmark.h>

#include "core/config.h"
#include "core/merge_simulator.h"
#include "disk/mechanism.h"
#include "extsort/loser_tree.h"
#include "sim/event.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace emsim {
namespace {

void BM_CalendarScheduleExecute(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleCallback(static_cast<double>(i % 97), [&counter] { ++counter; });
    }
    sim.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CalendarScheduleExecute);

sim::Process Hopper(sim::Simulation& /*sim*/, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await sim::Delay(1.0);
  }
}

void BM_CoroutineContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim.Spawn(Hopper(sim, 1000));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineContextSwitch);

void BM_MechanismAccess(benchmark::State& state) {
  disk::Mechanism mech{disk::DiskParams::Paper()};
  Rng rng(1);
  int64_t block = 0;
  for (auto _ : state) {
    block = (block + 2048) % 60000;
    benchmark::DoNotOptimize(mech.Access(block, 10, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MechanismAccess);

void BM_LoserTreeReplay(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Rng rng(7);
  extsort::LoserTree<uint64_t> tree(k);
  for (int s = 0; s < k; ++s) {
    tree.SetInitial(s, rng.Next64());
  }
  tree.Build();
  for (auto _ : state) {
    tree.ReplaceWinner(tree.WinnerItem() + rng.UniformInt(1024));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoserTreeReplay)->Arg(8)->Arg(64)->Arg(512);

void BM_FullMergeTrial(benchmark::State& state) {
  core::MergeConfig cfg =
      core::MergeConfig::Paper(25, 5, static_cast<int>(state.range(0)),
                               core::Strategy::kAllDisksOneRun,
                               core::SyncMode::kUnsynchronized);
  uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    auto result = core::SimulateMerge(cfg);
    benchmark::DoNotOptimize(result->total_ms);
  }
  state.SetItemsProcessed(state.iterations() * 25000);  // Blocks per trial.
}
BENCHMARK(BM_FullMergeTrial)->Arg(1)->Arg(10);

}  // namespace
}  // namespace emsim

BENCHMARK_MAIN();

#ifndef EMSIM_EXTSORT_RUN_IO_H_
#define EMSIM_EXTSORT_RUN_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "extsort/block_device.h"
#include "extsort/record.h"
#include "util/status.h"

namespace emsim::extsort {

/// Location and size of one sorted run on a device.
struct RunDescriptor {
  int64_t start_block = 0;
  int64_t num_blocks = 0;
  uint64_t num_records = 0;

  std::string ToString() const;
};

/// Streams sorted records into consecutive blocks starting at `start_block`.
/// Append order must be sorted (checked); Finish flushes the tail block and
/// returns the descriptor.
class RunWriter {
 public:
  RunWriter(BlockDevice* device, int64_t start_block);

  Status Append(const Record& record);

  /// Flushes and returns the run's descriptor. The writer is unusable
  /// afterwards.
  Result<RunDescriptor> Finish();

  uint64_t records_written() const { return records_; }

 private:
  Status Flush();

  BlockDevice* device_;
  int64_t start_block_;
  int64_t next_block_;
  std::vector<Record> pending_;
  std::vector<uint8_t> scratch_;
  uint64_t records_ = 0;
  bool finished_ = false;
  bool has_last_ = false;
  Record last_;
};

/// Streams a run's records back, reading `buffer_blocks` blocks per I/O
/// (the intra-run prefetch analogue in the real sorter). Tracks how many
/// blocks have been fully consumed so the merger can extract the paper's
/// block-depletion trace.
class RunReader {
 public:
  RunReader(BlockDevice* device, const RunDescriptor& run, int buffer_blocks = 1);

  /// Fetches the next record; returns false at end of run OR on an I/O
  /// error — check status() to distinguish.
  bool Next(Record* record);

  /// OK unless a read or decode failed; sticky once set.
  const Status& status() const { return status_; }

  /// Blocks whose records have all been returned.
  int64_t blocks_depleted() const { return blocks_depleted_; }

  /// True when a call to Next would touch a block not yet buffered.
  bool NeedsIo() const;

  const RunDescriptor& run() const { return run_; }

 private:
  void Refill();

  BlockDevice* device_;
  RunDescriptor run_;
  int buffer_blocks_;
  int64_t next_block_ = 0;        ///< Next block index (within run) to read.
  std::vector<Record> buffer_;    ///< Decoded records not yet returned.
  size_t buffer_pos_ = 0;
  std::vector<int64_t> buffered_block_ends_;  ///< Record counts per buffered block.
  int64_t blocks_depleted_ = 0;
  uint64_t records_returned_ = 0;
  std::vector<uint8_t> scratch_;
  Status status_;
};

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_RUN_IO_H_

#ifndef EMSIM_DISK_DISK_H_
#define EMSIM_DISK_DISK_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "disk/disk_params.h"
#include "disk/mechanism.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "sim/calendar.h"
#include "sim/event.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "stats/time_weighted.h"
#include "util/rng.h"

namespace emsim::disk {

/// Why a request was issued; used for statistics and tracing.
enum class RequestKind {
  kDemand,    ///< The merge is stalled waiting for this block.
  kPrefetch,  ///< Speculative read issued by a prefetching policy.
  kWrite,     ///< Merged output written behind the merge (extension).
};

/// Where a request stands in the disk's pipeline; written by the disk,
/// polled by issuers that retry on timeout (io::FetchRetryDriver).
enum class RequestPhase {
  kQueued,   ///< Submitted; not yet picked by the server.
  kServing,  ///< Non-preemptively in service.
  kDone,     ///< All blocks delivered, on_complete fired.
  kFailed,   ///< Injected media error; on_error fired, no blocks delivered.
};

/// Shared progress cell for one request attempt. The issuer keeps a
/// reference so its timeout watchdog can see how far the attempt got; it
/// sets `abandoned` to disown an attempt that is still queued (the disk
/// drops it unserved — there is no preemption of an attempt in service).
struct RequestProgress {
  RequestPhase phase = RequestPhase::kQueued;
  bool abandoned = false;
};

/// One read request for `nblocks` contiguous disk-local blocks. The disk
/// delivers blocks one at a time: `on_block(i)` fires when the i-th block's
/// transfer completes (this is how unsynchronized prefetching lets the CPU
/// resume after the first block), and `on_complete` fires after the last.
/// Callbacks run in the disk server's process context; they must not block.
///
/// Fault-aware issuers may attach `progress` (attempt tracking) and
/// `on_error` (invoked instead of on_block/on_complete when an injected
/// media error fails the request). Requests without an `on_error` handler
/// are never failed by the injector — their issuer could not observe it —
/// though timing faults (fail-slow, spikes, fail-stop) still apply.
struct DiskRequest {
  int64_t start_block = 0;
  int nblocks = 1;
  RequestKind kind = RequestKind::kDemand;
  std::function<void(int)> on_block;
  std::function<void()> on_complete;
  std::function<void()> on_error;
  std::shared_ptr<RequestProgress> progress;

  // Filled in by Disk::Submit.
  uint64_t id = 0;
  sim::SimTime enqueue_time = 0;
};

/// Cumulative per-disk statistics.
struct DiskStats {
  uint64_t requests = 0;
  uint64_t demand_requests = 0;
  uint64_t blocks_transferred = 0;
  uint64_t seeks = 0;             ///< Requests with nonzero arm travel.
  int64_t seek_cylinders = 0;     ///< Total arm travel.
  double seek_ms = 0;
  double rotation_ms = 0;
  double transfer_ms = 0;
  double queue_wait_ms = 0;       ///< Sum over requests of (service start - enqueue).
  size_t max_queue_length = 0;

  // Fault-path counters; all stay zero when no FaultPlan is attached.
  uint64_t media_errors = 0;      ///< Requests failed by injected media errors.
  uint64_t latency_spikes = 0;    ///< Requests that paid a latency spike.
  uint64_t dropped_requests = 0;  ///< Abandoned attempts dropped unserved.
  double fail_stop_ms = 0;        ///< Time parked by a finite fail-stop window.
  double fault_extra_ms = 0;      ///< Extra service time from fail-slow/spikes.

  double BusyMs() const { return seek_ms + rotation_ms + transfer_ms; }
};

/// End-of-run utilization snapshot of one disk: the time-weighted view the
/// cumulative DiskStats cannot express (busy fraction of elapsed time, mean
/// queue length) plus the cumulative counters. This is what the JSON
/// exporters emit per disk.
struct DiskUtilization {
  int id = 0;
  double busy_fraction = 0.0;      ///< Fraction of elapsed time in service.
  double mean_queue_length = 0.0;  ///< Time-averaged waiting requests.
  DiskStats stats;
};

/// A single disk unit: a FIFO (or SSTF) queue served by one simulation
/// process that prices each request with the Mechanism and delivers blocks
/// at transfer-time granularity. Matches the paper's model where every
/// block request is queued at the disk and serviced independently,
/// non-preemptively.
class Disk {
 public:
  /// `seed` derives the disk's private rotational-latency RNG stream.
  Disk(sim::Simulation* sim, const DiskParams& params, int id, uint64_t seed);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Spawns the server process. Call once before the simulation runs.
  void Start();

  /// Stops the server once the queue drains (used for clean teardown).
  void Stop();

  /// Enqueues a request. May be called from any process at any time.
  void Submit(DiskRequest request);

  int id() const { return id_; }
  bool busy() const { return busy_; }
  size_t QueueLength() const { return queue_.size(); }
  const DiskStats& stats() const { return stats_; }
  const Mechanism& mechanism() const { return mechanism_; }

  /// Fraction of elapsed simulated time this disk spent servicing requests
  /// (integrates to the last update; call FlushLocalStats first for an
  /// end-of-run figure).
  double BusyFraction() const { return busy_timeline_.Average(); }

  /// Time-averaged number of requests waiting in this disk's queue.
  double MeanQueueLength() const { return queue_timeline_.Average(); }

  /// Closes the busy/queue timelines at the current simulated time.
  void FlushLocalStats();

  /// Utilization snapshot (flush first for end-of-run accuracy).
  DiskUtilization Utilization() const;

  /// Registers this disk's timelines ("disk<i>.busy", "disk<i>.queue_len")
  /// and request counters with `metrics`. Call before the simulation runs.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Attaches a fault plan consulted on every request (nullptr — the
  /// default — keeps the fault-free hot path untouched). The plan must
  /// outlive the disk. Call before the simulation runs.
  void SetFaultPlan(fault::FaultPlan* plan) { faults_ = plan; }

  /// Observer invoked on busy-state transitions; wired by DiskArray to
  /// maintain the cross-disk concurrency statistic.
  std::function<void(int disk_id, bool busy)> on_busy_changed;

  /// Observer invoked when a request enters service, with its priced cost —
  /// the hook for tracing and for statistical validation of the seek model
  /// (e.g. chi-square against the Kwan-Baer distribution).
  std::function<void(const DiskRequest&, const AccessCost&)> on_request_served;

  std::string ToString() const;

 private:
  sim::Process Serve();

  /// Removes and returns the next request per the scheduling policy.
  DiskRequest PopNext();

  // Inline: both run on every request transition (twice per request for the
  // busy flag), bracketing every block of simulated I/O.
  void SetBusy(bool busy) {
    if (busy_ == busy) {
      return;
    }
    busy_ = busy;
    busy_timeline_.Update(sim_->Now(), busy ? 1.0 : 0.0);
    if (metric_busy_ != nullptr) {
      metric_busy_->Update(sim_->Now(), busy ? 1.0 : 0.0);
    }
    if (on_busy_changed) {
      on_busy_changed(id_, busy);
    }
  }

  void NoteQueueLength() {
    queue_timeline_.Update(sim_->Now(), static_cast<double>(queue_.size()));
    if (metric_queue_ != nullptr) {
      metric_queue_->Update(sim_->Now(), static_cast<double>(queue_.size()));
    }
  }

  sim::Simulation* sim_;
  int id_;
  Mechanism mechanism_;
  fault::FaultPlan* faults_ = nullptr;
  Rng rng_;
  std::deque<DiskRequest> queue_;
  sim::Signal work_;
  DiskStats stats_;
  uint64_t next_request_id_ = 0;
  bool busy_ = false;
  bool started_ = false;
  bool stopping_ = false;

  // Always-on utilization timelines (a few arithmetic ops per transition).
  stats::TimeWeighted busy_timeline_;
  stats::TimeWeighted queue_timeline_;

  // Optional registry mirrors (null unless AttachMetrics was called).
  obs::Timeline* metric_busy_ = nullptr;
  obs::Timeline* metric_queue_ = nullptr;
  obs::Counter* metric_requests_ = nullptr;
  obs::Counter* metric_blocks_ = nullptr;
};

}  // namespace emsim::disk

#endif  // EMSIM_DISK_DISK_H_

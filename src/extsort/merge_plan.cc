#include "extsort/merge_plan.h"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <utility>

#include "util/check.h"
#include "util/str.h"

namespace emsim::extsort {

std::string MergePlan::ToString() const {
  std::string out = StrFormat("MergePlan{steps=%zu, depth=%d, blocks_moved=%lld}",
                              steps.size(), depth, static_cast<long long>(blocks_moved));
  return out;
}

MergePlan PlanMerge(const std::vector<int64_t>& run_blocks, int fan_in) {
  EMSIM_CHECK(fan_in >= 2);
  EMSIM_CHECK(!run_blocks.empty());

  struct Node {
    int64_t blocks;
    int depth;
    int index;  // Run-list index; -1 for a dummy.
  };
  struct Heavier {
    bool operator()(const Node& a, const Node& b) const {
      if (a.blocks != b.blocks) {
        return a.blocks > b.blocks;
      }
      return a.index > b.index;  // Deterministic tie-break.
    }
  };

  std::priority_queue<Node, std::vector<Node>, Heavier> heap;
  int next_index = 0;
  for (int64_t blocks : run_blocks) {
    EMSIM_CHECK(blocks >= 0);
    heap.push(Node{blocks, 0, next_index++});
  }

  MergePlan plan;
  if (run_blocks.size() == 1) {
    // Nothing to merge: an empty plan; callers treat the single run as the
    // output.
    return plan;
  }

  // Pad with zero-block dummies so every step takes exactly `fan_in` inputs
  // — the standard condition (R - 1) ≡ 0 (mod F - 1) for k-ary Huffman
  // optimality. Dummies never contribute I/O.
  int real = static_cast<int>(run_blocks.size());
  int remainder = (real - 1) % (fan_in - 1);
  int dummies = remainder == 0 ? 0 : fan_in - 1 - remainder;
  for (int i = 0; i < dummies; ++i) {
    heap.push(Node{0, 0, -1});
  }

  while (heap.size() > 1) {
    MergeStep step;
    int64_t blocks = 0;
    int depth = 0;
    for (int i = 0; i < fan_in && !heap.empty(); ++i) {
      Node node = heap.top();
      heap.pop();
      if (node.index >= 0) {
        step.inputs.push_back(node.index);
      }
      blocks += node.blocks;
      depth = std::max(depth, node.depth);
    }
    EMSIM_CHECK(!step.inputs.empty());
    step.output = next_index++;
    plan.blocks_moved += blocks;
    plan.depth = std::max(plan.depth, depth + 1);
    plan.steps.push_back(std::move(step));
    heap.push(Node{blocks, depth + 1, plan.steps.back().output});
  }
  return plan;
}

Result<MergeOutcome> ExecuteMergePlan(const MergePlan& plan,
                                      const std::vector<RunDescriptor>& initial_runs,
                                      BlockDevice* scratch, int64_t next_free_block,
                                      BlockDevice* output,
                                      const KWayMergeOptions& options) {
  if (initial_runs.empty()) {
    return Status::InvalidArgument("no runs to merge");
  }
  if (plan.steps.empty()) {
    if (initial_runs.size() != 1) {
      return Status::InvalidArgument("empty plan but multiple runs");
    }
    // Copy-through: merge the single run to the output device.
    KWayMergeOptions single = options;
    single.output_start_block = 0;
    return MergeRuns(scratch, initial_runs, output, single);
  }

  std::vector<RunDescriptor> runs = initial_runs;
  runs.resize(initial_runs.size() + plan.steps.size());

  MergeOutcome last;
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    const MergeStep& step = plan.steps[s];
    std::vector<RunDescriptor> inputs;
    for (int idx : step.inputs) {
      if (idx < 0 || idx >= static_cast<int>(runs.size())) {
        return Status::InvalidArgument("plan references an unknown run");
      }
      inputs.push_back(runs[static_cast<size_t>(idx)]);
    }
    const bool final_step = s + 1 == plan.steps.size();
    KWayMergeOptions step_options = options;
    step_options.output_start_block = final_step ? 0 : next_free_block;
    Result<MergeOutcome> outcome =
        MergeRuns(scratch, inputs, final_step ? output : scratch, step_options);
    if (!outcome.ok()) {
      return outcome.status();
    }
    runs[static_cast<size_t>(step.output)] = outcome->output;
    if (!final_step) {
      next_free_block += outcome->output.num_blocks;
    }
    last = *std::move(outcome);
  }
  return last;
}

}  // namespace emsim::extsort

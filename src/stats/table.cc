#include "stats/table.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "util/str.h"

namespace emsim::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += (c ? "  " : "") + PadLeft(headers_[c], widths[c]);
  }
  out += "\n";
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      out += (c ? "  " : "") + PadLeft(row[c], widths[c]);
    }
    out += "\n";
  }
  return out;
}

std::string Table::ToCsv() const {
  std::string out = StrJoin(headers_, ",") + "\n";
  for (const auto& row : rows_) {
    out += StrJoin(row, ",") + "\n";
  }
  return out;
}

}  // namespace emsim::stats

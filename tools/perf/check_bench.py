#!/usr/bin/env python3
"""Perf-smoke gate for google-benchmark JSON output.

Compares a current `--benchmark_format=json` report against a committed
baseline on two axes:

  1. Wall time, loosely: fail when a benchmark's time exceeds `max-ratio`
     times its baseline. The default ratio is deliberately loose (4.0): the
     committed baseline is captured on a developer machine, CI machines
     differ in clock and code layout by integer factors, and this half of
     the gate only catches order-of-magnitude regressions (an accidental
     O(n) calendar), not 10% noise. Tighten locally with --max-ratio when
     comparing runs from the same machine.

  2. The machine-independent counters, exactly: `allocs_per_op` must not
     grow past the baseline (plus --allocs-slack, covering rare steady-state
     capacity growth), and `events_per_op` must match the baseline within
     --counter-rel-tol in either direction (the tolerance covers seed-mix
     drift on the full-trial benches, whose per-op event count is a mean
     over per-iteration seeds). These counters are identical on every
     machine, so unlike wall time they gate tightly: one new heap
     allocation per event or one extra calendar event per op fails CI even
     when the wall-time ratio hides it. Counters absent from the baseline
     entry are ignored, so new benchmarks and new counters roll in through
     a baseline refresh.

Exit codes:
  0 — every baseline benchmark present, within the ratio, counters intact
  1 — regression: time ratio, counter mismatch, or missing benchmark
  2 — usage or I/O error (missing file, malformed JSON)

Usage:
  check_bench.py --baseline tools/perf/baseline_kernel_micro.json \
                 --current bench.json [--max-ratio 4.0] [--metric cpu_time] \
                 [--allocs-slack 0.5] [--counter-rel-tol 0.02]
"""

import argparse
import json
import os
import sys

# Counters gated exactly (machine-independent), as (name, mode) where mode
# "grow" fails only on increase and "match" fails on drift either way.
GATED_COUNTERS = (
    ("allocs_per_op", "grow"),
    ("events_per_op", "match"),
)


def fmt_counter(value):
    """Counters are per-op means; show exact small integers compactly."""
    if value is None:
        return "—"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3g}"


def write_step_summary(rows, max_ratio, failures):
    """Appends a markdown gate table to $GITHUB_STEP_SUMMARY when set.

    Purely additive reporting for the GitHub Actions job summary page; the
    gate contract (exit codes, stdout/stderr text) is unchanged.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["### Perf gate (max time ratio {:g})".format(max_ratio), ""]
    lines.append("| benchmark | baseline | current | ratio "
                 "| allocs/op (base → cur) | events/op (base → cur) | verdict |")
    lines.append("|---|---:|---:|---:|---:|---:|---|")
    for row in rows:
        current_cell = f"{row.cur_time:.1f}" if row.cur_time is not None else "MISSING"
        ratio_cell = f"{row.ratio:.2f}" if row.ratio is not None else "—"
        icon = "✅ ok" if row.verdict == "ok" else "❌ FAIL"
        counter_cells = []
        for counter, _ in GATED_COUNTERS:
            base_val, cur_val = row.counters.get(counter, (None, None))
            if base_val is None:
                counter_cells.append("—")
            else:
                counter_cells.append(f"{fmt_counter(base_val)} → {fmt_counter(cur_val)}")
        lines.append(
            f"| `{row.name}` | {row.base_time:.1f} | {current_cell} | {ratio_cell} "
            f"| {counter_cells[0]} | {counter_cells[1]} | {icon} |")
    lines.append("")
    if failures:
        lines.append(f"**{len(failures)} regression(s) past the gate.**")
    else:
        lines.append(f"All {len(rows)} benchmarks within the gate.")
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as err:
        print(f"check_bench: cannot write step summary: {err}", file=sys.stderr)


class Row:
    """One benchmark's comparison: times plus per-counter (base, cur) pairs."""

    def __init__(self, name, base_time, cur_time, ratio, verdict, counters):
        self.name = name
        self.base_time = base_time
        self.cur_time = cur_time
        self.ratio = ratio
        self.verdict = verdict
        self.counters = counters  # {counter name: (baseline, current|None)}


def load_report(path, metric):
    """Returns {name: (time, {counter: value})} from a google-benchmark JSON
    report. Only the counters named in GATED_COUNTERS are kept."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_bench: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        print(f"check_bench: {path} has no benchmarks", file=sys.stderr)
        sys.exit(2)
    report = {}
    for bench in benchmarks:
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        value = bench.get(metric)
        if name is None or value is None:
            print(f"check_bench: {path}: entry missing name/{metric}", file=sys.stderr)
            sys.exit(2)
        counters = {}
        for counter, _ in GATED_COUNTERS:
            if counter in bench:
                counters[counter] = float(bench[counter])
        report[name] = (float(value), counters)
    return report


def check_counters(name, base_counters, cur_counters, args, failures):
    """Gates each baseline counter against the current run; returns the
    {counter: (base, cur)} pairs for the report tables."""
    pairs = {}
    for counter, mode in GATED_COUNTERS:
        if counter not in base_counters:
            continue  # Not in baseline: rolls in at the next refresh.
        base_val = base_counters[counter]
        cur_val = cur_counters.get(counter)
        pairs[counter] = (base_val, cur_val)
        if cur_val is None:
            failures.append(f"{name}: counter {counter} missing from current run")
            continue
        if mode == "grow":
            # Relative headroom absorbs seed-mix jitter on per-trial counters
            # (the full-merge bench's alloc count moves a few per op with the
            # iteration-dependent seed mix); the absolute slack is what gates
            # the steady-state benches whose baseline is ~0.
            limit = base_val * (1.0 + args.counter_rel_tol) + args.allocs_slack
            if cur_val > limit:
                failures.append(
                    f"{name}: {counter} grew to {fmt_counter(cur_val)} "
                    f"(baseline {fmt_counter(base_val)}, limit {fmt_counter(limit)})")
        else:  # match
            tolerance = abs(base_val) * args.counter_rel_tol
            if abs(cur_val - base_val) > tolerance:
                failures.append(
                    f"{name}: {counter} drifted to {fmt_counter(cur_val)} "
                    f"(baseline {fmt_counter(base_val)} "
                    f"± {100.0 * args.counter_rel_tol:g}%)")
    return pairs


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly measured JSON")
    parser.add_argument("--max-ratio", type=float, default=4.0,
                        help="fail when current/baseline exceeds this (default 4.0)")
    parser.add_argument("--metric", default="cpu_time",
                        choices=["cpu_time", "real_time"],
                        help="which benchmark time to compare (default cpu_time)")
    parser.add_argument("--allocs-slack", type=float, default=0.5,
                        help="absolute allocs_per_op growth allowed over the "
                             "baseline (default 0.5: below one allocation per "
                             "op, above steady-state capacity jitter)")
    parser.add_argument("--counter-rel-tol", type=float, default=0.02,
                        help="relative drift allowed on exact-match counters "
                             "such as events_per_op (default 0.02)")
    args = parser.parse_args()
    if args.max_ratio <= 0:
        print("check_bench: --max-ratio must be positive", file=sys.stderr)
        return 2
    if args.allocs_slack < 0 or args.counter_rel_tol < 0:
        print("check_bench: slack/tolerance must be non-negative", file=sys.stderr)
        return 2

    baseline = load_report(args.baseline, args.metric)
    current = load_report(args.current, args.metric)

    failures = []
    rows = []
    width = max(len(name) for name in baseline)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'current':>12}  ratio  "
          f"{'allocs/op':>14}  {'events/op':>18}")
    for name in sorted(baseline):
        base_time, base_counters = baseline[name]
        if name not in current:
            failures.append(f"{name}: present in baseline but not in current run")
            print(f"{name.ljust(width)}  {base_time:12.1f}  {'MISSING':>12}  FAIL")
            rows.append(Row(name, base_time, None, None, "FAIL", {}))
            continue
        cur_time, cur_counters = current[name]
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        failures_before = len(failures)
        if ratio > args.max_ratio:
            failures.append(
                f"{name}: {cur_time:.1f} vs baseline {base_time:.1f} "
                f"(ratio {ratio:.2f} > {args.max_ratio})")
        pairs = check_counters(name, base_counters, cur_counters, args, failures)
        verdict = "ok" if len(failures) == failures_before else "FAIL"
        cells = []
        for counter, _ in GATED_COUNTERS:
            base_val, cur_val = pairs.get(counter, (None, None))
            if base_val is None:
                cells.append("—")
            else:
                cells.append(f"{fmt_counter(base_val)}→{fmt_counter(cur_val)}")
        print(f"{name.ljust(width)}  {base_time:12.1f}  {cur_time:12.1f}  "
              f"{ratio:5.2f}  {cells[0]:>14}  {cells[1]:>18}  {verdict}")
        rows.append(Row(name, base_time, cur_time, ratio, verdict, pairs))
    write_step_summary(rows, args.max_ratio, failures)

    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"note: {len(extra)} benchmark(s) not in baseline (ignored): "
              + ", ".join(extra))

    if failures:
        print(f"\ncheck_bench: {len(failures)} regression(s) past the gate:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\ncheck_bench: all {len(baseline)} benchmarks within the gate "
          f"(time ratio {args.max_ratio}, allocs slack {args.allocs_slack:g}, "
          f"counter tolerance {100.0 * args.counter_rel_tol:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Reproduces the companion report's Markov analysis (Pai, Schaffer &
// Varman, TR-9108 — the paper's stated basis for choosing the conservative
// admission policy): D disks with one run each, unit fetches, cache of C
// frames. The chain's steady-state average I/O parallelism and success
// ratio are compared against the discrete-event simulator in the same
// configuration.

#include "analysis/markov.h"
#include "bench_util.h"
#include "core/config.h"
#include "stats/table.h"
#include "util/str.h"

int main() {
  using namespace emsim;
  using Policy = analysis::MarkovPrefetchModel::Policy;
  using core::AdmissionPolicy;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using stats::Table;

  bench::Banner(
      "Companion TR Markov analysis (basis of the paper's admission policy)",
      "One run per disk, N=1, synchronized. Expected shape: conservative's\n"
      "success ratio always >= greedy's; its parallelism overtakes greedy's\n"
      "as the cache grows (the paper: 'superior ... for all reasonable\n"
      "values of cache size'); both approach D with ample cache.");

  for (int d : {3, 5}) {
    Table table({"cache", "cons par (chain)", "greedy par (chain)", "cons succ (chain)",
                 "greedy succ (chain)", "cons succ (sim)", "greedy succ (sim)"});
    for (int c : {d, d + 2, 2 * d, 3 * d, 5 * d}) {
      analysis::MarkovPrefetchModel model(d, c);

      auto simulate = [&](AdmissionPolicy admission) {
        MergeConfig cfg = MergeConfig::Paper(d, d, 1, Strategy::kAllDisksOneRun,
                                             SyncMode::kSynchronized);
        cfg.blocks_per_run = 4000;
        cfg.cache_blocks = c;
        cfg.admission = admission;
        return bench::Run(cfg);
      };
      auto cons_sim = simulate(AdmissionPolicy::kConservative);
      auto greedy_sim = simulate(AdmissionPolicy::kGreedy);

      table.AddRow({Table::Cell(c, 0),
                    Table::Cell(model.AverageParallelism(Policy::kConservative), 3),
                    Table::Cell(model.AverageParallelism(Policy::kGreedy), 3),
                    Table::Cell(model.SuccessRatio(Policy::kConservative), 3),
                    Table::Cell(model.SuccessRatio(Policy::kGreedy), 3),
                    Table::Cell(cons_sim.MeanSuccessRatio(), 3),
                    Table::Cell(greedy_sim.MeanSuccessRatio(), 3)});
    }
    bench::EmitTable(StrFormat("D = %d disks, one run per disk", d), table,
                     "chain vs simulator success ratios agree; conservative >= "
                     "greedy on success everywhere, on parallelism at C >= ~3D");
  }
  emsim::bench::WriteJsonArtifact("markov_policy");
  return 0;
}

#ifndef EMSIM_SIM_CALENDAR_H_
#define EMSIM_SIM_CALENDAR_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace emsim::sim {

/// Simulated time in milliseconds (the paper's disk parameters are natural in
/// ms; nothing in the kernel depends on the unit).
using SimTime = double;

/// One calendar entry, 16 bytes so a 4-ary heap sift or a bucket insert moves
/// two words per hop instead of three. `payload` is a tagged slot index (see
/// Simulation): the low two bits select coroutine-handle / pooled-callback /
/// burst-group dispatch, the rest index the matching slot pool. Keeping the
/// payload an index (not a pointer) is also what lets the kernel drop its
/// pointer-cast determinism-lint suppression: nothing address-derived is ever
/// stored in an ordered structure.
struct CalEntry {
  SimTime time;
  uint32_t seq;      // FIFO tie-break for equal times.
  uint32_t payload;  // (slot << 2) | tag.
};
static_assert(sizeof(CalEntry) == 16, "calendar entries must stay 16 bytes");

/// Strict total order (seq is unique among pending entries), so every backend
/// pops in exactly the same sequence: time-ordered, FIFO within a tick.
/// Written with forced evaluation (`|`/`&`, not `||`/`&&`) so compilers emit
/// setcc/cmov instead of branches: inside heap sifts and bucket scans the
/// outcome is data-dependent and unpredictable, and mispredictions were the
/// dominant cost of the sift loops when this was measured.
inline bool EarlierThan(const CalEntry& a, const CalEntry& b) {
  return (a.time < b.time) | ((a.time == b.time) & (a.seq < b.seq));
}

/// Which event-calendar structure a Simulation uses. Both backends implement
/// the identical (time, seq) contract; results are byte-identical either way,
/// which is what makes same-binary A/B comparisons trustworthy.
enum class CalendarBackend : uint8_t {
  kDefault = 0,        // Resolve from EMSIM_CALENDAR (unset -> heap).
  kHeap = 1,           // Indexed 4-ary min-heap: O(log n), cache-friendly.
  kCalendarQueue = 2,  // Brown 1988 bucket calendar: amortized O(1).
};

/// Parses "heap" / "cq" (alias "calendar-queue"); empty selects kDefault.
/// Returns false (leaving `out` untouched) on anything else.
bool ParseCalendarBackend(std::string_view text, CalendarBackend* out);

/// Canonical spelling for specs, CLI flags and bench labels.
const char* CalendarBackendName(CalendarBackend backend);

/// The process-wide default backend: EMSIM_CALENDAR resolved once on first
/// use (unset or empty means heap; an unparseable value aborts rather than
/// silently benchmarking the wrong structure).
CalendarBackend DefaultCalendarBackend();

/// Maps kDefault to DefaultCalendarBackend(), leaving explicit choices alone.
CalendarBackend ResolveCalendarBackend(CalendarBackend requested);

/// Calendar queue after Brown (1988): a power-of-two array of time-bucketed,
/// sorted lists plus a cursor that sweeps one "year" (nbuckets * width) per
/// lap. With width adapted so each bucket holds O(1) events, Push and PopMin
/// are amortized O(1) versus the heap's O(log n) sift — the win grows with
/// calendar population.
///
/// Determinism: an entry's bucket is derived from VirtualBucket(time), and
/// the due-test applies the *same* expression to the bucket front, so the FP
/// rounding of time/width can never disagree between insert and scan. Within
/// a bucket entries are kept sorted by EarlierThan, and the fallback search
/// (sparse calendars) compares real (time, seq) keys — the pop sequence is
/// identical to the heap backend's for every input.
class CalendarQueue {
 public:
  CalendarQueue() { buckets_.resize(kMinBuckets); }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Push/PopMin/PeekMin are defined inline below the class: they are the
  // kernel's per-event hot path and must inline into Simulation's schedule
  // and dispatch functions (a cross-TU call per event measurably slows the
  // hold benchmark).
  void Push(CalEntry entry);

  /// The earliest pending entry; requires !empty(). May scan (result cached
  /// until the next Push/PopMin).
  const CalEntry& PeekMin();

  /// Removes and returns the earliest pending entry; requires !empty().
  CalEntry PopMin();

  /// Appends every pending entry to `out` in pop order and empties the queue
  /// (used by the kernel's seq renormalization).
  void DrainInOrder(std::vector<CalEntry>* out);

  /// Introspection for tests: current bucket-array size and bucket width.
  size_t NumBuckets() const { return buckets_.size(); }
  SimTime BucketWidth() const { return width_; }

 private:
  static constexpr size_t kMinBuckets = 4;
  // Largest virtual bucket index: below 2^53 so the double -> uint64 cast is
  // exact, and far above any simulated-time / width ratio a model reaches.
  // Times past the clamp all share one bucket, which is slow but correct
  // (the bucket stays sorted).
  static constexpr double kMaxVirtual = 9.0e15;
  // Entries examined when estimating the bucket width at a resize.
  static constexpr size_t kWidthSample = 25;

  /// Multiplying by the cached reciprocal is one rounding step away from
  /// dividing by width_, which is fine: the mapping only has to be monotone
  /// in `t` and self-consistent between insert and due-test (both call this
  /// function), not equal to exact division. A divide on every push and scan
  /// probe was the single most expensive instruction in the push path.
  uint64_t VirtualBucket(SimTime t) const {
    double q = t * inv_width_;
    if (q >= kMaxVirtual) {
      q = kMaxVirtual;
    }
    return static_cast<uint64_t>(q);
  }

  void SetWidth(SimTime width) {
    width_ = width;
    inv_width_ = 1.0 / width;
  }

  size_t BucketIndex(uint64_t virtual_bucket) const {
    return static_cast<size_t>(virtual_bucket & (buckets_.size() - 1));
  }

  /// Sorted insert (scan from the back: event traffic is mostly ascending in
  /// time, so the common case is an append).
  void InsertSorted(std::vector<CalEntry>& bucket, CalEntry entry);

  /// Locates the earliest entry, advancing the cursor; fills peek_bucket_.
  void FindMin();

  /// Direct search over bucket fronts when a whole year holds nothing due
  /// (sparse calendar) — the cold tail of FindMin, kept out of line.
  void FindMinSparse();

  /// Rebuilds with `new_bucket_count` buckets and a freshly estimated width.
  void Resize(size_t new_bucket_count);

  std::vector<std::vector<CalEntry>> buckets_;  // Power-of-two count.
  size_t size_ = 0;
  SimTime width_ = 1.0;
  SimTime inv_width_ = 1.0;  // Cached 1/width_ (see VirtualBucket).
  uint64_t cur_virtual_ = 0;  // Virtual bucket the cursor has reached.
  size_t peek_bucket_ = 0;
  bool peek_valid_ = false;
  std::vector<CalEntry> resize_scratch_;  // Recycled redistribution buffer.
};

inline void CalendarQueue::InsertSorted(std::vector<CalEntry>& bucket, CalEntry entry) {
  // First use of a bucket: reserve a few slots at once. Growing 1-2-4 per
  // bucket was the dominant allocation source when a calendar fills from
  // cold (hundreds of buckets, each paying 2-3 mallocs for its first few
  // entries); one 64-byte reservation covers the typical O(1) occupancy.
  // On overflow, quadruple instead of libstdc++'s doubling: the resize
  // hysteresis keeps steady-state load in [1/2, 4], so a bucket that
  // outgrows 4 is a transient hot spot — 4->16 absorbs it in one malloc
  // where 4->8->16 pays two and kept a measurable allocs/op residual in
  // the n=4096 hold model (~0.045/op from capacity creep).
  if (bucket.size() == bucket.capacity()) {
    bucket.reserve(bucket.capacity() == 0 ? 4 : 4 * bucket.capacity());
  }
  size_t i = bucket.size();
  bucket.push_back(entry);
  while (i > 0 && EarlierThan(entry, bucket[i - 1])) {
    bucket[i] = bucket[i - 1];
    --i;
  }
  bucket[i] = entry;
}

inline void CalendarQueue::Push(CalEntry entry) {
  uint64_t vb = VirtualBucket(entry.time);
  // An insert behind the cursor (same tick as the entry just popped, or a
  // deliberate rewind) pulls the cursor back so the scan cannot skip it.
  if (vb < cur_virtual_) {
    cur_virtual_ = vb;
  }
  InsertSorted(buckets_[BucketIndex(vb)], entry);
  ++size_;
  peek_valid_ = false;
  // Quadruple on growth at a load of 4: a filling calendar pays far fewer
  // redistribution passes than doubling at load 2, and the smaller bucket
  // array keeps the headers cache-resident (a few entries per sorted bucket
  // cost nearly nothing to scan, while a miss on the bucket header costs a
  // memory round-trip on every push). Post-growth load is ~1, centered in
  // the [1/2, 4] hysteresis band against the shrink rule in PopMin.
  if (size_ > 4 * buckets_.size()) {
    Resize(4 * buckets_.size());
  }
}

inline void CalendarQueue::FindMin() {
  if (peek_valid_) {
    return;
  }
  EMSIM_CHECK(size_ > 0);
  const size_t nbuckets = buckets_.size();
  // Sweep at most one year from the cursor. The first bucket whose front is
  // due (its virtual bucket equals the cursor position being examined) holds
  // the global minimum: no pending entry has a virtual bucket below the
  // cursor (Push rewinds it), earlier positions held nothing due, and the
  // bucket itself is sorted.
  for (size_t i = 0; i < nbuckets; ++i) {
    const uint64_t position = cur_virtual_ + i;
    const std::vector<CalEntry>& bucket = buckets_[BucketIndex(position)];
    if (!bucket.empty() && VirtualBucket(bucket.front().time) <= position) {
      cur_virtual_ = position;
      peek_bucket_ = BucketIndex(position);
      peek_valid_ = true;
      return;
    }
  }
  FindMinSparse();
}

inline const CalEntry& CalendarQueue::PeekMin() {
  FindMin();
  return buckets_[peek_bucket_].front();
}

inline CalEntry CalendarQueue::PopMin() {
  FindMin();
  std::vector<CalEntry>& bucket = buckets_[peek_bucket_];
  CalEntry entry = bucket.front();
  bucket.erase(bucket.begin());
  --size_;
  peek_valid_ = false;
  // Shrink at half load, halving: the load lands back at ~1, centered in
  // the [1/2, 4] hysteresis band against the grow rule in Push, so an
  // oscillating population cannot thrash grow/shrink.
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
    Resize(buckets_.size() / 2);
  }
  return entry;
}

}  // namespace emsim::sim

#endif  // EMSIM_SIM_CALENDAR_H_

#include "obs/shared_registry.h"

namespace emsim::obs {

void SharedRegistry::IncrementCounter(const std::string& name, uint64_t n) {
  util::MutexLock lock(&mu_);
  registry_.GetCounter(name).Increment(n);
}

void SharedRegistry::SetGauge(const std::string& name, double value) {
  util::MutexLock lock(&mu_);
  registry_.GetGauge(name).Set(value);
}

void SharedRegistry::AddGauge(const std::string& name, double delta) {
  util::MutexLock lock(&mu_);
  registry_.GetGauge(name).Add(delta);
}

void SharedRegistry::UpdateTimeline(const std::string& name, double now,
                                    double value) {
  util::MutexLock lock(&mu_);
  registry_.GetTimeline(name).Update(now, value);
}

void SharedRegistry::FlushTimelines(double now) {
  util::MutexLock lock(&mu_);
  registry_.FlushTimelines(now);
}

std::vector<MetricsRegistry::Sample> SharedRegistry::Samples() const {
  util::MutexLock lock(&mu_);
  return registry_.Samples();
}

}  // namespace emsim::obs

#ifndef EMSIM_CACHE_BLOCK_CACHE_H_
#define EMSIM_CACHE_BLOCK_CACHE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "sim/event.h"
#include "sim/simulation.h"
#include "stats/time_weighted.h"
#include "util/check.h"

namespace emsim::cache {

/// Cumulative cache statistics.
struct CacheStats {
  uint64_t deposits = 0;
  uint64_t consumptions = 0;
  uint64_t reservations_granted = 0;   ///< Successful TryReserve calls.
  uint64_t reservations_denied = 0;    ///< Failed TryReserve calls.
  uint64_t blocks_reserved = 0;        ///< Total blocks across granted reservations.
  int64_t peak_occupancy = 0;          ///< Max of cached + reserved.
};

/// The RAM disk cache of the paper's system model: a budget of C block
/// frames shared by all runs, with explicit *reservations* for in-flight
/// reads so that the cached + in-flight total never exceeds capacity — the
/// property the conservative inter-run admission policy relies on.
///
/// The cache is pure mechanism: *what* to prefetch and *whether* to insist
/// on all-or-nothing admission are decided by the prefetch planner and the
/// merge driver (io/ and core/). Blocks are identified as (run, offset);
/// no data bytes are stored, per the paper's block-depletion model.
///
/// Consumption is strictly in offset order per run (a merge depletes a
/// run's blocks sequentially). Deposits normally arrive in order too, but
/// SSTF scheduling can reorder requests, so out-of-order deposits are
/// accepted and buffered until the leading block arrives.
class BlockCache {
 public:
  struct Options {
    int64_t capacity_blocks = 25;
    int num_runs = 25;
    /// Optional metrics registry; wires the "cache.occupancy" timeline and
    /// the deposit/denied-admission counters.
    obs::MetricsRegistry* metrics = nullptr;
  };

  BlockCache(sim::Simulation* sim, const Options& options);

  int64_t capacity() const { return capacity_; }
  int num_runs() const { return static_cast<int>(runs_.size()); }

  /// Blocks resident in the cache.
  int64_t CachedBlocks() const { return cached_total_; }

  /// Frames reserved for reads still in flight.
  int64_t ReservedBlocks() const { return reserved_total_; }

  /// Frames neither cached nor reserved.
  int64_t FreeBlocks() const { return capacity_ - cached_total_ - reserved_total_; }

  /// True if `run`'s *leading* block (the next one the merge will consume)
  /// is resident. Inline: the merge polls this on every block consumed and
  /// every fetch planned.
  bool HasLeadingBlock(int run) const {
    const RunSlot& slot = RunOf(run);
    return !slot.blocks.empty() && slot.blocks.front() == slot.next_consume;
  }

  /// Cached blocks held for `run`.
  int64_t CachedForRun(int run) const { return static_cast<int64_t>(RunOf(run).blocks.size()); }

  /// Reserved (in-flight) blocks for `run`.
  int64_t InFlightForRun(int run) const { return RunOf(run).reserved; }

  /// Offset the merge will consume next from `run`.
  int64_t NextConsumeOffset(int run) const { return RunOf(run).next_consume; }

  /// Attempts to reserve `n` frames for an in-flight read into `run`.
  /// All-or-nothing; returns false (and reserves nothing) if fewer than `n`
  /// frames are free.
  bool TryReserve(int run, int64_t n);

  /// Releases `n` reserved frames of `run` without depositing (a planned
  /// read that was abandoned or shrunk).
  void CancelReservation(int run, int64_t n);

  /// A reserved frame of `run` receives block `offset` from disk. Fires the
  /// run's deposit signal so waiting processes can recheck. Inline along
  /// with ConsumeLeading: the pair runs once per block transferred, which is
  /// the per-block unit of work the whole simulation scales by.
  void Deposit(int run, int64_t offset) {
    RunSlot& slot = RunOf(run);
    EMSIM_CHECK(slot.reserved >= 1 && "Deposit without reservation");
    slot.reserved -= 1;
    reserved_total_ -= 1;
    EMSIM_CHECK(offset >= slot.next_consume && "Deposit of an already-consumed offset");
    // Insert preserving ascending order; deposits are in order under FCFS so
    // the common case is an append.
    if (slot.blocks.empty() || offset > slot.blocks.back()) {
      slot.blocks.push_back(offset);
    } else {
      auto pos = std::lower_bound(slot.blocks.begin(), slot.blocks.end(), offset);
      EMSIM_CHECK(pos == slot.blocks.end() || *pos != offset);
      slot.blocks.insert(pos, offset);
    }
    cached_total_ += 1;
    ++stats_.deposits;
    if (metric_deposits_ != nullptr) {
      metric_deposits_->Increment();
    }
    NoteOccupancy();
    slot.signal->Fire();
  }

  /// Consumes (depletes) the leading cached block of `run`, freeing its
  /// frame. Returns the consumed offset. Requires HasLeadingBlock(run).
  int64_t ConsumeLeading(int run) {
    RunSlot& slot = RunOf(run);
    EMSIM_CHECK(HasLeadingBlock(run));
    int64_t offset = slot.blocks.front();
    slot.blocks.pop_front();
    slot.next_consume = offset + 1;
    cached_total_ -= 1;
    ++stats_.consumptions;
    NoteOccupancy();
    return offset;
  }

  /// Pulse signal fired on every deposit into `run`; processes waiting for
  /// a block of `run` wait on this and recheck HasLeadingBlock.
  sim::Signal& DepositSignal(int run) { return *RunOf(run).signal; }

  const CacheStats& stats() const { return stats_; }

  /// Time-averaged occupancy (cached blocks).
  double MeanOccupancy() const { return occupancy_.Average(); }

  /// Closes the occupancy statistic window.
  void FlushStats();

  /// Aborts if internal accounting is inconsistent (used by tests and
  /// DCHECK-style sweeps).
  void CheckInvariants() const;

 private:
  struct RunSlot {
    std::deque<int64_t> blocks;  ///< Cached offsets, ascending.
    int64_t reserved = 0;        ///< In-flight frames.
    int64_t next_consume = 0;    ///< Next offset the merge will deplete.
    std::unique_ptr<sim::Signal> signal;
  };

  // Unchecked in release builds: run ids come from the planner, which is
  // constructed against the same num_runs.
  RunSlot& RunOf(int run) {
    EMSIM_DCHECK(run >= 0 && static_cast<size_t>(run) < runs_.size());
    return runs_[static_cast<size_t>(run)];
  }
  const RunSlot& RunOf(int run) const {
    EMSIM_DCHECK(run >= 0 && static_cast<size_t>(run) < runs_.size());
    return runs_[static_cast<size_t>(run)];
  }

  void NoteOccupancy() {
    occupancy_.Update(sim_->Now(), static_cast<double>(cached_total_));
    if (metric_occupancy_ != nullptr) {
      metric_occupancy_->Update(sim_->Now(), static_cast<double>(cached_total_));
    }
  }

  sim::Simulation* sim_;
  int64_t capacity_;
  int64_t cached_total_ = 0;
  int64_t reserved_total_ = 0;
  std::vector<RunSlot> runs_;
  CacheStats stats_;
  stats::TimeWeighted occupancy_;

  // Optional registry mirrors (null unless Options.metrics was set).
  obs::Timeline* metric_occupancy_ = nullptr;
  obs::Counter* metric_deposits_ = nullptr;
  obs::Counter* metric_denied_ = nullptr;
};

}  // namespace emsim::cache

#endif  // EMSIM_CACHE_BLOCK_CACHE_H_

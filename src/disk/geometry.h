#ifndef EMSIM_DISK_GEOMETRY_H_
#define EMSIM_DISK_GEOMETRY_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace emsim::disk {

/// Physical layout of one disk unit. Defaults reproduce the drive used in
/// the paper (reconstructed in DESIGN.md): 16 heads x 52 sectors/track x
/// 512 B sectors = 425,984 B per cylinder = 104 blocks of 4,096 B. The paper
/// models the 4,096-B transfer unit by grouping 8 physical sectors; timing
/// derives from the physical track (8/52 of a revolution per block).
struct Geometry {
  int heads = 16;
  int sectors_per_track = 52;
  int cylinders = 625;
  int bytes_per_sector = 512;
  int block_bytes = 4096;

  /// Physical sectors forming one transfer block.
  int SectorsPerBlock() const { return block_bytes / bytes_per_sector; }

  /// Blocks stored per cylinder (the paper's 104).
  int BlocksPerCylinder() const {
    return heads * sectors_per_track * bytes_per_sector / block_bytes;
  }

  /// Total block capacity of the disk.
  int64_t TotalBlocks() const {
    return static_cast<int64_t>(cylinders) * BlocksPerCylinder();
  }

  /// Cylinder holding the given disk-local block index.
  int64_t CylinderOf(int64_t block) const { return block / BlocksPerCylinder(); }

  /// Validates internal consistency (positive dimensions, block size an
  /// exact multiple of the sector size, at least one block per cylinder).
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace emsim::disk

#endif  // EMSIM_DISK_GEOMETRY_H_

#ifndef EMSIM_UTIL_THREAD_ANNOTATIONS_H_
#define EMSIM_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (abseil-style). On Clang
/// these expand to `__attribute__((...))` capability annotations consumed by
/// `-Wthread-safety`; on every other compiler they expand to nothing, so the
/// annotated tree stays portable. The annotations are one half of the
/// concurrency static-analysis tier: Clang checks them intra-TU at compile
/// time, and `tools/lint/emsim_analyze.py` reads the same macro names
/// cross-TU (shared-state-unguarded, lock-order-cycle, lock-held-blocking).
///
/// Usage sketch:
///
///   class Queue {
///     util::Mutex mu_;
///     std::deque<int> items_ EMSIM_GUARDED_BY(mu_);
///     void PushLocked(int v) EMSIM_REQUIRES(mu_);
///   };

#if defined(__clang__) && defined(__has_attribute)
#define EMSIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define EMSIM_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define EMSIM_CAPABILITY(x) EMSIM_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define EMSIM_SCOPED_CAPABILITY EMSIM_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define EMSIM_GUARDED_BY(x) EMSIM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the named capability.
#define EMSIM_PT_GUARDED_BY(x) EMSIM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it held).
#define EMSIM_REQUIRES(...) \
  EMSIM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability and returns with it held.
#define EMSIM_ACQUIRE(...) \
  EMSIM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases a held capability before returning.
#define EMSIM_RELEASE(...) \
  EMSIM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts acquisition; first argument is the success return value.
#define EMSIM_TRY_ACQUIRE(...) \
  EMSIM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be entered with the capability held (deadlock guard).
#define EMSIM_EXCLUDES(...) EMSIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares a lock-acquisition ordering edge checked by the analysis.
#define EMSIM_ACQUIRED_BEFORE(...) \
  EMSIM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define EMSIM_ACQUIRED_AFTER(...) \
  EMSIM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to a capability-guarded object.
#define EMSIM_RETURN_CAPABILITY(x) EMSIM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis (e.g. adopt-lock plumbing inside util::CondVar). Every use needs
/// a comment explaining why the analysis cannot model it.
#define EMSIM_NO_THREAD_SAFETY_ANALYSIS \
  EMSIM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // EMSIM_UTIL_THREAD_ANNOTATIONS_H_

#ifndef EMSIM_UTIL_CHECK_H_
#define EMSIM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// EMSIM_CHECK(cond): fatal invariant check, enabled in all build modes.
/// EMSIM_CHECK_EQ/NE(a, b): fatal comparison checks that print both values.
/// EMSIM_DCHECK(cond): fatal invariant check, enabled only in debug builds.
///
/// These are used for programming errors (broken invariants), never for
/// recoverable conditions — those return Status.

#define EMSIM_CHECK(cond)                                                           \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "EMSIM_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                          \
      std::abort();                                                                 \
    }                                                                               \
  } while (false)

#define EMSIM_CHECK_MSG(cond, msg)                                                     \
  do {                                                                                 \
    if (!(cond)) {                                                                     \
      std::fprintf(stderr, "EMSIM_CHECK failed at %s:%d: %s (%s)\n", __FILE__,         \
                   __LINE__, #cond, (msg));                                            \
      std::abort();                                                                    \
    }                                                                                  \
  } while (false)

namespace emsim::internal {

/// Stringifies a checked operand for the failure message. Values without a
/// stream inserter would fail to compile, so the comparison macros only
/// accept streamable operands — every type they are used with today.
template <typename T>
std::string CheckOpValue(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace emsim::internal

#define EMSIM_CHECK_OP_IMPL(a, b, op)                                                  \
  do {                                                                                 \
    const auto& _emsim_check_a = (a);                                                  \
    const auto& _emsim_check_b = (b);                                                  \
    if (!(_emsim_check_a op _emsim_check_b)) {                                         \
      std::fprintf(stderr, "EMSIM_CHECK failed at %s:%d: %s %s %s (%s vs %s)\n",       \
                   __FILE__, __LINE__, #a, #op, #b,                                    \
                   ::emsim::internal::CheckOpValue(_emsim_check_a).c_str(),            \
                   ::emsim::internal::CheckOpValue(_emsim_check_b).c_str());           \
      std::abort();                                                                    \
    }                                                                                  \
  } while (false)

#define EMSIM_CHECK_EQ(a, b) EMSIM_CHECK_OP_IMPL(a, b, ==)
#define EMSIM_CHECK_NE(a, b) EMSIM_CHECK_OP_IMPL(a, b, !=)

#ifdef NDEBUG
// The condition is still type-checked (and the variables it references are
// "used") in release builds, but never evaluated: sizeof's operand is an
// unevaluated context.
#define EMSIM_DCHECK(cond)            \
  do {                                \
    (void)sizeof((cond) ? 1 : 0);     \
  } while (false)
#else
#define EMSIM_DCHECK(cond) EMSIM_CHECK(cond)
#endif

#endif  // EMSIM_UTIL_CHECK_H_

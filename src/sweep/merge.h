#ifndef EMSIM_SWEEP_MERGE_H_
#define EMSIM_SWEEP_MERGE_H_

#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/status.h"

namespace emsim::sweep {

/// One shard artifact with the label used in diagnostics — the file path for
/// on-disk artifacts, so a corrupt shard names its culprit file.
struct NamedArtifact {
  std::string name;      ///< Diagnostic label (file path for disk artifacts).
  std::string contents;  ///< The artifact document, footer included if sealed.
};

/// Merges decoded shard artifacts (as raw JSON documents) for `units` back
/// into per-unit aggregates.
///
/// Determinism contract (pinned by sweep_shard_test): for any shard count
/// and any assignment of shards to workers, the merged vector is
/// bit-identical to what core::RunSweep(units, ...) computes in one
/// process — trials are re-aggregated in global task order from exact
/// round-tripped per-trial results. Consequently the JSON rendered from the
/// merged aggregates is byte-identical to the single-process artifact.
///
/// Validation: every artifact's spec digest must match `units`; together
/// the artifacts must cover every task index exactly once (duplicate shard
/// indices with identical ranges are tolerated — a resubmitted straggler
/// may race its first attempt — but conflicting or missing coverage is an
/// error). A captured task failure surfaces as the failure with the lowest
/// global task index, formatted exactly like the single-process runners'
/// abort: "sweep task <i> failed: <status>".
Result<std::vector<core::ExperimentResult>> MergeShardArtifacts(
    const std::vector<core::SweepUnit>& units, const std::vector<std::string>& artifacts);

/// Same merge over *sealed* on-disk artifacts: every file's integrity footer
/// is verified and stripped (UnsealShardArtifact) before its payload is
/// trusted, and every validation error is prefixed with the culprit
/// artifact's name. A truncated body, a bit-flipped payload under a stale
/// footer, and a digest-mismatched shard all fail here with the file named.
Result<std::vector<core::ExperimentResult>> MergeShardArtifacts(
    const std::vector<core::SweepUnit>& units, const std::vector<NamedArtifact>& artifacts);

}  // namespace emsim::sweep

#endif  // EMSIM_SWEEP_MERGE_H_

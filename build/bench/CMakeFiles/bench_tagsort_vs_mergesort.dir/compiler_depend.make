# Empty compiler generated dependencies file for bench_tagsort_vs_mergesort.
# This may be replaced when dependencies are built.

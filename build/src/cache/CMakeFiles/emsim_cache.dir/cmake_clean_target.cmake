file(REMOVE_RECURSE
  "libemsim_cache.a"
)

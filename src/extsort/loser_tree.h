#ifndef EMSIM_EXTSORT_LOSER_TREE_H_
#define EMSIM_EXTSORT_LOSER_TREE_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/check.h"

namespace emsim::extsort {

/// A tournament tree of losers (Knuth 5.4.1) for k-way merging: after the
/// winner is consumed, finding the next costs ceil(log2 k) comparisons
/// instead of k-1. Exhausted sources lose every match, so they drain out of
/// the tree without special casing.
///
/// Usage:
///   LoserTree<Record> tree(k);
///   for (int i = 0; i < k; ++i)
///     has_item ? tree.SetInitial(i, item) : tree.MarkExhausted(i);
///   tree.Build();
///   while (!tree.Empty()) {
///     consume(tree.WinnerSource(), tree.WinnerItem());
///     more ? tree.ReplaceWinner(next) : tree.ExhaustWinner();
///   }
template <typename Item, typename Less = std::less<Item>>
class LoserTree {
 public:
  explicit LoserTree(int num_sources, Less less = Less()) : k_(num_sources), less_(less) {
    EMSIM_CHECK(num_sources >= 1);
    items_.resize(static_cast<size_t>(k_));
    alive_.assign(static_cast<size_t>(k_), false);
    losers_.assign(static_cast<size_t>(k_), -1);  // [0] champion, [1..k-1] losers.
  }

  /// Installs source i's first item (before Build).
  void SetInitial(int source, Item item) {
    EMSIM_CHECK(!built_);
    items_[static_cast<size_t>(source)] = std::move(item);
    alive_[static_cast<size_t>(source)] = true;
  }

  /// Declares source i empty from the start (before Build).
  void MarkExhausted(int source) {
    EMSIM_CHECK(!built_);
    alive_[static_cast<size_t>(source)] = false;
  }

  /// Plays the initial tournament. Must be called exactly once.
  void Build() {
    EMSIM_CHECK(!built_);
    built_ = true;
    if (k_ == 1) {
      losers_[0] = 0;
      return;
    }
    // Winners tournament bottom-up over the complete tree with leaves at
    // positions k..2k-1 (leaf k+i = source i); each internal node stores
    // its match's loser, the champion lands in losers_[0].
    std::vector<int> winners(static_cast<size_t>(2 * k_));
    for (int i = 0; i < k_; ++i) {
      winners[static_cast<size_t>(k_ + i)] = i;
    }
    for (int n = k_ - 1; n >= 1; --n) {
      int a = winners[static_cast<size_t>(2 * n)];
      int b = winners[static_cast<size_t>(2 * n + 1)];
      if (Beats(a, b)) {
        winners[static_cast<size_t>(n)] = a;
        losers_[static_cast<size_t>(n)] = b;
      } else {
        winners[static_cast<size_t>(n)] = b;
        losers_[static_cast<size_t>(n)] = a;
      }
    }
    losers_[0] = winners[1];
  }

  /// True when every source is exhausted.
  bool Empty() const {
    EMSIM_CHECK(built_);
    return losers_[0] < 0 || !alive_[static_cast<size_t>(losers_[0])];
  }

  /// Current winning source (requires !Empty()).
  int WinnerSource() const {
    EMSIM_CHECK(!Empty());
    return losers_[0];
  }

  /// Current winning item (requires !Empty()).
  const Item& WinnerItem() const { return items_[static_cast<size_t>(WinnerSource())]; }

  /// Replaces the winner's item with its source's next item and replays the
  /// winner's root-to-leaf path.
  void ReplaceWinner(Item item) {
    int s = WinnerSource();
    items_[static_cast<size_t>(s)] = std::move(item);
    Replay(s);
  }

  /// Marks the winning source exhausted and replays.
  void ExhaustWinner() {
    int s = WinnerSource();
    alive_[static_cast<size_t>(s)] = false;
    Replay(s);
  }

  int num_sources() const { return k_; }

 private:
  /// True if candidate a beats (sorts before) candidate b. Exhausted
  /// sources lose to everything; ties break by source id for stability.
  bool Beats(int a, int b) const {
    bool a_alive = alive_[static_cast<size_t>(a)];
    bool b_alive = alive_[static_cast<size_t>(b)];
    if (a_alive != b_alive) {
      return a_alive;
    }
    if (!a_alive) {
      return a < b;
    }
    const Item& ia = items_[static_cast<size_t>(a)];
    const Item& ib = items_[static_cast<size_t>(b)];
    if (less_(ia, ib)) {
      return true;
    }
    if (less_(ib, ia)) {
      return false;
    }
    return a < b;
  }

  void Replay(int source) {
    if (k_ == 1) {
      return;  // losers_[0] already holds the only source.
    }
    int w = source;
    for (int t = (source + k_) / 2; t >= 1; t /= 2) {
      int& loser = losers_[static_cast<size_t>(t)];
      if (Beats(loser, w)) {
        std::swap(loser, w);
      }
    }
    losers_[0] = w;
  }

  int k_;
  Less less_;
  std::vector<Item> items_;
  std::vector<bool> alive_;
  std::vector<int> losers_;
  bool built_ = false;
};

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_LOSER_TREE_H_

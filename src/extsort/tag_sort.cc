#include "extsort/tag_sort.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "extsort/external_sort.h"
#include "extsort/merger.h"
#include "extsort/record.h"
#include "extsort/run_formation.h"
#include "extsort/run_io.h"
#include "util/check.h"

namespace emsim::extsort {

const std::vector<uint8_t>* BlockLru::Get(int64_t block) {
  if (capacity_ == 0) {
    return nullptr;
  }
  auto it = map_.find(block);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->second;
}

void BlockLru::Put(int64_t block, std::vector<uint8_t> bytes) {
  if (capacity_ == 0) {
    return;
  }
  auto it = map_.find(block);
  if (it != map_.end()) {
    it->second->second = std::move(bytes);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(block, std::move(bytes));
  map_[block] = lru_.begin();
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

PackedRecordFile::PackedRecordFile(BlockDevice* device, size_t record_bytes)
    : device_(device),
      record_bytes_(record_bytes),
      records_per_block_(device->block_bytes() / record_bytes),
      scratch_(device->block_bytes()) {
  EMSIM_CHECK(device != nullptr);
  EMSIM_CHECK(record_bytes >= 8);
  EMSIM_CHECK(records_per_block_ >= 1);
}

int64_t PackedRecordFile::BlocksFor(uint64_t count) const {
  return static_cast<int64_t>((count + records_per_block_ - 1) / records_per_block_);
}

Status PackedRecordFile::WriteAll(std::span<const uint8_t> bytes, uint64_t count) {
  if (bytes.size() != count * record_bytes_) {
    return Status::InvalidArgument("byte span does not match the record count");
  }
  int64_t blocks = BlocksFor(count);
  for (int64_t b = 0; b < blocks; ++b) {
    std::fill(scratch_.begin(), scratch_.end(), uint8_t{0});
    size_t first = static_cast<size_t>(b) * records_per_block_;
    size_t n = std::min(records_per_block_, static_cast<size_t>(count) - first);
    std::memcpy(scratch_.data(), bytes.data() + first * record_bytes_, n * record_bytes_);
    EMSIM_RETURN_IF_ERROR(device_->Write(b, scratch_));
  }
  return Status::OK();
}

Status PackedRecordFile::ReadRecord(uint64_t index, std::span<uint8_t> out, BlockLru* lru) {
  if (out.size() != record_bytes_) {
    return Status::InvalidArgument("output span must be one record");
  }
  int64_t block = static_cast<int64_t>(index / records_per_block_);
  size_t within = (index % records_per_block_) * record_bytes_;
  if (lru != nullptr) {
    if (const std::vector<uint8_t>* cached = lru->Get(block)) {
      std::memcpy(out.data(), cached->data() + within, record_bytes_);
      return Status::OK();
    }
  }
  EMSIM_RETURN_IF_ERROR(device_->Read(block, scratch_));
  std::memcpy(out.data(), scratch_.data() + within, record_bytes_);
  if (lru != nullptr) {
    lru->Put(block, scratch_);
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> PackedRecordFile::ScanKeys(uint64_t count) {
  std::vector<uint64_t> keys;
  keys.reserve(count);
  int64_t blocks = BlocksFor(count);
  for (int64_t b = 0; b < blocks; ++b) {
    EMSIM_RETURN_IF_ERROR(device_->Read(b, scratch_));
    size_t first = static_cast<size_t>(b) * records_per_block_;
    size_t n = std::min(records_per_block_, static_cast<size_t>(count) - first);
    for (size_t i = 0; i < n; ++i) {
      uint64_t key = 0;
      std::memcpy(&key, scratch_.data() + i * record_bytes_, sizeof(key));
      keys.push_back(key);
    }
  }
  return keys;
}

Result<TagSortStats> TagSorter::Sort(BlockDevice* input, uint64_t count,
                                     BlockDevice* tag_scratch, BlockDevice* output) {
  if (count == 0) {
    return Status::InvalidArgument("nothing to sort");
  }
  PackedRecordFile in(input, options_.record_bytes);
  PackedRecordFile out(output, options_.record_bytes);
  TagSortStats stats;
  stats.records = count;

  // Phase 1: scan keys and external-sort the (key, position) tags.
  Result<std::vector<uint64_t>> keys = in.ScanKeys(count);
  if (!keys.ok()) {
    return keys.status();
  }
  std::vector<Record> tags;
  tags.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    tags.push_back({(*keys)[i], i});
  }
  ExternalSortOptions sort_options;
  sort_options.run_formation.memory_records = options_.tag_memory_records;
  ExternalSorter tag_sorter(sort_options);
  // Tag runs and the sorted tag file both live on the tag scratch device;
  // place the merged output after the runs.
  Result<RunFormationResult> runs = FormRuns(tags, tag_scratch, sort_options.run_formation);
  if (!runs.ok()) {
    return runs.status();
  }
  KWayMergeOptions merge_options;
  merge_options.output_start_block = runs->next_free_block;
  merge_options.record_depletion_trace = false;
  Result<MergeOutcome> merged = MergeRuns(tag_scratch, runs->runs, tag_scratch, merge_options);
  if (!merged.ok()) {
    return merged.status();
  }
  stats.tag_blocks_sorted = static_cast<uint64_t>(merged->output.num_blocks);

  // Phase 2: stream the sorted tags; gather each record by position.
  RunReader tag_reader(tag_scratch, merged->output, /*buffer_blocks=*/4);
  BlockLru lru(options_.permute_cache_blocks);
  std::vector<uint8_t> out_bytes;
  out_bytes.reserve(static_cast<size_t>(count) * options_.record_bytes);
  std::vector<uint8_t> record(options_.record_bytes);
  uint64_t reads_before = input->reads();
  Record tag;
  uint64_t previous_key = 0;
  bool have_previous = false;
  while (tag_reader.Next(&tag)) {
    if (have_previous && tag.key < previous_key) {
      return Status::Corruption("tag stream out of order");
    }
    previous_key = tag.key;
    have_previous = true;
    EMSIM_RETURN_IF_ERROR(in.ReadRecord(tag.value, record, &lru));
    out_bytes.insert(out_bytes.end(), record.begin(), record.end());
  }
  EMSIM_RETURN_IF_ERROR(tag_reader.status());
  if (out_bytes.size() != count * options_.record_bytes) {
    return Status::Internal("tag permutation lost records");
  }
  stats.permute_block_reads = input->reads() - reads_before;
  stats.lru_hits = lru.hits();

  EMSIM_RETURN_IF_ERROR(out.WriteAll(out_bytes, count));
  stats.output_blocks = out.BlocksFor(count);
  return stats;
}

}  // namespace emsim::extsort

#include <cmath>
#include <cstddef>
#include <numeric>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "analysis/equations.h"
#include "analysis/model_params.h"
#include "analysis/predictor.h"
#include "analysis/seek_distribution.h"
#include "analysis/urn_game.h"
#include "disk/disk_params.h"
#include "disk/layout.h"

namespace emsim::analysis {
namespace {

TEST(ModelParamsTest, PaperDefaults) {
  ModelParams p = ModelParams::Paper(25, 5);
  EXPECT_NEAR(p.transfer_ms, 2.5641, 1e-4);
  EXPECT_NEAR(p.rotational_ms, 8.3333, 1e-4);
  EXPECT_NEAR(p.run_cylinders, 9.6154, 1e-4);
  EXPECT_DOUBLE_EQ(p.seek_ms_per_cylinder, 0.01);
  EXPECT_EQ(p.TotalBlocks(), 25000);
}

TEST(ModelParamsTest, FromDiskAndLayout) {
  disk::DiskParams dp = disk::DiskParams::Paper();
  disk::RunLayout layout(
      disk::RunLayout::Options{50, 10, 1000, dp.geometry, disk::RunPlacement::kRoundRobin, {}});
  ModelParams p = ModelParams::From(dp, layout);
  EXPECT_EQ(p.num_runs, 50);
  EXPECT_EQ(p.num_disks, 10);
  EXPECT_NEAR(p.transfer_ms, dp.TransferMsPerBlock(), 1e-12);
  EXPECT_NEAR(p.run_cylinders, 1000.0 / 104.0, 1e-12);
}

TEST(SeekDistributionTest, PmfSumsToOne) {
  for (int k : {1, 2, 5, 25, 50}) {
    SeekDistribution dist(k);
    auto pmf = dist.PmfVector();
    double sum = std::accumulate(pmf.begin(), pmf.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "k=" << k;
  }
}

TEST(SeekDistributionTest, KwanBaerForm) {
  SeekDistribution dist(25);
  EXPECT_DOUBLE_EQ(dist.Pmf(0), 1.0 / 25);
  EXPECT_DOUBLE_EQ(dist.Pmf(1), 2.0 * 24 / 625);
  EXPECT_DOUBLE_EQ(dist.Pmf(24), 2.0 * 1 / 625);
  EXPECT_EQ(dist.Pmf(25), 0.0);
  EXPECT_EQ(dist.Pmf(-1), 0.0);
}

TEST(SeekDistributionTest, ExpectedMoves) {
  SeekDistribution dist(25);
  // Exact: (k^2 - 1)/(3k); and it must agree with the PMF.
  EXPECT_NEAR(dist.ExpectedMovesExact(), (625.0 - 1) / 75.0, 1e-12);
  auto pmf = dist.PmfVector();
  double mean = 0;
  for (size_t i = 0; i < pmf.size(); ++i) {
    mean += static_cast<double>(i) * pmf[i];
  }
  EXPECT_NEAR(mean, dist.ExpectedMovesExact(), 1e-10);
  EXPECT_NEAR(dist.ExpectedMovesApprox(), 25.0 / 3.0, 1e-12);
  EXPECT_NEAR(dist.ExpectedMovesApprox(), dist.ExpectedMovesExact(), 0.02);
}

TEST(SeekDistributionTest, CdfMonotoneToOne) {
  SeekDistribution dist(10);
  double prev = 0;
  for (int i = 0; i < 10; ++i) {
    double c = dist.Cdf(i);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(dist.Cdf(9), 1.0, 1e-12);
}

// The in-text numbers of Section 3 (paper values from the reconstruction in
// DESIGN.md).
TEST(EquationsTest, PaperSection31SingleDisk) {
  ModelParams k25 = ModelParams::Paper(25, 1);
  ModelParams k50 = ModelParams::Paper(50, 1);
  EXPECT_NEAR(Eq1NoPrefetchSingleDisk(k25), 11.699, 1e-3);
  EXPECT_NEAR(TotalMs(k25, Eq1NoPrefetchSingleDisk(k25)) / 1e3, 292.5, 0.1);
  EXPECT_NEAR(TotalMs(k50, Eq1NoPrefetchSingleDisk(k50)) / 1e3, 625.1, 0.2);
  EXPECT_NEAR(TotalMs(k25, Eq2IntraRunSingleDisk(k25, 10)) / 1e3, 86.9, 0.1);
  EXPECT_NEAR(TotalMs(k50, Eq2IntraRunSingleDisk(k50, 10)) / 1e3, 177.9, 0.1);
  // Lower bounds: pure transfer.
  EXPECT_NEAR(TotalMs(k25, LowerBoundPerBlockSingleDisk(k25)) / 1e3, 64.1, 0.1);
  EXPECT_NEAR(TotalMs(k50, LowerBoundPerBlockSingleDisk(k50)) / 1e3, 128.2, 0.1);
}

TEST(EquationsTest, PaperSection32MultiDisk) {
  ModelParams k25d5 = ModelParams::Paper(25, 5);
  ModelParams k50d10 = ModelParams::Paper(50, 10);
  EXPECT_NEAR(TotalMs(k25d5, Eq3NoPrefetchMultiDisk(k25d5)) / 1e3, 276.4, 0.1);
  EXPECT_NEAR(TotalMs(k50d10, Eq3NoPrefetchMultiDisk(k50d10)) / 1e3, 552.7, 0.3);
  EXPECT_NEAR(TotalMs(k25d5, Eq4IntraRunMultiDiskSync(k25d5, 10)) / 1e3, 85.3, 0.1);
  EXPECT_NEAR(TotalMs(k25d5, Eq4IntraRunMultiDiskSync(k25d5, 30)) / 1e3, 71.2, 0.1);
  EXPECT_NEAR(TotalMs(k25d5, Eq5InterRunSync(k25d5, 10)) / 1e3, 19.8, 0.1);
  EXPECT_NEAR(Eq5InterRunSync(k25d5, 10), 0.794, 1e-3);
  EXPECT_NEAR(TotalMs(k25d5, LowerBoundPerBlockMultiDisk(k25d5)) / 1e3, 12.8, 0.1);
}

TEST(EquationsTest, LargeNLimits) {
  ModelParams p = ModelParams::Paper(25, 5);
  // Intra-run per-block time approaches T as N grows.
  EXPECT_NEAR(Eq2IntraRunSingleDisk(p, 100000), p.transfer_ms, 1e-3);
  EXPECT_NEAR(Eq4IntraRunMultiDiskSync(p, 100000), p.transfer_ms, 1e-3);
  // Inter-run approaches T/D.
  EXPECT_NEAR(Eq5InterRunSync(p, 100000), p.transfer_ms / 5, 1e-3);
}

TEST(EquationsTest, MonotoneInN) {
  ModelParams p = ModelParams::Paper(50, 5);
  double prev = 1e18;
  for (int n = 1; n <= 64; n *= 2) {
    double tau = Eq4IntraRunMultiDiskSync(p, n);
    EXPECT_LT(tau, prev);
    prev = tau;
  }
}

TEST(EquationsTest, ExpectedMaxUniform) {
  EXPECT_DOUBLE_EQ(ExpectedMaxUniform(10.0, 1), 5.0);
  EXPECT_DOUBLE_EQ(ExpectedMaxUniform(10.0, 4), 8.0);
  EXPECT_NEAR(ExpectedMaxUniform(2 * 8.3333, 5), 2 * 8.3333 * 5 / 6.0, 1e-9);
}

TEST(UrnGameTest, PaperOverlapValues) {
  EXPECT_NEAR(UrnGame(5).ExpectedLength(), 2.51, 0.005);
  EXPECT_NEAR(UrnGame(10).ExpectedLength(), 3.66, 0.005);
  EXPECT_NEAR(UrnGame(20).ExpectedLength(), 5.29, 0.005);
}

TEST(UrnGameTest, PmfSumsToOne) {
  for (int d : {1, 2, 3, 5, 10, 32}) {
    UrnGame game(d);
    auto pmf = game.PmfVector();
    double sum = std::accumulate(pmf.begin(), pmf.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "D=" << d;
  }
}

TEST(UrnGameTest, SurvivalRecurrence) {
  UrnGame game(5);
  EXPECT_DOUBLE_EQ(game.SurvivalQ(1), 1.0);
  EXPECT_DOUBLE_EQ(game.SurvivalQ(2), 0.8);
  EXPECT_DOUBLE_EQ(game.SurvivalQ(3), 0.48);
  EXPECT_DOUBLE_EQ(game.SurvivalQ(6), 0.0);
  // E = sum of survival probabilities.
  double sum = 0;
  for (int j = 1; j <= 5; ++j) {
    sum += game.SurvivalQ(j);
  }
  EXPECT_NEAR(game.ExpectedLength(), sum, 1e-12);
}

TEST(UrnGameTest, DegenerateSingleDisk) {
  UrnGame game(1);
  EXPECT_DOUBLE_EQ(game.ExpectedLength(), 1.0);
  EXPECT_DOUBLE_EQ(game.LengthPmf(1), 1.0);
}

TEST(UrnGameTest, AsymptoticFormConverges) {
  // sqrt(pi D/2) - 1/3 approaches the exact value as D grows.
  for (int d : {20, 50, 100}) {
    UrnGame game(d);
    double rel = std::fabs(game.AsymptoticLength() - game.ExpectedLength()) /
                 game.ExpectedLength();
    EXPECT_LT(rel, 0.02) << "D=" << d;
  }
}

TEST(UrnGameTest, ExpectedLengthGrowsSublinearly) {
  // The paper's headline: concurrency ~ sqrt(D), far from D.
  EXPECT_LT(UrnGame(100).ExpectedLength(), 14.0);
  EXPECT_GT(UrnGame(100).ExpectedLength(), 12.0);
}

TEST(PredictorTest, ClassifiesScenarios) {
  EXPECT_EQ(ClassifyScenario(false, true, 1, 1), Scenario::kNoPrefetchSingleDisk);
  EXPECT_EQ(ClassifyScenario(false, false, 1, 10), Scenario::kIntraRunSingleDisk);
  EXPECT_EQ(ClassifyScenario(false, false, 5, 1), Scenario::kNoPrefetchMultiDisk);
  EXPECT_EQ(ClassifyScenario(false, true, 5, 10), Scenario::kIntraRunMultiDiskSync);
  EXPECT_EQ(ClassifyScenario(false, false, 5, 10), Scenario::kIntraRunMultiDiskUnsync);
  EXPECT_EQ(ClassifyScenario(true, true, 5, 10), Scenario::kInterRunSync);
  EXPECT_EQ(ClassifyScenario(true, false, 5, 10), Scenario::kInterRunUnsyncBound);
}

TEST(PredictorTest, PredictionsMatchEquations) {
  ModelParams p = ModelParams::Paper(25, 5);
  Prediction pred = Predict(p, Scenario::kInterRunSync, 10);
  EXPECT_NEAR(pred.per_block_ms, Eq5InterRunSync(p, 10), 1e-12);
  EXPECT_NEAR(pred.total_ms, TotalMs(p, pred.per_block_ms), 1e-9);
  EXPECT_FALSE(pred.asymptotic);
  EXPECT_FALSE(pred.formula.empty());

  Prediction unsync = Predict(p, Scenario::kIntraRunMultiDiskUnsync, 30);
  EXPECT_TRUE(unsync.asymptotic);
  EXPECT_NEAR(unsync.per_block_ms,
              Eq4IntraRunMultiDiskSync(p, 30) / UrnGame(5).ExpectedLength(), 1e-12);
  // Paper: 71.2 / 2.51 = 28.4 s.
  EXPECT_NEAR(unsync.total_ms / 1e3, 28.4, 0.1);
}

TEST(PredictorTest, UnsyncIntraBeatsSyncByUrnFactor) {
  ModelParams p = ModelParams::Paper(50, 10);
  double sync = Predict(p, Scenario::kIntraRunMultiDiskSync, 30).total_ms;
  double unsync = Predict(p, Scenario::kIntraRunMultiDiskUnsync, 30).total_ms;
  EXPECT_NEAR(sync / unsync, UrnGame(10).ExpectedLength(), 1e-9);
  // Paper: 142.4 / 3.66 = 38.9 s.
  EXPECT_NEAR(unsync / 1e3, 38.9, 0.2);
}

TEST(PredictorTest, ScenarioNamesUnique) {
  std::set<std::string> names;
  for (auto s :
       {Scenario::kNoPrefetchSingleDisk, Scenario::kIntraRunSingleDisk,
        Scenario::kNoPrefetchMultiDisk, Scenario::kIntraRunMultiDiskSync,
        Scenario::kIntraRunMultiDiskUnsync, Scenario::kInterRunSync,
        Scenario::kInterRunUnsyncBound}) {
    names.insert(ScenarioName(s));
  }
  EXPECT_EQ(names.size(), 7u);
}

}  // namespace
}  // namespace emsim::analysis

#ifndef EMSIM_UTIL_LOGGING_H_
#define EMSIM_UTIL_LOGGING_H_

#include <string>

namespace emsim {

/// Severity levels for the library logger.
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

/// Minimal leveled logger writing to stderr. The simulator logs nothing at or
/// above kInfo by default so benchmark output stays clean; tests may lower
/// the threshold to trace event scheduling.
class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  bool Enabled(LogLevel level) const { return level >= level_; }

  /// Emits one line: "[LEVEL] message".
  void Log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarning;
};

const char* LogLevelName(LogLevel level);

}  // namespace emsim

/// Convenience macros; the message expression is only evaluated when enabled.
#define EMSIM_LOG(level, msg)                               \
  do {                                                      \
    if (::emsim::Logger::Get().Enabled(level)) {            \
      ::emsim::Logger::Get().Log(level, (msg));             \
    }                                                       \
  } while (false)

#define EMSIM_LOG_DEBUG(msg) EMSIM_LOG(::emsim::LogLevel::kDebug, msg)
#define EMSIM_LOG_INFO(msg) EMSIM_LOG(::emsim::LogLevel::kInfo, msg)
#define EMSIM_LOG_WARN(msg) EMSIM_LOG(::emsim::LogLevel::kWarning, msg)
#define EMSIM_LOG_ERROR(msg) EMSIM_LOG(::emsim::LogLevel::kError, msg)

#endif  // EMSIM_UTIL_LOGGING_H_

#include "sweep/json_value.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "util/str.h"

namespace emsim::sweep {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    JsonValue value;
    EMSIM_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at offset %zu", what, pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    // Nesting depth guard: artifacts are machine-written and shallow; a
    // hostile deep document must not overflow the stack.
    if (++depth_ > 64) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    Status status;
    switch (text_[pos_]) {
      case '{':
        status = ParseObject(out);
        break;
      case '[':
        status = ParseArray(out);
        break;
      case '"':
        out->kind = JsonValue::Kind::kString;
        status = ParseString(&out->string);
        break;
      case 't':
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        if (ConsumeWord("true")) {
          out->bool_value = true;
        } else if (ConsumeWord("false")) {
          out->bool_value = false;
        } else {
          status = Error("invalid literal");
        }
        break;
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        if (!ConsumeWord("null")) {
          status = Error("invalid literal");
        }
        break;
      default:
        status = ParseNumber(out);
        break;
    }
    --depth_;
    return status;
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) {
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      EMSIM_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      JsonValue value;
      EMSIM_RETURN_IF_ERROR(ParseValue(&value));
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return Status::OK();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) {
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      EMSIM_RETURN_IF_ERROR(ParseValue(&value));
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return Status::OK();
      }
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return Status::OK();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // JsonWriter only escapes control characters, so a one-byte
          // reconstruction is exact for everything it emits.
          if (code > 0xFF) {
            return Error("unsupported \\u escape above U+00FF");
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    out->kind = JsonValue::Kind::kNumber;
    if (Consume('-')) {
      out->is_negative = true;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start + (out->is_negative ? 1u : 0u)) {
      pos_ = start;
      return Error("invalid number");
    }
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return Error("invalid number");
    }
    out->is_integral = integral;
    if (integral) {
      errno = 0;
      const char* digits = token.c_str() + (out->is_negative ? 1 : 0);
      out->magnitude = std::strtoull(digits, &end, 10);
      if (errno == ERANGE) {
        pos_ = start;
        return Error("integer out of range");
      }
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : fields) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace emsim::sweep

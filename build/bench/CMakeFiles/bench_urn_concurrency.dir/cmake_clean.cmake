file(REMOVE_RECURSE
  "CMakeFiles/bench_urn_concurrency.dir/bench_urn_concurrency.cc.o"
  "CMakeFiles/bench_urn_concurrency.dir/bench_urn_concurrency.cc.o.d"
  "bench_urn_concurrency"
  "bench_urn_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_urn_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "core/config.h"
#include "workload/experiment_spec.h"

#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace emsim::workload {
namespace {

constexpr char kSpec[] = R"(
# shared defaults
trials = 3
disks = 5
blocks = 500

[baseline]
runs = 25
strategy = demand-run-only
n = 1
sync = unsync

[best]
runs = 25
strategy = all-disks-one-run
n = 10
cache = 1200
admission = greedy
victim = fewest-buffered
depletion = zipf
zipf_theta = 0.5
cpu_ms = 0.2
write_traffic = separate
write_disks = 2
write_batch = 20
)";

TEST(ExperimentSpecTest, ParsesSectionsWithDefaults) {
  auto specs = ParseExperimentSpec(kSpec);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 2u);

  const ExperimentSpec& baseline = (*specs)[0];
  EXPECT_EQ(baseline.name, "baseline");
  EXPECT_EQ(baseline.trials, 3);          // Inherited default.
  EXPECT_EQ(baseline.config.num_disks, 5);
  EXPECT_EQ(baseline.config.blocks_per_run, 500);
  EXPECT_EQ(baseline.config.num_runs, 25);
  EXPECT_EQ(baseline.config.prefetch_depth, 1);
  EXPECT_EQ(baseline.config.strategy, core::Strategy::kDemandRunOnly);
  EXPECT_EQ(baseline.config.sync, core::SyncMode::kUnsynchronized);

  const ExperimentSpec& best = (*specs)[1];
  EXPECT_EQ(best.config.strategy, core::Strategy::kAllDisksOneRun);
  EXPECT_EQ(best.config.cache_blocks, 1200);
  EXPECT_EQ(best.config.admission, core::AdmissionPolicy::kGreedy);
  EXPECT_EQ(best.config.victim, core::VictimPolicy::kFewestBuffered);
  EXPECT_EQ(best.config.depletion, core::DepletionKind::kZipf);
  EXPECT_DOUBLE_EQ(best.config.zipf_theta, 0.5);
  EXPECT_DOUBLE_EQ(best.config.cpu_ms_per_block, 0.2);
  EXPECT_EQ(best.config.write_traffic, core::WriteTraffic::kSeparateDisks);
  EXPECT_EQ(best.config.num_write_disks, 2);
  EXPECT_EQ(best.config.write_batch_blocks, 20);
}

TEST(ExperimentSpecTest, ErrorsCarryLineNumbers) {
  auto r1 = ParseExperimentSpec("[a]\nbogus_key = 1\n");
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line 2"), std::string::npos);

  auto r2 = ParseExperimentSpec("[a]\nruns = abc\n");
  EXPECT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("line 2"), std::string::npos);

  auto r3 = ParseExperimentSpec("[a]\nstrategy = warp-drive\n");
  EXPECT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("warp-drive"), std::string::npos);
}

TEST(ExperimentSpecTest, ErrorsNameSourceFileWhenGiven) {
  auto r1 = ParseExperimentSpec("[a]\nbogus_key = 1\n", "specs/paper.ini");
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("specs/paper.ini:2"), std::string::npos)
      << r1.status().ToString();

  auto r2 = ParseExperimentSpec("[a]\nruns =\n", "x.ini");
  EXPECT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("x.ini:2"), std::string::npos);
}

TEST(ExperimentSpecTest, LoadErrorsCarryFileAndLine) {
  std::string path = testing::TempDir() + "/bad_spec.ini";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("[a]\nruns = 10\nbogus_key = 1\n", f);
  std::fclose(f);
  auto result = LoadExperimentSpec(path);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(path + ":3"), std::string::npos)
      << result.status().ToString();
  ::remove(path.c_str());
}

TEST(ExperimentSpecTest, RejectsMalformedStructure) {
  EXPECT_FALSE(ParseExperimentSpec("").ok());                 // No sections.
  EXPECT_FALSE(ParseExperimentSpec("runs = 5\n").ok());       // Defaults only.
  EXPECT_FALSE(ParseExperimentSpec("[a\nruns = 5\n").ok());   // Unterminated.
  EXPECT_FALSE(ParseExperimentSpec("[]\n").ok());             // Empty name.
  EXPECT_FALSE(ParseExperimentSpec("[a]\nnot a kv line\n").ok());
  EXPECT_FALSE(ParseExperimentSpec("[a]\nruns =\n").ok());    // Empty value.
}

TEST(ExperimentSpecTest, RejectsOutOfRangeIntegers) {
  // strtoll saturates on overflow; the parser must reject rather than
  // accept the saturated value and truncate it to garbage (found by
  // fuzz_experiment_spec: "trials = 99999999999999999999" used to parse
  // as a negative trial count and break the ToSpec round-trip).
  auto huge = ParseExperimentSpec("trials = 99999999999999999999\n[big]\nn = 1\n");
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.status().message().find("out of range"), std::string::npos);
  // int64 keys reject values past LLONG_MAX; int32 keys also reject
  // values that fit int64 but not int.
  EXPECT_FALSE(ParseExperimentSpec("[a]\nblocks = 99999999999999999999\n").ok());
  EXPECT_FALSE(ParseExperimentSpec("[a]\nruns = 3000000000\n").ok());
  EXPECT_FALSE(ParseExperimentSpec("[a]\nn = -3000000000\n").ok());
  // The int64 boundary itself still parses (seed has no semantic cap;
  // int32 keys like runs are capped far below INT_MAX by disk capacity,
  // so the range check is only observable through the rejections above).
  auto ok = ParseExperimentSpec("[a]\nseed = 9223372036854775807\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)[0].config.seed, 9223372036854775807ULL);
}

TEST(ExperimentSpecTest, InvalidConfigNamedInError) {
  auto result = ParseExperimentSpec("[broken]\nruns = 0\n");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("broken"), std::string::npos);
}

TEST(ExperimentSpecTest, CommentsAndWhitespaceIgnored) {
  auto specs = ParseExperimentSpec(
      "  # leading comment\n\n[x]   \n  runs = 10   # trailing comment\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ((*specs)[0].config.num_runs, 10);
}

TEST(ExperimentSpecTest, RoundTripsThroughToSpec) {
  auto specs = ParseExperimentSpec(kSpec);
  ASSERT_TRUE(specs.ok());
  std::string rendered = ToSpec((*specs)[1]);
  auto reparsed = ParseExperimentSpec(rendered);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const core::MergeConfig& a = (*specs)[1].config;
  const core::MergeConfig& b = (*reparsed)[0].config;
  EXPECT_EQ(a.num_runs, b.num_runs);
  EXPECT_EQ(a.prefetch_depth, b.prefetch_depth);
  EXPECT_EQ(a.cache_blocks, b.cache_blocks);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.admission, b.admission);
  EXPECT_EQ(a.victim, b.victim);
  EXPECT_EQ(a.write_traffic, b.write_traffic);
  EXPECT_DOUBLE_EQ(a.zipf_theta, b.zipf_theta);
}

TEST(ExperimentSpecTest, ToSpecRoundTripsSeed) {
  auto specs = ParseExperimentSpec("[seeded]\nruns = 10\nseed = 4242\ntrials = 7\n");
  ASSERT_TRUE(specs.ok());
  auto reparsed = ParseExperimentSpec(ToSpec((*specs)[0]));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ((*reparsed)[0].config.seed, 4242u);
  EXPECT_EQ((*reparsed)[0].trials, 7);
}

TEST(ExperimentSpecTest, PrintSpecRoundTripsThroughLoad) {
  // What `emsim_cli --print_spec` emits is ToSpec output; it must reload
  // through LoadExperimentSpec to the same experiment — i.e. ToSpec is a
  // fixed point of render -> load -> render.
  auto specs = ParseExperimentSpec(kSpec);
  ASSERT_TRUE(specs.ok());
  for (const ExperimentSpec& spec : *specs) {
    std::string rendered = ToSpec(spec);
    std::string path = testing::TempDir() + "/printed_spec.ini";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(rendered.c_str(), f);
    std::fclose(f);
    auto reloaded = LoadExperimentSpec(path);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    ASSERT_EQ(reloaded->size(), 1u);
    EXPECT_EQ(ToSpec((*reloaded)[0]), rendered);
    ::remove(path.c_str());
  }
}

TEST(ExperimentSpecTest, SweepsExpandCrossProduct) {
  auto specs = ParseExperimentSpec(
      "[sweep]\nruns = 10\nn = 1, 5, 10\ndisks = 2, 4\nstrategy = demand-run-only\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 6u);  // 3 x 2.
  std::set<std::string> names;
  for (const auto& spec : *specs) {
    names.insert(spec.name);
    EXPECT_EQ(spec.config.num_runs, 10);
  }
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(names.count("sweep/n=1/disks=2"));
  EXPECT_TRUE(names.count("sweep/n=10/disks=4"));
}

TEST(ExperimentSpecTest, SingleValuedKeysDoNotRename) {
  auto specs = ParseExperimentSpec("[plain]\nruns = 10\nn = 5\n");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 1u);
  EXPECT_EQ((*specs)[0].name, "plain");
}

TEST(ExperimentSpecTest, SweepsInDefaultsRejected) {
  auto result = ParseExperimentSpec("n = 1, 5\n[x]\nruns = 10\n");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("sections"), std::string::npos);
}

TEST(ExperimentSpecTest, SweepBadValueNamesLine) {
  auto result = ParseExperimentSpec("[x]\nn = 1, banana\n");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(ExperimentSpecTest, SweepExplosionBounded) {
  // 11^4 > 1024: must be rejected, not OOM.
  std::string spec = "[boom]\n";
  for (const char* key : {"runs", "disks", "n", "blocks"}) {
    spec += std::string(key) + " = 1,2,3,4,5,6,7,8,9,10,11\n";
  }
  auto result = ParseExperimentSpec(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("expand"), std::string::npos);
}

TEST(ExperimentSpecTest, TraceDepletionRejected) {
  EXPECT_FALSE(ParseExperimentSpec("[a]\ndepletion = trace\n").ok());
}

TEST(EnumNamesTest, RoundTrip) {
  using namespace emsim::core;
  EXPECT_EQ(*ParseStrategy(StrategyName(Strategy::kAllDisksOneRun)),
            Strategy::kAllDisksOneRun);
  EXPECT_EQ(*ParseSyncMode(SyncModeName(SyncMode::kSynchronized)),
            SyncMode::kSynchronized);
  EXPECT_EQ(*ParseAdmissionPolicy(AdmissionPolicyName(AdmissionPolicy::kGreedy)),
            AdmissionPolicy::kGreedy);
  EXPECT_EQ(*ParseVictimPolicy(VictimPolicyName(VictimPolicy::kNearestHead)),
            VictimPolicy::kNearestHead);
  EXPECT_EQ(*ParseDepletionKind(DepletionKindName(DepletionKind::kZipf)),
            DepletionKind::kZipf);
  EXPECT_EQ(*ParseWriteTraffic(WriteTrafficName(WriteTraffic::kSharedDisks)),
            WriteTraffic::kSharedDisks);
  EXPECT_FALSE(ParseStrategy("nonsense").ok());
}

}  // namespace
}  // namespace emsim::workload

# Empty dependencies file for bench_fig33_cpu_speed.
# This may be replaced when dependencies are built.

#include "sim/event.h"

namespace emsim::sim {

void Event::Set() {
  if (set_) {
    return;
  }
  set_ = true;
  for (auto h : waiters_) {
    sim_->ScheduleHandle(sim_->Now(), h);
  }
  waiters_.clear();
}

void Event::Reset() {
  EMSIM_CHECK(waiters_.empty() && "Event::Reset with pending waiters");
  set_ = false;
}

void Signal::Fire() {
  // Swap first: a resumed waiter may immediately re-wait on this signal, and
  // those re-waits belong to the *next* pulse.
  std::vector<std::coroutine_handle<>> woken;
  woken.swap(waiters_);
  for (auto h : woken) {
    sim_->ScheduleHandle(sim_->Now(), h);
  }
}

}  // namespace emsim::sim

#ifndef EMSIM_UTIL_MUTEX_H_
#define EMSIM_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace emsim::util {

class CondVar;

/// A `std::mutex` carrying the CAPABILITY annotation so Clang's
/// thread-safety analysis (and the cross-TU rules in emsim_analyze.py) can
/// see acquisitions. All mutex-protected state in the tree uses this wrapper;
/// bare `std::mutex` members defeat both analyses and the
/// shared-state-unguarded rule flags the members they guard.
class EMSIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EMSIM_ACQUIRE() { mu_.lock(); }
  void Unlock() EMSIM_RELEASE() { mu_.unlock(); }
  bool TryLock() EMSIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over util::Mutex (abseil MutexLock shape). Scoped-capability:
/// the analysis treats construction as acquisition and destruction as
/// release, so guarded members are accessible for the lock's whole scope.
class EMSIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) EMSIM_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() EMSIM_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
};

/// Condition variable whose Wait() takes the RAII lock itself, sidestepping
/// the Clang lambda pitfall: predicate lambdas passed to
/// `std::condition_variable::wait(lock, pred)` read guarded members inside a
/// lambda body where the analysis does not assume the capability, producing
/// unfixable warnings. Callers instead write the loop manually:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(lock);
///
/// which keeps the guarded reads in the annotated scope. The
/// lock-held-blocking analyze rule recognizes exactly this while-wrapped
/// single-argument Wait as predicate-safe.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex, blocks, and reacquires before
  /// returning. The capability is held on entry and on exit, which is why
  /// the analysis is told nothing changed (the adopt/release dance below is
  /// invisible to it by design).
  void Wait(MutexLock& lock) EMSIM_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> ul(lock.mu_->mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // Ownership stays with the MutexLock.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace emsim::util

#endif  // EMSIM_UTIL_MUTEX_H_

#!/usr/bin/env python3
"""Unit tests for tools/lint/emsim_lint.py (registered with ctest as
`lint_test`, label `lint`).

Two halves: fixture strings prove each rule fires (and each suppression /
comment / string-literal escape hatch works), and a full-tree run proves the
repository itself is clean — the same gate CI enforces.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools" / "lint"))

import emsim_lint  # noqa: E402
import include_hygiene  # noqa: E402


def rules_fired(relpath, text):
    findings, _ = emsim_lint.lint_text(relpath, text)
    return {f["rule"] for f in findings}


class RuleFixtureTest(unittest.TestCase):
    def test_libc_rand_fires(self):
        self.assertIn("no-libc-rand", rules_fired("src/x.cc", "int r = rand();\n"))
        self.assertIn("no-libc-rand", rules_fired("src/x.cc", "srand(42);\n"))
        self.assertIn("no-libc-rand", rules_fired("src/x.cc", "double d = drand48();\n"))

    def test_member_named_rand_does_not_fire(self):
        self.assertEqual(set(), rules_fired("src/x.cc", "g.rand(7);\n"))
        self.assertEqual(set(), rules_fired("src/x.cc", "int operand(int);\n"))

    def test_wall_clock_fires(self):
        for line in [
            "time_t t = time(nullptr);",
            "std::time(nullptr);",
            "clock();",
            "auto now = std::chrono::system_clock::now();",
            "auto now = std::chrono::high_resolution_clock::now();",
        ]:
            self.assertIn("no-wall-clock", rules_fired("src/x.cc", line + "\n"), line)

    def test_simulated_time_does_not_fire(self):
        self.assertEqual(set(), rules_fired("src/x.cc", "double now = sim.Now();\n"))
        self.assertEqual(set(), rules_fired("src/x.cc", "double total_time(int n);\n"))
        self.assertEqual(
            set(), rules_fired("src/x.cc", "auto t0 = std::chrono::steady_clock::now();\n"))

    def test_std_random_engine_fires(self):
        for line in [
            "std::mt19937 gen;",
            "std::mt19937_64 gen(seed);",
            "std::default_random_engine e;",
            "std::random_device rd;",
        ]:
            self.assertIn("no-std-random-engine", rules_fired("src/x.cc", line + "\n"), line)

    def test_emsim_rng_does_not_fire(self):
        self.assertEqual(set(), rules_fired("src/x.cc", "Rng rng(config.seed);\n"))

    def test_unordered_fires_only_in_export_paths(self):
        line = "std::unordered_map<std::string, int> index;\n"
        self.assertIn("no-unordered-in-export",
                      rules_fired("src/stats/json_writer.cc", line))
        self.assertIn("no-unordered-in-export", rules_fired("src/obs/metrics.h", line))
        self.assertIn("no-unordered-in-export", rules_fired("src/core/result_json.cc", line))
        self.assertNotIn("no-unordered-in-export", rules_fired("src/cache/block_cache.cc", line))
        self.assertNotIn("no-unordered-in-export", rules_fired("src/extsort/tag_sort.h", line))

    def test_raw_thread_fires_outside_util(self):
        for line in [
            "std::thread worker([] { Run(); });",
            "std::jthread worker(Loop);",
            "auto fut = std::async(std::launch::async, Work);",
            "worker.detach();",
        ]:
            self.assertIn("raw-thread",
                          rules_fired("src/sweep/x.cc", line + "\n"), line)

    def test_raw_thread_scope_and_queries_are_clean(self):
        # The pool implementation itself and tests may spawn threads, and
        # hardware_concurrency is a pure query, not a spawn.
        self.assertEqual(set(), rules_fired(
            "src/util/thread_pool.cc", "std::thread worker(Loop);\n"))
        self.assertEqual(set(), rules_fired(
            "tests/pool_test.cc", "std::thread worker(Loop);\n"))
        self.assertEqual(set(), rules_fired(
            "src/sweep/x.cc",
            "int hw = std::thread::hardware_concurrency();\n"))
        self.assertEqual(set(), rules_fired(
            "src/sweep/x.cc",
            "std::this_thread::sleep_for(std::chrono::milliseconds(2));\n"))

    def test_assert_fires_but_static_assert_and_gtest_do_not(self):
        self.assertIn("check-over-assert", rules_fired("src/x.cc", "assert(n > 0);\n"))
        self.assertEqual(set(), rules_fired("src/x.cc", "static_assert(sizeof(int) == 4);\n"))
        self.assertEqual(set(), rules_fired("tests/x.cc", "ASSERT_TRUE(result.ok());\n"))

    def test_comments_and_strings_do_not_fire(self):
        self.assertEqual(set(), rules_fired("src/x.cc", "// calling rand() would be bad\n"))
        self.assertEqual(set(), rules_fired("src/x.cc", "/* time(nullptr) */ int x;\n"))
        self.assertEqual(set(), rules_fired("src/x.cc", 'Log("rand() is forbidden");\n'))
        self.assertEqual(
            set(), rules_fired("src/x.cc", "/* block\n   with rand();\n   inside */ int y;\n"))

    def test_allow_directive_suppresses_and_is_reported(self):
        findings, suppressions = emsim_lint.lint_text(
            "src/x.cc", "int r = rand();  // emsim-lint: allow(no-libc-rand)\n")
        self.assertEqual([], findings)
        self.assertEqual(1, len(suppressions))
        self.assertEqual("no-libc-rand", suppressions[0]["rule"])

    def test_allow_directive_is_rule_specific(self):
        findings, _ = emsim_lint.lint_text(
            "src/x.cc", "int r = rand();  // emsim-lint: allow(no-wall-clock)\n")
        self.assertEqual(["no-libc-rand"], [f["rule"] for f in findings])


class ResultUncheckedTest(unittest.TestCase):
    CHECKED = (
        "Result<int> parsed = ParseInt(value);\n"
        "if (!parsed.ok()) return parsed.status();\n"
        "use(*parsed);\n"
    )
    NAKED = (
        "Result<int> parsed = ParseInt(value);\n"
        "use(*parsed);\n"
    )

    def test_naked_deref_fires(self):
        self.assertIn("result-unchecked", rules_fired("src/x.cc", self.NAKED))

    def test_naked_value_and_arrow_fire(self):
        base = "Result<int> r = Make();\n"
        self.assertIn("result-unchecked", rules_fired("src/x.cc", base + "use(r.value());\n"))
        self.assertIn("result-unchecked", rules_fired("src/x.cc", base + "use(r->field);\n"))
        self.assertIn("result-unchecked",
                      rules_fired("src/x.cc", base + "take(*std::move(r));\n"))

    def test_ok_gate_within_window_is_clean(self):
        self.assertEqual(set(), rules_fired("src/x.cc", self.CHECKED))
        check = ("Result<int> r = Make();\n"
                 "EMSIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());\n"
                 "use(*std::move(r));\n")
        self.assertEqual(set(), rules_fired("src/x.cc", check))

    def test_ok_gate_outside_window_fires(self):
        far = ("Result<int> r = Make();\n"
               "if (!r.ok()) return r.status();\n"
               + "other();\n" * (emsim_lint.RESULT_OK_WINDOW + 1)
               + "use(*r);\n")
        self.assertIn("result-unchecked", rules_fired("src/x.cc", far))

    def test_non_result_value_calls_do_not_fire(self):
        # Counter/Gauge accessors named value() (src/obs/metrics.cc idiom).
        text = "Counter c;\nout.push_back(c.value());\n"
        self.assertEqual(set(), rules_fired("src/x.cc", text))

    def test_scoped_to_src(self):
        self.assertEqual(set(), rules_fired("tests/x.cc", self.NAKED))
        self.assertEqual(set(), rules_fired("tools/x.cc", self.NAKED))

    def test_allow_directive_suppresses(self):
        text = ("Result<int> r = Make();\n"
                "use(*r);  // emsim-lint: allow(result-unchecked)\n")
        findings, suppressions = emsim_lint.lint_text("src/x.cc", text)
        self.assertEqual([], findings)
        self.assertEqual(["result-unchecked"], [s["rule"] for s in suppressions])


class MultiAllowTest(unittest.TestCase):
    TWO_RULES = "std::mt19937 gen; int r = rand();"

    def test_comma_list_suppresses_every_named_rule(self):
        text = (self.TWO_RULES +
                "  // emsim-lint: allow(no-libc-rand, no-std-random-engine)\n")
        findings, suppressions = emsim_lint.lint_text("src/x.cc", text)
        self.assertEqual([], findings)
        self.assertEqual({"no-libc-rand", "no-std-random-engine"},
                         {s["rule"] for s in suppressions})

    def test_repeated_allow_groups_are_all_honored(self):
        # Historically only the first allow(...) group on a line was parsed.
        text = (self.TWO_RULES + "  // emsim-lint: allow(no-libc-rand) "
                "emsim-lint: allow(no-std-random-engine)\n")
        findings, suppressions = emsim_lint.lint_text("src/x.cc", text)
        self.assertEqual([], findings)
        self.assertEqual({"no-libc-rand", "no-std-random-engine"},
                         {s["rule"] for s in suppressions})

    def test_unrelated_rule_in_list_does_not_widen_the_suppression(self):
        text = (self.TWO_RULES +
                "  // emsim-lint: allow(no-libc-rand, no-wall-clock)\n")
        findings, _ = emsim_lint.lint_text("src/x.cc", text)
        self.assertEqual(["no-std-random-engine"], [f["rule"] for f in findings])

    def test_allowed_rules_helper_parses_only_comments(self):
        self.assertEqual({"a-rule", "b-rule"},
                         emsim_lint.allowed_rules("x;  // emsim-lint: allow(a-rule, b-rule)"))
        self.assertEqual(set(),
                         emsim_lint.allowed_rules('Log("emsim-lint: allow(a-rule)");'))


class ArtifactRawWriteTest(unittest.TestCase):
    def test_ofstream_fires_everywhere_outside_tests(self):
        line = "std::ofstream out(path);\n"
        for relpath in ("src/x.cc", "tools/x.cc", "bench/x.cc"):
            self.assertIn("artifact-raw-write", rules_fired(relpath, line), relpath)

    def test_write_mode_fopen_fires(self):
        for line in [
            'std::FILE* f = std::fopen(path.c_str(), "wb");',
            'FILE* f = fopen(path, "w");',
            'FILE* f = fopen(path, "ab");',
            'FILE* f = fopen(path, "r+b");',
        ]:
            self.assertIn("artifact-raw-write", rules_fired("src/x.cc", line + "\n"), line)

    def test_read_mode_fopen_is_clean(self):
        for line in [
            'std::FILE* f = std::fopen(path.c_str(), "rb");',
            'FILE* f = fopen(path, "r");',
        ]:
            self.assertNotIn("artifact-raw-write", rules_fired("src/x.cc", line + "\n"), line)

    def test_mode_hidden_on_a_later_line_flags_conservatively(self):
        text = "std::FILE* f = std::fopen(path.c_str(),\n"
        self.assertIn("artifact-raw-write", rules_fired("src/x.cc", text))

    def test_atomic_file_usage_is_clean(self):
        text = "Status written = util::WriteFileAtomic(path, doc);\n"
        self.assertEqual(set(), rules_fired("src/x.cc", text))

    def test_tests_are_out_of_scope(self):
        self.assertEqual(
            set(), rules_fired("tests/x.cc", 'FILE* f = fopen(path, "wb");\n'))

    def test_comments_and_strings_do_not_fire(self):
        self.assertEqual(
            set(), rules_fired("src/x.cc", "// never call fopen(path, \"w\") here\n"))
        self.assertEqual(
            set(), rules_fired("src/x.cc", 'Log("std::ofstream is banned");\n'))

    def test_allow_directive_suppresses(self):
        text = ('std::ofstream out(path);  '
                '// emsim-lint: allow(artifact-raw-write)\n')
        findings, suppressions = emsim_lint.lint_text("src/x.cc", text)
        self.assertEqual([], findings)
        self.assertEqual(["artifact-raw-write"], [s["rule"] for s in suppressions])


class CoroRefCaptureTest(unittest.TestCase):
    def test_by_reference_capture_fires(self):
        text = ("auto p = [&log](int v) -> Process {\n"
                "  co_await Delay(1.0);\n"
                "  log.push_back(v);\n"
                "};\n")
        self.assertIn("coro-ref-capture", rules_fired("src/x.cc", text))

    def test_ref_param_used_after_suspend_fires(self):
        text = ("auto p = [](std::vector<int>& log, int v) -> Process {\n"
                "  co_await Delay(1.0);\n"
                "  log.push_back(v);\n"
                "};\n")
        self.assertIn("coro-ref-capture", rules_fired("src/x.cc", text))

    def test_copy_capture_is_clean(self):
        text = ("auto p = [log](int v) mutable -> Process {\n"
                "  co_await Delay(1.0);\n"
                "  log.push_back(v);\n"
                "};\n")
        self.assertEqual(set(), rules_fired("src/x.cc", text))

    def test_ref_param_used_only_before_suspend_is_clean(self):
        text = ("auto p = [](std::vector<int>& log) -> Process {\n"
                "  log.push_back(1);\n"
                "  co_await Delay(1.0);\n"
                "};\n")
        self.assertEqual(set(), rules_fired("src/x.cc", text))

    def test_named_coroutine_with_ref_params_is_clean(self):
        # The sanctioned pattern: the caller owns the referents for the run.
        text = ("Process Push(Simulation& sim, std::vector<int>& log, int v) {\n"
                "  co_await Delay(0.0);\n"
                "  log.push_back(v);\n"
                "}\n")
        self.assertEqual(set(), rules_fired("src/x.cc", text))

    def test_non_coroutine_lambda_with_ref_capture_is_clean(self):
        text = ("co_await Delay(1.0);\n"
                "auto cmp = [&order](int a, int b) { return order[a] < order[b]; };\n")
        self.assertNotIn("coro-ref-capture", rules_fired("src/x.cc", text))

    def test_allow_directive_suppresses(self):
        text = ("auto p = [&log]() -> Process {  // emsim-lint: allow(coro-ref-capture)\n"
                "  co_await Delay(1.0);\n"
                "  log.push_back(1);\n"
                "};\n")
        findings, suppressions = emsim_lint.lint_text("src/x.cc", text)
        self.assertEqual([], findings)
        self.assertEqual(["coro-ref-capture"], [s["rule"] for s in suppressions])


class CoroRawHandleTest(unittest.TestCase):
    LINE = "std::coroutine_handle<> h = std::coroutine_handle<>::from_address(p);\n"

    def test_fires_outside_the_sim_kernel(self):
        self.assertIn("coro-raw-handle", rules_fired("src/disk/x.cc", self.LINE))
        self.assertIn("coro-raw-handle", rules_fired("tests/x.cc", self.LINE))

    def test_fires_even_in_a_non_coroutine_tu(self):
        # Storing someone else's handle is the hazard; the storer need not
        # itself be a coroutine.
        self.assertIn("coro-raw-handle",
                      rules_fired("src/io/x.cc", "std::coroutine_handle<> saved;\n"))

    def test_clean_inside_the_sim_kernel(self):
        self.assertNotIn("coro-raw-handle",
                         rules_fired("src/sim/process.h", self.LINE))

    def test_allow_directive_suppresses(self):
        text = ("std::coroutine_handle<> h;  "
                "// emsim-lint: allow(coro-raw-handle)\n")
        findings, suppressions = emsim_lint.lint_text("src/disk/x.cc", text)
        self.assertEqual([], findings)
        self.assertEqual(["coro-raw-handle"], [s["rule"] for s in suppressions])


class NoBlockingInSimTest(unittest.TestCase):
    def test_blocking_primitives_fire_in_a_coroutine_tu(self):
        for line in [
            "std::this_thread::sleep_for(std::chrono::seconds(1));",
            "std::mutex mu;",
            "std::lock_guard<std::mutex> lock(mu);",
            "std::condition_variable cv;",
        ]:
            text = "co_await Delay(1.0);\n" + line + "\n"
            self.assertIn("no-blocking-in-sim", rules_fired("src/x.cc", text), line)

    def test_blocking_in_a_non_coroutine_tu_is_out_of_scope(self):
        # Host-thread code (thread pool, trial runner) may block; the rule
        # only polices TUs that contain coroutine code.
        self.assertEqual(set(), rules_fired("src/x.cc", "std::mutex mu;\n"))

    def test_allow_directive_suppresses(self):
        text = ("co_await Delay(1.0);\n"
                "std::mutex mu;  // emsim-lint: allow(no-blocking-in-sim)\n")
        findings, suppressions = emsim_lint.lint_text("src/x.cc", text)
        self.assertEqual([], findings)
        self.assertEqual(["no-blocking-in-sim"], [s["rule"] for s in suppressions])


class IncludeHygieneFixtureTest(unittest.TestCase):
    def run_tree(self, files):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            for relpath, text in files.items():
                path = root / relpath
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(text)
            _, findings, suppressions = include_hygiene.run(root)
            return findings, suppressions

    THING_H = ("#ifndef EMSIM_UTIL_THING_H_\n"
               "#define EMSIM_UTIL_THING_H_\n"
               "struct Thing {};\n"
               "#endif\n")

    def test_unused_std_include_is_flagged(self):
        findings, _ = self.run_tree(
            {"src/a.cc": "#include <vector>\n\nint Answer() { return 42; }\n"})
        self.assertEqual(["unused-include"], [f["kind"] for f in findings])
        self.assertEqual("<vector>", findings[0]["what"])

    def test_used_std_include_is_clean(self):
        findings, _ = self.run_tree(
            {"src/a.cc": "#include <vector>\n\nstd::vector<int> V() { return {}; }\n"})
        self.assertEqual([], findings)

    def test_unused_project_include_is_flagged(self):
        findings, _ = self.run_tree({
            "src/util/thing.h": self.THING_H,
            "src/a.cc": '#include "util/thing.h"\n\nint Answer() { return 42; }\n',
        })
        flagged = [(f["kind"], f["path"], f["what"]) for f in findings]
        self.assertIn(("unused-include", "src/a.cc", '"util/thing.h"'), flagged)

    def test_missing_direct_include_for_project_symbol(self):
        findings, _ = self.run_tree({
            "src/util/thing.h": self.THING_H,
            "src/a.cc": "Thing Make();\n\nThing Make() { return Thing{}; }\n",
        })
        missing = [f for f in findings if f["kind"] == "missing-direct-include"]
        self.assertEqual(1, len(missing))
        self.assertEqual("Thing", missing[0]["what"])
        self.assertEqual(["src/util/thing.h"], missing[0]["candidates"])

    def test_missing_direct_include_for_std_symbol(self):
        findings, _ = self.run_tree(
            {"src/a.cc": "int N(const std::vector<int>& v) { return (int)v.size(); }\n"})
        missing = [(f["kind"], f["what"]) for f in findings]
        self.assertIn(("missing-direct-include", "<vector>"), missing)

    def test_allow_directive_suppresses_and_is_reported(self):
        findings, suppressions = self.run_tree({
            "src/a.cc": "#include <vector>  // emsim-lint: allow(include-hygiene)\n"
                        "\nint Answer() { return 42; }\n"})
        self.assertEqual([], findings)
        self.assertEqual(1, len(suppressions))
        self.assertEqual("unused-include", suppressions[0]["kind"])

    def test_associated_header_include_is_never_flagged(self):
        findings, _ = self.run_tree({
            "src/util/thing.h": self.THING_H,
            "src/util/thing.cc": '#include "util/thing.h"\n\nint Unrelated() { return 0; }\n',
        })
        self.assertEqual(
            [], [f for f in findings if f["path"] == "src/util/thing.cc"])


class IncludeGuardTest(unittest.TestCase):
    def test_expected_guard_derivation(self):
        self.assertEqual("EMSIM_UTIL_CHECK_H_", emsim_lint.expected_guard("src/util/check.h"))
        self.assertEqual("EMSIM_CORE_RESULT_JSON_H_",
                         emsim_lint.expected_guard("src/core/result_json.h"))
        self.assertEqual("EMSIM_BENCH_BENCH_UTIL_H_",
                         emsim_lint.expected_guard("bench/bench_util.h"))

    def test_wrong_guard_fires(self):
        text = "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n"
        self.assertIn("include-guard", rules_fired("src/util/check.h", text))

    def test_missing_guard_fires(self):
        self.assertIn("include-guard", rules_fired("src/util/check.h", "int x;\n"))

    def test_correct_guard_is_clean(self):
        text = "#ifndef EMSIM_UTIL_CHECK_H_\n#define EMSIM_UTIL_CHECK_H_\n#endif\n"
        self.assertEqual(set(), rules_fired("src/util/check.h", text))

    def test_sources_are_not_guard_checked(self):
        self.assertEqual(set(), rules_fired("src/util/check.cc", "int x;\n"))


class FullTreeTest(unittest.TestCase):
    def test_repository_is_clean_and_report_is_machine_readable(self):
        with tempfile.TemporaryDirectory() as tmp:
            report_path = Path(tmp) / "lint-report.json"
            proc = subprocess.run(
                [sys.executable,
                 str(REPO_ROOT / "tools" / "lint" / "emsim_lint.py"),
                 "--root", str(REPO_ROOT),
                 "--report", str(report_path)],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
            self.assertEqual(0, proc.returncode, proc.stdout)
            report = json.loads(report_path.read_text())
            self.assertEqual("emsim_lint", report["tool"])
            self.assertEqual([], report["findings"])
            self.assertGreater(report["files_scanned"], 100)

    def test_exit_code_is_nonzero_on_findings(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = Path(tmp) / "src"
            bad.mkdir()
            (bad / "dirty.cc").write_text("int r = rand();\n")
            proc = subprocess.run(
                [sys.executable,
                 str(REPO_ROOT / "tools" / "lint" / "emsim_lint.py"),
                 "--root", tmp],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
            self.assertEqual(1, proc.returncode, proc.stdout)
            self.assertIn("no-libc-rand", proc.stdout)


class LintCacheTest(unittest.TestCase):
    """The per-file result cache shared by emsim_lint and include_hygiene
    (lint_cache.py): warm runs hit, content edits miss exactly the edited
    file, and include_hygiene's environment digest invalidates everything
    when a header changes."""

    def run_tool(self, module_name, root, cache_dir):
        timing = Path(root) / f"{module_name}-timing.json"
        proc = subprocess.run(
            [sys.executable,
             str(REPO_ROOT / "tools" / "lint" / f"{module_name}.py"),
             "--root", str(root), "--cache-dir", str(cache_dir),
             "--timing-report", str(timing)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        return proc, json.loads(timing.read_text(encoding="utf-8"))

    def test_emsim_lint_cache_hits_and_invalidates_per_file(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "a.cc").write_text("int A() { return 1; }\n")
            (src / "b.cc").write_text("int B() { return 2; }\n")
            cache = Path(tmp) / "cache"
            _, timing = self.run_tool("emsim_lint", tmp, cache)
            self.assertEqual(timing["cache"]["misses"], 2)
            _, timing = self.run_tool("emsim_lint", tmp, cache)
            self.assertEqual(timing["cache"]["hits"], 2)
            (src / "a.cc").write_text("int A() { return 3; }\n")
            _, timing = self.run_tool("emsim_lint", tmp, cache)
            self.assertEqual(timing["cache"]["misses"], 1)
            missed = [f["file"] for f in timing["files"] if not f["cached"]]
            self.assertEqual(missed, ["src/a.cc"])

    def test_cached_findings_still_fail_the_run(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "dirty.cc").write_text("int r = rand();\n")
            cache = Path(tmp) / "cache"
            proc, _ = self.run_tool("emsim_lint", tmp, cache)
            self.assertEqual(proc.returncode, 1)
            proc, timing = self.run_tool("emsim_lint", tmp, cache)
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertEqual(timing["cache"]["hits"], 1)
            self.assertIn("no-libc-rand", proc.stdout)

    def test_include_hygiene_header_edit_invalidates_everything(self):
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            src.mkdir()
            (src / "util.h").write_text(
                "#ifndef EMSIM_SRC_UTIL_H_\n#define EMSIM_SRC_UTIL_H_\n"
                "inline int Util() { return 1; }\n#endif\n")
            (src / "a.cc").write_text(
                '#include "util.h"\nint A() { return Util(); }\n')
            (src / "b.cc").write_text("int B() { return 2; }\n")
            cache = Path(tmp) / "cache"
            self.run_tool("include_hygiene", tmp, cache)
            _, timing = self.run_tool("include_hygiene", tmp, cache)
            self.assertEqual(timing["cache"]["hits"], 3)
            # .cc edit: only that file re-checks.
            (src / "b.cc").write_text("int B() { return 4; }\n")
            _, timing = self.run_tool("include_hygiene", tmp, cache)
            self.assertEqual(timing["cache"]["misses"], 1)
            # Header edit: the exports environment changed — full re-check.
            (src / "util.h").write_text(
                "#ifndef EMSIM_SRC_UTIL_H_\n#define EMSIM_SRC_UTIL_H_\n"
                "inline int Util() { return 1; }\n"
                "inline int Util2() { return 2; }\n#endif\n")
            _, timing = self.run_tool("include_hygiene", tmp, cache)
            self.assertEqual(timing["cache"]["misses"], 3)


if __name__ == "__main__":
    unittest.main()

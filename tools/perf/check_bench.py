#!/usr/bin/env python3
"""Perf-smoke ratio gate for google-benchmark JSON output.

Compares a current `--benchmark_format=json` report against a committed
baseline and fails when any benchmark's time exceeds `max-ratio` times its
baseline. The default ratio is deliberately loose (4.0): the committed
baseline is captured on a developer machine, CI machines differ in clock and
code layout by integer factors, and the gate's job is to catch order-of-
magnitude regressions (an accidental O(n) calendar, per-event heap traffic),
not 10% noise. Tighten locally with --max-ratio when comparing runs from the
same machine.

Exit codes:
  0 — every baseline benchmark present and within the ratio
  1 — regression: a benchmark slowed past the ratio or disappeared
  2 — usage or I/O error (missing file, malformed JSON)

Usage:
  check_bench.py --baseline tools/perf/baseline_kernel_micro.json \
                 --current bench.json [--max-ratio 4.0] [--metric cpu_time]
"""

import argparse
import json
import os
import sys


def write_step_summary(rows, max_ratio, failures):
    """Appends a markdown ratio table to $GITHUB_STEP_SUMMARY when set.

    Purely additive reporting for the GitHub Actions job summary page; the
    gate contract (exit codes, stdout/stderr text) is unchanged.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["### Perf ratio gate (max ratio {:g})".format(max_ratio), ""]
    lines.append("| benchmark | baseline | current | ratio | verdict |")
    lines.append("|---|---:|---:|---:|---|")
    for name, base_time, cur_time, ratio, verdict in rows:
        current_cell = f"{cur_time:.1f}" if cur_time is not None else "MISSING"
        ratio_cell = f"{ratio:.2f}" if ratio is not None else "—"
        icon = "✅ ok" if verdict == "ok" else "❌ FAIL"
        lines.append(
            f"| `{name}` | {base_time:.1f} | {current_cell} | {ratio_cell} | {icon} |"
        )
    lines.append("")
    if failures:
        lines.append(f"**{len(failures)} regression(s) past the ratio gate.**")
    else:
        lines.append(f"All {len(rows)} benchmarks within the ratio.")
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as err:
        print(f"check_bench: cannot write step summary: {err}", file=sys.stderr)


def load_times(path, metric):
    """Returns {benchmark name: time} from a google-benchmark JSON report."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_bench: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        print(f"check_bench: {path} has no benchmarks", file=sys.stderr)
        sys.exit(2)
    times = {}
    for bench in benchmarks:
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        value = bench.get(metric)
        if name is None or value is None:
            print(f"check_bench: {path}: entry missing name/{metric}", file=sys.stderr)
            sys.exit(2)
        times[name] = float(value)
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly measured JSON")
    parser.add_argument("--max-ratio", type=float, default=4.0,
                        help="fail when current/baseline exceeds this (default 4.0)")
    parser.add_argument("--metric", default="cpu_time",
                        choices=["cpu_time", "real_time"],
                        help="which benchmark time to compare (default cpu_time)")
    args = parser.parse_args()
    if args.max_ratio <= 0:
        print("check_bench: --max-ratio must be positive", file=sys.stderr)
        return 2

    baseline = load_times(args.baseline, args.metric)
    current = load_times(args.current, args.metric)

    failures = []
    rows = []  # (name, baseline, current|None, ratio|None, verdict)
    width = max(len(name) for name in baseline)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(baseline):
        base_time = baseline[name]
        if name not in current:
            failures.append(f"{name}: present in baseline but not in current run")
            print(f"{name.ljust(width)}  {base_time:12.1f}  {'MISSING':>12}  FAIL")
            rows.append((name, base_time, None, None, "FAIL"))
            continue
        cur_time = current[name]
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        verdict = "ok"
        if ratio > args.max_ratio:
            failures.append(
                f"{name}: {cur_time:.1f} vs baseline {base_time:.1f} "
                f"(ratio {ratio:.2f} > {args.max_ratio})")
            verdict = "FAIL"
        print(f"{name.ljust(width)}  {base_time:12.1f}  {cur_time:12.1f}  "
              f"{ratio:5.2f} {verdict}")
        rows.append((name, base_time, cur_time, ratio, verdict))
    write_step_summary(rows, args.max_ratio, failures)

    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"note: {len(extra)} benchmark(s) not in baseline (ignored): "
              + ", ".join(extra))

    if failures:
        print(f"\ncheck_bench: {len(failures)} regression(s) past ratio "
              f"{args.max_ratio}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\ncheck_bench: all {len(baseline)} benchmarks within ratio {args.max_ratio}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#include "core/config.h"

#include <cstddef>

#include "util/str.h"

namespace emsim::core {

int64_t MergeConfig::EffectiveCacheBlocks() const {
  if (cache_blocks != kAutoCache) {
    return cache_blocks;
  }
  int64_t intra = static_cast<int64_t>(num_runs) * prefetch_depth;
  if (strategy == Strategy::kAllDisksOneRun) {
    // Ample sizing: inter-run prefetching banks blocks for runs that are not
    // yet needed, so holding the success ratio at ~1 takes far more than the
    // k*N intra-run working set (the whole point of Fig. 3.5/3.6). This
    // bound is calibrated to exceed the measured success=1 thresholds of
    // every paper configuration (~1000/1600/3000 blocks for 25r5d / 50r5d /
    // 50r10d at N=10) with ~2x margin.
    return 2 * intra + 20LL * num_runs +
           20LL * static_cast<int64_t>(num_disks) * prefetch_depth;
  }
  return intra;
}

int64_t MergeConfig::TotalBlocks() const {
  if (run_lengths.empty()) {
    return static_cast<int64_t>(num_runs) * blocks_per_run;
  }
  int64_t total = 0;
  for (int64_t b : run_lengths) {
    total += b;
  }
  return total;
}

Status MergeConfig::Validate() const {
  if (num_runs < 1 || num_disks < 1 || blocks_per_run < 1) {
    return Status::InvalidArgument("num_runs, num_disks and blocks_per_run must be >= 1");
  }
  if (prefetch_depth < 1) {
    return Status::InvalidArgument("prefetch_depth (N) must be >= 1");
  }
  if (!run_lengths.empty()) {
    if (static_cast<int>(run_lengths.size()) != num_runs) {
      return Status::InvalidArgument("run_lengths size must equal num_runs");
    }
    for (int64_t b : run_lengths) {
      if (b < 1) {
        return Status::InvalidArgument("every run length must be >= 1");
      }
    }
  } else if (prefetch_depth > blocks_per_run) {
    return Status::InvalidArgument("prefetch_depth (N) cannot exceed blocks_per_run");
  }
  if (EffectiveCacheBlocks() < num_runs) {
    return Status::InvalidArgument(
        StrFormat("cache of %lld blocks cannot hold one block per run (k=%d)",
                  static_cast<long long>(EffectiveCacheBlocks()), num_runs));
  }
  if (cpu_ms_per_block < 0) {
    return Status::InvalidArgument("cpu_ms_per_block must be >= 0");
  }
  if (write_traffic != WriteTraffic::kNone) {
    if (write_traffic == WriteTraffic::kSeparateDisks && num_write_disks < 1) {
      return Status::InvalidArgument("num_write_disks must be >= 1");
    }
    if (write_batch_blocks < 1) {
      return Status::InvalidArgument("write_batch_blocks must be >= 1");
    }
    if (write_buffer_blocks < write_batch_blocks) {
      return Status::InvalidArgument(
          "write_buffer_blocks must hold at least one write batch");
    }
  }
  if (depletion == DepletionKind::kZipf && zipf_theta < 0) {
    return Status::InvalidArgument("zipf_theta must be >= 0");
  }
  if (depletion == DepletionKind::kTrace) {
    int64_t expected = TotalBlocks();
    if (static_cast<int64_t>(trace.size()) != expected) {
      return Status::InvalidArgument(
          StrFormat("trace has %zu depletions, expected %lld", trace.size(),
                    static_cast<long long>(expected)));
    }
    std::vector<int64_t> counts(static_cast<size_t>(num_runs), 0);
    for (int r : trace) {
      if (r < 0 || r >= num_runs) {
        return Status::InvalidArgument("trace contains an out-of-range run id");
      }
      ++counts[static_cast<size_t>(r)];
    }
    for (int r = 0; r < num_runs; ++r) {
      int64_t want = run_lengths.empty() ? blocks_per_run : run_lengths[static_cast<size_t>(r)];
      if (counts[static_cast<size_t>(r)] != want) {
        return Status::InvalidArgument(
            StrFormat("trace depletes run %d %lld times; its length is %lld", r,
                      static_cast<long long>(counts[static_cast<size_t>(r)]),
                      static_cast<long long>(want)));
      }
    }
  }
  if (victim == VictimPolicy::kClairvoyant && depletion != DepletionKind::kTrace) {
    return Status::InvalidArgument(
        "the clairvoyant victim policy needs a depletion trace to foresee");
  }
  if (placement == disk::RunPlacement::kStriped &&
      strategy == Strategy::kAllDisksOneRun) {
    return Status::InvalidArgument(
        "inter-run prefetching needs whole runs per disk; striped placement "
        "only supports demand-run-only");
  }
  EMSIM_RETURN_IF_ERROR(fault.Validate(num_disks));
  if (max_wall_ms < 0) {
    return Status::InvalidArgument("max_wall_ms must be >= 0 (0 disables)");
  }
  EMSIM_RETURN_IF_ERROR(disk_params.Validate());
  disk::RunLayout layout(disk::RunLayout::Options{num_runs, num_disks, blocks_per_run,
                                                  disk_params.geometry, placement,
                                                  run_lengths});
  return layout.Validate();
}

std::string MergeConfig::ToString() const {
  std::string out = StrFormat(
      "MergeConfig{k=%d, D=%d, blocks/run=%lld, N=%d, C=%lld, %s, %s, cpu=%.3f ms/blk, "
      "seed=%llu}",
      num_runs, num_disks, static_cast<long long>(blocks_per_run), prefetch_depth,
      static_cast<long long>(EffectiveCacheBlocks()),
      strategy == Strategy::kDemandRunOnly ? "demand-run-only" : "all-disks-one-run",
      sync == SyncMode::kSynchronized ? "sync" : "unsync", cpu_ms_per_block,
      static_cast<unsigned long long>(seed));
  if (fault.InjectionEnabled()) {
    out += " " + fault.ToString();
  }
  return out;
}

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kDemandRunOnly:
      return "demand-run-only";
    case Strategy::kAllDisksOneRun:
      return "all-disks-one-run";
  }
  return "?";
}

const char* SyncModeName(SyncMode sync) {
  return sync == SyncMode::kSynchronized ? "sync" : "unsync";
}

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  return policy == AdmissionPolicy::kConservative ? "conservative" : "greedy";
}

const char* VictimPolicyName(VictimPolicy policy) {
  switch (policy) {
    case VictimPolicy::kRandom:
      return "random";
    case VictimPolicy::kRoundRobin:
      return "round-robin";
    case VictimPolicy::kFewestBuffered:
      return "fewest-buffered";
    case VictimPolicy::kNearestHead:
      return "nearest-head";
    case VictimPolicy::kClairvoyant:
      return "clairvoyant";
  }
  return "?";
}

const char* DepletionKindName(DepletionKind kind) {
  switch (kind) {
    case DepletionKind::kUniform:
      return "uniform";
    case DepletionKind::kZipf:
      return "zipf";
    case DepletionKind::kTrace:
      return "trace";
  }
  return "?";
}

const char* WriteTrafficName(WriteTraffic traffic) {
  switch (traffic) {
    case WriteTraffic::kNone:
      return "none";
    case WriteTraffic::kSeparateDisks:
      return "separate";
    case WriteTraffic::kSharedDisks:
      return "shared";
  }
  return "?";
}

namespace {
template <typename T>
Result<T> ParseEnum(const std::string& name, std::initializer_list<T> values,
                    const char* (*to_name)(T), const char* what) {
  for (T value : values) {
    if (name == to_name(value)) {
      return value;
    }
  }
  std::string valid;
  for (T value : values) {
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += to_name(value);
  }
  return Status::InvalidArgument(
      StrFormat("unknown %s '%s' (expected one of: %s)", what, name.c_str(), valid.c_str()));
}
}  // namespace

Result<Strategy> ParseStrategy(const std::string& name) {
  return ParseEnum(name, {Strategy::kDemandRunOnly, Strategy::kAllDisksOneRun},
                   &StrategyName, "strategy");
}

Result<SyncMode> ParseSyncMode(const std::string& name) {
  return ParseEnum(name, {SyncMode::kSynchronized, SyncMode::kUnsynchronized},
                   &SyncModeName, "sync mode");
}

Result<AdmissionPolicy> ParseAdmissionPolicy(const std::string& name) {
  return ParseEnum(name, {AdmissionPolicy::kConservative, AdmissionPolicy::kGreedy},
                   &AdmissionPolicyName, "admission policy");
}

Result<VictimPolicy> ParseVictimPolicy(const std::string& name) {
  return ParseEnum(name,
                   {VictimPolicy::kRandom, VictimPolicy::kRoundRobin,
                    VictimPolicy::kFewestBuffered, VictimPolicy::kNearestHead,
                    VictimPolicy::kClairvoyant},
                   &VictimPolicyName, "victim policy");
}

Result<DepletionKind> ParseDepletionKind(const std::string& name) {
  return ParseEnum(name,
                   {DepletionKind::kUniform, DepletionKind::kZipf, DepletionKind::kTrace},
                   &DepletionKindName, "depletion kind");
}

Result<WriteTraffic> ParseWriteTraffic(const std::string& name) {
  return ParseEnum(
      name, {WriteTraffic::kNone, WriteTraffic::kSeparateDisks, WriteTraffic::kSharedDisks},
      &WriteTrafficName, "write traffic");
}

MergeConfig MergeConfig::Paper(int num_runs, int num_disks, int n, Strategy strategy,
                               SyncMode sync) {
  MergeConfig config;
  config.num_runs = num_runs;
  config.num_disks = num_disks;
  config.prefetch_depth = n;
  config.strategy = strategy;
  config.sync = sync;
  return config;
}

}  // namespace emsim::core

#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/result_json.h"
#include "stats/ascii_chart.h"
#include "util/atomic_file.h"
#include "util/status.h"
#include "util/str.h"

namespace emsim::bench {

namespace {

/// Experiments recorded by Run() for the JSON artifact. Heap-held results
/// keep NamedExperiment pointers stable as the log grows.
struct RecordedExperiment {
  std::string name;
  core::MergeConfig config;
  std::unique_ptr<core::ExperimentResult> result;
};

std::vector<RecordedExperiment>& Recorded() {
  static std::vector<RecordedExperiment>* log = new std::vector<RecordedExperiment>();
  return *log;
}

}  // namespace

int Trials() {
  static int trials = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) - read once before any pool work
    const char* env = std::getenv("EMSIM_BENCH_TRIALS");
    if (env == nullptr || *env == '\0') {
      return kTrials;
    }
    int parsed = std::atoi(env);
    return parsed >= 1 ? parsed : kTrials;
  }();
  return trials;
}

int Threads() {
  static int threads = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) - read once before any pool work
    const char* env = std::getenv("EMSIM_BENCH_THREADS");
    if (env == nullptr || *env == '\0') {
      return 1;  // Serial by default: stable numbers beat idle-core usage.
    }
    int parsed = std::atoi(env);
    if (parsed == 0) {
      unsigned hw = std::thread::hardware_concurrency();
      return hw > 0 ? static_cast<int>(hw) : 2;
    }
    return parsed >= 1 ? parsed : 1;
  }();
  return threads;
}

namespace {

core::ExperimentResult Record(const core::MergeConfig& config,
                              core::ExperimentResult result, const std::string& name) {
  auto held = std::make_unique<core::ExperimentResult>(std::move(result));
  core::ExperimentResult copy = *held;
  std::string point_name =
      name.empty() ? StrFormat("point_%03zu", Recorded().size()) : name;
  Recorded().push_back(RecordedExperiment{std::move(point_name), config, std::move(held)});
  return copy;
}

}  // namespace

core::ExperimentResult Run(const core::MergeConfig& config, const std::string& name) {
  return Record(config, core::RunTrialsParallel(config, Trials(), Threads()), name);
}

std::vector<core::ExperimentResult> RunSweep(const std::vector<core::MergeConfig>& configs) {
  std::vector<core::ExperimentResult> results =
      core::RunSweepParallel(configs, Trials(), Threads());
  std::vector<core::ExperimentResult> out;
  out.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    out.push_back(Record(configs[i], std::move(results[i]), ""));
  }
  return out;
}

void EmitFigure(const stats::Figure& figure) {
  std::printf("%s\n", figure.ToTable().c_str());
  std::printf("%s\n", stats::RenderAsciiChart(figure).c_str());
  std::printf("--- CSV ---\n%s\n", figure.ToCsv().c_str());
}

void EmitTable(const std::string& title, const stats::Table& table,
               const std::string& note) {
  std::printf("== %s ==\n%s", title.c_str(), table.ToString().c_str());
  if (!note.empty()) {
    std::printf("note: %s\n", note.c_str());
  }
  std::printf("\n");
}

void WriteJsonArtifact(const std::string& bench_name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) - called from main after workers idle
  const char* toggle = std::getenv("EMSIM_BENCH_JSON");
  if (toggle != nullptr && std::string(toggle) == "0") {
    return;
  }
  std::vector<core::NamedExperiment> named;
  named.reserve(Recorded().size());
  for (const RecordedExperiment& r : Recorded()) {
    named.push_back(core::NamedExperiment{r.name, r.config, r.result.get()});
  }
  std::string doc = core::ExperimentSetToJson(named);
  // NOLINTNEXTLINE(concurrency-mt-unsafe) - called from main after workers idle
  const char* dir = std::getenv("EMSIM_BENCH_JSON_DIR");
  std::string path = StrFormat("%s%sBENCH_%s.json", dir != nullptr ? dir : "",
                               dir != nullptr && *dir != '\0' ? "/" : "",
                               bench_name.c_str());
  Status written = util::WriteFileAtomic(path, doc);
  if (!written.ok()) {
    std::fprintf(stderr, "bench_util: %s\n", written.ToString().c_str());
    return;
  }
  std::printf("json artifact: %s (%zu experiments)\n", path.c_str(), named.size());
}

void Banner(const std::string& experiment_id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("emsim reproduction | %s\n", experiment_id.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("disk: S=0.01 ms/cyl, R=8.33 ms, T=2.5641 ms/block, 1000 blocks/run\n");
  std::printf("trials per point: %d (mean reported, ±95%% CI where shown)\n", Trials());
  std::printf("==============================================================\n\n");
}

std::string TimeCell(const core::ExperimentResult& result) {
  auto ci = result.TotalSecondsCi();
  return StrFormat("%.2f ±%.2f", ci.mean, ci.half_width);
}

}  // namespace emsim::bench

#include "sweep/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <deque>
#include <map>
#include <sys/stat.h>
#include <thread>
#include <utility>
#include <vector>

#include "sweep/subprocess.h"
#include "util/check.h"
#include "util/str.h"

namespace emsim::sweep {

namespace {

using Clock = std::chrono::steady_clock;

// Wall time here drives worker scheduling only — per-shard deadlines, retry
// backoff gates, and log timestamps. Shard artifact bytes are pinned by the
// merge byte-identity tests regardless of dispatch timing.
// emsim-analyze: allow(determinism-taint)
Clock::time_point WallNow() { return Clock::now(); }

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(WallNow() - start).count();
}

bool FileNonEmpty(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
}

/// One shard's dispatch state across attempts.
struct ShardState {
  int shard = 0;
  int attempts = 0;
  Clock::time_point ready_at;  ///< Backoff gate for the next attempt.
  std::string last_error;
};

struct RunningWorker {
  ShardState state;
  Subprocess process;
  Clock::time_point started;
  std::string out_path;
  bool killed = false;  ///< Kill already issued (chaos/deadline/drain) — log once.
};

}  // namespace

void StatsCollector::Add(const DispatchStats& stats) {
  util::MutexLock lock(&mu_);
  total_.launches += stats.launches;
  total_.resubmissions += stats.resubmissions;
  total_.deadline_kills += stats.deadline_kills;
  total_.chaos_kills += stats.chaos_kills;
  total_.spawn_failures += stats.spawn_failures;
  total_.drain_kills += stats.drain_kills;
}

void StatsCollector::Note(const ShardEvent& event) {
  util::MutexLock lock(&mu_);
  switch (event.kind) {
    case ShardEvent::Kind::kStart:
      ++tally_.starts;
      break;
    case ShardEvent::Kind::kDone:
      ++tally_.dones;
      break;
    case ShardEvent::Kind::kRetry:
      ++tally_.retries;
      break;
    case ShardEvent::Kind::kFailed:
      ++tally_.fails;
      break;
  }
}

std::function<void(const ShardEvent&)> StatsCollector::Observer() {
  return [this](const ShardEvent& event) { Note(event); };
}

DispatchStats StatsCollector::Total() const {
  util::MutexLock lock(&mu_);
  return total_;
}

StatsCollector::EventTally StatsCollector::Tally() const {
  util::MutexLock lock(&mu_);
  return tally_;
}

Result<DispatchReport> RunShardedSweep(const DispatcherOptions& options,
                                       const std::string& shard_dir,
                                       const ShardCommandFn& command) {
  EMSIM_CHECK(options.num_shards >= 1);
  EMSIM_CHECK(static_cast<bool>(command));
  std::vector<int> requested = options.shards;
  if (requested.empty()) {
    for (int s = 0; s < options.num_shards; ++s) {
      requested.push_back(s);
    }
  } else {
    std::sort(requested.begin(), requested.end());
    requested.erase(std::unique(requested.begin(), requested.end()), requested.end());
    for (int s : requested) {
      EMSIM_CHECK(s >= 0 && s < options.num_shards);
    }
  }
  int max_workers = options.max_workers;
  if (max_workers <= 0) {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    max_workers = hw > 0 ? hw : 2;
  }
  if (max_workers > static_cast<int>(requested.size())) {
    max_workers = static_cast<int>(requested.size());
  }
  auto log = [&](const std::string& line) {
    if (options.log) {
      options.log(line);
    }
  };
  auto emit = [&](ShardEvent::Kind kind, int shard, int attempt, std::string path,
                  std::string detail) {
    if (options.on_event) {
      ShardEvent event;
      event.kind = kind;
      event.shard = shard;
      event.attempt = attempt;
      event.path = std::move(path);
      event.detail = std::move(detail);
      options.on_event(event);
    }
  };

  DispatchReport report;
  std::map<int, ShardDispatch> outcomes;
  for (int s : requested) {
    ShardDispatch d;
    d.shard = s;
    outcomes.emplace(s, std::move(d));
  }

  // Work-stealing handoff: pending shards wait here; any worker slot that
  // frees up claims the front-most ready shard. Retries re-enter the queue
  // with their backoff gate set.
  std::deque<ShardState> pending;
  for (int s : requested) {
    pending.push_back(ShardState{s, 0, WallNow(), ""});
  }
  std::vector<RunningWorker> running;
  int failed_shards = 0;
  std::string first_error;
  bool draining = false;
  Clock::time_point drain_deadline{};

  auto fail_shard = [&](ShardState state, const std::string& why) {
    ShardDispatch& out = outcomes[state.shard];
    out.attempts = state.attempts;
    out.ok = false;
    out.error = why;
    ++failed_shards;
    std::string message = StrFormat("shard %d/%d failed after %d attempt(s): %s", state.shard,
                                    options.num_shards, state.attempts, why.c_str());
    if (first_error.empty()) {
      first_error = message;
    }
    log(message);
    emit(ShardEvent::Kind::kFailed, state.shard, state.attempts, "", why);
  };

  // A drained shard is incomplete, not failed: resume re-runs it.
  auto park_shard = [&](ShardState state, const std::string& why) {
    ShardDispatch& out = outcomes[state.shard];
    out.attempts = state.attempts;
    out.ok = false;
    out.error = why;
    log(StrFormat("shard %d/%d: %s — left for resume", state.shard, options.num_shards,
                  why.c_str()));
  };

  auto resubmit = [&](ShardState state, const std::string& why) {
    if (draining) {
      park_shard(std::move(state), why);
      return;
    }
    // state.attempts counts launches; max_retries bounds *re*-submissions,
    // mirroring the simulated-I/O retry driver's accounting.
    if (state.attempts > options.retry.max_retries) {
      fail_shard(std::move(state), why);
      return;
    }
    double backoff = options.retry.BackoffMs(state.attempts - 1);
    log(StrFormat("shard %d/%d attempt %d: %s — resubmitting after %.0f ms", state.shard,
                  options.num_shards, state.attempts, why.c_str(), backoff));
    ++report.stats.resubmissions;
    emit(ShardEvent::Kind::kRetry, state.shard, state.attempts, "", why);
    state.last_error = why;
    state.ready_at = WallNow() + std::chrono::microseconds(
                                        static_cast<long long>(backoff * 1000.0));
    pending.push_back(std::move(state));
  };

  while (!pending.empty() || !running.empty()) {
    // A drain request stops new launches; in-flight workers get a grace
    // window, then are killed so the journal can close out promptly.
    if (!draining && options.drain != nullptr && options.drain->load()) {
      draining = true;
      drain_deadline = WallNow() + std::chrono::microseconds(
                                       static_cast<long long>(options.drain_grace_ms * 1000.0));
      report.drained = true;
      log(StrFormat("drain requested: %zu shard(s) unlaunched, %zu in flight (grace %.0f ms)",
                    pending.size(), running.size(), options.drain_grace_ms));
      while (!pending.empty()) {
        ShardState state = std::move(pending.front());
        pending.pop_front();
        std::string why =
            state.attempts == 0 ? "drained before launch" : "drained during backoff";
        park_shard(std::move(state), why);
      }
    }

    // Launch workers into free slots (skipping shards still in backoff).
    for (size_t scan = 0; !draining &&
                          static_cast<int>(running.size()) < max_workers && scan < pending.size();) {
      if (pending[scan].ready_at > WallNow()) {
        ++scan;
        continue;
      }
      ShardState state = std::move(pending[scan]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(scan));
      ++state.attempts;
      std::string out_path = StrFormat("%s/shard_%d_of_%d.attempt%d.json", shard_dir.c_str(),
                                       state.shard, options.num_shards, state.attempts);
      Result<Subprocess> child = Subprocess::Start(command(state.shard, out_path));
      if (!child.ok()) {
        ++report.stats.spawn_failures;
        resubmit(std::move(state), child.status().ToString());
        continue;
      }
      ++report.stats.launches;
      emit(ShardEvent::Kind::kStart, state.shard, state.attempts, out_path, "");
      RunningWorker worker;
      worker.state = std::move(state);
      worker.process = std::move(child).value();
      worker.started = WallNow();
      worker.out_path = std::move(out_path);
      if (worker.state.shard == options.chaos_kill_shard && worker.state.attempts == 1) {
        // Chaos hook: prove a killed worker is resubmitted and the sweep
        // still completes deterministically.
        worker.process.Kill();
        worker.killed = true;
        ++report.stats.chaos_kills;
        log(StrFormat("shard %d/%d attempt 1: chaos-killed (pid %d)", worker.state.shard,
                      options.num_shards, static_cast<int>(worker.process.pid())));
      } else {
        log(StrFormat("shard %d/%d attempt %d: started (pid %d)", worker.state.shard,
                      options.num_shards, worker.state.attempts,
                      static_cast<int>(worker.process.pid())));
      }
      running.push_back(std::move(worker));
    }

    // Poll running workers: reap exits, kill stragglers past the deadline.
    for (size_t i = 0; i < running.size();) {
      RunningWorker& worker = running[i];
      bool done = worker.process.Poll();
      if (!done) {
        if (!worker.killed && draining && WallNow() >= drain_deadline) {
          worker.process.Kill();
          worker.killed = true;
          ++report.stats.drain_kills;
          log(StrFormat("shard %d/%d attempt %d: drain grace expired — killed",
                        worker.state.shard, options.num_shards, worker.state.attempts));
        } else if (!worker.killed && options.retry.timeout_ms > 0 &&
                   MsSince(worker.started) > options.retry.timeout_ms) {
          worker.process.Kill();
          // Keep polling; the kill is collected on a later iteration and
          // routed through the normal failed-attempt path below.
          worker.killed = true;
          ++report.stats.deadline_kills;
          log(StrFormat("shard %d/%d attempt %d: deadline %.0f ms exceeded — killed",
                        worker.state.shard, options.num_shards, worker.state.attempts,
                        options.retry.timeout_ms));
        }
        ++i;
        continue;
      }
      RunningWorker finished = std::move(running[i]);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      if (finished.process.exited_cleanly() && FileNonEmpty(finished.out_path)) {
        ShardDispatch& out = outcomes[finished.state.shard];
        out.attempts = finished.state.attempts;
        out.ok = true;
        out.artifact_path = finished.out_path;
        log(StrFormat("shard %d/%d attempt %d: ok", finished.state.shard, options.num_shards,
                      finished.state.attempts));
        emit(ShardEvent::Kind::kDone, finished.state.shard, finished.state.attempts,
             finished.out_path, "");
      } else {
        std::string why = finished.process.exited_cleanly()
                              ? std::string("worker wrote no artifact")
                              : finished.process.DescribeExit();
        resubmit(std::move(finished.state), why);
      }
    }

    if (!running.empty() || !pending.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  if (failed_shards > 0) {
    return Status::Internal(first_error);
  }
  report.shards.reserve(outcomes.size());
  for (auto& [shard, dispatch] : outcomes) {
    (void)shard;
    report.shards.push_back(std::move(dispatch));
  }
  return report;
}

}  // namespace emsim::sweep

file(REMOVE_RECURSE
  "CMakeFiles/emsim_analysis.dir/equations.cc.o"
  "CMakeFiles/emsim_analysis.dir/equations.cc.o.d"
  "CMakeFiles/emsim_analysis.dir/markov.cc.o"
  "CMakeFiles/emsim_analysis.dir/markov.cc.o.d"
  "CMakeFiles/emsim_analysis.dir/model_params.cc.o"
  "CMakeFiles/emsim_analysis.dir/model_params.cc.o.d"
  "CMakeFiles/emsim_analysis.dir/predictor.cc.o"
  "CMakeFiles/emsim_analysis.dir/predictor.cc.o.d"
  "CMakeFiles/emsim_analysis.dir/seek_distribution.cc.o"
  "CMakeFiles/emsim_analysis.dir/seek_distribution.cc.o.d"
  "CMakeFiles/emsim_analysis.dir/urn_game.cc.o"
  "CMakeFiles/emsim_analysis.dir/urn_game.cc.o.d"
  "libemsim_analysis.a"
  "libemsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

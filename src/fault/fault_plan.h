#ifndef EMSIM_FAULT_FAULT_PLAN_H_
#define EMSIM_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace emsim::fault {

/// Transient media-error injection options — the one fault vocabulary shared
/// by the simulation's FaultPlan and the external sorter's FaultyBlockDevice.
/// Failures are deterministic for a seed.
struct MediaFaultOptions {
  double read_failure_rate = 0.0;   ///< Probability a read fails with kIoError.
  double write_failure_rate = 0.0;  ///< Probability a write fails with kIoError.
  uint64_t seed = 1;
  /// If > 0, exactly this 1-based read fails instead of random sampling
  /// (precise fault placement for tests).
  uint64_t fail_nth_read = 0;
  uint64_t fail_nth_write = 0;
};

/// Deterministic sampler for MediaFaultOptions. One instance per injection
/// site (block device, or one disk of a FaultPlan), each drawing from its own
/// seeded stream so sites never perturb each other.
class MediaErrorInjector {
 public:
  explicit MediaErrorInjector(const MediaFaultOptions& options);

  /// Advances the read-attempt counter and reports whether this read fails.
  bool NextReadFails();

  /// Advances the write-attempt counter and reports whether this write fails.
  bool NextWriteFails();

  uint64_t read_attempts() const { return read_attempts_; }
  uint64_t write_attempts() const { return write_attempts_; }
  uint64_t injected_read_failures() const { return injected_reads_; }
  uint64_t injected_write_failures() const { return injected_writes_; }

 private:
  MediaFaultOptions options_;
  Rng rng_;
  uint64_t read_attempts_ = 0;
  uint64_t write_attempts_ = 0;
  uint64_t injected_reads_ = 0;
  uint64_t injected_writes_ = 0;
};

/// Retry/timeout/backoff policy for fault-aware I/O submission
/// (io::FetchRetryDriver). Only consulted when fault injection is enabled.
struct RetryPolicy {
  /// Re-submissions allowed after the first attempt; exhausting them is a
  /// permanent failure (the merge surfaces a Status for a demand span).
  int max_retries = 4;
  /// Simulated time an attempt may sit queued before it is abandoned and
  /// retried elsewhere in time. 0 disables timeouts (error-triggered
  /// retries only). Attempts in service are never preempted.
  double timeout_ms = 2000.0;
  /// Exponential backoff before re-submission: base * multiplier^retry.
  double backoff_base_ms = 20.0;
  double backoff_multiplier = 2.0;

  double BackoffMs(int retry) const;

  Status Validate() const;
};

/// Scalar fault-injection knobs for one simulated merge — the CLI/spec-facing
/// configuration a FaultPlan is compiled from. All-defaults means *no fault
/// injection*: the simulation takes the exact pre-fault code paths and
/// produces byte-identical results (pinned by the golden tests).
struct FaultConfig {
  /// Probability that a request entering service fails with a transient
  /// media error (applies to every disk; each disk samples its own stream).
  double media_error_rate = 0.0;

  /// Probability that a request pays `latency_spike_ms` extra positioning
  /// time (controller hiccups, recovered-sector retries).
  double latency_spike_rate = 0.0;
  double latency_spike_ms = 50.0;

  /// Fail-slow: one disk whose service times are multiplied by
  /// `fail_slow_factor` inside [fail_slow_start_ms, fail_slow_end_ms).
  /// -1 disables; end < 0 means "until the end of the run".
  int fail_slow_disk = -1;
  double fail_slow_factor = 4.0;
  double fail_slow_start_ms = 0.0;
  double fail_slow_end_ms = -1.0;

  /// Fail-stop: one disk that stops serving requests inside
  /// [fail_stop_start_ms, fail_stop_end_ms). -1 disables; end < 0 means the
  /// disk never comes back (its unread runs become unreadable and the merge
  /// surfaces a Status once retries exhaust).
  int fail_stop_disk = -1;
  double fail_stop_start_ms = 0.0;
  double fail_stop_end_ms = -1.0;

  /// Seed for the plan's private per-disk fault streams. 0 derives the seed
  /// from the merge seed, so trials stay independent by default.
  uint64_t seed = 0;

  /// Retry/timeout/backoff policy applied while injection is enabled.
  RetryPolicy retry;

  /// True when any fault source is active. False means the merge must not
  /// construct fault machinery at all (byte-identical baseline).
  bool InjectionEnabled() const;

  Status Validate(int num_disks) const;

  std::string ToString() const;
};

/// Per-request fault verdict drawn when a request enters service.
struct RequestFault {
  bool media_error = false;
  double extra_latency_ms = 0.0;  ///< Latency spike surcharge.
  double slow_factor = 1.0;       ///< Service-time multiplier (fail-slow).
};

/// A deterministic, seeded schedule of disk misbehavior for one trial:
/// per-disk fail-stop intervals, fail-slow multipliers, transient media-error
/// rates and latency spikes. Disks consult the plan on every request; the
/// plan's streams are separate from every model stream, so enabling faults
/// never perturbs the baseline rotational-latency or depletion sequences.
class FaultPlan {
 public:
  /// `base_seed` seeds the per-disk streams when `config.seed` is 0 (the
  /// usual case: derive from the merge seed so trials differ).
  FaultPlan(const FaultConfig& config, int num_disks, uint64_t base_seed);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// True while `disk` is fail-stopped at simulated time `now`.
  bool FailStopped(int disk, double now) const;

  /// Simulated time at which a fail-stopped `disk` resumes service;
  /// +infinity when the outage never lifts.
  double FailStopEndMs(int disk) const;

  /// Draws the fault verdict for one request entering service on `disk`.
  /// Deterministic: each disk owns a private stream, and the draw order is
  /// the disk's service order.
  RequestFault OnRequestStart(int disk, double now);

  const FaultConfig& config() const { return config_; }
  int num_disks() const { return static_cast<int>(spike_rngs_.size()); }

 private:
  FaultConfig config_;
  std::vector<MediaErrorInjector> media_;  ///< One per disk.
  std::vector<Rng> spike_rngs_;            ///< One per disk.
};

/// Aggregated fault/recovery outcome of one simulated merge. All fields stay
/// zero (and `injection_enabled` false) when the trial ran without fault
/// injection; the JSON export emits the block only when enabled, keeping
/// zero-fault artifacts byte-identical to the pre-fault schema.
struct FaultStats {
  bool injection_enabled = false;
  uint64_t media_errors = 0;        ///< Requests failed by injected media errors.
  uint64_t latency_spikes = 0;      ///< Requests that paid the spike surcharge.
  uint64_t timeouts = 0;            ///< Attempts abandoned after the request timeout.
  uint64_t retries = 0;             ///< Re-submissions after an error or timeout.
  uint64_t dropped_requests = 0;    ///< Abandoned attempts discarded at the disk.
  uint64_t permanent_failures = 0;  ///< Spans that exhausted every retry.
  uint64_t degraded_plans = 0;      ///< Prefetch plans issued with >= 1 disk quarantined.
  uint64_t quarantine_events = 0;   ///< Disk transitions into quarantine.
  double backoff_ms = 0.0;          ///< Total simulated backoff wait.
  double fail_stop_ms = 0.0;        ///< Disk time parked by fail-stop with work queued.
  double quarantine_ms = 0.0;       ///< Disk time spent quarantined by the tracker.
};

}  // namespace emsim::fault

#endif  // EMSIM_FAULT_FAULT_PLAN_H_

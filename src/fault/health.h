#ifndef EMSIM_FAULT_HEALTH_H_
#define EMSIM_FAULT_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emsim::fault {

/// Per-disk health bookkeeping driven by observed request outcomes. The I/O
/// retry driver reports every failure/success; prefetch planners consult
/// `Usable()` so the inter-run fan-out can skip disks that are currently
/// misbehaving (partial-batch admission) instead of serializing every batch
/// behind a straggler.
///
/// Policy: a disk that fails `quarantine_after_failures` consecutive attempts
/// is quarantined for `quarantine_window_ms` of simulated time (each further
/// failure extends the window); a success clears the streak. A disk marked
/// dead (permanent failure) never becomes usable again. All state is plain
/// deterministic arithmetic on simulated time — no randomness, no wall clock.
class HealthTracker {
 public:
  struct Options {
    int quarantine_after_failures = 2;
    double quarantine_window_ms = 500.0;
  };

  explicit HealthTracker(int num_disks) : HealthTracker(num_disks, Options()) {}
  HealthTracker(int num_disks, Options options);

  /// Records a failed attempt on `disk` at simulated time `now`.
  void NoteFailure(int disk, double now);

  /// Records a successful completion on `disk`; ends its failure streak.
  void NoteSuccess(int disk);

  /// Permanently retires `disk` (retries exhausted / fail-stop observed).
  void MarkDead(int disk);

  /// True when planners may target `disk` at simulated time `now`.
  bool Usable(int disk, double now) const;

  bool Dead(int disk) const { return disks_[static_cast<size_t>(disk)].dead; }

  /// Number of disks not usable at `now` (quarantined or dead).
  int DegradedCount(double now) const;

  int num_disks() const { return static_cast<int>(disks_.size()); }
  uint64_t quarantine_events() const { return quarantine_events_; }
  /// Total simulated time scheduled as quarantine windows (overlaps merged).
  double quarantine_ms() const { return quarantine_ms_; }

 private:
  struct DiskHealth {
    int consecutive_failures = 0;
    double quarantine_until = 0.0;
    bool dead = false;
  };

  Options options_;
  std::vector<DiskHealth> disks_;
  uint64_t quarantine_events_ = 0;
  double quarantine_ms_ = 0.0;
};

}  // namespace emsim::fault

#endif  // EMSIM_FAULT_HEALTH_H_

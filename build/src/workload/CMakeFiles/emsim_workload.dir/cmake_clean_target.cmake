file(REMOVE_RECURSE
  "libemsim_workload.a"
)

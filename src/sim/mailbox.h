#ifndef EMSIM_SIM_MAILBOX_H_
#define EMSIM_SIM_MAILBOX_H_

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "sim/process.h"
#include "sim/simulation.h"
#include "util/check.h"
#include "util/inline_vec.h"

namespace emsim::sim {

/// An unbounded FIFO message queue between processes (CSIM mailbox). `Put` is
/// non-blocking; `Get` suspends until a message is available. Messages are
/// delivered in arrival order; waiting receivers are served FIFO.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation* sim) : sim_(sim) { EMSIM_CHECK(sim != nullptr); }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message; delivers it directly to the head waiting receiver
  /// if one exists.
  void Put(T message) {
    if (!receivers_.empty()) {
      Getter* head = receivers_.front();
      receivers_.pop_front();
      head->message_ = std::move(message);
      sim_->ScheduleHandle(sim_->Now(), head->handle_);
      return;
    }
    messages_.push_back(std::move(message));
  }

  /// Messages currently buffered.
  size_t Size() const { return messages_.size(); }

  /// Receivers currently blocked in Get().
  size_t NumWaiters() const { return receivers_.size(); }

  class Getter {
   public:
    explicit Getter(Mailbox* box) : box_(box) {}
    bool await_ready() noexcept {
      if (!box_->messages_.empty()) {
        message_ = std::move(box_->messages_.front());
        box_->messages_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<Process::promise_type> h) {
      handle_ = h;
      box_->receivers_.push_back(this);
    }
    T await_resume() {
      EMSIM_CHECK(message_.has_value());
      return std::move(*message_);
    }

   private:
    friend class Mailbox;
    Mailbox* box_;
    std::coroutine_handle<> handle_;
    std::optional<T> message_;
  };

  /// Awaitable receive.
  Getter Get() { return Getter(this); }

 private:
  friend class Getter;
  Simulation* sim_;
  std::deque<T> messages_;
  InlineQueue<Getter*, 2> receivers_;
};

}  // namespace emsim::sim

#endif  // EMSIM_SIM_MAILBOX_H_

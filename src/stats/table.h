#ifndef EMSIM_STATS_TABLE_H_
#define EMSIM_STATS_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace emsim::stats {

/// Simple column-aligned ASCII table builder used by the bench harnesses to
/// print paper-vs-measured comparisons.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Cell(double v, int precision = 2);

  size_t NumRows() const { return rows_.size(); }

  /// Renders with a header rule and column padding.
  std::string ToString() const;

  /// Comma-separated rendering (no escaping; callers avoid commas in cells).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace emsim::stats

#endif  // EMSIM_STATS_TABLE_H_

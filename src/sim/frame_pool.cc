#include "sim/frame_pool.h"

#include <new>
#include <vector>

namespace emsim::sim {

namespace {

// 64-byte classes keep every block max_align_t-aligned (slabs come from
// operator new) and waste at most 63 bytes per frame.
constexpr std::size_t kClassBytes = 64;
constexpr std::size_t kNumClasses = 16;  // Classes cover frames up to 1 KiB.
constexpr std::size_t kMaxPooledBytes = kClassBytes * kNumClasses;
constexpr std::size_t kSlabBlocks = 64;  // Blocks carved per slab.

struct FreeNode {
  FreeNode* next;
};

struct Pool {
  FreeNode* free_lists[kNumClasses] = {};
  std::vector<void*> slabs;
  FramePool::Stats stats;

  ~Pool() {
    // Runs at thread exit, after every Simulation on this thread is gone
    // (frames never outlive their simulation's thread).
    for (void* slab : slabs) {
      ::operator delete(slab);
    }
  }
};

Pool& LocalPool() {
  thread_local Pool pool;
  return pool;
}

std::size_t ClassIndex(std::size_t bytes) { return (bytes + kClassBytes - 1) / kClassBytes - 1; }

}  // namespace

void* FramePool::Allocate(std::size_t bytes) {
  Pool& pool = LocalPool();
  if (bytes == 0 || bytes > kMaxPooledBytes) {
    ++pool.stats.fallback_allocs;
    ++pool.stats.live_frames;
    return ::operator new(bytes);
  }
  std::size_t cls = ClassIndex(bytes);
  if (pool.free_lists[cls] == nullptr) {
    const std::size_t block_bytes = (cls + 1) * kClassBytes;
    char* slab = static_cast<char*>(::operator new(block_bytes * kSlabBlocks));
    pool.slabs.push_back(slab);
    ++pool.stats.slabs_allocated;
    pool.stats.bytes_reserved += block_bytes * kSlabBlocks;
    for (std::size_t i = 0; i < kSlabBlocks; ++i) {
      auto* node = reinterpret_cast<FreeNode*>(slab + i * block_bytes);
      node->next = pool.free_lists[cls];
      pool.free_lists[cls] = node;
    }
  }
  FreeNode* node = pool.free_lists[cls];
  pool.free_lists[cls] = node->next;
  ++pool.stats.pool_allocs;
  ++pool.stats.live_frames;
  return node;
}

void FramePool::Deallocate(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) {
    return;
  }
  Pool& pool = LocalPool();
  --pool.stats.live_frames;
  if (bytes == 0 || bytes > kMaxPooledBytes) {
    ::operator delete(ptr);
    return;
  }
  std::size_t cls = ClassIndex(bytes);
  auto* node = static_cast<FreeNode*>(ptr);
  node->next = pool.free_lists[cls];
  pool.free_lists[cls] = node;
}

FramePool::Stats FramePool::ThreadStats() { return LocalPool().stats; }

void FramePool::ResetThreadStats() { LocalPool().stats = Stats{}; }

}  // namespace emsim::sim

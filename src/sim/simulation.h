#ifndef EMSIM_SIM_SIMULATION_H_
#define EMSIM_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/calendar.h"
#include "util/check.h"

namespace emsim::sim {

class Process;

/// Process-oriented discrete-event simulation kernel — the library's
/// replacement for Rice CSIM, which the paper used. Model code is written as
/// C++20 coroutines (`Process` functions) that `co_await` delays and
/// synchronization primitives; the kernel owns the event calendar and resumes
/// coroutines in nondecreasing time order with FIFO tie-breaking, which makes
/// every simulation fully deterministic for a given RNG seed.
///
/// Single-threaded by design: determinism and reproducibility outrank
/// parallel speed for a simulation that completes in milliseconds. (Whole
/// trials parallelize across Simulations; see core::RunTrialsParallel.)
///
/// Hot-path layout: the calendar orders 16-byte trivially copyable entries
/// (see CalEntry) whose payload is a tagged index into one of three recycled
/// slot pools — coroutine handles (the dominant case), pooled callbacks, or
/// same-timestamp burst groups. Two selectable backends implement the
/// identical (time, seq) contract: an indexed 4-ary min-heap (sift moves two
/// words per hop, children of a node share a cache line) and a Brown-1988
/// calendar queue (amortized O(1) bucket ops; see calendar.h). Backend choice
/// never changes results, only speed.
class Simulation {
 public:
  /// `backend` selects the calendar structure; kDefault resolves the
  /// EMSIM_CALENDAR environment variable (unset means heap).
  explicit Simulation(CalendarBackend backend = CalendarBackend::kDefault)
      : backend_(ResolveCalendarBackend(backend)) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// The calendar backend this kernel resolved to (never kDefault).
  CalendarBackend backend() const { return backend_; }

  /// Starts a process: the coroutine body begins executing at the current
  /// simulated time (processes start suspended). Ownership of the coroutine
  /// frame transfers to the kernel; the frame frees itself on completion.
  void Spawn(Process&& process);

  /// Schedules `handle` to be resumed at absolute time `at` (>= Now()). The
  /// handle parks in a recycled slot pool and the calendar entry carries only
  /// the slot index, so nothing address-derived ever enters the ordered
  /// structure.
  void ScheduleHandle(SimTime at, std::coroutine_handle<> handle) {
    EMSIM_CHECK(at >= now_);
    uint32_t slot = AcquireHandleSlot();
    handle_pool_[slot] = handle.address();
    CalPush(CalEntry{at, NextSeq(), (slot << kTagBits) | kTagHandle});
  }

  /// Schedules a batch of handles at one timestamp for the cost of a single
  /// calendar touch: the group parks in a pooled burst cell and one entry
  /// represents all of them. Dispatch resumes members in array order and
  /// counts one processed event per member, so results are byte-identical to
  /// scheduling them individually — the common case is D disk completions
  /// landing on the same tick at high prefetch depth. Falls back to
  /// individual scheduling for n <= 1 and while the calendar-depth timeline
  /// is attached (the timeline must record every push/pop).
  void ScheduleHandleBurst(SimTime at, const std::coroutine_handle<>* handles, size_t n) {
    if (n == 0) {
      return;
    }
    if (n == 1 || metric_calendar_depth_ != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        ScheduleHandle(at, handles[i]);
      }
      return;
    }
    EMSIM_CHECK(at >= now_);
    uint32_t slot = AcquireBurstSlot();
    std::vector<void*>& group = burst_pool_[slot];
    for (size_t i = 0; i < n; ++i) {
      group.push_back(handles[i].address());
    }
    // One seq for the whole group: members would have received consecutive
    // seqs, and no entry pushed later can order between them, so collapsing
    // the range to its first value preserves the exact pop sequence.
    CalPush(CalEntry{at, NextSeq(), (slot << kTagBits) | kTagBurst});
  }

  /// Schedules a plain callback at absolute time `at`. The callable is
  /// constructed directly into a recycled pool cell (no std::function, no
  /// per-call allocation for small trivially copyable callables); the
  /// calendar entry itself stays slim and carries only the cell's slot id.
  template <typename F>
  void ScheduleCallback(SimTime at, F&& callback) {
    EMSIM_CHECK(at >= now_);
    uint32_t slot = AcquireCallbackSlot();
    callback_pool_[slot].Emplace(std::forward<F>(callback));
    CalPush(CalEntry{at, NextSeq(), (slot << kTagBits) | kTagCallback});
  }

  /// Lone-runner fast path used by awaiters (see Delay::await_suspend): when
  /// the calendar is empty inside Run/RunUntil, an event scheduled now would
  /// be the next one dispatched, so the kernel can advance time in place and
  /// let the caller keep running. Replays the pop's exact observable effects
  /// (now_, one seq number, events_processed_) so results stay byte-identical
  /// with the scheduled path. Declined outside the run loop (direct Step()
  /// callers see one event per call), past a RunUntil deadline, while burst
  /// members are still being dispatched (they run at the current time, so
  /// time must not move), or while metrics are attached (the calendar-depth
  /// timeline must record the push/pop it would otherwise miss).
  bool AdvanceInline(SimTime at) {
    if (!in_run_loop_ || in_burst_dispatch_ || !CalendarEmpty() || at > run_deadline_ ||
        metric_calendar_depth_ != nullptr || events_processed_ >= event_cap_) {
      return false;
    }
    EMSIM_CHECK(at >= now_);
    now_ = at;
    (void)NextSeq();
    ++events_processed_;
    return true;
  }

  /// Executes the single next event. Returns false if the calendar is empty.
  /// A burst entry dispatches (and counts) every member before returning.
  bool Step();

  /// Runs until the calendar is empty. If live processes remain blocked on
  /// synchronization objects afterwards, the model deadlocked; callers can
  /// inspect live_processes().
  void Run();

  /// Runs until the calendar is empty or simulated time would exceed
  /// `deadline`; events after the deadline stay queued.
  void RunUntil(SimTime deadline);

  /// Runs until the calendar is empty or `max_events` further events have
  /// executed, whichever comes first. Returns true when the calendar drained.
  /// Chunked callers (trial deadlines, wall-clock watchdogs) interleave
  /// bounded runs with their own checks; the pop sequence is byte-identical
  /// to one uninterrupted Run() because the cap also disables the
  /// AdvanceInline fast path once reached (a lone runner could otherwise
  /// spin past any bound inside a single Step()). A burst entry straddling
  /// the cap overshoots it by its remaining members — bursts are atomic.
  bool RunBounded(uint64_t max_events);

  /// Number of calendar events executed so far.
  uint64_t events_processed() const { return events_processed_; }

  /// Entries waiting in the calendar right now (a burst group counts as one).
  size_t CalendarDepth() const {
    return backend_ == CalendarBackend::kHeap ? calendar_.size() : cq_.size();
  }

  /// Callback slots currently owned by the pool (allocated high-water mark;
  /// introspection for tests and benches — slots are recycled, so this stays
  /// at the peak number of simultaneously scheduled callbacks).
  size_t CallbackPoolSize() const { return callback_pool_.size(); }

  /// Handle slots currently owned by the pool (same recycling contract).
  size_t HandlePoolSize() const { return handle_pool_.size(); }

  /// Wires kernel instrumentation into `metrics` ("sim.*" namespace):
  /// coroutine resumes vs plain callbacks dispatched, processes spawned,
  /// and the calendar-depth timeline. Pass nullptr to detach. When nothing
  /// is attached (the default) the kernel hot path pays one pointer test.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Number of spawned processes that have not finished.
  int live_processes() const { return static_cast<int>(live_.size()); }

  /// Internal: process lifetime accounting (called by Spawn / the Process
  /// promise). Live frames are tracked so that a Simulation destroyed while
  /// processes are still blocked (e.g. server loops) reclaims their frames.
  /// The promise's `live_slot` field stores the frame's index in the live
  /// table; swap-with-back removal keeps both directions O(1).
  void OnProcessCreated(std::coroutine_handle<> handle, uint32_t* slot) {
    *slot = static_cast<uint32_t>(live_.size());
    live_.push_back(LiveProcess{handle, slot});
    if (metric_spawns_ != nullptr) {
      metric_spawns_->Increment();
    }
  }
  void OnProcessFinished(uint32_t slot) {
    EMSIM_DCHECK(slot < live_.size());
    live_[slot] = live_.back();
    *live_[slot].slot = slot;
    live_.pop_back();
  }

  /// Test hook: plants the next FIFO sequence number so seq-wrap
  /// renormalization can be exercised without 2^32 real events.
  void SetNextSeqForTest(uint32_t next_seq) { next_seq_ = next_seq; }

  ~Simulation();

 private:
  // Payload tags (low kTagBits of CalEntry::payload).
  static constexpr uint32_t kTagBits = 2;
  static constexpr uint32_t kTagMask = (1u << kTagBits) - 1;
  static constexpr uint32_t kTagHandle = 0;
  static constexpr uint32_t kTagCallback = 1;
  static constexpr uint32_t kTagBurst = 2;

  struct LiveProcess {
    std::coroutine_handle<> handle;
    uint32_t* slot;  // Points at the owning promise's live_slot field.
  };

  /// A pooled one-shot callable. Small trivially copyable callables (every
  /// lambda capturing references, pointers or scalars) live inline in
  /// `storage`; anything else is boxed on the heap with the box pointer in
  /// `storage`. Inline callables are relocated by byte copy — legal exactly
  /// because they are trivially copyable — which lets Step() move the cell
  /// to a local before invoking, so a callback that schedules callbacks
  /// (growing/reusing the pool) can never invalidate the one running.
  struct CallbackCell {
    using TrampolineFn = void (*)(unsigned char* storage);
    TrampolineFn invoke_and_destroy = nullptr;  // Null when the cell is free.
    TrampolineFn destroy_only = nullptr;        // Null when destruction is a no-op.
    alignas(16) unsigned char storage[48];

    template <typename F>
    void Emplace(F&& callable) {
      using D = std::decay_t<F>;
      if constexpr (sizeof(D) <= sizeof(storage) && alignof(D) <= 16 &&
                    std::is_trivially_copyable_v<D>) {
        ::new (static_cast<void*>(storage)) D(std::forward<F>(callable));
        invoke_and_destroy = [](unsigned char* s) {
          D* fn = std::launder(reinterpret_cast<D*>(s));
          (*fn)();
          fn->~D();
        };
        if constexpr (!std::is_trivially_destructible_v<D>) {
          destroy_only = [](unsigned char* s) {
            std::launder(reinterpret_cast<D*>(s))->~D();
          };
        }
      } else {
        D* boxed = new D(std::forward<F>(callable));
        std::memcpy(storage, &boxed, sizeof(boxed));
        invoke_and_destroy = [](unsigned char* s) {
          D* fn;
          std::memcpy(&fn, s, sizeof(fn));
          (*fn)();
          delete fn;
        };
        destroy_only = [](unsigned char* s) {
          D* fn;
          std::memcpy(&fn, s, sizeof(fn));
          delete fn;
        };
      }
    }
  };

  /// Hands out the next FIFO sequence number. seq is 32-bit so a calendar
  /// entry stays 16 bytes; on the (rare) wrap the pending entries — already a
  /// tiny set relative to 2^32 — are renumbered 0..n-1 in pop order, which
  /// preserves their relative order and every future ordering.
  uint32_t NextSeq() {
    if (next_seq_ == UINT32_MAX) [[unlikely]] {
      RenormalizeSeqs();
    }
    return next_seq_++;
  }
  void RenormalizeSeqs();

  bool CalendarEmpty() const {
    return backend_ == CalendarBackend::kHeap ? calendar_.empty() : cq_.empty();
  }
  void CalPush(CalEntry entry) {
    if (backend_ == CalendarBackend::kHeap) {
      HeapPush(entry);
    } else {
      cq_.Push(entry);
    }
  }
  /// Earliest pending time; requires a non-empty calendar.
  SimTime CalMinTime() {
    return backend_ == CalendarBackend::kHeap ? calendar_.front().time : cq_.PeekMin().time;
  }

  void HeapPush(CalEntry entry);
  void HeapPopRoot();
  uint32_t AcquireCallbackSlot();
  uint32_t AcquireHandleSlot() {
    if (free_handle_slots_.empty()) {
      handle_pool_.push_back(nullptr);
      return static_cast<uint32_t>(handle_pool_.size() - 1);
    }
    uint32_t slot = free_handle_slots_.back();
    free_handle_slots_.pop_back();
    return slot;
  }
  uint32_t AcquireBurstSlot();
  void DispatchBurst(uint32_t slot);

  CalendarBackend backend_;
  SimTime now_ = 0.0;
  uint32_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t event_cap_ = UINT64_MAX;  // Valid only while in_run_loop_ is true.
  bool in_run_loop_ = false;
  bool in_burst_dispatch_ = false;
  SimTime run_deadline_ = 0.0;  // Valid only while in_run_loop_ is true.
  std::vector<LiveProcess> live_;
  std::vector<CalEntry> calendar_;  // Heap backend: 4-ary min-heap.
  CalendarQueue cq_;                // Calendar-queue backend.

  // Slot pools. Ids recycle through free lists so steady-state traffic
  // reuses the same cells; the pools grow to the peak number of
  // simultaneously pending entries of each kind and never shrink.
  std::vector<void*> handle_pool_;  // Parked coroutine frame addresses.
  std::vector<uint32_t> free_handle_slots_;
  std::vector<CallbackCell> callback_pool_;
  std::vector<uint32_t> free_callback_slots_;
  std::vector<std::vector<void*>> burst_pool_;  // Parked same-tick groups.
  std::vector<uint32_t> free_burst_slots_;

  // Instrumentation (all null unless AttachMetrics was called).
  obs::Counter* metric_resumes_ = nullptr;
  obs::Counter* metric_callbacks_ = nullptr;
  obs::Counter* metric_spawns_ = nullptr;
  obs::Timeline* metric_calendar_depth_ = nullptr;
};

}  // namespace emsim::sim

#endif  // EMSIM_SIM_SIMULATION_H_

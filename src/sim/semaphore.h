#ifndef EMSIM_SIM_SEMAPHORE_H_
#define EMSIM_SIM_SEMAPHORE_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>

#include "sim/process.h"
#include "sim/simulation.h"
#include "util/check.h"
#include "util/inline_vec.h"

namespace emsim::sim {

/// Counting semaphore with FIFO wakeup order and direct token handoff:
/// a token released while processes wait is granted to the longest-waiting
/// process immediately (it can not be stolen by a TryAcquire that runs before
/// the waiter is resumed), making acquisition order fair and deterministic.
class Semaphore {
 public:
  Semaphore(Simulation* sim, int64_t initial_count) : sim_(sim), count_(initial_count) {
    EMSIM_CHECK(sim != nullptr);
    EMSIM_CHECK(initial_count >= 0);
  }

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Tokens currently available (not counting handoffs in flight).
  int64_t count() const { return count_; }
  size_t NumWaiters() const { return waiters_.size(); }

  /// Non-blocking acquire; true on success.
  bool TryAcquire();

  /// Releases one token; the head waiter (if any) receives it directly.
  void Release();

  class Awaiter {
   public:
    explicit Awaiter(Semaphore* sem) : sem_(sem) {}
    bool await_ready() noexcept {
      if (sem_->count_ > 0) {
        --sem_->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<Process::promise_type> h) {
      handle_ = h;
      sem_->waiters_.push_back(this);
    }
    void await_resume() const noexcept {}

   private:
    friend class Semaphore;
    Semaphore* sem_;
    std::coroutine_handle<> handle_;
  };

  /// Awaitable acquire: suspends until a token is available, then owns it.
  Awaiter Acquire() { return Awaiter(this); }

 private:
  friend class Awaiter;
  Simulation* sim_;
  int64_t count_;
  // FIFO handoff queue; 0–2 deep almost always, so the ring stays inline.
  InlineQueue<Awaiter*, 4> waiters_;
};

}  // namespace emsim::sim

#endif  // EMSIM_SIM_SEMAPHORE_H_

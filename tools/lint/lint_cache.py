#!/usr/bin/env python3
"""Shared per-file result cache for the regex lint tiers (emsim_lint,
include_hygiene) — the same content-hash idiom as run_clang_tidy.py's per-TU
cache, scoped down to single files.

A cache entry stores the (findings, suppressions) pair for one file, keyed by
a SHA-256 over:
  - the tool's own source bytes (any rule edit invalidates everything),
  - an optional environment digest (include_hygiene keys the global
    header-exports world in, so a header edit invalidates all dependents
    while .cc edits invalidate only themselves),
  - the file's path and raw bytes.

Entries are one JSON file each under the cache dir, written atomically.
`stats()` feeds the shared --stats / --timing-report output so all three
lint tiers report timings the same way for $GITHUB_STEP_SUMMARY."""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

CACHE_SCHEMA = "1"
CACHE_MAX_ENTRIES = 8192


def digest_paths(*paths) -> str:
    """Digest of the tool's own sources: rule changes invalidate the cache."""
    h = hashlib.sha256()
    for path in paths:
        try:
            h.update(Path(path).read_bytes())
        except OSError:
            h.update(b"<missing>")
        h.update(b"\0")
    return h.hexdigest()


class FileCache:
    def __init__(self, cache_dir, tool_digest: str, env_digest: str = ""):
        self.dir = Path(cache_dir) if cache_dir else None
        self.prefix = hashlib.sha256(
            f"{CACHE_SCHEMA}\0{tool_digest}\0{env_digest}".encode()
        ).hexdigest()[:16]
        self.hits = 0
        self.misses = 0
        self.timings = []
        self._started = time.monotonic()
        if self.dir is not None:
            self.dir.mkdir(parents=True, exist_ok=True)

    def _entry(self, relpath: str, text: str) -> Path:
        h = hashlib.sha256()
        h.update(self.prefix.encode())
        h.update(relpath.encode("utf-8", "replace"))
        h.update(b"\0")
        h.update(text.encode("utf-8", "replace"))
        return self.dir / f"{h.hexdigest()}.json"

    def get(self, relpath: str, text: str):
        if self.dir is None:
            return None
        try:
            return json.loads(self._entry(relpath, text).read_text(
                encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def put(self, relpath: str, text: str, value):
        if self.dir is None:
            return
        entry = self._entry(relpath, text)
        tmp = entry.with_name(entry.name + ".tmp")
        tmp.write_text(json.dumps(value), encoding="utf-8")
        tmp.replace(entry)

    def record(self, relpath: str, cached: bool, seconds: float):
        if cached:
            self.hits += 1
        else:
            self.misses += 1
        self.timings.append({"file": relpath, "cached": cached,
                             "duration_seconds": round(seconds, 4)})

    def gc(self):
        """Drops the oldest entries once the dir outgrows the cap."""
        if self.dir is None:
            return
        entries = sorted(self.dir.glob("*.json"),
                         key=lambda p: p.stat().st_mtime)
        for stale in entries[:-CACHE_MAX_ENTRIES]:
            try:
                stale.unlink()
            except OSError:
                pass

    def stats(self, tool: str) -> dict:
        total = self.hits + self.misses
        return {
            "tool": tool,
            "version": 1,
            "wall_seconds": round(time.monotonic() - self._started, 3),
            "cache": {
                "enabled": self.dir is not None,
                "dir": str(self.dir) if self.dir is not None else None,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": round(self.hits / total, 4) if total else 0.0,
            },
            "files": sorted(self.timings, key=lambda t: t["file"]),
        }


def add_cache_args(parser, tool: str):
    parser.add_argument("--cache-dir",
                        help="per-file result cache (default: "
                             f"ROOT/build/{tool}-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the cache")
    parser.add_argument("--stats", action="store_true",
                        help="print cache/timing statistics")
    parser.add_argument("--timing-report",
                        help="write a timing/cache JSON artifact here")


def resolve_cache_dir(args, root: Path, tool: str):
    if args.no_cache:
        return None
    if args.cache_dir:
        return Path(args.cache_dir)
    return root / "build" / f"{tool}-cache"


def emit_stats(args, cache: FileCache, tool: str):
    payload = cache.stats(tool)
    if args.timing_report:
        Path(args.timing_report).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    if args.stats:
        c = payload["cache"]
        print(f"{tool}: {payload['wall_seconds']}s wall, "
              f"{c['hits']} cached / {c['misses']} scanned "
              f"(hit ratio {c['hit_ratio']:.0%})")
        slowest = sorted(payload["files"],
                         key=lambda t: -t["duration_seconds"])[:5]
        for entry in slowest:
            print(f"  {entry['duration_seconds']:7.3f}s "
                  f"{'hit ' if entry['cached'] else 'miss'} {entry['file']}")

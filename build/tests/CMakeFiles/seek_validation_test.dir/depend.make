# Empty dependencies file for seek_validation_test.
# This may be replaced when dependencies are built.

#include "analysis/model_params.h"

#include "util/str.h"

namespace emsim::analysis {

ModelParams ModelParams::From(const disk::DiskParams& disk_params,
                              const disk::RunLayout& layout) {
  ModelParams p;
  p.seek_ms_per_cylinder = disk_params.seek_ms_per_cylinder;
  p.rotational_ms = disk_params.MeanRotationalLatencyMs();
  p.transfer_ms = disk_params.TransferMsPerBlock();
  p.run_cylinders = layout.RunLengthCylinders();
  p.num_runs = layout.num_runs();
  p.num_disks = layout.num_disks();
  p.blocks_per_run = layout.blocks_per_run();
  return p;
}

ModelParams ModelParams::Paper(int num_runs, int num_disks) {
  ModelParams p;
  p.num_runs = num_runs;
  p.num_disks = num_disks;
  return p;
}

std::string ModelParams::ToString() const {
  return StrFormat("ModelParams{S=%.4f, R=%.4f, T=%.4f, m=%.4f, k=%d, D=%d, blocks/run=%lld}",
                   seek_ms_per_cylinder, rotational_ms, transfer_ms, run_cylinders, num_runs,
                   num_disks, static_cast<long long>(blocks_per_run));
}

}  // namespace emsim::analysis

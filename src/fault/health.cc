#include "fault/health.h"

#include <algorithm>
#include <cstddef>

#include "util/check.h"

namespace emsim::fault {

HealthTracker::HealthTracker(int num_disks, Options options)
    : options_(options), disks_(static_cast<size_t>(num_disks)) {
  EMSIM_CHECK(num_disks >= 1);
  EMSIM_CHECK(options_.quarantine_after_failures >= 1);
  EMSIM_CHECK(options_.quarantine_window_ms >= 0.0);
}

void HealthTracker::NoteFailure(int disk, double now) {
  DiskHealth& h = disks_[static_cast<size_t>(disk)];
  ++h.consecutive_failures;
  if (h.consecutive_failures < options_.quarantine_after_failures) return;
  double until = now + options_.quarantine_window_ms;
  if (until <= h.quarantine_until) return;
  if (h.quarantine_until <= now) ++quarantine_events_;
  quarantine_ms_ += until - std::max(now, h.quarantine_until);
  h.quarantine_until = until;
}

void HealthTracker::NoteSuccess(int disk) {
  disks_[static_cast<size_t>(disk)].consecutive_failures = 0;
}

void HealthTracker::MarkDead(int disk) { disks_[static_cast<size_t>(disk)].dead = true; }

bool HealthTracker::Usable(int disk, double now) const {
  const DiskHealth& h = disks_[static_cast<size_t>(disk)];
  return !h.dead && h.quarantine_until <= now;
}

int HealthTracker::DegradedCount(double now) const {
  int degraded = 0;
  for (int d = 0; d < num_disks(); ++d) {
    if (!Usable(d, now)) ++degraded;
  }
  return degraded;
}

}  // namespace emsim::fault

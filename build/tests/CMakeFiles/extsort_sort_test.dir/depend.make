# Empty dependencies file for extsort_sort_test.
# This may be replaced when dependencies are built.

#ifndef EMSIM_UTIL_CHECK_H_
#define EMSIM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// EMSIM_CHECK(cond): fatal invariant check, enabled in all build modes.
/// EMSIM_DCHECK(cond): fatal invariant check, enabled only in debug builds.
///
/// These are used for programming errors (broken invariants), never for
/// recoverable conditions — those return Status.

#define EMSIM_CHECK(cond)                                                           \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "EMSIM_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                          \
      std::abort();                                                                 \
    }                                                                               \
  } while (false)

#define EMSIM_CHECK_MSG(cond, msg)                                                     \
  do {                                                                                 \
    if (!(cond)) {                                                                     \
      std::fprintf(stderr, "EMSIM_CHECK failed at %s:%d: %s (%s)\n", __FILE__,         \
                   __LINE__, #cond, (msg));                                            \
      std::abort();                                                                    \
    }                                                                                  \
  } while (false)

#ifdef NDEBUG
#define EMSIM_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define EMSIM_DCHECK(cond) EMSIM_CHECK(cond)
#endif

#endif  // EMSIM_UTIL_CHECK_H_

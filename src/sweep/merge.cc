#include "sweep/merge.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <utility>

#include "core/result.h"
#include "sweep/shard.h"
#include "util/str.h"

namespace emsim::sweep {

namespace {

/// The common merge over already-unsealed payloads; `name(a)` labels
/// artifact `a` in every diagnostic.
Result<std::vector<core::ExperimentResult>> MergePayloads(
    const std::vector<core::SweepUnit>& units, size_t count,
    const std::function<const std::string&(size_t)>& payload,
    const std::function<std::string(size_t)>& name) {
  core::SweepGrid grid(units);
  const uint64_t digest = SpecDigest(units);
  const int total = grid.total_tasks();

  std::vector<core::MergeResult> results(static_cast<size_t>(total));
  std::vector<bool> covered(static_cast<size_t>(total), false);
  int failed_task = std::numeric_limits<int>::max();
  Status failed_status;

  for (size_t a = 0; a < count; ++a) {
    Result<ShardArtifact> decoded = DecodeShardArtifact(payload(a));
    if (!decoded.ok()) {
      return Status::Corruption(StrFormat("%s: %s", name(a).c_str(),
                                          decoded.status().message().c_str()));
    }
    const ShardArtifact& shard = *decoded;
    if (shard.spec_digest != digest) {
      return Status::InvalidArgument(
          StrFormat("%s (shard %d/%d): spec digest %016llx does not match the "
                    "loaded spec (%016llx) — artifact is from a different sweep",
                    name(a).c_str(), shard.shard_index, shard.shard_count,
                    static_cast<unsigned long long>(shard.spec_digest),
                    static_cast<unsigned long long>(digest)));
    }
    if (shard.total_tasks != total) {
      return Status::InvalidArgument(
          StrFormat("%s: %d total tasks, spec defines %d", name(a).c_str(), shard.total_tasks,
                    total));
    }
    ShardRange expected = ShardSlice(total, shard.shard_index, shard.shard_count);
    if (shard.range.begin != expected.begin || shard.range.end != expected.end) {
      return Status::Corruption(
          StrFormat("%s: shard %d/%d claims range [%d, %d), expected [%d, %d)",
                    name(a).c_str(), shard.shard_index, shard.shard_count, shard.range.begin,
                    shard.range.end, expected.begin, expected.end));
    }
    for (const ShardTask& task : shard.tasks) {
      if (task.task < shard.range.begin || task.task >= shard.range.end) {
        return Status::Corruption(StrFormat("%s: task %d outside its shard range",
                                            name(a).c_str(), task.task));
      }
      if (!task.ok) {
        if (task.task < failed_task) {
          failed_task = task.task;
          failed_status = task.error;
        }
        continue;
      }
      // A resubmitted straggler can leave two artifacts for the same shard;
      // the per-task results are deterministic, so either copy is correct.
      results[static_cast<size_t>(task.task)] = task.result;
      covered[static_cast<size_t>(task.task)] = true;
    }
  }

  if (failed_task != std::numeric_limits<int>::max()) {
    // The exact message a single-process RunSweep would have aborted with:
    // lowest-index capture is shard- and thread-count independent.
    return Status(failed_status.code(),
                  StrFormat("sweep task %d failed: %s", failed_task,
                            failed_status.ToString().c_str()));
  }
  for (int t = 0; t < total; ++t) {
    if (!covered[static_cast<size_t>(t)]) {
      core::SweepGrid::Task task = grid.At(t);
      return Status::InvalidArgument(StrFormat(
          "task %d (unit '%s', trial %d) not covered by any artifact — missing shard?", t,
          units[static_cast<size_t>(task.unit)].name.c_str(), task.trial));
    }
  }

  std::vector<core::ExperimentResult> out;
  out.reserve(units.size());
  for (int u = 0; u < grid.num_units(); ++u) {
    auto first = results.begin() + grid.UnitBegin(u);
    auto last = first + units[static_cast<size_t>(u)].trials;
    out.push_back(core::AggregateTrials(
        std::vector<core::MergeResult>(std::make_move_iterator(first),
                                       std::make_move_iterator(last))));
  }
  return out;
}

}  // namespace

Result<std::vector<core::ExperimentResult>> MergeShardArtifacts(
    const std::vector<core::SweepUnit>& units, const std::vector<std::string>& artifacts) {
  return MergePayloads(
      units, artifacts.size(), [&](size_t a) -> const std::string& { return artifacts[a]; },
      [](size_t a) { return StrFormat("artifact %zu", a); });
}

Result<std::vector<core::ExperimentResult>> MergeShardArtifacts(
    const std::vector<core::SweepUnit>& units, const std::vector<NamedArtifact>& artifacts) {
  // Verify every seal before trusting any payload: corruption diagnostics
  // should name the culprit file even when it is not the first artifact.
  std::vector<std::string> payloads;
  payloads.reserve(artifacts.size());
  for (const NamedArtifact& artifact : artifacts) {
    Result<std::string> payload = UnsealShardArtifact(artifact.contents);
    if (!payload.ok()) {
      return Status::Corruption(StrFormat("%s: %s", artifact.name.c_str(),
                                          payload.status().message().c_str()));
    }
    payloads.push_back(*std::move(payload));
  }
  return MergePayloads(
      units, payloads.size(), [&](size_t a) -> const std::string& { return payloads[a]; },
      [&](size_t a) { return artifacts[a].name; });
}

}  // namespace emsim::sweep

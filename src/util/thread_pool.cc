#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace emsim {

namespace {
// Set while a pool worker (or a caller inside Run) is executing tasks, to
// reject reentrant Run() calls that would deadlock the pool.
thread_local bool t_inside_pool_task = false;
}  // namespace

ThreadPool& ThreadPool::Instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> workers;
  {
    util::MutexLock lock(&mu_);
    stop_ = true;
    // Swap the workers out so the joins below run unlocked: a worker's last
    // act before exiting is re-checking stop_ under mu_, and joining while
    // holding it would deadlock.
    workers.swap(workers_);
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers) {
    worker.join();
  }
}

int ThreadPool::WorkersSpawned() const {
  util::MutexLock lock(&mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::EnsureWorkers(int count) {
  util::MutexLock lock(&mu_);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::RunTasks(Job& job) {
  t_inside_pool_task = true;
  for (;;) {
    int index = job.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job.total) {
      break;
    }
    (*job.task)(index);
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.total) {
      // Wake the Run() caller. The lock round trip orders the notify against
      // the caller's wait-predicate check.
      { util::MutexLock lock(&mu_); }
      done_cv_.NotifyAll();
    }
  }
  t_inside_pool_task = false;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      util::MutexLock lock(&mu_);
      while (!stop_ && job_generation_ == seen_generation) {
        work_cv_.Wait(lock);
      }
      if (stop_) {
        return;
      }
      seen_generation = job_generation_;
      job = job_;
    }
    if (job != nullptr &&
        job->worker_entrants.fetch_add(1, std::memory_order_relaxed) <
            job->max_extra_workers) {
      RunTasks(*job);
    }
  }
}

void ThreadPool::Run(int parallelism, int num_tasks,
                     const std::function<void(int)>& task) {
  EMSIM_CHECK(num_tasks >= 0);
  EMSIM_CHECK(!t_inside_pool_task && "ThreadPool::Run is not reentrant");
  if (num_tasks == 0) {
    return;
  }
  int threads = std::min(parallelism, num_tasks);
  if (threads <= 1) {
    t_inside_pool_task = true;
    for (int i = 0; i < num_tasks; ++i) {
      task(i);
    }
    t_inside_pool_task = false;
    return;
  }
  EnsureWorkers(threads - 1);
  auto job = std::make_shared<Job>();
  job->task = &task;
  job->total = num_tasks;
  job->max_extra_workers = threads - 1;
  {
    util::MutexLock lock(&mu_);
    job_ = job;
    ++job_generation_;
  }
  work_cv_.NotifyAll();
  RunTasks(*job);
  {
    util::MutexLock lock(&mu_);
    while (job->completed.load(std::memory_order_acquire) != job->total) {
      done_cv_.Wait(lock);
    }
    job_.reset();
  }
}

}  // namespace emsim

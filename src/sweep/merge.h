#ifndef EMSIM_SWEEP_MERGE_H_
#define EMSIM_SWEEP_MERGE_H_

#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/status.h"

namespace emsim::sweep {

/// Merges decoded shard artifacts (as raw JSON documents) for `units` back
/// into per-unit aggregates.
///
/// Determinism contract (pinned by sweep_shard_test): for any shard count
/// and any assignment of shards to workers, the merged vector is
/// bit-identical to what core::RunSweep(units, ...) computes in one
/// process — trials are re-aggregated in global task order from exact
/// round-tripped per-trial results. Consequently the JSON rendered from the
/// merged aggregates is byte-identical to the single-process artifact.
///
/// Validation: every artifact's spec digest must match `units`; together
/// the artifacts must cover every task index exactly once (duplicate shard
/// indices with identical ranges are tolerated — a resubmitted straggler
/// may race its first attempt — but conflicting or missing coverage is an
/// error). A captured task failure surfaces as the failure with the lowest
/// global task index, formatted exactly like the single-process runners'
/// abort: "sweep task <i> failed: <status>".
Result<std::vector<core::ExperimentResult>> MergeShardArtifacts(
    const std::vector<core::SweepUnit>& units, const std::vector<std::string>& artifacts);

}  // namespace emsim::sweep

#endif  // EMSIM_SWEEP_MERGE_H_

#!/usr/bin/env python3
"""End-to-end test of emsim_cli's sharded sweep fabric.

Runs the real binary in all four modes and checks the determinism contract
from docs/SWEEPS.md:

  * --sweep N output (table and JSON) is byte-identical to the
    single-process run, for several N, with fault injection enabled;
  * a chaos-killed worker shard is resubmitted and the run still completes
    with identical bytes;
  * hand-driven --sweep-worker / --sweep-merge reproduce the same bytes;
  * a worker records task failures as data and the merge surfaces the
    lowest-index failure with a nonzero exit.

Usage: sweep_cli_test.py <path-to-emsim_cli>
"""

import os
import subprocess
import sys
import tempfile
import unittest

CLI = None

SPEC = """\
trials = 3
disks = 2
blocks = 30
runs = 4

[baseline]
n = 1
strategy = demand-run-only

[prefetch]
n = 4
seed = 7

[faulty]
n = 2
trials = 4
fault_media_error_rate = 0.02
fault_spike_rate = 0.05
fault_spike_ms = 10
"""


def run_cli(args, cwd, check=True):
    proc = subprocess.run(
        [CLI] + args, cwd=cwd, capture_output=True, text=True, timeout=240
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"emsim_cli {' '.join(args)} exited {proc.returncode}:\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc


class SweepCliTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory(prefix="emsim_sweep_cli_")
        self.dir = self.tmp.name
        self.spec = os.path.join(self.dir, "spec.ini")
        with open(self.spec, "w", encoding="utf-8") as f:
            f.write(SPEC)

    def tearDown(self):
        self.tmp.cleanup()

    def single_process_reference(self):
        proc = run_cli(["--spec", self.spec, "--json", "-"], cwd=self.dir)
        return proc.stdout, proc.stderr

    def test_sweep_driver_matches_single_process(self):
        want_json, want_table = self.single_process_reference()
        for shards in (1, 2, 7):
            proc = run_cli(
                [
                    "--spec", self.spec,
                    "--sweep", str(shards),
                    "--shard-dir", os.path.join(self.dir, f"shards_{shards}"),
                    "--json", "-",
                ],
                cwd=self.dir,
            )
            self.assertEqual(proc.stdout, want_json, f"--sweep {shards} JSON differs")

    def test_chaos_killed_shard_is_resubmitted(self):
        want_json, _ = self.single_process_reference()
        proc = run_cli(
            [
                "--spec", self.spec,
                "--sweep", "3",
                "--sweep-chaos-kill-shard", "1",
                "--shard-backoff-ms", "1",
                "--shard-dir", os.path.join(self.dir, "shards_chaos"),
                "--json", "-",
            ],
            cwd=self.dir,
        )
        self.assertIn("chaos-killed", proc.stderr)
        self.assertIn("resubmitting", proc.stderr)
        self.assertEqual(proc.stdout, want_json)

    def test_manual_worker_and_merge_match(self):
        want_json, want_table = self.single_process_reference()
        shard_files = []
        for k in range(2):
            out = os.path.join(self.dir, f"manual_{k}.json")
            run_cli(
                ["--spec", self.spec, "--sweep-worker", "--shard", f"{k}/2",
                 "--shard-out", out],
                cwd=self.dir,
            )
            shard_files.append(out)
        proc = run_cli(
            ["--spec", self.spec, "--sweep-merge", "--json", "-"] + shard_files,
            cwd=self.dir,
        )
        self.assertEqual(proc.stdout, want_json)
        self.assertEqual(proc.stderr, want_table)

    def test_worker_records_failure_and_merge_surfaces_it(self):
        bad_spec = os.path.join(self.dir, "bad.ini")
        with open(bad_spec, "w", encoding="utf-8") as f:
            # max_sim_events is a CLI deadline flag, not a spec key, so the
            # failure is induced through the harness deadline instead.
            f.write("[dies]\nruns = 4\ndisks = 2\nblocks = 30\ntrials = 2\n")
        shard_files = []
        for k in range(2):
            out = os.path.join(self.dir, f"bad_{k}.json")
            proc = run_cli(
                ["--spec", bad_spec, "--max_sim_events", "1",
                 "--sweep-worker", "--shard", f"{k}/2", "--shard-out", out],
                cwd=self.dir,
            )
            self.assertEqual(proc.returncode, 0, "worker must exit 0 on task failure")
            shard_files.append(out)
        proc = run_cli(
            ["--spec", bad_spec, "--max_sim_events", "1", "--sweep-merge"]
            + shard_files,
            cwd=self.dir,
            check=False,
        )
        self.assertEqual(proc.returncode, 1)
        self.assertIn("sweep task 0 failed:", proc.stderr)
        self.assertIn("DeadlineExceeded", proc.stderr)

    def test_merge_rejects_mismatched_spec(self):
        out = os.path.join(self.dir, "mismatch.json")
        run_cli(
            ["--spec", self.spec, "--sweep-worker", "--shard", "0/1",
             "--shard-out", out],
            cwd=self.dir,
        )
        other_spec = os.path.join(self.dir, "other.ini")
        with open(other_spec, "w", encoding="utf-8") as f:
            f.write("[other]\nruns = 5\ndisks = 2\nblocks = 30\n")
        proc = run_cli(
            ["--spec", other_spec, "--sweep-merge", out], cwd=self.dir, check=False
        )
        self.assertEqual(proc.returncode, 1)
        self.assertIn("digest", proc.stderr)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit("usage: sweep_cli_test.py <path-to-emsim_cli>")
    CLI = os.path.abspath(sys.argv[1])
    del sys.argv[1]
    unittest.main(verbosity=2)

file(REMOVE_RECURSE
  "CMakeFiles/experiment_spec_test.dir/experiment_spec_test.cc.o"
  "CMakeFiles/experiment_spec_test.dir/experiment_spec_test.cc.o.d"
  "experiment_spec_test"
  "experiment_spec_test.pdb"
  "experiment_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

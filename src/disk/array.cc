#include "disk/array.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "sim/simulation.h"
#include "util/check.h"
#include "util/rng.h"

namespace emsim::disk {

DiskArray::DiskArray(sim::Simulation* sim, const Options& options) : sim_(sim) {
  EMSIM_CHECK(sim != nullptr);
  EMSIM_CHECK(options.num_disks >= 1);
  Rng seeder(options.seed);
  disks_.reserve(static_cast<size_t>(options.num_disks));
  for (int i = 0; i < options.num_disks; ++i) {
    auto d = std::make_unique<Disk>(sim, options.params, i, seeder.Next64());
    d->on_busy_changed = [this](int /*disk_id*/, bool busy) {
      busy_count_ += busy ? 1 : -1;
      EMSIM_DCHECK(busy_count_ >= 0 && busy_count_ <= num_disks());
      concurrency_.Update(sim_->Now(), busy_count_);
      if (metric_concurrency_ != nullptr) {
        metric_concurrency_->Update(sim_->Now(), busy_count_);
      }
    };
    if (options.metrics != nullptr) {
      d->AttachMetrics(options.metrics);
    }
    if (options.faults != nullptr) {
      d->SetFaultPlan(options.faults);
    }
    disks_.push_back(std::move(d));
  }
  if (options.metrics != nullptr) {
    metric_concurrency_ = &options.metrics->GetTimeline("disks.concurrency");
    metric_concurrency_->Update(sim->Now(), 0.0);
  }
  concurrency_.Update(sim->Now(), 0.0);
}

void DiskArray::Start() {
  for (auto& d : disks_) {
    d->Start();
  }
}

void DiskArray::Stop() {
  for (auto& d : disks_) {
    d->Stop();
  }
}

double DiskArray::ActiveFraction() const {
  double total = concurrency_.TotalTime();
  if (total <= 0) {
    return 0.0;
  }
  return concurrency_.PositiveTime() / total;
}

DiskStats DiskArray::TotalStats() const {
  DiskStats total;
  for (const auto& d : disks_) {
    const DiskStats& s = d->stats();
    total.requests += s.requests;
    total.demand_requests += s.demand_requests;
    total.blocks_transferred += s.blocks_transferred;
    total.seeks += s.seeks;
    total.seek_cylinders += s.seek_cylinders;
    total.seek_ms += s.seek_ms;
    total.rotation_ms += s.rotation_ms;
    total.transfer_ms += s.transfer_ms;
    total.queue_wait_ms += s.queue_wait_ms;
    total.max_queue_length = std::max(total.max_queue_length, s.max_queue_length);
    total.media_errors += s.media_errors;
    total.latency_spikes += s.latency_spikes;
    total.dropped_requests += s.dropped_requests;
    total.fail_stop_ms += s.fail_stop_ms;
    total.fault_extra_ms += s.fault_extra_ms;
  }
  return total;
}

std::vector<DiskUtilization> DiskArray::UtilizationSnapshot() const {
  std::vector<DiskUtilization> out;
  out.reserve(disks_.size());
  for (const auto& d : disks_) {
    out.push_back(d->Utilization());
  }
  return out;
}

void DiskArray::FlushStats() {
  concurrency_.Flush(sim_->Now());
  for (auto& d : disks_) {
    d->FlushLocalStats();
  }
}

}  // namespace emsim::disk

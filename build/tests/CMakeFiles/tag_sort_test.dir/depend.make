# Empty dependencies file for tag_sort_test.
# This may be replaced when dependencies are built.

// RunTrialsParallel promises aggregates bit-identical to the serial path —
// the whole paper-reproduction rests on trials being deterministic per seed
// regardless of how they are scheduled onto threads. These tests pin that
// contract across thread counts, including the MergeResult::metrics export
// and the JSON projection. They carry the `thread` ctest label so the
// EMSIM_SANITIZE=thread CI job runs them under TSan.

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "core/result.h"
#include "core/result_json.h"
#include "util/thread_pool.h"

namespace emsim::core {
namespace {

MergeConfig SmallConfig() {
  MergeConfig cfg = MergeConfig::Paper(5, 2, 2, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 40;
  cfg.check_invariants = true;
  cfg.collect_metrics = true;  // Exercise the registry under concurrent trials.
  return cfg;
}

// EXPECT_EQ on doubles is exact comparison — deliberate: the contract is
// bit-identity, not closeness.
void ExpectTrialsIdentical(const ExperimentResult& serial, const ExperimentResult& parallel) {
  ASSERT_EQ(parallel.trials.size(), serial.trials.size());
  for (size_t t = 0; t < serial.trials.size(); ++t) {
    const MergeResult& a = serial.trials[t];
    const MergeResult& b = parallel.trials[t];
    EXPECT_EQ(b.total_ms, a.total_ms) << "trial " << t;
    EXPECT_EQ(b.blocks_merged, a.blocks_merged) << "trial " << t;
    EXPECT_EQ(b.io_operations, a.io_operations) << "trial " << t;
    EXPECT_EQ(b.full_admissions, a.full_admissions) << "trial " << t;
    EXPECT_EQ(b.demand_stalls, a.demand_stalls) << "trial " << t;
    EXPECT_EQ(b.cache_hits, a.cache_hits) << "trial " << t;
    EXPECT_EQ(b.avg_concurrency, a.avg_concurrency) << "trial " << t;
    EXPECT_EQ(b.mean_cache_occupancy, a.mean_cache_occupancy) << "trial " << t;
    EXPECT_EQ(b.sim_events, a.sim_events) << "trial " << t;
    ASSERT_EQ(b.per_disk.size(), a.per_disk.size()) << "trial " << t;
    for (size_t d = 0; d < a.per_disk.size(); ++d) {
      EXPECT_EQ(b.per_disk[d].busy_fraction, a.per_disk[d].busy_fraction)
          << "trial " << t << " disk " << d;
    }
    ASSERT_EQ(b.metrics.size(), a.metrics.size()) << "trial " << t;
    for (size_t m = 0; m < a.metrics.size(); ++m) {
      EXPECT_EQ(b.metrics[m].name, a.metrics[m].name) << "trial " << t;
      EXPECT_EQ(b.metrics[m].value, a.metrics[m].value)
          << "trial " << t << " metric " << a.metrics[m].name;
    }
  }
  EXPECT_EQ(parallel.total_ms.Mean(), serial.total_ms.Mean());
  EXPECT_EQ(parallel.total_ms.Variance(), serial.total_ms.Variance());
  EXPECT_EQ(parallel.success_ratio.Mean(), serial.success_ratio.Mean());
  EXPECT_EQ(parallel.concurrency.Mean(), serial.concurrency.Mean());
  EXPECT_EQ(parallel.io_operations.Mean(), serial.io_operations.Mean());
  EXPECT_EQ(parallel.cache_occupancy.Mean(), serial.cache_occupancy.Mean());
}

TEST(RunTrialsParallelTest, BitIdenticalToSerialAcrossThreadCounts) {
  MergeConfig cfg = SmallConfig();
  const int trials = 6;
  ExperimentResult serial = RunTrials(cfg, trials);

  int hardware = static_cast<int>(std::thread::hardware_concurrency());
  if (hardware <= 0) {
    hardware = 2;
  }
  for (int threads : {1, 2, hardware}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExperimentResult parallel = RunTrialsParallel(cfg, trials, threads);
    ExpectTrialsIdentical(serial, parallel);
  }
}

TEST(RunTrialsParallelTest, DefaultThreadCountUsesHardwareConcurrency) {
  MergeConfig cfg = SmallConfig();
  ExperimentResult serial = RunTrials(cfg, 4);
  ExperimentResult parallel = RunTrialsParallel(cfg, 4);  // num_threads = 0.
  ExpectTrialsIdentical(serial, parallel);
}

TEST(RunTrialsParallelTest, JsonExportBytesIdenticalToSerial) {
  MergeConfig cfg = SmallConfig();
  ExperimentResult serial = RunTrials(cfg, 5);
  ExperimentResult parallel = RunTrialsParallel(cfg, 5, 2);
  std::string doc_serial = ExperimentSetToJson({NamedExperiment{"t", cfg, &serial}});
  std::string doc_parallel = ExperimentSetToJson({NamedExperiment{"t", cfg, &parallel}});
  EXPECT_EQ(doc_serial, doc_parallel);
}

TEST(RunTrialsParallelTest, MetricsCollectedForEveryTrial) {
  MergeConfig cfg = SmallConfig();
  ExperimentResult parallel = RunTrialsParallel(cfg, 4, 2);
  for (const MergeResult& trial : parallel.trials) {
    EXPECT_FALSE(trial.metrics.empty());
  }
}

// A failing trial must abort from the *joining* thread with the lowest
// failing task index — not whichever worker happened to fail first — so the
// diagnostic is deterministic across thread counts and pool states.
TEST(RunTrialsParallelDeathTest, FailureSurfacesLowestTrialIndex) {
  // Re-exec style: the child must start without the parent's pool threads.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  MergeConfig cfg = SmallConfig();
  cfg.num_runs = 0;  // Invalid: every trial fails validation.
  EXPECT_DEATH(RunTrialsParallel(cfg, 4, 2), "trial 0 failed");
}

TEST(RunSweepParallelTest, BitIdenticalToPerConfigSerialRuns) {
  std::vector<MergeConfig> configs;
  for (int depth : {1, 2, 4}) {
    MergeConfig cfg = SmallConfig();
    cfg.prefetch_depth = depth;
    configs.push_back(cfg);
  }
  const int trials = 3;
  std::vector<ExperimentResult> serial;
  serial.reserve(configs.size());
  for (const MergeConfig& cfg : configs) {
    serial.push_back(RunTrials(cfg, trials));
  }
  int hardware = static_cast<int>(std::thread::hardware_concurrency());
  if (hardware <= 0) {
    hardware = 2;
  }
  for (int threads : {1, 2, hardware}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<ExperimentResult> sweep = RunSweepParallel(configs, trials, threads);
    ASSERT_EQ(sweep.size(), serial.size());
    for (size_t c = 0; c < serial.size(); ++c) {
      SCOPED_TRACE("config=" + std::to_string(c));
      ExpectTrialsIdentical(serial[c], sweep[c]);
    }
  }
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  const int kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  ThreadPool::Instance().Run(4, kTasks, [&hits](int i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, WorkersPersistAndGrowOnlyOnDemand) {
  // The pool is a process-wide singleton, so earlier tests may already have
  // spawned workers; assert growth relative to the current state.
  ThreadPool& pool = ThreadPool::Instance();
  int before = pool.WorkersSpawned();
  int target = before + 2;
  pool.Run(target + 1, 4 * (target + 1), [](int) {});
  EXPECT_EQ(pool.WorkersSpawned(), target);  // Caller counts toward parallelism.
  pool.Run(2, 8, [](int) {});
  EXPECT_EQ(pool.WorkersSpawned(), target);  // Persistent; smaller runs grow nothing.
}

TEST(ThreadPoolTest, SerialFallbackRunsInline) {
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(3);
  ThreadPool::Instance().Run(
      1, 3, [&](int i) { ran[static_cast<size_t>(i)] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ran) {
    EXPECT_EQ(id, caller);
  }
}

}  // namespace
}  // namespace emsim::core

#include "util/str.h"

#include <string>

#include <gtest/gtest.h>

namespace emsim {
namespace {

TEST(StrFormatTest, Basic) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
}

TEST(StrFormatTest, Empty) { EXPECT_EQ(StrFormat("%s", ""), ""); }

TEST(StrFormatTest, Long) {
  std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrSplitTest, SplitsKeepingEmpties) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrSplitTest, NoSeparator) {
  auto parts = StrSplit("plain", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "plain");
}

TEST(StrSplitTest, RoundTripsWithJoin) {
  std::string s = "1,2,3,4";
  EXPECT_EQ(StrJoin(StrSplit(s, ','), ","), s);
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("figure32", "fig"));
  EXPECT_FALSE(StartsWith("fig", "figure"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(FormatSecondsTest, ConvertsMs) { EXPECT_EQ(FormatSeconds(294530.0), "294.53 s"); }

TEST(PadTest, PadRightPadsAndTruncates) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
}

TEST(PadTest, PadLeftNeverTruncates) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadLeft("abcdef", 4), "abcdef");
}

}  // namespace
}  // namespace emsim

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "disk/disk_params.h"
#include "extsort/block_device.h"
#include "util/status.h"

namespace emsim::extsort {
namespace {

TEST(MemoryBlockDeviceTest, WriteThenReadRoundTrips) {
  MemoryBlockDevice dev(8, 64);
  std::vector<uint8_t> out(64, 0xCD);
  ASSERT_TRUE(dev.Write(3, out).ok());
  std::vector<uint8_t> in(64, 0);
  ASSERT_TRUE(dev.Read(3, in).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(dev.reads(), 1u);
  EXPECT_EQ(dev.writes(), 1u);
}

TEST(MemoryBlockDeviceTest, ReadingUnwrittenBlockFails) {
  MemoryBlockDevice dev(4, 64);
  std::vector<uint8_t> buf(64);
  Status s = dev.Read(0, buf);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(MemoryBlockDeviceTest, OutOfRangeRejected) {
  MemoryBlockDevice dev(4, 64);
  std::vector<uint8_t> buf(64);
  EXPECT_EQ(dev.Read(4, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dev.Read(-1, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dev.Write(99, buf).code(), StatusCode::kOutOfRange);
}

TEST(MemoryBlockDeviceTest, WrongBufferSizeRejected) {
  MemoryBlockDevice dev(4, 64);
  std::vector<uint8_t> small(32);
  EXPECT_EQ(dev.Write(0, small).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dev.Read(0, small).code(), StatusCode::kInvalidArgument);
}

TEST(MemoryBlockDeviceTest, OverwriteAllowed) {
  MemoryBlockDevice dev(2, 64);
  std::vector<uint8_t> a(64, 1);
  std::vector<uint8_t> b(64, 2);
  ASSERT_TRUE(dev.Write(0, a).ok());
  ASSERT_TRUE(dev.Write(0, b).ok());
  std::vector<uint8_t> in(64);
  ASSERT_TRUE(dev.Read(0, in).ok());
  EXPECT_EQ(in, b);
}

TEST(TimedBlockDeviceTest, AccumulatesSimulatedTime) {
  disk::DiskParams params;
  params.rotation = disk::RotationalLatencyModel::kFixedMean;
  TimedBlockDevice dev(std::make_unique<MemoryBlockDevice>(1000, 4096), params, 1);
  std::vector<uint8_t> buf(4096, 0);
  ASSERT_TRUE(dev.Write(520, buf).ok());  // Pre-populate the target block.
  dev.ResetClock();
  ASSERT_TRUE(dev.Write(0, buf).ok());
  double after_write = dev.elapsed_ms();
  // The arm sits at cylinder 5 after the pre-population write (ResetClock
  // zeroes the clock, not the position), so this write seeks back 5
  // cylinders and pays R + T.
  EXPECT_NEAR(after_write, 0.05 + 8.3333 + 2.5641, 1e-3);
  ASSERT_TRUE(dev.Read(520, buf).ok());  // Cylinder 5: 0.05 ms seek + R + T.
  EXPECT_NEAR(dev.elapsed_ms() - after_write, 0.05 + 8.3333 + 2.5641, 1e-3);
  EXPECT_EQ(dev.reads(), 1u);
  EXPECT_EQ(dev.writes(), 2u);
}

TEST(TimedBlockDeviceTest, SequentialOptimizationReducesTime) {
  disk::DiskParams params;
  params.rotation = disk::RotationalLatencyModel::kFixedMean;
  params.sequential_optimization = true;
  TimedBlockDevice dev(std::make_unique<MemoryBlockDevice>(100, 4096), params, 1);
  std::vector<uint8_t> buf(4096, 0);
  ASSERT_TRUE(dev.Write(0, buf).ok());
  double first = dev.elapsed_ms();
  ASSERT_TRUE(dev.Write(1, buf).ok());  // Sequential: transfer only.
  EXPECT_NEAR(dev.elapsed_ms() - first, 2.5641, 1e-3);
}

TEST(TimedBlockDeviceTest, PropagatesBaseErrors) {
  disk::DiskParams params;
  TimedBlockDevice dev(std::make_unique<MemoryBlockDevice>(4, 4096), params, 1);
  std::vector<uint8_t> buf(4096);
  double before = dev.elapsed_ms();
  EXPECT_FALSE(dev.Read(0, buf).ok());      // Unwritten.
  EXPECT_EQ(dev.elapsed_ms(), before);      // Failed I/O costs nothing.
}

}  // namespace
}  // namespace emsim::extsort

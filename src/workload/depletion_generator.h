#ifndef EMSIM_WORKLOAD_DEPLETION_GENERATOR_H_
#define EMSIM_WORKLOAD_DEPLETION_GENERATOR_H_

#include <cstdint>
#include <vector>

namespace emsim::workload {

/// Pre-materialized depletion sequences for trace-driven simulation and for
/// property tests that need identical depletion orders across strategies.

/// A uniformly random depletion order of k runs x blocks_per_run blocks
/// (every run depleted exactly blocks_per_run times, order random) — the
/// sequence a Kwan-Baer merge would follow, frozen.
std::vector<int> UniformDepletionTrace(int num_runs, int64_t blocks_per_run, uint64_t seed);

/// A round-robin depletion order (run 0, 1, ..., k-1, 0, 1, ...): the
/// best case for inter-run prefetching (perfectly predictable demand).
std::vector<int> RoundRobinDepletionTrace(int num_runs, int64_t blocks_per_run);

/// A run-at-a-time order (run 0 fully, then run 1, ...): the degenerate
/// case where merging is pure concatenation (disjoint key ranges).
std::vector<int> SequentialDepletionTrace(int num_runs, int64_t blocks_per_run);

/// Validates that `trace` depletes each of the k runs exactly
/// blocks_per_run times; used by tests and the trace loader.
bool IsValidDepletionTrace(const std::vector<int>& trace, int num_runs,
                           int64_t blocks_per_run);

}  // namespace emsim::workload

#endif  // EMSIM_WORKLOAD_DEPLETION_GENERATOR_H_

#include "disk/mechanism.h"

#include <cmath>
#include <cstdlib>

#include "disk/geometry.h"
#include "util/check.h"

namespace emsim::disk {

Mechanism::Mechanism(const DiskParams& params) : params_(params) {
  EMSIM_CHECK(params.Validate().ok());
}

int64_t Mechanism::SeekDistanceTo(int64_t start_block) const {
  return std::llabs(params_.geometry.CylinderOf(start_block) - current_cylinder_);
}

double Mechanism::BlockAngle(int64_t block) const {
  // Within-cylinder block index mapped to its starting sector's share of a
  // revolution. Blocks that straddle a track boundary are approximated by
  // their modular sector offset (head switches are free in this model).
  const Geometry& g = params_.geometry;
  int64_t within = block % g.BlocksPerCylinder();
  int64_t start_sector = (within * g.SectorsPerBlock()) % g.sectors_per_track;
  return static_cast<double>(start_sector) / g.sectors_per_track;
}

AccessCost Mechanism::Access(int64_t start_block, int nblocks, Rng& rng, double now_ms) {
  EMSIM_CHECK(start_block >= 0);
  EMSIM_CHECK(nblocks >= 1);
  AccessCost cost;
  cost.transfer_ms = params_.TransferMsPerBlock() * nblocks;

  const bool sequential =
      params_.sequential_optimization && start_block == next_sequential_block_;
  if (sequential) {
    cost.sequential = true;
  } else {
    int64_t target = params_.geometry.CylinderOf(start_block);
    cost.seek_cylinders = std::llabs(target - current_cylinder_);
    cost.seek_ms = params_.SeekMs(cost.seek_cylinders);
    switch (params_.rotation) {
      case RotationalLatencyModel::kFixedMean:
        cost.rotation_ms = params_.MeanRotationalLatencyMs();
        break;
      case RotationalLatencyModel::kUniform:
        cost.rotation_ms = rng.UniformDouble(0.0, params_.revolution_ms);
        break;
      case RotationalLatencyModel::kAngular: {
        EMSIM_CHECK(now_ms >= 0 && "kAngular needs the service start time");
        // The platter's angular position when positioning ends, as a
        // fraction of a revolution; wait until the target sector's start
        // comes under the head.
        double rev = params_.revolution_ms;
        double at = now_ms + cost.seek_ms;
        double head_angle = std::fmod(at, rev) / rev;
        double wait = BlockAngle(start_block) - head_angle;
        if (wait < 0) {
          wait += 1.0;
        }
        cost.rotation_ms = wait * rev;
        break;
      }
    }
  }

  int64_t last_block = start_block + nblocks - 1;
  current_cylinder_ = params_.geometry.CylinderOf(last_block);
  next_sequential_block_ = last_block + 1;
  return cost;
}

}  // namespace emsim::disk

#ifndef EMSIM_EXTSORT_TAG_SORT_H_
#define EMSIM_EXTSORT_TAG_SORT_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "extsort/block_device.h"
#include "util/status.h"

namespace emsim::extsort {

/// A tiny LRU cache of decoded blocks for tag sort's permutation phase
/// (random reads revisit hot blocks when keys are skewed).
class BlockLru {
 public:
  /// `capacity` = 0 disables caching.
  explicit BlockLru(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached bytes of `block` or nullptr.
  const std::vector<uint8_t>* Get(int64_t block);

  /// Inserts (or refreshes) a block's bytes, evicting the least recently
  /// used entry beyond capacity.
  void Put(int64_t block, std::vector<uint8_t> bytes);

  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  size_t capacity_;
  std::list<std::pair<int64_t, std::vector<uint8_t>>> lru_;  // Front = most recent.
  std::unordered_map<int64_t, decltype(lru_)::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Fixed-size packed record storage: `block_bytes / record_bytes` records
/// per block, no header, key = first 8 bytes (little-endian). The raw
/// substrate tag sort permutes.
class PackedRecordFile {
 public:
  /// `record_bytes` >= 8 and <= block size.
  PackedRecordFile(BlockDevice* device, size_t record_bytes);

  size_t records_per_block() const { return records_per_block_; }
  size_t record_bytes() const { return record_bytes_; }

  /// Writes `count` records of `record_bytes` each from `bytes`, starting
  /// at record index 0, padding the final block.
  Status WriteAll(std::span<const uint8_t> bytes, uint64_t count);

  /// Reads record `index` into `out` (size record_bytes). `lru` may be null.
  Status ReadRecord(uint64_t index, std::span<uint8_t> out, BlockLru* lru);

  /// Reads the 8-byte key of every record, in file order (sequential scan).
  Result<std::vector<uint64_t>> ScanKeys(uint64_t count);

  /// Blocks a file of `count` records occupies.
  int64_t BlocksFor(uint64_t count) const;

 private:
  BlockDevice* device_;
  size_t record_bytes_;
  size_t records_per_block_;
  std::vector<uint8_t> scratch_;
};

/// Tag sort (Kwan & Baer's comparison algorithm): extract (key, position)
/// tags, external-sort the small tags, then permute the full records into
/// order by random reads. Trades sorted volume (tags are 16 B regardless of
/// record size) against a random read per record in the permute phase.
struct TagSortOptions {
  size_t record_bytes = 64;
  size_t tag_memory_records = 4096;  ///< Workspace for the tag sort phase.
  size_t permute_cache_blocks = 0;   ///< LRU blocks during permutation.
};

struct TagSortStats {
  uint64_t records = 0;
  uint64_t tag_blocks_sorted = 0;   ///< Blocks of tag data merged.
  uint64_t permute_block_reads = 0; ///< Random block reads (after LRU).
  uint64_t lru_hits = 0;
  int64_t output_blocks = 0;
};

class TagSorter {
 public:
  explicit TagSorter(const TagSortOptions& options) : options_(options) {}

  /// Sorts `count` packed records on `input` into `output` (same packed
  /// format), using `tag_scratch` for the tag runs.
  Result<TagSortStats> Sort(BlockDevice* input, uint64_t count, BlockDevice* tag_scratch,
                            BlockDevice* output);

 private:
  TagSortOptions options_;
};

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_TAG_SORT_H_

file(REMOVE_RECURSE
  "libemsim_util.a"
)

# Empty compiler generated dependencies file for extsort_losertree_test.
# This may be replaced when dependencies are built.

#include "extsort/external_sort.h"

#include <utility>

#include "extsort/run_io.h"
#include "util/status.h"

namespace emsim::extsort {

Result<ExternalSortResult> ExternalSorter::Sort(std::span<const Record> input,
                                                BlockDevice* scratch, BlockDevice* output) {
  Result<RunFormationResult> runs = FormRuns(input, scratch, options_.run_formation);
  if (!runs.ok()) {
    return runs.status();
  }
  Result<MergeOutcome> merged = MergeRuns(scratch, runs->runs, output, options_.merge);
  if (!merged.ok()) {
    return merged.status();
  }
  if (merged->records_merged != input.size()) {
    return Status::Internal("merge lost records");
  }
  ExternalSortResult result;
  result.initial_runs = runs->runs;
  result.merge = *std::move(merged);
  result.device_reads = scratch->reads() + output->reads();
  result.device_writes = scratch->writes() + output->writes();
  return result;
}

Result<std::vector<Record>> ExternalSorter::ReadRun(BlockDevice* device,
                                                    const RunDescriptor& run) {
  RunReader reader(device, run);
  std::vector<Record> records;
  records.reserve(run.num_records);
  Record r;
  while (reader.Next(&r)) {
    records.push_back(r);
  }
  EMSIM_RETURN_IF_ERROR(reader.status());
  if (records.size() != run.num_records) {
    return Status::Corruption("run returned fewer records than its descriptor claims");
  }
  return records;
}

}  // namespace emsim::extsort

file(REMOVE_RECURSE
  "CMakeFiles/emsim_extsort.dir/block_device.cc.o"
  "CMakeFiles/emsim_extsort.dir/block_device.cc.o.d"
  "CMakeFiles/emsim_extsort.dir/external_sort.cc.o"
  "CMakeFiles/emsim_extsort.dir/external_sort.cc.o.d"
  "CMakeFiles/emsim_extsort.dir/merge_plan.cc.o"
  "CMakeFiles/emsim_extsort.dir/merge_plan.cc.o.d"
  "CMakeFiles/emsim_extsort.dir/merger.cc.o"
  "CMakeFiles/emsim_extsort.dir/merger.cc.o.d"
  "CMakeFiles/emsim_extsort.dir/packed_sort.cc.o"
  "CMakeFiles/emsim_extsort.dir/packed_sort.cc.o.d"
  "CMakeFiles/emsim_extsort.dir/record.cc.o"
  "CMakeFiles/emsim_extsort.dir/record.cc.o.d"
  "CMakeFiles/emsim_extsort.dir/run_formation.cc.o"
  "CMakeFiles/emsim_extsort.dir/run_formation.cc.o.d"
  "CMakeFiles/emsim_extsort.dir/run_io.cc.o"
  "CMakeFiles/emsim_extsort.dir/run_io.cc.o.d"
  "CMakeFiles/emsim_extsort.dir/tag_sort.cc.o"
  "CMakeFiles/emsim_extsort.dir/tag_sort.cc.o.d"
  "libemsim_extsort.a"
  "libemsim_extsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_extsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

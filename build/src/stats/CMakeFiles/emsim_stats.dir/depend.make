# Empty dependencies file for emsim_stats.
# This may be replaced when dependencies are built.

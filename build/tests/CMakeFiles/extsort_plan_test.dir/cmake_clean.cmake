file(REMOVE_RECURSE
  "CMakeFiles/extsort_plan_test.dir/extsort_plan_test.cc.o"
  "CMakeFiles/extsort_plan_test.dir/extsort_plan_test.cc.o.d"
  "extsort_plan_test"
  "extsort_plan_test.pdb"
  "extsort_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extsort_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

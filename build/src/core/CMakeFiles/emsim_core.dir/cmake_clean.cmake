file(REMOVE_RECURSE
  "CMakeFiles/emsim_core.dir/config.cc.o"
  "CMakeFiles/emsim_core.dir/config.cc.o.d"
  "CMakeFiles/emsim_core.dir/depletion.cc.o"
  "CMakeFiles/emsim_core.dir/depletion.cc.o.d"
  "CMakeFiles/emsim_core.dir/experiment.cc.o"
  "CMakeFiles/emsim_core.dir/experiment.cc.o.d"
  "CMakeFiles/emsim_core.dir/merge_simulator.cc.o"
  "CMakeFiles/emsim_core.dir/merge_simulator.cc.o.d"
  "CMakeFiles/emsim_core.dir/result.cc.o"
  "CMakeFiles/emsim_core.dir/result.cc.o.d"
  "libemsim_core.a"
  "libemsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Exercises the multi-process shard dispatcher with real subprocesses:
// clean completion, straggler kill + resubmission (chaos and deadline),
// retry exhaustion, and the empty-artifact guard.

#include "sweep/dispatcher.h"

#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/subprocess.h"
#include "util/str.h"

namespace emsim::sweep {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  (void)::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Worker argv that runs `script` through the shell with $0 = shard index
/// and $1 = artifact path.
ShardCommandFn ShellCommand(const std::string& script) {
  return [script](int shard, const std::string& out_path) {
    return std::vector<std::string>{"/bin/sh", "-c", script,
                                    StrFormat("%d", shard), out_path};
  };
}

TEST(SubprocessTest, RunsAndReportsExitCode) {
  auto child = Subprocess::Start({"/bin/sh", "-c", "exit 3"});
  ASSERT_TRUE(child.ok()) << child.status().ToString();
  while (!child->Poll()) {
  }
  EXPECT_FALSE(child->running());
  EXPECT_FALSE(child->was_signaled());
  EXPECT_FALSE(child->exited_cleanly());
  EXPECT_EQ(child->exit_code(), 3);
  EXPECT_EQ(child->DescribeExit(), "exit 3");
}

TEST(SubprocessTest, ExecFailureIs127) {
  auto child = Subprocess::Start({"/nonexistent/binary/for/emsim"});
  ASSERT_TRUE(child.ok());
  while (!child->Poll()) {
  }
  EXPECT_EQ(child->exit_code(), 127);
}

TEST(SubprocessTest, KillIsReportedAsSignal) {
  auto child = Subprocess::Start({"/bin/sh", "-c", "sleep 30"});
  ASSERT_TRUE(child.ok());
  child->Kill();
  while (!child->Poll()) {
  }
  EXPECT_TRUE(child->was_signaled());
  EXPECT_EQ(child->DescribeExit(), StrFormat("signal %d", 9));
}

TEST(DispatcherTest, RunsAllShardsOnce) {
  std::string dir = FreshDir("dispatch_ok");
  DispatcherOptions options;
  options.num_shards = 5;
  options.max_workers = 2;
  auto report = RunShardedSweep(options, dir, ShellCommand("echo shard $0 > \"$1\""));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->size(), 5u);
  for (const ShardDispatch& d : *report) {
    EXPECT_TRUE(d.ok);
    EXPECT_EQ(d.attempts, 1);
    EXPECT_FALSE(d.artifact_path.empty());
  }
}

TEST(DispatcherTest, ChaosKilledShardIsResubmittedAndCompletes) {
  std::string dir = FreshDir("dispatch_chaos");
  DispatcherOptions options;
  options.num_shards = 3;
  options.chaos_kill_shard = 1;
  options.retry.backoff_base_ms = 1.0;
  std::vector<std::string> lines;
  options.log = [&](const std::string& line) { lines.push_back(line); };
  // Slow enough that the chaos SIGKILL lands before the artifact exists.
  auto report =
      RunShardedSweep(options, dir, ShellCommand("sleep 0.2; echo ok > \"$1\""));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE((*report)[1].ok);
  EXPECT_EQ((*report)[1].attempts, 2);
  EXPECT_EQ((*report)[0].attempts, 1);
  EXPECT_EQ((*report)[2].attempts, 1);
  bool saw_chaos = false;
  for (const std::string& line : lines) {
    if (line.find("chaos-killed") != std::string::npos) {
      saw_chaos = true;
    }
  }
  EXPECT_TRUE(saw_chaos);
}

TEST(DispatcherTest, FailingAttemptIsRetriedUntilSuccess) {
  std::string dir = FreshDir("dispatch_retry");
  // TempDir() persists across runs — stale markers would let the first
  // attempt succeed immediately.
  (void)::unlink((dir + "/marker_0").c_str());
  (void)::unlink((dir + "/marker_1").c_str());
  // First attempt leaves a marker and fails; the resubmission sees the
  // marker and succeeds — a transient infrastructure fault.
  std::string script = StrFormat(
      "if [ -f \"%s/marker_$0\" ]; then echo ok > \"$1\"; "
      "else touch \"%s/marker_$0\"; exit 1; fi",
      dir.c_str(), dir.c_str());
  DispatcherOptions options;
  options.num_shards = 2;
  options.retry.max_retries = 2;
  options.retry.backoff_base_ms = 1.0;
  auto report = RunShardedSweep(options, dir, ShellCommand(script));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const ShardDispatch& d : *report) {
    EXPECT_TRUE(d.ok);
    EXPECT_EQ(d.attempts, 2);
  }
}

TEST(DispatcherTest, DeadlineKillsStragglerAndExhaustsRetries) {
  std::string dir = FreshDir("dispatch_deadline");
  DispatcherOptions options;
  options.num_shards = 1;
  options.retry.timeout_ms = 50.0;
  options.retry.max_retries = 1;
  options.retry.backoff_base_ms = 1.0;
  auto report = RunShardedSweep(options, dir, ShellCommand("sleep 30"));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("signal 9"), std::string::npos)
      << report.status().ToString();
}

TEST(DispatcherTest, CleanExitWithoutArtifactIsAFailure) {
  std::string dir = FreshDir("dispatch_empty");
  DispatcherOptions options;
  options.num_shards = 1;
  options.retry.max_retries = 0;
  auto report = RunShardedSweep(options, dir, ShellCommand("exit 0"));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("no artifact"), std::string::npos)
      << report.status().ToString();
}

}  // namespace
}  // namespace emsim::sweep

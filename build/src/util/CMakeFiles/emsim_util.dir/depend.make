# Empty dependencies file for emsim_util.
# This may be replaced when dependencies are built.

#include "stats/confidence.h"

namespace emsim::stats {

double StudentT95(uint64_t df) {
  // Two-sided 95% critical values, df = 1..30.
  static const double kTable[31] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179,  2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
      2.074,  2.069,  2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) {
    return 0.0;
  }
  if (df <= 30) {
    return kTable[df];
  }
  return 1.96;  // Normal approximation.
}

ConfidenceInterval MeanConfidence95(const Accumulator& acc) {
  ConfidenceInterval ci;
  ci.mean = acc.Mean();
  if (acc.count() >= 2) {
    ci.half_width = StudentT95(acc.count() - 1) * acc.StdError();
  }
  return ci;
}

}  // namespace emsim::stats

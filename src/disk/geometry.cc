#include "disk/geometry.h"

#include "util/str.h"

namespace emsim::disk {

Status Geometry::Validate() const {
  if (heads <= 0 || sectors_per_track <= 0 || cylinders <= 0 || bytes_per_sector <= 0 ||
      block_bytes <= 0) {
    return Status::InvalidArgument("geometry dimensions must be positive");
  }
  if (block_bytes % bytes_per_sector != 0) {
    return Status::InvalidArgument(
        StrFormat("block size %d is not a multiple of sector size %d", block_bytes,
                  bytes_per_sector));
  }
  if (BlocksPerCylinder() < 1) {
    return Status::InvalidArgument("cylinder smaller than one block");
  }
  return Status::OK();
}

std::string Geometry::ToString() const {
  return StrFormat(
      "Geometry{heads=%d, sectors/track=%d, cylinders=%d, sector=%dB, block=%dB, "
      "blocks/cyl=%d}",
      heads, sectors_per_track, cylinders, bytes_per_sector, block_bytes, BlocksPerCylinder());
}

}  // namespace emsim::disk

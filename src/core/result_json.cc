#include "core/result_json.h"

#include <cstdint>

#include "disk/disk.h"
#include "disk/layout.h"
#include "obs/metrics.h"
#include "stats/accumulator.h"
#include "stats/confidence.h"

namespace emsim::core {

namespace {

const char* PlacementName(disk::RunPlacement placement) {
  switch (placement) {
    case disk::RunPlacement::kRoundRobin:
      return "round-robin";
    case disk::RunPlacement::kBlocked:
      return "blocked";
    case disk::RunPlacement::kStriped:
      return "striped";
  }
  return "unknown";
}

/// Mean / ci95 / min / max summary of one accumulator.
void WriteAccumulator(stats::JsonWriter& w, const stats::Accumulator& acc) {
  w.BeginObject();
  w.Field("count", acc.count());
  w.Field("mean", acc.Mean());
  w.Field("stddev", acc.StdDev());
  w.Field("min", acc.Min());
  w.Field("max", acc.Max());
  w.Field("ci95_half_width", stats::MeanConfidence95(acc).half_width);
  w.EndObject();
}

void WriteDiskStats(stats::JsonWriter& w, const disk::DiskStats& s) {
  w.BeginObject();
  w.Field("requests", s.requests);
  w.Field("demand_requests", s.demand_requests);
  w.Field("blocks_transferred", s.blocks_transferred);
  w.Field("seeks", s.seeks);
  w.Field("seek_cylinders", s.seek_cylinders);
  w.Field("seek_ms", s.seek_ms);
  w.Field("rotation_ms", s.rotation_ms);
  w.Field("transfer_ms", s.transfer_ms);
  w.Field("queue_wait_ms", s.queue_wait_ms);
  w.Field("max_queue_length", static_cast<uint64_t>(s.max_queue_length));
  w.EndObject();
}

}  // namespace

void WriteJson(stats::JsonWriter& w, const MergeConfig& config) {
  w.BeginObject();
  w.Field("num_runs", config.num_runs);
  w.Field("num_disks", config.num_disks);
  w.Field("blocks_per_run", config.blocks_per_run);
  w.Field("prefetch_depth", config.prefetch_depth);
  w.Field("cache_blocks", config.EffectiveCacheBlocks());
  w.Field("strategy", StrategyName(config.strategy));
  w.Field("sync", SyncModeName(config.sync));
  w.Field("admission", AdmissionPolicyName(config.admission));
  w.Field("victim", VictimPolicyName(config.victim));
  w.Field("depletion", DepletionKindName(config.depletion));
  w.Field("zipf_theta", config.zipf_theta);
  w.Field("write_traffic", WriteTrafficName(config.write_traffic));
  w.Field("placement", PlacementName(config.placement));
  w.Field("cpu_ms_per_block", config.cpu_ms_per_block);
  w.Field("seed", config.seed);
  // Gated on injection so fault-free artifacts stay byte-identical to the
  // pre-fault schema (acceptance-tested against frozen baselines).
  if (config.fault.InjectionEnabled()) {
    w.Key("fault");
    w.BeginObject();
    w.Field("media_error_rate", config.fault.media_error_rate);
    w.Field("latency_spike_rate", config.fault.latency_spike_rate);
    w.Field("latency_spike_ms", config.fault.latency_spike_ms);
    w.Field("fail_slow_disk", config.fault.fail_slow_disk);
    w.Field("fail_slow_factor", config.fault.fail_slow_factor);
    w.Field("fail_slow_start_ms", config.fault.fail_slow_start_ms);
    w.Field("fail_slow_end_ms", config.fault.fail_slow_end_ms);
    w.Field("fail_stop_disk", config.fault.fail_stop_disk);
    w.Field("fail_stop_start_ms", config.fault.fail_stop_start_ms);
    w.Field("fail_stop_end_ms", config.fault.fail_stop_end_ms);
    w.Field("fault_seed", config.fault.seed);
    w.Field("max_retries", config.fault.retry.max_retries);
    w.Field("timeout_ms", config.fault.retry.timeout_ms);
    w.Field("backoff_base_ms", config.fault.retry.backoff_base_ms);
    w.Field("backoff_multiplier", config.fault.retry.backoff_multiplier);
    w.EndObject();
  }
  w.EndObject();
}

void WriteJson(stats::JsonWriter& w, const MergeResult& result) {
  w.BeginObject();
  w.Field("total_seconds", result.TotalSeconds());
  w.Field("blocks_merged", result.blocks_merged);
  w.Field("io_operations", result.io_operations);
  w.Field("full_admissions", result.full_admissions);
  w.Field("success_ratio", result.SuccessRatio());
  w.Field("demand_stalls", result.demand_stalls);
  w.Field("cache_hits", result.cache_hits);
  w.Field("cpu_busy_ms", result.cpu_busy_ms);
  w.Field("avg_concurrency", result.avg_concurrency);
  w.Field("disk_active_fraction", result.disk_active_fraction);
  w.Field("mean_cache_occupancy", result.mean_cache_occupancy);
  w.Field("sim_events", result.sim_events);
  w.Key("stall_ms");
  WriteAccumulator(w, result.stall_ms);
  w.Key("disk_totals");
  WriteDiskStats(w, result.disk_totals);
  w.Key("cache");
  w.BeginObject();
  w.Field("deposits", result.cache_stats.deposits);
  w.Field("consumptions", result.cache_stats.consumptions);
  w.Field("reservations_granted", result.cache_stats.reservations_granted);
  w.Field("reservations_denied", result.cache_stats.reservations_denied);
  w.Field("blocks_reserved", result.cache_stats.blocks_reserved);
  w.Field("peak_occupancy", result.cache_stats.peak_occupancy);
  w.EndObject();
  w.Key("per_disk");
  w.BeginArray();
  for (const disk::DiskUtilization& u : result.per_disk) {
    w.BeginObject();
    w.Field("id", u.id);
    w.Field("busy_fraction", u.busy_fraction);
    w.Field("mean_queue_length", u.mean_queue_length);
    w.Key("stats");
    WriteDiskStats(w, u.stats);
    w.EndObject();
  }
  w.EndArray();
  if (result.write_blocks > 0 || result.write_requests > 0) {
    w.Key("writes");
    w.BeginObject();
    w.Field("blocks", result.write_blocks);
    w.Field("requests", result.write_requests);
    w.Field("stalls", result.write_stalls);
    w.Field("drain_ms", result.write_drain_ms);
    w.EndObject();
  }
  if (result.fault.injection_enabled) {
    // Explicit zeros: a fault sweep's "no faults happened" is data, while a
    // fault-free trial omits the block entirely (byte-identity with the
    // pre-fault schema).
    w.Key("fault");
    w.BeginObject();
    w.Field("media_errors", result.fault.media_errors);
    w.Field("latency_spikes", result.fault.latency_spikes);
    w.Field("timeouts", result.fault.timeouts);
    w.Field("retries", result.fault.retries);
    w.Field("dropped_requests", result.fault.dropped_requests);
    w.Field("permanent_failures", result.fault.permanent_failures);
    w.Field("degraded_plans", result.fault.degraded_plans);
    w.Field("quarantine_events", result.fault.quarantine_events);
    w.Field("backoff_ms", result.fault.backoff_ms);
    w.Field("fail_stop_ms", result.fault.fail_stop_ms);
    w.Field("quarantine_ms", result.fault.quarantine_ms);
    w.EndObject();
  }
  if (!result.metrics.empty()) {
    w.Key("metrics");
    w.BeginObject();
    for (const obs::MetricsRegistry::Sample& sample : result.metrics) {
      w.Field(sample.name, sample.value);
    }
    w.EndObject();
  }
  w.EndObject();
}

void WriteJson(stats::JsonWriter& w, const ExperimentResult& result) {
  w.BeginObject();
  w.Field("num_trials", static_cast<uint64_t>(result.trials.size()));
  w.Key("aggregate");
  w.BeginObject();
  w.Field("total_seconds_mean", result.MeanTotalSeconds());
  w.Field("total_seconds_ci95_half_width", result.TotalSecondsCi().half_width);
  w.Field("success_ratio_mean", result.MeanSuccessRatio());
  w.Field("concurrency_mean", result.MeanConcurrency());
  w.Key("total_ms");
  WriteAccumulator(w, result.total_ms);
  w.Key("success_ratio");
  WriteAccumulator(w, result.success_ratio);
  w.Key("concurrency");
  WriteAccumulator(w, result.concurrency);
  w.Key("io_operations");
  WriteAccumulator(w, result.io_operations);
  w.Key("cache_occupancy");
  WriteAccumulator(w, result.cache_occupancy);
  w.EndObject();
  w.Key("per_trial");
  w.BeginArray();
  for (const MergeResult& trial : result.trials) {
    WriteJson(w, trial);
  }
  w.EndArray();
  w.EndObject();
}

std::string ExperimentSetToJson(
    const std::vector<NamedExperiment>& experiments,
    const std::function<void(stats::JsonWriter&)>& extra_fields) {
  stats::JsonWriter w;
  w.BeginObject();
  w.Field("schema_version", kJsonSchemaVersion);
  w.Field("generator", "emsim");
  w.Key("experiments");
  w.BeginArray();
  for (const NamedExperiment& e : experiments) {
    w.BeginObject();
    w.Field("name", e.name);
    w.Key("config");
    WriteJson(w, e.config);
    if (e.result != nullptr) {
      w.Key("result");
      WriteJson(w, *e.result);
    }
    w.EndObject();
  }
  w.EndArray();
  if (extra_fields) {
    extra_fields(w);
  }
  w.EndObject();
  return w.Take();
}

}  // namespace emsim::core

// Extension: the fan-in vs prefetch-depth tradeoff. A fixed cache budget of
// M blocks can buy merge width (fan-in F = M/N, fewer passes) or prefetch
// depth (N, cheaper blocks within a pass). The paper studies one pass with
// k given; this bench composes its per-pass model with the optimal
// multi-pass schedule (merge_plan) to answer the planning question the
// paper's introduction raises ("merged together in a small number of merge
// passes").

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "core/config.h"
#include "core/experiment.h"
#include "extsort/merge_plan.h"
#include "stats/table.h"
#include "util/str.h"

namespace emsim {
namespace {

using core::MergeConfig;
using core::Strategy;
using core::SyncMode;

/// Simulated time of one merge step: runs with the given lengths, demand-
/// run-only prefetching at depth n, cache = full memory budget.
double StepSeconds(const std::vector<int64_t>& run_blocks, int n, int64_t memory) {
  MergeConfig cfg;
  cfg.num_runs = static_cast<int>(run_blocks.size());
  cfg.num_disks = 5;
  cfg.run_lengths = run_blocks;
  cfg.prefetch_depth = n;
  cfg.cache_blocks = memory;
  cfg.strategy = Strategy::kDemandRunOnly;
  cfg.sync = SyncMode::kUnsynchronized;
  auto result = core::RunTrials(cfg, 3);
  return result.total_ms.Mean() / 1e3;
}

}  // namespace
}  // namespace emsim

int main() {
  using namespace emsim;
  using stats::Table;

  bench::Banner(
      "Extension A-PASS: fan-in vs prefetch depth under a fixed memory budget",
      "60 initial runs x 500 blocks on 5 disks, Demand Run Only,\n"
      "unsynchronized. Fan-in F = M/N; F < 60 forces extra passes (optimal\n"
      "Huffman schedule). Expected shape: a sweet spot — N too small wastes\n"
      "the budget on width it cannot feed cheaply; N too large forces a\n"
      "second pass that rereads everything.");

  const int kRuns = 60;
  const int64_t kBlocks = 500;
  std::vector<int64_t> initial(kRuns, kBlocks);

  for (int64_t memory : {int64_t{120}, int64_t{240}, int64_t{600}}) {
    Table table({"N", "fan-in", "passes (depth)", "blocks moved", "time (s)"});
    for (int n : {1, 2, 4, 8, 20, 40}) {
      int fan_in = static_cast<int>(memory / n);
      if (fan_in < 2) {
        continue;
      }
      extsort::MergePlan plan = extsort::PlanMerge(initial, fan_in);

      // Track per-node run sizes so each step's config is exact.
      std::vector<int64_t> sizes = initial;
      sizes.resize(initial.size() + plan.steps.size());
      double total_s = 0;
      if (plan.steps.empty()) {
        total_s = StepSeconds(initial, n, memory);
      }
      for (const auto& step : plan.steps) {
        std::vector<int64_t> inputs;
        int64_t out = 0;
        for (int idx : step.inputs) {
          inputs.push_back(sizes[static_cast<size_t>(idx)]);
          out += sizes[static_cast<size_t>(idx)];
        }
        sizes[static_cast<size_t>(step.output)] = out;
        total_s += StepSeconds(inputs, n, memory);
      }
      table.AddRow({Table::Cell(n, 0), Table::Cell(fan_in, 0),
                    StrFormat("%zu (%d)", plan.steps.size(), std::max(plan.depth, 1)),
                    Table::Cell(static_cast<double>(std::max<int64_t>(
                                    plan.blocks_moved, kRuns * kBlocks)),
                                0),
                    Table::Cell(total_s)});
    }
    bench::EmitTable(StrFormat("Memory budget M = %lld blocks",
                               static_cast<long long>(memory)),
                     table, "read I/O only (writes go to the separate set, per the paper)");
  }
  return 0;
}

#include "extsort/block_device.h"
#include "extsort/tag_sort.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace emsim::extsort {
namespace {

TEST(BlockLruTest, HitsAndEviction) {
  BlockLru lru(2);
  lru.Put(1, {1});
  lru.Put(2, {2});
  ASSERT_NE(lru.Get(1), nullptr);  // 1 becomes most recent.
  lru.Put(3, {3});                 // Evicts 2.
  EXPECT_EQ(lru.Get(2), nullptr);
  ASSERT_NE(lru.Get(1), nullptr);
  ASSERT_NE(lru.Get(3), nullptr);
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.hits(), 3u);
  EXPECT_EQ(lru.misses(), 1u);
}

TEST(BlockLruTest, ZeroCapacityDisabled) {
  BlockLru lru(0);
  lru.Put(1, {1});
  EXPECT_EQ(lru.Get(1), nullptr);
  EXPECT_EQ(lru.size(), 0u);
}

TEST(BlockLruTest, PutRefreshesExisting) {
  BlockLru lru(2);
  lru.Put(1, {1});
  lru.Put(2, {2});
  lru.Put(1, {9});  // Refresh: 1 most recent now.
  lru.Put(3, {3});  // Evicts 2.
  ASSERT_NE(lru.Get(1), nullptr);
  EXPECT_EQ((*lru.Get(1))[0], 9);
  EXPECT_EQ(lru.Get(2), nullptr);
}

std::vector<uint8_t> MakePackedRecords(size_t count, size_t record_bytes, uint64_t seed,
                                       std::vector<uint64_t>* keys_out) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(count * record_bytes, 0);
  for (size_t i = 0; i < count; ++i) {
    uint64_t key = rng.Next64();
    keys_out->push_back(key);
    std::memcpy(bytes.data() + i * record_bytes, &key, sizeof(key));
    // Tag the payload with the original index for permutation checking.
    uint64_t idx = i;
    std::memcpy(bytes.data() + i * record_bytes + 8, &idx, sizeof(idx));
  }
  return bytes;
}

TEST(PackedRecordFileTest, WriteReadRoundTrip) {
  MemoryBlockDevice dev(64, 256);
  PackedRecordFile file(&dev, 32);
  EXPECT_EQ(file.records_per_block(), 8u);
  std::vector<uint64_t> keys;
  auto bytes = MakePackedRecords(20, 32, 3, &keys);
  ASSERT_TRUE(file.WriteAll(bytes, 20).ok());
  EXPECT_EQ(file.BlocksFor(20), 3);

  std::vector<uint8_t> record(32);
  ASSERT_TRUE(file.ReadRecord(13, record, nullptr).ok());
  uint64_t key = 0;
  std::memcpy(&key, record.data(), 8);
  EXPECT_EQ(key, keys[13]);

  auto scanned = file.ScanKeys(20);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(*scanned, keys);
}

TEST(PackedRecordFileTest, RejectsBadSizes) {
  MemoryBlockDevice dev(8, 256);
  PackedRecordFile file(&dev, 32);
  std::vector<uint8_t> bytes(31);
  EXPECT_FALSE(file.WriteAll(bytes, 1).ok());
  std::vector<uint8_t> small(16);
  EXPECT_FALSE(file.ReadRecord(0, small, nullptr).ok());
}

class TagSortCorrectness : public ::testing::TestWithParam<size_t> {};

TEST_P(TagSortCorrectness, SortsPackedRecords) {
  size_t record_bytes = GetParam();
  const size_t count = 3000;
  MemoryBlockDevice input(1 << 11, 1024);
  MemoryBlockDevice tag_scratch(1 << 11, 1024);
  MemoryBlockDevice output(1 << 11, 1024);

  std::vector<uint64_t> keys;
  auto bytes = MakePackedRecords(count, record_bytes, 17, &keys);
  PackedRecordFile in(&input, record_bytes);
  ASSERT_TRUE(in.WriteAll(bytes, count).ok());

  TagSortOptions options;
  options.record_bytes = record_bytes;
  options.tag_memory_records = 500;
  options.permute_cache_blocks = 4;
  TagSorter sorter(options);
  auto stats = sorter.Sort(&input, count, &tag_scratch, &output);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, count);

  // The output keys are the input keys, sorted; payload indices map back to
  // a permutation of the input.
  PackedRecordFile out(&output, record_bytes);
  auto out_keys = out.ScanKeys(count);
  ASSERT_TRUE(out_keys.ok());
  std::vector<uint64_t> expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(*out_keys, expect);

  std::vector<bool> seen(count, false);
  std::vector<uint8_t> record(record_bytes);
  for (size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(out.ReadRecord(i, record, nullptr).ok());
    uint64_t idx = 0;
    std::memcpy(&idx, record.data() + 8, 8);
    ASSERT_LT(idx, count);
    EXPECT_FALSE(seen[idx]) << "record duplicated";
    seen[idx] = true;
    uint64_t key = 0;
    std::memcpy(&key, record.data(), 8);
    EXPECT_EQ(key, keys[idx]);  // Key still matches its payload.
  }
}

INSTANTIATE_TEST_SUITE_P(RecordSizes, TagSortCorrectness,
                         ::testing::Values(16, 32, 64, 128, 512));

TEST(TagSortTest, LruReducesPermuteReads) {
  const size_t count = 5000;
  const size_t record_bytes = 32;
  MemoryBlockDevice input(1 << 11, 1024);
  MemoryBlockDevice tag_a(1 << 11, 1024);
  MemoryBlockDevice tag_b(1 << 11, 1024);
  MemoryBlockDevice out_a(1 << 11, 1024);
  MemoryBlockDevice out_b(1 << 11, 1024);

  std::vector<uint64_t> keys;
  auto bytes = MakePackedRecords(count, record_bytes, 5, &keys);
  PackedRecordFile in(&input, record_bytes);
  ASSERT_TRUE(in.WriteAll(bytes, count).ok());

  TagSortOptions options;
  options.record_bytes = record_bytes;
  options.permute_cache_blocks = 0;
  auto uncached = TagSorter(options).Sort(&input, count, &tag_a, &out_a);
  ASSERT_TRUE(uncached.ok());
  options.permute_cache_blocks = 64;
  auto cached = TagSorter(options).Sort(&input, count, &tag_b, &out_b);
  ASSERT_TRUE(cached.ok());
  EXPECT_LT(cached->permute_block_reads, uncached->permute_block_reads);
  EXPECT_GT(cached->lru_hits, 0u);
}

TEST(TagSortTest, EmptyInputRejected) {
  MemoryBlockDevice input(8, 1024);
  MemoryBlockDevice tag_scratch(8, 1024);
  MemoryBlockDevice output(8, 1024);
  TagSorter sorter(TagSortOptions{});
  EXPECT_FALSE(sorter.Sort(&input, 0, &tag_scratch, &output).ok());
}

}  // namespace
}  // namespace emsim::extsort

#include "workload/paper_configs.h"

#include <algorithm>
#include <cstdint>


namespace emsim::workload {

using core::MergeConfig;
using core::Strategy;
using core::SyncMode;

std::vector<int> Fig32DepthSweep() { return {1, 2, 3, 5, 7, 10, 15, 20, 25, 30}; }

std::vector<int64_t> CacheSweep(int num_runs, int num_disks) {
  int64_t max_cache;
  if (num_runs <= 25) {
    max_cache = 1200;
  } else {
    max_cache = num_disks >= 10 ? 3500 : 1600;
  }
  std::vector<int64_t> sweep;
  // Start at the smallest legal cache (k blocks) and step in ~1/16ths of the
  // paper's x range, densified at the start where the curves move fastest.
  for (int64_t c = num_runs; c < max_cache; c += std::max<int64_t>(25, max_cache / 16)) {
    sweep.push_back(c);
  }
  sweep.push_back(max_cache);
  return sweep;
}

std::vector<double> Fig33CpuSweep() {
  return {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7};
}

MergeConfig PaperConfig(int num_runs, int num_disks, int n, Strategy strategy, SyncMode sync) {
  return MergeConfig::Paper(num_runs, num_disks, n, strategy, sync);
}

std::vector<NamedConfig> Fig33Curves() {
  std::vector<NamedConfig> curves;
  auto add = [&curves](const std::string& name, Strategy s, SyncMode m) {
    curves.push_back({name, PaperConfig(25, 5, 10, s, m)});
  };
  add("All Disks One Run (Unsynchronized)", Strategy::kAllDisksOneRun,
      SyncMode::kUnsynchronized);
  add("All Disks One Run (Synchronized)", Strategy::kAllDisksOneRun, SyncMode::kSynchronized);
  add("Demand Run Only (Unsynchronized)", Strategy::kDemandRunOnly,
      SyncMode::kUnsynchronized);
  add("Demand Run Only (Synchronized)", Strategy::kDemandRunOnly, SyncMode::kSynchronized);
  return curves;
}

}  // namespace emsim::workload

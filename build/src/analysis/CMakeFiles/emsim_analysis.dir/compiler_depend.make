# Empty compiler generated dependencies file for emsim_analysis.
# This may be replaced when dependencies are built.

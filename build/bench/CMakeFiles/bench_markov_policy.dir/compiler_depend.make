# Empty compiler generated dependencies file for bench_markov_policy.
# This may be replaced when dependencies are built.

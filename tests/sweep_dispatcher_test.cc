// Exercises the multi-process shard dispatcher with real subprocesses:
// clean completion, straggler kill + resubmission (chaos and deadline),
// retry exhaustion, the empty-artifact guard, shard-subset dispatch,
// dispatch counters, and graceful drain.

#include "sweep/dispatcher.h"

#include <atomic>
#include <chrono>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/subprocess.h"
#include "util/str.h"

namespace emsim::sweep {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  (void)::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Worker argv that runs `script` through the shell with $0 = shard index
/// and $1 = artifact path.
ShardCommandFn ShellCommand(const std::string& script) {
  return [script](int shard, const std::string& out_path) {
    return std::vector<std::string>{"/bin/sh", "-c", script,
                                    StrFormat("%d", shard), out_path};
  };
}

TEST(SubprocessTest, RunsAndReportsExitCode) {
  auto child = Subprocess::Start({"/bin/sh", "-c", "exit 3"});
  ASSERT_TRUE(child.ok()) << child.status().ToString();
  while (!child->Poll()) {
  }
  EXPECT_FALSE(child->running());
  EXPECT_FALSE(child->was_signaled());
  EXPECT_FALSE(child->exited_cleanly());
  EXPECT_EQ(child->exit_code(), 3);
  EXPECT_EQ(child->DescribeExit(), "exit 3");
}

TEST(SubprocessTest, ExecFailureIs127) {
  auto child = Subprocess::Start({"/nonexistent/binary/for/emsim"});
  ASSERT_TRUE(child.ok());
  while (!child->Poll()) {
  }
  EXPECT_EQ(child->exit_code(), 127);
}

TEST(SubprocessTest, KillIsReportedAsSignal) {
  auto child = Subprocess::Start({"/bin/sh", "-c", "sleep 30"});
  ASSERT_TRUE(child.ok());
  child->Kill();
  while (!child->Poll()) {
  }
  EXPECT_TRUE(child->was_signaled());
  EXPECT_EQ(child->DescribeExit(), StrFormat("signal %d", 9));
}

TEST(DispatcherTest, RunsAllShardsOnce) {
  std::string dir = FreshDir("dispatch_ok");
  DispatcherOptions options;
  options.num_shards = 5;
  options.max_workers = 2;
  auto report = RunShardedSweep(options, dir, ShellCommand("echo shard $0 > \"$1\""));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->shards.size(), 5u);
  for (const ShardDispatch& d : report->shards) {
    EXPECT_TRUE(d.ok);
    EXPECT_EQ(d.attempts, 1);
    EXPECT_FALSE(d.artifact_path.empty());
  }
  // A clean run reports explicit zeros everywhere except launches.
  EXPECT_FALSE(report->drained);
  EXPECT_EQ(report->stats.launches, 5);
  EXPECT_EQ(report->stats.resubmissions, 0);
  EXPECT_EQ(report->stats.deadline_kills, 0);
  EXPECT_EQ(report->stats.chaos_kills, 0);
  EXPECT_EQ(report->stats.spawn_failures, 0);
  EXPECT_EQ(report->stats.drain_kills, 0);
}

TEST(DispatcherTest, RunsOnlyRequestedShardSubset) {
  std::string dir = FreshDir("dispatch_subset");
  DispatcherOptions options;
  options.num_shards = 5;
  options.shards = {3, 1};
  auto report = RunShardedSweep(options, dir, ShellCommand("echo shard $0 > \"$1\""));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->shards.size(), 2u);
  EXPECT_EQ(report->shards[0].shard, 1);
  EXPECT_EQ(report->shards[1].shard, 3);
  EXPECT_TRUE(report->shards[0].ok);
  EXPECT_TRUE(report->shards[1].ok);
  EXPECT_EQ(report->stats.launches, 2);
  // Attempt paths still carry the global shard plan, not the subset size.
  EXPECT_NE(report->shards[0].artifact_path.find("shard_1_of_5"), std::string::npos);
}

TEST(DispatcherTest, ChaosKilledShardIsResubmittedAndCompletes) {
  std::string dir = FreshDir("dispatch_chaos");
  DispatcherOptions options;
  options.num_shards = 3;
  options.chaos_kill_shard = 1;
  options.retry.backoff_base_ms = 1.0;
  std::vector<std::string> lines;
  options.log = [&](const std::string& line) { lines.push_back(line); };
  std::vector<ShardEvent> events;
  options.on_event = [&](const ShardEvent& event) { events.push_back(event); };
  // Slow enough that the chaos SIGKILL lands before the artifact exists.
  auto report =
      RunShardedSweep(options, dir, ShellCommand("sleep 0.2; echo ok > \"$1\""));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->shards[1].ok);
  EXPECT_EQ(report->shards[1].attempts, 2);
  EXPECT_EQ(report->shards[0].attempts, 1);
  EXPECT_EQ(report->shards[2].attempts, 1);
  EXPECT_EQ(report->stats.chaos_kills, 1);
  EXPECT_EQ(report->stats.resubmissions, 1);
  bool saw_chaos = false;
  for (const std::string& line : lines) {
    if (line.find("chaos-killed") != std::string::npos) {
      saw_chaos = true;
    }
  }
  EXPECT_TRUE(saw_chaos);
  // The observer saw every lifecycle transition: 4 starts (3 + 1 retry),
  // 3 dones, 1 retry.
  int starts = 0, dones = 0, retries = 0;
  for (const ShardEvent& event : events) {
    starts += event.kind == ShardEvent::Kind::kStart;
    dones += event.kind == ShardEvent::Kind::kDone;
    retries += event.kind == ShardEvent::Kind::kRetry;
  }
  EXPECT_EQ(starts, 4);
  EXPECT_EQ(dones, 3);
  EXPECT_EQ(retries, 1);
}

TEST(DispatcherTest, FailingAttemptIsRetriedUntilSuccess) {
  std::string dir = FreshDir("dispatch_retry");
  // TempDir() persists across runs — stale markers would let the first
  // attempt succeed immediately.
  (void)::unlink((dir + "/marker_0").c_str());
  (void)::unlink((dir + "/marker_1").c_str());
  // First attempt leaves a marker and fails; the resubmission sees the
  // marker and succeeds — a transient infrastructure fault.
  std::string script = StrFormat(
      "if [ -f \"%s/marker_$0\" ]; then echo ok > \"$1\"; "
      "else touch \"%s/marker_$0\"; exit 1; fi",
      dir.c_str(), dir.c_str());
  DispatcherOptions options;
  options.num_shards = 2;
  options.retry.max_retries = 2;
  options.retry.backoff_base_ms = 1.0;
  auto report = RunShardedSweep(options, dir, ShellCommand(script));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const ShardDispatch& d : report->shards) {
    EXPECT_TRUE(d.ok);
    EXPECT_EQ(d.attempts, 2);
  }
  EXPECT_EQ(report->stats.launches, 4);
  EXPECT_EQ(report->stats.resubmissions, 2);
}

TEST(DispatcherTest, DeadlineKillsStragglerAndExhaustsRetries) {
  std::string dir = FreshDir("dispatch_deadline");
  DispatcherOptions options;
  options.num_shards = 1;
  options.retry.timeout_ms = 50.0;
  options.retry.max_retries = 1;
  options.retry.backoff_base_ms = 1.0;
  auto report = RunShardedSweep(options, dir, ShellCommand("sleep 30"));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("signal 9"), std::string::npos)
      << report.status().ToString();
}

TEST(DispatcherTest, CleanExitWithoutArtifactIsAFailure) {
  std::string dir = FreshDir("dispatch_empty");
  DispatcherOptions options;
  options.num_shards = 1;
  options.retry.max_retries = 0;
  auto report = RunShardedSweep(options, dir, ShellCommand("exit 0"));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("no artifact"), std::string::npos)
      << report.status().ToString();
}

TEST(DispatcherTest, PreSetDrainParksEveryShardWithoutLaunching) {
  std::string dir = FreshDir("dispatch_drain_preset");
  std::atomic<bool> drain{true};
  DispatcherOptions options;
  options.num_shards = 4;
  options.drain = &drain;
  auto report = RunShardedSweep(options, dir, ShellCommand("echo ok > \"$1\""));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->drained);
  EXPECT_EQ(report->stats.launches, 0);
  ASSERT_EQ(report->shards.size(), 4u);
  for (const ShardDispatch& d : report->shards) {
    EXPECT_FALSE(d.ok);
    EXPECT_NE(d.error.find("drained before launch"), std::string::npos) << d.error;
  }
}

TEST(DispatcherTest, DrainKillsInFlightWorkerAfterGrace) {
  std::string dir = FreshDir("dispatch_drain_kill");
  std::atomic<bool> drain{false};
  DispatcherOptions options;
  options.num_shards = 1;
  options.drain = &drain;
  options.drain_grace_ms = 50.0;
  std::thread flipper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    drain.store(true);
  });
  auto report = RunShardedSweep(options, dir, ShellCommand("sleep 30"));
  flipper.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->drained);
  EXPECT_EQ(report->stats.drain_kills, 1);
  ASSERT_EQ(report->shards.size(), 1u);
  EXPECT_FALSE(report->shards[0].ok);
}

TEST(DispatcherTest, DrainLetsInFlightWorkerFinishInsideGrace) {
  std::string dir = FreshDir("dispatch_drain_finish");
  std::atomic<bool> drain{true};
  DispatcherOptions options;
  options.num_shards = 2;
  options.shards = {0};
  options.drain = &drain;
  options.drain_grace_ms = 10000.0;
  // The drain flag is already set, so the single requested shard never
  // launches; with a subset of one this proves parking and reporting
  // interact (the unrequested shard 1 is absent from the report).
  auto report = RunShardedSweep(options, dir, ShellCommand("echo ok > \"$1\""));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->drained);
  ASSERT_EQ(report->shards.size(), 1u);
  EXPECT_EQ(report->shards[0].shard, 0);
}

TEST(StatsCollectorTest, SharedAcrossConcurrentSweeps) {
  // A driver fanning dispatch rounds out over several threads shares one
  // StatsCollector: each round's observer feeds Note(), each finished round
  // Add()s its counters, and the roll-up must reconcile exactly — every
  // launch observed as a start, every shard observed done once.
  constexpr int kSweeps = 3;
  constexpr int kShards = 4;
  StatsCollector stats;
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kSweeps);
  for (int s = 0; s < kSweeps; ++s) {
    drivers.emplace_back([&stats, &failures, s] {
      std::string dir = FreshDir(StrFormat("stats_shared_%d", s));
      DispatcherOptions options;
      options.num_shards = kShards;
      options.max_workers = 2;
      options.on_event = stats.Observer();
      auto report =
          RunShardedSweep(options, dir, ShellCommand("echo shard $0 > \"$1\""));
      if (!report.ok()) {
        ++failures;
        return;
      }
      stats.Add(report->stats);
    });
  }
  for (std::thread& driver : drivers) {
    driver.join();
  }
  ASSERT_EQ(failures.load(), 0);
  const DispatchStats total = stats.Total();
  const StatsCollector::EventTally tally = stats.Tally();
  EXPECT_EQ(tally.starts, total.launches);
  EXPECT_EQ(tally.retries, total.resubmissions);
  EXPECT_EQ(tally.dones, kSweeps * kShards);
  EXPECT_EQ(tally.fails, 0);
  EXPECT_GE(total.launches, kSweeps * kShards);
}

}  // namespace
}  // namespace emsim::sweep

#ifndef EMSIM_SIM_FRAME_POOL_H_
#define EMSIM_SIM_FRAME_POOL_H_

#include <cstddef>
#include <cstdint>

namespace emsim::sim {

/// Thread-local slab allocator for coroutine frames (`Process::promise_type`
/// routes its `operator new/delete` here). A merge trial churns through
/// thousands of short-lived process frames of a handful of distinct sizes;
/// the pool turns each spawn into a free-list pop instead of a malloc.
///
/// Frames are bucketed into 64-byte size classes up to 1 KiB (every process
/// frame in the tree today is well under that); larger requests fall through
/// to the global heap. Freed frames go back on their class's free list, so
/// the working set is reserved once and reused for the rest of the thread's
/// lifetime — steady-state spawn/finish cycles do not touch the heap.
///
/// The pool is thread-local, which makes it both lock-free and safe under
/// RunTrialsParallel: a Simulation and every frame it owns live and die on
/// one thread, so allocation and deallocation always hit the same pool.
class FramePool {
 public:
  /// Allocation counters for the calling thread's pool. `bytes_reserved` is
  /// the RSS proxy the reuse tests pin: it grows only when a new slab is
  /// carved, never on steady-state spawn/finish cycles.
  struct Stats {
    uint64_t pool_allocs = 0;      ///< Allocations served from a free list.
    uint64_t fallback_allocs = 0;  ///< Oversized requests sent to the heap.
    uint64_t slabs_allocated = 0;  ///< Slabs carved from the heap so far.
    uint64_t bytes_reserved = 0;   ///< Total bytes held in slabs.
    uint64_t live_frames = 0;      ///< Frames currently outstanding.
  };

  /// Returns a frame-aligned block of at least `bytes`. Never returns null
  /// (the fallback path throws std::bad_alloc like plain operator new).
  static void* Allocate(std::size_t bytes);

  /// Returns a block obtained from Allocate with the same size.
  static void Deallocate(void* ptr, std::size_t bytes) noexcept;

  /// Counters for the calling thread (benches and the reuse tests read
  /// these; the registry itself is not exported into results).
  static Stats ThreadStats();

  /// Zeroes the calling thread's counters; the pooled memory stays.
  static void ResetThreadStats();
};

}  // namespace emsim::sim

#endif  // EMSIM_SIM_FRAME_POOL_H_

#ifndef EMSIM_ANALYSIS_SEEK_DISTRIBUTION_H_
#define EMSIM_ANALYSIS_SEEK_DISTRIBUTION_H_

#include <vector>

namespace emsim::analysis {

/// The Kwan-Baer seek-distance distribution for k contiguously placed runs
/// under random block depletion. The distance is measured in *runs moved*:
/// both endpoints of a request are uniform over the k runs, so
///   P(x = 0) = 1/k,   P(x = i) = 2(k - i)/k^2  for 1 <= i <= k-1.
class SeekDistribution {
 public:
  explicit SeekDistribution(int num_runs);

  int num_runs() const { return k_; }

  /// P(x = moves).
  double Pmf(int moves) const;

  /// P(x <= moves).
  double Cdf(int moves) const;

  /// Exact expected number of moves: k/3 - 1/(3k) = (k^2 - 1) / (3k).
  double ExpectedMovesExact() const;

  /// The paper's approximation k/3 (used by all its formulas).
  double ExpectedMovesApprox() const;

  /// Full PMF vector, index = moves in [0, k-1].
  std::vector<double> PmfVector() const;

 private:
  int k_;
};

}  // namespace emsim::analysis

#endif  // EMSIM_ANALYSIS_SEEK_DISTRIBUTION_H_

// Corpus-replay driver for fuzz harnesses built without libFuzzer.
//
// Clang builds link the harness with -fsanitize=fuzzer, which supplies its
// own main(); with every other toolchain this file provides one that walks
// the arguments (files or directories of corpus inputs), feeds each file to
// LLVMFuzzerTestOneInput once, and exits non-zero only if the harness traps.
// libFuzzer-style flags (anything starting with '-') are ignored so the
// same ctest command line works for both link modes.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz-replay: cannot read %s\n", path.c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') {
      continue;  // libFuzzer flag (-runs=..., -max_total_time=...)
    }
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> found;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg, ec)) {
        if (entry.is_regular_file()) {
          found.push_back(entry.path());
        }
      }
      std::sort(found.begin(), found.end());
      inputs.insert(inputs.end(), found.begin(), found.end());
    } else {
      inputs.emplace_back(arg);
    }
  }
  int failures = 0;
  for (const auto& path : inputs) {
    failures += RunFile(path);
  }
  std::printf("fuzz-replay: %zu input(s), %d unreadable\n", inputs.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

file(REMOVE_RECURSE
  "CMakeFiles/emsim_sim.dir/event.cc.o"
  "CMakeFiles/emsim_sim.dir/event.cc.o.d"
  "CMakeFiles/emsim_sim.dir/resource.cc.o"
  "CMakeFiles/emsim_sim.dir/resource.cc.o.d"
  "CMakeFiles/emsim_sim.dir/semaphore.cc.o"
  "CMakeFiles/emsim_sim.dir/semaphore.cc.o.d"
  "CMakeFiles/emsim_sim.dir/simulation.cc.o"
  "CMakeFiles/emsim_sim.dir/simulation.cc.o.d"
  "libemsim_sim.a"
  "libemsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

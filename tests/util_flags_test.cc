#include "util/flags.h"
#include "util/status.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace emsim {
namespace {

TEST(FlagSetTest, ParsesEveryType) {
  FlagSet flags("t");
  int i = 1;
  int64_t big = 2;
  double d = 3.5;
  std::string s = "x";
  bool b = false;
  flags.AddInt("i", &i, "int");
  flags.AddInt64("big", &big, "int64");
  flags.AddDouble("d", &d, "double");
  flags.AddString("s", &s, "string");
  flags.AddBool("b", &b, "bool");

  const char* argv[] = {"t", "--i", "42", "--big=9000000000", "--d", "2.25",
                        "--s=hello", "--b"};
  ASSERT_TRUE(flags.Parse(8, argv).ok());
  EXPECT_EQ(i, 42);
  EXPECT_EQ(big, 9000000000LL);
  EXPECT_DOUBLE_EQ(d, 2.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST(FlagSetTest, DefaultsSurviveWhenUnset) {
  FlagSet flags("t");
  int i = 7;
  flags.AddInt("i", &i, "int");
  const char* argv[] = {"t"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(i, 7);
}

TEST(FlagSetTest, UnknownFlagIsError) {
  FlagSet flags("t");
  const char* argv[] = {"t", "--nope", "1"};
  Status s = flags.Parse(3, argv);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("nope"), std::string::npos);
}

TEST(FlagSetTest, MissingValueIsError) {
  FlagSet flags("t");
  int i = 0;
  flags.AddInt("i", &i, "int");
  const char* argv[] = {"t", "--i"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagSetTest, BadNumberIsError) {
  FlagSet flags("t");
  int i = 0;
  double d = 0;
  flags.AddInt("i", &i, "int");
  flags.AddDouble("d", &d, "double");
  const char* argv1[] = {"t", "--i", "abc"};
  EXPECT_FALSE(flags.Parse(3, argv1).ok());
  const char* argv2[] = {"t", "--d", "1.2.3"};
  EXPECT_FALSE(flags.Parse(3, argv2).ok());
}

TEST(FlagSetTest, BoolForms) {
  FlagSet flags("t");
  bool a = false;
  bool b = true;
  bool c = false;
  flags.AddBool("a", &a, "");
  flags.AddBool("b", &b, "");
  flags.AddBool("c", &c, "");
  const char* argv[] = {"t", "--a", "--b=false", "--c=1"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(c);
}

TEST(FlagSetTest, PositionalArgumentsCollected) {
  FlagSet flags("t");
  int i = 0;
  flags.AddInt("i", &i, "");
  const char* argv[] = {"t", "one", "--i", "5", "two"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
  EXPECT_EQ(flags.positional()[1], "two");
}

TEST(FlagSetTest, UsageListsFlagsWithDefaults) {
  FlagSet flags("prog");
  int i = 9;
  flags.AddInt("alpha", &i, "the alpha knob");
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("prog"), std::string::npos);
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha knob"), std::string::npos);
  EXPECT_NE(usage.find("9"), std::string::npos);
}

}  // namespace
}  // namespace emsim

#include "core/experiment.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <thread>
#include <utility>

#include "core/merge_simulator.h"
#include "core/result.h"
#include "extsort/record.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/str.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace emsim::core {

namespace {

/// Collects the first failure by *task index* (not arrival order) so the
/// failure a caller sees is deterministic across thread counts, and defers
/// any abort to the joining thread: pool workers must never call abort()
/// while sibling tasks are mid-flight. Accessors lock too: they are called
/// only after the pool joins, but taking the mutex keeps the class
/// race-free by construction (and the thread-safety analysis checkable)
/// rather than by caller protocol.
class FailureCapture {
 public:
  void Record(int index, const Status& status) EMSIM_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    if (index < first_index_) {
      first_index_ = index;
      status_ = status;
    }
  }

  bool failed() const EMSIM_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return first_index_ != std::numeric_limits<int>::max();
  }
  int first_index() const EMSIM_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return first_index_;
  }
  Status status() const EMSIM_EXCLUDES(mu_) {
    util::MutexLock lock(&mu_);
    return status_;
  }

 private:
  mutable util::Mutex mu_;
  int first_index_ EMSIM_GUARDED_BY(mu_) = std::numeric_limits<int>::max();
  Status status_ EMSIM_GUARDED_BY(mu_);
};

int ResolveThreads(int num_threads) {
  if (num_threads > 0) {
    return num_threads;
  }
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 2;
}

/// Stamps the harness deadline onto one trial's config. Config-level bounds
/// take precedence where they are tighter (events) or set at all (wall
/// clock); see TrialDeadline's doc for the rationale.
void ApplyDeadline(MergeConfig& config, const TrialDeadline& deadline) {
  if (deadline.max_sim_events > 0 &&
      (config.max_sim_events == 0 || deadline.max_sim_events < config.max_sim_events)) {
    config.max_sim_events = deadline.max_sim_events;
  }
  if (deadline.max_wall_ms > 0 && config.max_wall_ms == 0) {
    config.max_wall_ms = deadline.max_wall_ms;
  }
}

std::vector<ExperimentResult> AggregateGrid(const SweepGrid& grid,
                                            std::vector<MergeResult> results) {
  std::vector<ExperimentResult> out;
  out.reserve(static_cast<size_t>(grid.num_units()));
  for (int u = 0; u < grid.num_units(); ++u) {
    auto first = results.begin() + grid.UnitBegin(u);
    auto last = results.begin() + grid.UnitBegin(u) + grid.units()[static_cast<size_t>(u)].trials;
    out.push_back(AggregateTrials(
        std::vector<MergeResult>(std::make_move_iterator(first), std::make_move_iterator(last))));
  }
  return out;
}

}  // namespace

std::string ExperimentResult::ToString() const {
  auto ci = stats::MeanConfidence95(total_ms);
  return StrFormat("Experiment{trials=%zu, total=%.2f±%.2f s, success=%.3f, conc=%.3f}",
                   trials.size(), ci.mean / 1000.0, ci.half_width / 1000.0,
                   MeanSuccessRatio(), MeanConcurrency());
}

SweepGrid::SweepGrid(std::vector<SweepUnit> units) : units_(std::move(units)) {
  offsets_.reserve(units_.size() + 1);
  offsets_.push_back(0);
  for (const SweepUnit& unit : units_) {
    EMSIM_CHECK(unit.trials >= 1);
    offsets_.push_back(offsets_.back() + unit.trials);
  }
  total_tasks_ = offsets_.back();
}

SweepGrid::Task SweepGrid::At(int global_index) const {
  EMSIM_CHECK(global_index >= 0 && global_index < total_tasks_);
  // First offset strictly greater than the index marks the owning unit.
  auto it = std::upper_bound(offsets_.begin(), offsets_.end(), global_index);
  int unit = static_cast<int>(it - offsets_.begin()) - 1;
  return Task{unit, global_index - offsets_[static_cast<size_t>(unit)]};
}

MergeConfig SweepGrid::TaskConfig(int global_index, const TrialDeadline& deadline) const {
  Task task = At(global_index);
  MergeConfig config = units_[static_cast<size_t>(task.unit)].config;
  config.seed = config.seed + static_cast<uint64_t>(task.trial);
  ApplyDeadline(config, deadline);
  return config;
}

ExperimentResult AggregateTrials(std::vector<MergeResult> trials) {
  ExperimentResult out;
  for (MergeResult& r : trials) {
    out.total_ms.Add(r.total_ms);
    out.success_ratio.Add(r.SuccessRatio());
    out.concurrency.Add(r.avg_concurrency);
    out.io_operations.Add(static_cast<double>(r.io_operations));
    out.cache_occupancy.Add(r.mean_cache_occupancy);
    out.trials.push_back(std::move(r));
  }
  return out;
}

SweepRangeOutcome RunSweepRange(const SweepGrid& grid, int begin, int end, int num_threads,
                                const TrialDeadline& deadline) {
  EMSIM_CHECK(begin >= 0 && begin <= end && end <= grid.total_tasks());
  SweepRangeOutcome out;
  out.results.resize(static_cast<size_t>(end - begin));
  if (begin == end) {
    return out;
  }
  FailureCapture failure;
  auto task = [&](int i) {
    int global = begin + i;
    Result<MergeResult> result = SimulateMerge(grid.TaskConfig(global, deadline));
    if (!result.ok()) {
      failure.Record(global, result.status());
      return;
    }
    out.results[static_cast<size_t>(i)] = *std::move(result);
  };
  ThreadPool::Instance().Run(ResolveThreads(num_threads), end - begin, task);
  if (failure.failed()) {
    out.failed_task = failure.first_index();
    out.status = failure.status();
    out.results.clear();
  }
  return out;
}

ExperimentResult RunTrials(const MergeConfig& config, int num_trials,
                           const TrialDeadline& deadline) {
  EMSIM_CHECK(num_trials >= 1);
  SweepGrid grid({SweepUnit{"", config, num_trials}});
  // Serial (single-threaded) execution, trial order — the reference runner.
  SweepRangeOutcome outcome = RunSweepRange(grid, 0, grid.total_tasks(), 1, deadline);
  EMSIM_CHECK_MSG(outcome.ok(),
                  StrFormat("trial %d failed: %s", outcome.failed_task,
                            outcome.status.ToString().c_str())
                      .c_str());
  return AggregateTrials(std::move(outcome.results));
}

ExperimentResult RunTrialsParallel(const MergeConfig& config, int num_trials,
                                   int num_threads, const TrialDeadline& deadline) {
  EMSIM_CHECK(num_trials >= 1);
  SweepGrid grid({SweepUnit{"", config, num_trials}});
  SweepRangeOutcome outcome = RunSweepRange(grid, 0, grid.total_tasks(), num_threads, deadline);
  EMSIM_CHECK_MSG(outcome.ok(),
                  StrFormat("trial %d failed: %s", outcome.failed_task,
                            outcome.status.ToString().c_str())
                      .c_str());
  return AggregateTrials(std::move(outcome.results));
}

std::vector<ExperimentResult> RunSweepParallel(const std::vector<MergeConfig>& configs,
                                               int num_trials, int num_threads,
                                               const TrialDeadline& deadline) {
  EMSIM_CHECK(num_trials >= 1);
  std::vector<SweepUnit> units;
  units.reserve(configs.size());
  for (const MergeConfig& config : configs) {
    units.push_back(SweepUnit{"", config, num_trials});
  }
  return RunSweep(units, num_threads, deadline);
}

std::vector<ExperimentResult> RunSweep(const std::vector<SweepUnit>& units, int num_threads,
                                       const TrialDeadline& deadline) {
  if (units.empty()) {
    return {};
  }
  SweepGrid grid(units);
  SweepRangeOutcome outcome = RunSweepRange(grid, 0, grid.total_tasks(), num_threads, deadline);
  EMSIM_CHECK_MSG(outcome.ok(),
                  StrFormat("sweep task %d failed: %s", outcome.failed_task,
                            outcome.status.ToString().c_str())
                      .c_str());
  return AggregateGrid(grid, std::move(outcome.results));
}

}  // namespace emsim::core

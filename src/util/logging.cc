#include "util/logging.h"

#include <cstdio>

namespace emsim {

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (!Enabled(level)) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), message.c_str());
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace emsim

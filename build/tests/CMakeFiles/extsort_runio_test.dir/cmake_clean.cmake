file(REMOVE_RECURSE
  "CMakeFiles/extsort_runio_test.dir/extsort_runio_test.cc.o"
  "CMakeFiles/extsort_runio_test.dir/extsort_runio_test.cc.o.d"
  "extsort_runio_test"
  "extsort_runio_test.pdb"
  "extsort_runio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extsort_runio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// RunTrialsParallel promises aggregates bit-identical to the serial path —
// the whole paper-reproduction rests on trials being deterministic per seed
// regardless of how they are scheduled onto threads. These tests pin that
// contract across thread counts, including the MergeResult::metrics export
// and the JSON projection. They carry the `thread` ctest label so the
// EMSIM_SANITIZE=thread CI job runs them under TSan.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/result_json.h"

namespace emsim::core {
namespace {

MergeConfig SmallConfig() {
  MergeConfig cfg = MergeConfig::Paper(5, 2, 2, Strategy::kDemandRunOnly,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 40;
  cfg.check_invariants = true;
  cfg.collect_metrics = true;  // Exercise the registry under concurrent trials.
  return cfg;
}

// EXPECT_EQ on doubles is exact comparison — deliberate: the contract is
// bit-identity, not closeness.
void ExpectTrialsIdentical(const ExperimentResult& serial, const ExperimentResult& parallel) {
  ASSERT_EQ(parallel.trials.size(), serial.trials.size());
  for (size_t t = 0; t < serial.trials.size(); ++t) {
    const MergeResult& a = serial.trials[t];
    const MergeResult& b = parallel.trials[t];
    EXPECT_EQ(b.total_ms, a.total_ms) << "trial " << t;
    EXPECT_EQ(b.blocks_merged, a.blocks_merged) << "trial " << t;
    EXPECT_EQ(b.io_operations, a.io_operations) << "trial " << t;
    EXPECT_EQ(b.full_admissions, a.full_admissions) << "trial " << t;
    EXPECT_EQ(b.demand_stalls, a.demand_stalls) << "trial " << t;
    EXPECT_EQ(b.cache_hits, a.cache_hits) << "trial " << t;
    EXPECT_EQ(b.avg_concurrency, a.avg_concurrency) << "trial " << t;
    EXPECT_EQ(b.mean_cache_occupancy, a.mean_cache_occupancy) << "trial " << t;
    EXPECT_EQ(b.sim_events, a.sim_events) << "trial " << t;
    ASSERT_EQ(b.per_disk.size(), a.per_disk.size()) << "trial " << t;
    for (size_t d = 0; d < a.per_disk.size(); ++d) {
      EXPECT_EQ(b.per_disk[d].busy_fraction, a.per_disk[d].busy_fraction)
          << "trial " << t << " disk " << d;
    }
    ASSERT_EQ(b.metrics.size(), a.metrics.size()) << "trial " << t;
    for (size_t m = 0; m < a.metrics.size(); ++m) {
      EXPECT_EQ(b.metrics[m].name, a.metrics[m].name) << "trial " << t;
      EXPECT_EQ(b.metrics[m].value, a.metrics[m].value)
          << "trial " << t << " metric " << a.metrics[m].name;
    }
  }
  EXPECT_EQ(parallel.total_ms.Mean(), serial.total_ms.Mean());
  EXPECT_EQ(parallel.total_ms.Variance(), serial.total_ms.Variance());
  EXPECT_EQ(parallel.success_ratio.Mean(), serial.success_ratio.Mean());
  EXPECT_EQ(parallel.concurrency.Mean(), serial.concurrency.Mean());
  EXPECT_EQ(parallel.io_operations.Mean(), serial.io_operations.Mean());
  EXPECT_EQ(parallel.cache_occupancy.Mean(), serial.cache_occupancy.Mean());
}

TEST(RunTrialsParallelTest, BitIdenticalToSerialAcrossThreadCounts) {
  MergeConfig cfg = SmallConfig();
  const int trials = 6;
  ExperimentResult serial = RunTrials(cfg, trials);

  int hardware = static_cast<int>(std::thread::hardware_concurrency());
  if (hardware <= 0) {
    hardware = 2;
  }
  for (int threads : {1, 2, hardware}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExperimentResult parallel = RunTrialsParallel(cfg, trials, threads);
    ExpectTrialsIdentical(serial, parallel);
  }
}

TEST(RunTrialsParallelTest, DefaultThreadCountUsesHardwareConcurrency) {
  MergeConfig cfg = SmallConfig();
  ExperimentResult serial = RunTrials(cfg, 4);
  ExperimentResult parallel = RunTrialsParallel(cfg, 4);  // num_threads = 0.
  ExpectTrialsIdentical(serial, parallel);
}

TEST(RunTrialsParallelTest, JsonExportBytesIdenticalToSerial) {
  MergeConfig cfg = SmallConfig();
  ExperimentResult serial = RunTrials(cfg, 5);
  ExperimentResult parallel = RunTrialsParallel(cfg, 5, 2);
  std::string doc_serial = ExperimentSetToJson({NamedExperiment{"t", cfg, &serial}});
  std::string doc_parallel = ExperimentSetToJson({NamedExperiment{"t", cfg, &parallel}});
  EXPECT_EQ(doc_serial, doc_parallel);
}

TEST(RunTrialsParallelTest, MetricsCollectedForEveryTrial) {
  MergeConfig cfg = SmallConfig();
  ExperimentResult parallel = RunTrialsParallel(cfg, 4, 2);
  for (const MergeResult& trial : parallel.trials) {
    EXPECT_FALSE(trial.metrics.empty());
  }
}

}  // namespace
}  // namespace emsim::core

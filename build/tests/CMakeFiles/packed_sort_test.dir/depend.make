# Empty dependencies file for packed_sort_test.
# This may be replaced when dependencies are built.

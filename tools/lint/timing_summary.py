#!/usr/bin/env python3
"""Render lint timing reports as a GitHub step-summary markdown table.

Every lint-tier tool (run_clang_tidy.py, emsim_lint.py, include_hygiene.py,
emsim_analyze.py) writes a --timing-report JSON with the same envelope:

    {"tool": ..., "wall_seconds": ...,
     "cache": {"hits": ..., "misses": ..., "hit_ratio": ...}, ...}

CI appends `timing_summary.py <report>...` output to $GITHUB_STEP_SUMMARY so
the wall time and cache hit ratio of each gate are visible on the run page
without downloading artifacts. Missing files are reported but non-fatal:
a tool that failed before writing its report should not mask the others.
"""

import json
import sys
from pathlib import Path


def row(path: str) -> str:
    p = Path(path)
    if not p.is_file():
        return f"| `{path}` | _missing_ | | | |"
    data = json.loads(p.read_text(encoding="utf-8"))
    cache = data.get("cache", {})
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    ratio = cache.get("hit_ratio")
    ratio_text = f"{ratio:.0%}" if isinstance(ratio, (int, float)) else "n/a"
    extra = []
    if data.get("frontend"):
        extra.append(f"frontend={data['frontend']}")
    if data.get("over_budget"):
        extra.append("**over budget**")
    return (f"| {data.get('tool', path)} | {data.get('wall_seconds', 0):.2f}s "
            f"| {hits} | {misses} | {ratio_text} {' '.join(extra)} |")


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: timing_summary.py report.json...", file=sys.stderr)
        return 2
    print("| tool | wall | cache hits | misses | hit ratio |")
    print("| --- | --- | --- | --- | --- |")
    for path in argv[1:]:
        print(row(path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""emsim semantic determinism analyzer — the third static-analysis tier.

The regex tier (emsim_lint.py) forbids nondeterminism *tokens* wherever they
appear; this tool understands the *determinism contract*: it builds a per-TU
index of function definitions, links them into a cross-TU call graph, and
runs taint-style reachability rules that line regexes structurally cannot
express. A wall-clock read three calls upstream of `result_json` is invisible
to a regex; here it is a finding with the call chain attached.

Rules (ids are what `allow(...)` takes; `--list-rules` prints this catalog):

  determinism-taint    A value source that differs between equal-seed runs —
                       wall/steady clock reads, thread ids, std::hash of a
                       pointer type, pointer-to-integer casts, iteration over
                       an unordered container — inside the export surface.
                       The export surface is: every function defined in a
                       sink file (MergeResult + result_json, stats/accumulator,
                       stats/json_writer, the sweep shard/merge/json_value
                       codec, src/obs/), every function that directly calls
                       one of those, and everything transitively called from
                       either set. Findings carry the call chain from a sink.
  pointer-ordering     sort/set/map/priority_queue/less/greater keyed on a
                       raw pointer value, or a comparator lambda comparing
                       its pointer parameters. Pointer order is ASLR-random
                       and differs across the re-exec'd --sweep-worker
                       processes, so any such ordering is nondeterministic.
                       Checked tree-wide.
  float-reduction-order
                       Parallel aggregation functions (AggregateTrials,
                       RunTrials*/RunSweep*, MergeShardArtifacts and their
                       same-file helpers) must combine trial statistics
                       through the stats::Accumulator Add/Merge/State
                       contract; ad-hoc `+=`/`x = x + ...` on a double makes
                       the result depend on reduction order. src/stats/ is
                       the sanctioned implementation and is exempt.
  coro-ref-capture     AST-precision upgrade of the regex rule: a lambda
                       whose brace-matched body suspends (co_await/co_return)
                       and whose capture list captures by reference, or that
                       reads a by-reference parameter after its first
                       suspension point. Token-level scope analysis — multi-
                       line captures, strings and comments cannot confuse it.
  coro-raw-handle      std::coroutine_handle mentioned outside src/sim/
                       (token-level, so prose in comments never fires).
  no-blocking-in-sim   Host blocking primitives (sleep_for/until, std::mutex
                       family, condition_variable) in a TU that contains
                       coroutine code.
  shared-state-unguarded
                       Mutable shared state with no declared discipline:
                       a function-local `static` that is mutated and
                       reachable from a parallel entry point (ThreadPool::
                       Run/RunTasks/WorkerLoop, RunSweepRange/RunTrials
                       Parallel/RunSweepParallel, RunShardedSweep) and is
                       neither const, std::atomic, once_flag, nor a
                       lock-bearing type; or a data member of a lock-bearing
                       class (one that owns a Mutex) that is neither
                       EMSIM_GUARDED_BY, std::atomic, const, nor a
                       synchronization object itself.
  lock-order-cycle     A cycle in the cross-TU lock-acquisition graph. An
                       edge A -> B is recorded whenever capability B is
                       acquired through an RAII locker (util::MutexLock,
                       lock_guard, unique_lock, scoped_lock, shared_lock —
                       adopt/defer/try tags skipped) while A is held,
                       including acquisitions reached through bounded-depth
                       calls into other functions and TUs. Capability names
                       are qualified by the owning class so `mu_` in two
                       classes stays distinct; a self-edge (re-acquiring a
                       held capability) is a one-node cycle. Each cycle is
                       reported once per capability set.
  lock-held-blocking   A blocking operation while a capability is held:
                       subprocess spawn/wait (fork, Subprocess::Start,
                       waitpid, system, popen), fsync/fdatasync, or
                       sleep_for/sleep_until — directly or through a
                       bounded-depth callee — or a predicate-less
                       condition-variable wait(lock) that is not wrapped in
                       a re-check loop (`while (cond) cv.Wait(lock);` is the
                       sanctioned form).

Frontends. `--frontend libclang` parses each TU with the python libclang
bindings (clang.cindex) against the root compile_commands.json; `--frontend
internal` uses the built-in C++ tokenizer/indexer (no toolchain dependency,
byte-reproducible anywhere — what the fixture tests pin); `auto` prefers
libclang and falls back with a note. Both emit the same IR, so everything
downstream — call graph, rules, cache, reports — is frontend-independent.

Cache. Same shape as run_clang_tidy.py: each TU's extracted IR is stored
content-addressed under --cache-dir, keyed by a SHA-256 over the schema, the
frontend id, the rule configuration, and the *comment-stripped token stream*
of the TU and of every transitively included project header. Editing a
header re-extracts exactly its dependents; editing only comments or
whitespace is a cache hit (the one deliberate consequence: a warm finding
can report a line number from before a comment-only edit shifted lines —
`--no-cache` re-keys everything). Suppressions are resolved at report time
against the current file contents, so adding an `allow(...)` works without
invalidating anything.

A finding is suppressed for one line with a trailing
`// emsim-analyze: allow(<rule-id>)` comment, or with a standalone comment
line directly above the flagged line (for lines that cannot grow a trailing
comment within the 100-column format limit). Comma lists work. Suppressed
findings are recorded in the JSON report so they stay auditable.

Usage:
  tools/lint/emsim_analyze.py --build-dir build [--source-root .]
      [--frontend auto|libclang|internal] [--report out.json]
      [--cache-dir DIR] [--no-cache] [--timing-report out.json]
      [--warm-budget-seconds N] [--advisory] [--list-rules] [--stats]

Exit status: 0 clean, 1 findings (0 with --advisory), 2 usage error,
4 requested frontend unavailable.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
import time
from pathlib import Path

SCHEMA = "2"
LINT_DIRS = ("src", "tools", "bench", "tests", "examples")

# --- Rule configuration ------------------------------------------------------

# Sink files: where byte-exact export artifacts are produced. Functions
# defined here are the taint sinks ("export roots").
EXPORT_SINK_PATTERNS = (
    r"^src/core/result",          # MergeResult + its JSON projection
    r"^src/stats/accumulator",    # the Accumulator::State merge contract
    r"^src/stats/json_writer",
    r"^src/sweep/(shard|merge|json_value)",  # sweep wire codec
    r"^src/obs/",                 # metrics registry exported into MergeResult
)

# Parallel-aggregation functions policed by float-reduction-order, by simple
# name, plus their direct same-file helpers.
AGG_ROOT_NAMES = {
    "AggregateTrials", "AggregateGrid", "RunTrials", "RunTrialsParallel",
    "RunSweep", "RunSweepRange", "RunSweepParallel", "MergeShardArtifacts",
}
# The sanctioned reduction implementation: Welford Add/Merge lives here.
FLOAT_EXEMPT_RE = re.compile(r"^src/stats/")

SIM_KERNEL_RE = re.compile(r"^src/sim/")

WALL_CLOCKS = {"system_clock", "steady_clock", "high_resolution_clock"}
LIBC_CLOCK_CALLS = {"time", "clock", "gettimeofday", "clock_gettime",
                    "localtime", "gmtime"}
THREAD_ID_CALLS = {"pthread_self", "gettid"}
PTR_INT_TYPES = {"uintptr_t", "intptr_t", "size_t", "ptrdiff_t", "uint64_t",
                 "int64_t", "uint32_t", "int32_t", "uintmax_t", "intmax_t"}
ORDERED_TEMPLATES = {"set", "map", "multiset", "multimap", "priority_queue",
                     "less", "greater"}
UNORDERED_TEMPLATES = {"unordered_map", "unordered_set", "unordered_multimap",
                       "unordered_multiset"}
BLOCKING_IDS = {"mutex", "timed_mutex", "recursive_mutex",
                "recursive_timed_mutex", "shared_mutex", "lock_guard",
                "unique_lock", "scoped_lock", "shared_lock",
                "condition_variable", "condition_variable_any"}

# --- Concurrency-rule configuration (capability discipline) ------------------

# Entry points that run caller-supplied work on several threads (or drive the
# multi-process shard dispatcher): every function reachable from one of these
# executes in a parallel context, so mutable statics it touches need a
# declared discipline. Matched against the definition's qualified name by
# whole-name or `::`-suffix.
PARALLEL_ROOTS = (
    "ThreadPool::Run", "ThreadPool::RunTasks", "ThreadPool::WorkerLoop",
    "RunSweepRange", "RunTrialsParallel", "RunSweepParallel",
    "RunShardedSweep",
)

# RAII locker types that acquire a capability for a lexical scope. An
# acquisition through one of these while another capability is held records a
# lock-order edge; constructions carrying adopt/defer/try tags transfer or
# delay ownership and are not acquisitions.
LOCKER_TYPES = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock",
                "shared_lock"}
LOCKER_SKIP_TAGS = {"adopt_lock", "defer_lock", "try_to_lock"}

# Operations that block the calling thread on the host OS (or spawn and wait
# on real processes): forbidden while a capability is held, directly or
# through a bounded-depth callee. Subprocess::Start is the repo's sanctioned
# spawn entry point, matched by qualified call spelling.
BLOCKING_CALLS = {"fsync", "fdatasync", "fork", "system", "popen", "waitpid",
                  "sleep_for", "sleep_until"}
BLOCKING_QUALIFIED = {"Subprocess::Start"}

# Type tokens that exempt a static or a data member from
# shared-state-unguarded: their own synchronization (atomic, once_flag),
# immutability, per-thread storage, or being a synchronization object.
SYNC_TYPE_TOKENS = {"atomic", "atomic_flag", "once_flag", "mutex",
                    "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
                    "shared_mutex", "Mutex", "CondVar", "MutexLock",
                    "condition_variable", "condition_variable_any",
                    "lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
STATIC_EXEMPT_TOKENS = SYNC_TYPE_TOKENS | {"const", "constexpr",
                                           "thread_local"}
# Mutex-owning member types that mark a class as lock-bearing.
CAP_TYPE_TOKENS = {"Mutex", "mutex", "shared_mutex", "timed_mutex",
                   "recursive_mutex", "recursive_timed_mutex"}
# Depth bound for propagating held capabilities into callees (lock-order
# edges and blocking closures). Chains longer than this are out of scope by
# design: every locking path in the tree resolves within two hops.
LOCK_CALL_DEPTH = 3

RULES = {
    "determinism-taint":
        "a run-to-run-varying value source (wall/steady clock, thread id, "
        "pointer hash, pointer-to-int cast, unordered iteration) is on the "
        "export surface — it can reach MergeResult / JSON artifact bytes",
    "pointer-ordering":
        "ordering keyed on raw pointer values (set/map/priority_queue/less/"
        "greater of T*, or a comparator comparing pointer parameters): "
        "pointer order is ASLR-random across --sweep-worker processes",
    "float-reduction-order":
        "parallel aggregation combines doubles ad hoc (+=) instead of "
        "through the stats::Accumulator Add/Merge/State contract; the "
        "result depends on reduction order",
    "coro-ref-capture":
        "lambda coroutine captures by reference or reads a reference "
        "parameter after co_await: the frame outlives the scope, the "
        "reference dangles at resume",
    "coro-raw-handle":
        "std::coroutine_handle outside src/sim/ escapes the frame-pool/"
        "calendar ownership bookkeeping",
    "no-blocking-in-sim":
        "host blocking primitive (sleep/mutex/condvar) in a coroutine TU: "
        "simulated time must come from the calendar",
    "shared-state-unguarded":
        "mutable shared state without a declared discipline: a mutated "
        "function-local static reachable from a parallel entry point, or a "
        "data member of a lock-bearing class that is neither "
        "EMSIM_GUARDED_BY, std::atomic, nor const",
    "lock-order-cycle":
        "cycle in the cross-TU lock-acquisition graph (capability B acquired "
        "while A is held and, elsewhere, A while B — or a held capability "
        "re-acquired): lock-order cycles deadlock under contention",
    "lock-held-blocking":
        "blocking operation (subprocess spawn/wait, fsync, sleep) while a "
        "capability is held — or a condition-variable wait without a "
        "predicate re-check loop: a blocked holder stalls every contending "
        "thread",
}

ALLOW_RE = re.compile(
    r"emsim-analyze:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "alignas",
    "catch", "new", "delete", "co_await", "co_return", "co_yield", "throw",
    "static_assert", "decltype", "noexcept", "case", "default", "do", "else",
    "goto", "try", "using", "typedef", "template", "typename", "operator",
    "static_cast", "const_cast", "dynamic_cast", "reinterpret_cast",
    "requires", "defined", "assert",
}
BUILTIN_TYPES = {
    "void", "bool", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "auto", "size_t", "int8_t", "int16_t", "int32_t",
    "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t", "uintptr_t",
    "intptr_t",
}

# --- Tokenizer ---------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*(?s:.*?)\*/)
    | (?P<raw>R"(?P<delim>[^()\s\\]{0,16})\((?s:.*?)\)(?P=delim)")
    | (?P<str>"(?:[^"\\\n]|\\.)*")
    | (?P<chr>'(?:[^'\\\n]|\\.)*')
    | (?P<num>\.?[0-9](?:[\w.']|[eEpP][+-])*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punct>::|->\*?|\+\+|--|<<=|>>=|<=>|<<|<=|>=|==|!=|&&|\|\||\+=|-=|
                \*=|/=|%=|&=|\|=|\^=|\.\.\.|[^\s])
    """,
    re.VERBOSE)


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.text!r},{self.line})"


def strip_preprocessor(text: str) -> str:
    """Blanks preprocessor directive lines (and their backslash
    continuations), preserving line structure."""
    lines = text.split("\n")
    out = []
    in_directive = False
    for line in lines:
        if in_directive or re.match(r"\s*#", line):
            in_directive = line.rstrip().endswith("\\")
            out.append("")
        else:
            out.append(line)
    return "\n".join(out)


def tokenize(text: str):
    """Token stream with comments dropped and line numbers attached.
    Preprocessor directives are blanked first (include lines are handled by
    the dependency scanner, not the parser)."""
    tokens = []
    line = 1
    pos = 0
    stripped = strip_preprocessor(text)
    for m in _TOKEN_RE.finditer(stripped):
        line += stripped.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup if m.lastgroup != "delim" else "raw"
        if kind == "comment":
            continue
        if kind in ("str", "raw", "chr"):
            tokens.append(Token(kind, '""', line))
        else:
            tokens.append(Token(kind, m.group(0), line))
    return tokens


def token_digest(text: str) -> bytes:
    """Hash of the comment-stripped token stream: the cache key component.
    Comment and whitespace edits do not change it."""
    h = hashlib.sha256()
    for tok in tokenize(text):
        h.update(tok.text.encode("utf-8", "replace"))
        h.update(b"\x00")
    return h.digest()


# --- Internal frontend: file IR extraction ----------------------------------
#
# The IR is plain JSON:
#   {"functions": [{"qname", "name", "file", "line",
#                   "calls": [[full, simple, line], ...],
#                   "facts": [{"rule", "kind", "line", "detail"}, ...]}],
#    "file_facts": [{"rule", "kind", "line", "detail"}, ...],
#    "is_coro": bool}

_NAME_STOP = KEYWORDS | {"return", "else"}


class FileParser:
    def __init__(self, relpath: str, text: str):
        self.rel = relpath
        self.toks = tokenize(text)
        self.functions = []
        self.file_facts = []
        self.classes = []
        self.clock_aliases = set()
        self.unordered_names = set()   # names declared with unordered_* types
        self.is_coro = False

    # -- helpers ------------------------------------------------------------

    def _match_forward(self, i, open_text, close_text):
        """Index just past the token matching toks[i] (an open bracket)."""
        depth = 0
        n = len(self.toks)
        while i < n:
            t = self.toks[i].text
            if t == open_text:
                depth += 1
            elif t == close_text:
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return n

    def _match_angle(self, i):
        """Index just past the `>` matching toks[i] == '<'. Conservative:
        gives up (returns i+1) when the bracket soup cannot be balanced."""
        depth = 0
        n = len(self.toks)
        j = i
        while j < n and j < i + 400:
            t = self.toks[j].text
            if t == "<":
                depth += 1
            elif t == ">" or t == ">>":
                depth -= 2 if t == ">>" else 1
                if depth <= 0:
                    return j + 1
            elif t in (";", "{", "}"):
                break
            j += 1
        return i + 1

    def fact(self, rule, kind, tok_idx, detail, fn=None):
        # Facts anchor to a token index, not a line: token indices are stable
        # across the comment/whitespace edits the cache deliberately survives,
        # so cached facts can be remapped to current line numbers at report
        # time (see remap_lines).
        entry = {"rule": rule, "kind": kind, "tok": tok_idx,
                 "line": self.toks[tok_idx].line, "detail": detail}
        if fn is not None:
            fn["facts"].append(entry)
        else:
            self.file_facts.append(entry)
        return entry

    def _skip_annotation(self, j):
        """Index past an EMSIM_* capability-annotation macro (and its
        optional argument list) at toks[j], or j unchanged."""
        toks = self.toks
        if j < len(toks) and toks[j].kind == "id" \
                and toks[j].text.startswith("EMSIM_"):
            j += 1
            if j < len(toks) and toks[j].text == "(":
                j = self._match_forward(j, "(", ")")
        return j

    # -- file-level scans ----------------------------------------------------

    def scan_file_level(self):
        toks = self.toks
        n = len(toks)
        for i, tok in enumerate(toks):
            text = tok.text
            if text in ("co_await", "co_return", "co_yield"):
                self.is_coro = True
            elif text == "coroutine_handle":
                self.fact("coro-raw-handle", "raw-handle", i,
                          "std::coroutine_handle")
            elif text == "using" and i + 2 < n and toks[i + 1].kind == "id" \
                    and toks[i + 2].text == "=":
                j = i + 3
                rhs = []
                while j < n and toks[j].text != ";":
                    rhs.append(toks[j].text)
                    j += 1
                if WALL_CLOCKS & set(rhs):
                    self.clock_aliases.add(toks[i + 1].text)
            elif text in ORDERED_TEMPLATES and i + 1 < n \
                    and toks[i + 1].text == "<":
                end = self._match_angle(i + 1)
                self._check_pointer_key(i, i + 2, end - 1)
            elif text in UNORDERED_TEMPLATES and i + 1 < n \
                    and toks[i + 1].text == "<":
                end = self._match_angle(i + 1)
                if end < n and toks[end].kind == "id":
                    self.unordered_names.add(toks[end].text)

    def _check_pointer_key(self, tmpl_idx, arg_begin, arg_end):
        """Flags `set<T*>` / `map<T*, ...>` / `less<T*>`: a `*` in the first
        template argument (depth 0 relative to the outer `<`)."""
        depth = 0
        saw_star = False
        for j in range(arg_begin, arg_end):
            t = self.toks[j].text
            if t in ("<", "("):
                depth += 1
            elif t in (">", ")"):
                depth -= 1
            elif depth == 0 and t == ",":
                break
            elif depth == 0 and t == "*":
                saw_star = True
        if saw_star:
            tok = self.toks[tmpl_idx]
            self.fact("pointer-ordering", "pointer-key", tmpl_idx,
                      f"std::{tok.text} keyed on a raw pointer type")

    # -- function discovery --------------------------------------------------

    def parse(self):
        self.scan_file_level()
        toks = self.toks
        n = len(toks)
        i = 0
        depth = 0
        scopes = []      # (kind, name, depth-after-open)
        pending = None   # scope waiting for its '{'
        while i < n:
            tok = toks[i]
            text = tok.text
            if text == "{":
                depth += 1
                if pending is not None:
                    scopes.append((pending[0], pending[1], depth))
                    pending = None
                i += 1
                continue
            if text == "}":
                if scopes and scopes[-1][2] == depth:
                    scopes.pop()
                depth = max(0, depth - 1)
                i += 1
                continue
            if text == ";":
                pending = None
                i += 1
                continue
            if text == "namespace":
                parts = []
                j = i + 1
                while j < n and (toks[j].kind == "id" or toks[j].text == "::"):
                    if toks[j].kind == "id":
                        parts.append(toks[j].text)
                    j += 1
                if j < n and toks[j].text == "{":
                    pending = ("namespace", "::".join(parts) or "<anon>")
                    i = j
                    continue
                i = j
                continue
            if text in ("class", "struct") and (i == 0 or
                                                toks[i - 1].text != "enum"):
                j = i + 1
                name = "<anon>"
                while j < n and toks[j].kind == "id":
                    # Capability annotations sit between the keyword and the
                    # name: `class EMSIM_CAPABILITY("mutex") Mutex {`.
                    if toks[j].text.startswith("EMSIM_") \
                            or toks[j].text == "alignas":
                        j += 1
                        if j < n and toks[j].text == "(":
                            j = self._match_forward(j, "(", ")")
                        continue
                    name = toks[j].text
                    j += 1
                    if j < n and toks[j].text == "<":
                        j = self._match_angle(j)
                # Definition if a '{' arrives before ';', '=', or '('.
                k = j
                while k < n and toks[k].text not in ("{", ";", "=", "("):
                    k += 1
                if k < n and toks[k].text == "{":
                    pending = ("class", name)
                    i = k
                    continue
                i = j
                continue
            if text == "(" and i > 0:
                consumed = self._try_function(i, scopes)
                if consumed is not None:
                    i = consumed
                    continue
            i += 1

    def _name_before(self, i):
        """Collects the (possibly qualified) name ending at toks[i-1];
        returns (parts, first_index) or (None, None)."""
        k = i - 1
        parts = []
        if k >= 0 and self.toks[k].kind == "id":
            parts.insert(0, self.toks[k].text)
            k -= 1
            while k - 1 >= 0 and self.toks[k].text == "::" \
                    and self.toks[k - 1].kind == "id":
                parts.insert(0, self.toks[k - 1].text)
                k -= 2
        if not parts:
            return None, None
        return parts, k + 1

    def _try_function(self, i, scopes):
        """toks[i] == '(' at namespace/class scope: if this opens a function
        definition, record it, scan the body, and return the index just past
        the body; otherwise None."""
        toks = self.toks
        n = len(toks)
        parts, first = self._name_before(i)
        if parts is None or parts[-1] in _NAME_STOP:
            return None
        if parts[-1] in BUILTIN_TYPES:
            return None
        prev = toks[first - 1].text if first - 1 >= 0 else ""
        if prev in (".", "->", "new", "::"):
            return None
        close = self._match_forward(i, "(", ")")
        if close >= n:
            return None
        body_open = self._skip_to_body(close)
        if body_open is None:
            return None
        body_end = self._match_forward(body_open, "{", "}")
        scope_name = "::".join(s[1] for s in scopes if s[1] != "<anon>")
        qname = "::".join(parts) if not scope_name else \
            scope_name + "::" + "::".join(parts)
        fn = {
            "qname": qname,
            "name": parts[-1],
            "file": self.rel,
            "line": toks[first].line,
            "tok": first,
            "calls": [],
            "facts": [],
            "locked_calls": [],   # calls made while a capability is held
            "blocking": [],       # blocking ops anywhere in the body
        }
        params = toks[i + 1:close - 1]
        self._scan_body(fn, params, body_open + 1, body_end - 1)
        self.functions.append(fn)
        return body_end

    def _skip_to_body(self, i):
        """From just past the parameter ')': skips qualifiers, trailing
        return types, and constructor initializers. Returns the index of the
        body '{', or None for a declaration."""
        toks = self.toks
        n = len(toks)
        seen_colon = False
        while i < n:
            text = toks[i].text
            if text == "{":
                return i
            if text in (";", "}", "="):
                return None  # declaration, `= default`, `= 0`, ...
            if text in ("const", "noexcept", "override", "final", "mutable",
                        "&", "&&", "try", "volatile", "requires"):
                i += 1
                if i < n and toks[i].text == "(":  # noexcept(...)
                    i = self._match_forward(i, "(", ")")
                continue
            if toks[i].kind == "id" and text.startswith("EMSIM_"):
                # Capability annotations after the parameter list:
                # `void Lock() EMSIM_ACQUIRE() { ... }`.
                i = self._skip_annotation(i)
                continue
            if text == "->":
                i += 1
                # Trailing return type: id / :: / template args / * / &.
                while i < n and toks[i].text not in ("{", ";", "="):
                    if toks[i].text == "<":
                        i = self._match_angle(i)
                    else:
                        i += 1
                continue
            if text == ":":
                seen_colon = True
                i += 1
                continue
            if seen_colon:
                # Constructor initializer list: name ( ... ) / name { ... }.
                if text == "(":
                    i = self._match_forward(i, "(", ")")
                elif text == "<":
                    i = self._match_angle(i)
                else:
                    i += 1
                continue
            return None
        return None

    # -- body analysis -------------------------------------------------------

    def _param_names(self, params, type_filter=None):
        """Names declared in a parameter token list. With type_filter, only
        parameters whose type tokens intersect the filter set."""
        names = []
        depth = 0
        group = []
        groups = [group]
        for tok in params:
            if tok.text in ("<", "(", "["):
                depth += 1
            elif tok.text in (">", ")", "]"):
                depth -= 1
            elif tok.text == "," and depth == 0:
                group = []
                groups.append(group)
                continue
            group.append(tok)
        for group in groups:
            ids = [t.text for t in group if t.kind == "id"]
            if len(ids) < 2:
                continue  # unnamed parameter or no type
            if type_filter is not None and not (set(ids[:-1]) & type_filter):
                continue
            names.append(ids[-1])
        return names

    def _ref_param_names(self, params):
        """Parameter names declared by reference (T& name / T&& name)."""
        names = []
        depth = 0
        saw_ref = False
        last_id = None
        for tok in params:
            if tok.text in ("<", "(", "["):
                depth += 1
            elif tok.text in (">", ")", "]"):
                depth -= 1
            elif tok.text == "," and depth == 0:
                if saw_ref and last_id is not None:
                    names.append(last_id)
                saw_ref = False
                last_id = None
                continue
            if depth == 0 and tok.text in ("&", "&&"):
                saw_ref = True
            if depth == 0 and tok.kind == "id":
                last_id = tok.text
        if saw_ref and last_id is not None:
            names.append(last_id)
        return names

    def _loop_context(self, begin, end):
        """(loop_brace_idxs, single_stmt_ranges) for while/for/do bodies in
        [begin, end): which '{' tokens open a loop body, and which token
        ranges form un-braced single-statement loop bodies. Used to accept
        `while (cond) cv.Wait(lock);` as a predicate re-check loop."""
        toks = self.toks
        braces = set()
        ranges = []
        i = begin
        while i < end:
            text = toks[i].text
            if text == "do" and i + 1 < end and toks[i + 1].text == "{":
                braces.add(i + 1)
            elif text in ("while", "for") and i + 1 < end \
                    and toks[i + 1].text == "(":
                close = self._match_forward(i + 1, "(", ")")
                if close < end and toks[close].text == "{":
                    braces.add(close)
                elif close < end:
                    j = close
                    while j < end and toks[j].text != ";":
                        j += 1
                    ranges.append((close, j))
            i += 1
        return braces, ranges

    ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                  "<<=", ">>=", "++", "--"}

    def _is_mutated(self, name, begin, end, decl_begin, decl_end):
        """True when `name` is written (assignment, ++/--, address taken)
        anywhere in [begin, end) outside its declaration."""
        toks = self.toks
        for w in range(begin, end):
            if decl_begin <= w <= decl_end:
                continue
            if toks[w].kind != "id" or toks[w].text != name:
                continue
            prev = toks[w - 1].text if w - 1 >= begin else ""
            if prev in (".", "->", "::"):
                continue  # member access named like the static
            nxt = toks[w + 1].text if w + 1 < end else ""
            if nxt in self.ASSIGN_OPS or prev in ("++", "--", "&"):
                return True
        return False

    def _scan_body(self, fn, params, begin, end):
        toks = self.toks
        float_vars = set(self._param_names(params, {"double", "float"}))
        unordered_local = set(self.unordered_names)
        loop_braces, loop_stmt_ranges = self._loop_context(begin, end)
        depth = 0
        loop_depths = []
        lock_stack = []     # (capability name, brace depth at declaration)
        lambda_braces = set()
        barrier_depths = []  # depths of lambda bodies: outer locks are not
                             # held inside (the body usually runs deferred)

        def held_caps():
            floor = barrier_depths[-1] if barrier_depths else 0
            return [c for c, d in lock_stack if d >= floor]

        i = begin
        while i < end:
            tok = toks[i]
            text = tok.text

            if text == "{":
                depth += 1
                if i in loop_braces:
                    loop_depths.append(depth)
                if i in lambda_braces:
                    barrier_depths.append(depth)
                i += 1
                continue
            if text == "}":
                while lock_stack and lock_stack[-1][1] >= depth:
                    lock_stack.pop()
                if loop_depths and loop_depths[-1] == depth:
                    loop_depths.pop()
                if barrier_depths and barrier_depths[-1] == depth:
                    barrier_depths.pop()
                depth = max(0, depth - 1)
                i += 1
                continue

            # RAII capability acquisition: `util::MutexLock lock(&mu_);`,
            # `std::lock_guard<std::mutex> lk(mu);`. adopt/defer/try tags
            # transfer or delay ownership — not acquisitions.
            if tok.kind == "id" and text in LOCKER_TYPES:
                j = i + 1
                if j < end and toks[j].text == "<":
                    j = self._match_angle(j)
                if j < end and toks[j].kind == "id" and j + 1 < end \
                        and toks[j + 1].text == "(":
                    close = self._match_forward(j + 1, "(", ")")
                    args = toks[j + 2:close - 1]
                    arg_ids = {t.text for t in args if t.kind == "id"}
                    if not (arg_ids & LOCKER_SKIP_TAGS):
                        caps = self._locker_caps(args)
                        for cap in caps:
                            entry = self.fact(
                                "lock-order-cycle", "acquire", i, cap, fn)
                            entry["cap"] = cap
                            entry["held"] = held_caps()
                            lock_stack.append((cap, depth))
                        if caps:
                            i = close
                            continue

            # Blocking call while a capability is held (every blocking op is
            # also recorded for the bounded-depth transitive closure).
            if tok.kind == "id" and text in BLOCKING_CALLS and i + 1 < end \
                    and toks[i + 1].text == "(":
                fn["blocking"].append(text)
                held = held_caps()
                if held:
                    entry = self.fact(
                        "lock-held-blocking", "blocking", i,
                        f"blocking `{text}()` while holding "
                        f"`{held[-1]}`", fn)
                    entry["held"] = held

            # Predicate-less condition-variable wait while a capability is
            # held must sit inside a re-check loop: a bare wait wakes
            # spuriously and proceeds on a false condition.
            if text in ("wait", "Wait") and held_caps() and i > 0 \
                    and toks[i - 1].text in (".", "->") and i + 1 < end \
                    and toks[i + 1].text == "(":
                close = self._match_forward(i + 1, "(", ")")
                if not self._wait_has_predicate(i + 2, close - 1):
                    in_loop = bool(loop_depths) or any(
                        s <= i < e for s, e in loop_stmt_ranges)
                    if not in_loop:
                        held = held_caps()
                        entry = self.fact(
                            "lock-held-blocking", "cv-wait-no-predicate", i,
                            f"`{text}(lock)` with no predicate and no "
                            f"re-check loop while holding "
                            f"`{held[-1]}`", fn)
                        entry["held"] = held

            # Function-local static: shared by every thread running this
            # function. Recorded with its declaration tokens; exemption and
            # reachability are decided cross-TU at analyze time.
            if text == "static" and i + 1 < end:
                j = i + 1
                decl = []
                while j < end and toks[j].text not in (";", "=", "(", "{") \
                        and len(decl) < 14:
                    decl.append(toks[j])
                    j += 1
                names = [t for t in decl if t.kind == "id"
                         and t.text not in KEYWORDS]
                if names and (j >= end or toks[j].text != "("):
                    name = names[-1].text
                    entry = self.fact(
                        "shared-state-unguarded", "local-static", i,
                        f"function-local `static {name}`", fn)
                    entry["static_name"] = name
                    entry["types"] = [t.text for t in decl
                                      if t.text != name]
                    entry["mutated"] = self._is_mutated(name, begin, end,
                                                        i, j)

            # Lambda introducer? The body keeps getting scanned by this walk;
            # registering its opening brace suspends the outer lock stack
            # inside (the body typically runs deferred, not under the lock).
            if text == "[" and self._is_lambda_intro(i):
                body_open = self._scan_lambda(fn, i, end)
                if body_open is not None:
                    lambda_braces.add(body_open)

            # Declarations that matter: double/float locals; unordered vars
            # are collected file-wide in scan_file_level.
            if text in ("double", "float") and i + 1 < end \
                    and toks[i + 1].kind == "id" and i > 0 \
                    and toks[i - 1].text not in ("<", ",", "(", "::"):
                nxt = toks[i + 2].text if i + 2 < end else ""
                if nxt in ("=", ";", "{", ","):
                    float_vars.add(toks[i + 1].text)

            # Compound float accumulation (rule 3 raw material).
            if tok.kind == "id" and text in float_vars and i + 1 < end \
                    and toks[i + 1].text in ("+=", "-=", "*=", "/="):
                self.fact("float-reduction-order", "compound-assign", i,
                          f"`{text} {toks[i + 1].text}` on a floating-point "
                          "accumulator", fn)
            if tok.kind == "id" and text in float_vars and i + 3 < end \
                    and toks[i + 1].text == "=" and toks[i + 2].text == text \
                    and toks[i + 3].text in ("+", "-", "*", "/"):
                self.fact("float-reduction-order", "reassign", i,
                          f"`{text} = {text} {toks[i + 3].text} ...` on a "
                          "floating-point accumulator", fn)

            # Range-for over an unordered container.
            if text == "for" and i + 1 < end and toks[i + 1].text == "(":
                close = self._match_forward(i + 1, "(", ")")
                inner = toks[i + 2:close - 1]
                for k, t in enumerate(inner):
                    if t.text == ":" and k + 1 < len(inner) \
                            and inner[k + 1].kind == "id" \
                            and inner[k + 1].text in unordered_local:
                        self.fact("determinism-taint", "unordered-iter",
                                  i + 2 + k,
                                  f"iteration over unordered container "
                                  f"`{inner[k + 1].text}`", fn)
                        break

            # std::hash<T*>.
            if text == "hash" and i + 1 < end and toks[i + 1].text == "<":
                h_end = self._match_angle(i + 1)
                if any(t.text == "*" for t in toks[i + 2:h_end - 1]):
                    self.fact("determinism-taint", "pointer-hash", i,
                              "std::hash of a pointer type", fn)

            # reinterpret_cast<integer>(...) — pointer bits as a value.
            if text == "reinterpret_cast" and i + 1 < end \
                    and toks[i + 1].text == "<":
                c_end = self._match_angle(i + 1)
                args = {t.text for t in toks[i + 2:c_end - 1]}
                if args & PTR_INT_TYPES and "*" not in args:
                    self.fact("determinism-taint", "pointer-to-int", i,
                              "reinterpret_cast of pointer bits to an "
                              "integer", fn)

            # Blocking primitives (for no-blocking-in-sim).
            if tok.kind == "id" and text in BLOCKING_IDS and i >= 2 \
                    and toks[i - 1].text == "::" and toks[i - 2].text == "std":
                self.fact("no-blocking-in-sim", "blocking", i,
                          f"std::{text}", fn)
            if text in ("sleep_for", "sleep_until") and i >= 2 \
                    and toks[i - 1].text == "::" \
                    and toks[i - 2].text == "this_thread":
                self.fact("no-blocking-in-sim", "blocking", i,
                          f"std::this_thread::{text}", fn)

            # Calls.
            if tok.kind == "id" and i + 1 < end and toks[i + 1].text == "(":
                self._record_call(fn, i, held=held_caps())
            i += 1

    def _locker_caps(self, args):
        """Capability names acquired by an RAII locker's argument list: the
        last id of each top-level comma group (`&mu_` -> mu_; scoped_lock
        may take several), skipping `this`."""
        caps = []
        depth = 0
        last_id = None
        for t in args:
            if t.text in ("<", "(", "["):
                depth += 1
            elif t.text in (">", ")", "]"):
                depth -= 1
            elif t.text == "," and depth == 0:
                if last_id is not None:
                    caps.append(last_id)
                last_id = None
                continue
            if depth == 0 and t.kind == "id" and t.text != "this":
                last_id = t.text
        if last_id is not None:
            caps.append(last_id)
        return caps

    def _wait_has_predicate(self, begin, end):
        """True when a cv wait's argument list carries a predicate: a second
        top-level argument or a lambda."""
        depth = 0
        for j in range(begin, end):
            t = self.toks[j].text
            if t in ("(", "<"):
                depth += 1
            elif t in (")", ">"):
                depth -= 1
            elif t == "[":
                return True  # predicate lambda (subscripts: fail open)
            elif t == "," and depth == 0:
                return True
        return False

    def _record_call(self, fn, i, held=()):
        toks = self.toks
        parts, first = self._name_before(i + 1)
        if parts is None:
            return
        simple = parts[-1]
        if simple in KEYWORDS or simple in BUILTIN_TYPES:
            return
        full = "::".join(parts)
        fn["calls"].append([full, simple, toks[i].line])
        if held:
            fn["locked_calls"].append({"full": full, "simple": simple,
                                       "tok": i, "line": toks[i].line,
                                       "held": list(held)})
        for q in BLOCKING_QUALIFIED:
            if full == q or full.endswith("::" + q):
                fn["blocking"].append(full)
        # Determinism sources expressed as calls.
        part_set = set(parts)
        if simple == "now" and (part_set & WALL_CLOCKS
                                or part_set & self.clock_aliases):
            self.fact("determinism-taint", "wall-clock", i,
                      f"`{full}()` — wall/steady clock read", fn)
        elif simple == "get_id" and "this_thread" in part_set:
            self.fact("determinism-taint", "thread-id", i,
                      f"`{full}()` — thread identity", fn)
        elif simple in THREAD_ID_CALLS and len(parts) == 1:
            self.fact("determinism-taint", "thread-id", i,
                      f"`{simple}()` — thread identity", fn)
        elif simple in LIBC_CLOCK_CALLS and len(parts) <= 2 \
                and (len(parts) == 1 or parts[0] == "std"):
            prev = toks[first - 1].text if first - 1 >= 0 else ""
            if prev not in (".", "->"):
                self.fact("determinism-taint", "wall-clock", i,
                          f"`{full}()` — libc wall-clock read", fn)

    # -- lambdas -------------------------------------------------------------

    def _is_lambda_intro(self, i):
        if i + 1 < len(self.toks) and self.toks[i + 1].text == "[":
            return False  # [[attribute]]
        prev = self.toks[i - 1] if i > 0 else None
        if prev is None:
            return True
        if prev.kind in ("id", "num") or prev.text in (")", "]"):
            return False  # subscript
        return True

    def _scan_lambda(self, fn, i, end):
        toks = self.toks
        cap_end = self._match_forward(i, "[", "]")
        if cap_end >= end:
            return None
        captures = toks[i + 1:cap_end - 1]
        j = cap_end
        params = []
        if j < end and toks[j].text == "(":
            p_end = self._match_forward(j, "(", ")")
            params = toks[j + 1:p_end - 1]
            j = p_end
        # Skip specifiers / trailing return type up to the body.
        guard = 0
        while j < end and toks[j].text != "{" and guard < 40:
            if toks[j].text in (";", ")", "}", ","):
                return None  # not a lambda after all
            if toks[j].text == "<":
                j = self._match_angle(j)
            else:
                j += 1
            guard += 1
        if j >= end or toks[j].text != "{":
            return None
        body_end = self._match_forward(j, "{", "}")
        body = toks[j + 1:body_end - 1]
        suspend_at = next((k for k, t in enumerate(body)
                           if t.text in ("co_await", "co_return", "co_yield")),
                          None)
        if suspend_at is not None:
            if any(t.text in ("&", "&&") for t in captures):
                self.fact("coro-ref-capture", "ref-capture", i,
                          "lambda coroutine captures by reference", fn)
            else:
                ref_params = set(self._ref_param_names(params))
                for k, t in enumerate(body):
                    if k > suspend_at and t.kind == "id" \
                            and t.text in ref_params:
                        self.fact("coro-ref-capture", "ref-param-after-await",
                                  j + 1 + k,
                                  f"reference parameter `{t.text}` read "
                                  "after a suspension point", fn)
                        break
            # Pointer-comparator check is pointless for coroutines; done.
            return j  # body-open index; body still scanned by the caller
        # Comparator lambda over pointer parameters: (T* a, T* b) { a < b }.
        ptr_params = self._pointer_param_names(params)
        if len(ptr_params) >= 2:
            for k, t in enumerate(body):
                if t.kind == "id" and t.text in ptr_params \
                        and k + 2 < len(body) \
                        and body[k + 1].text in ("<", ">", "<=", ">=") \
                        and body[k + 2].kind == "id" \
                        and body[k + 2].text in ptr_params:
                    self.fact("pointer-ordering", "pointer-comparator",
                              j + 1 + k,
                              f"comparator orders pointer parameters "
                              f"`{t.text}` and `{body[k + 2].text}`", fn)
                    break
        return j

    def _pointer_param_names(self, params):
        names = set()
        depth = 0
        group = []
        groups = [group]
        for tok in params:
            if tok.text in ("<", "(", "["):
                depth += 1
            elif tok.text in (">", ")", "]"):
                depth -= 1
            elif tok.text == "," and depth == 0:
                group = []
                groups.append(group)
                continue
            group.append(tok)
        for group in groups:
            ids = [t.text for t in group if t.kind == "id"]
            if len(ids) >= 2 and any(t.text == "*" for t in group):
                names.add(ids[-1])
        return names

    # -- class-member scan (capability discipline) ---------------------------

    CLASS_SKIP_STMT = {"public", "private", "protected", "using", "typedef",
                       "friend", "template", "enum", "class", "struct",
                       "static_assert"}

    def scan_classes(self):
        """Collects every class/struct definition's data members with their
        EMSIM_GUARDED_BY status, for the shared-state-unguarded rule. The
        linear scan visits nested classes on its own."""
        toks = self.toks
        for i in range(len(toks)):
            if toks[i].text not in ("class", "struct"):
                continue
            # `enum class`, `template <class T, class U>`: not definitions.
            if i > 0 and toks[i - 1].text in ("enum", "<", ","):
                continue
            header = self._class_header(i)
            if header is not None:
                self._scan_class_body(header[0], i, header[1])

    def _class_header(self, i):
        """(name, body_open_index) when toks[i] ('class'/'struct') opens a
        definition; None for forward declarations, variables of elaborated
        type, and template parameters."""
        toks = self.toks
        n = len(toks)
        j = i + 1
        name = None
        while j < n and toks[j].kind == "id":
            if toks[j].text.startswith("EMSIM_") or toks[j].text == "alignas":
                j += 1
                if j < n and toks[j].text == "(":
                    j = self._match_forward(j, "(", ")")
                continue
            if toks[j].text == "final":
                j += 1
                continue
            name = toks[j].text
            j += 1
            if j < n and toks[j].text == "<":
                j = self._match_angle(j)
        if name is None:
            return None
        k = j
        while k < n and toks[k].text not in ("{", ";", "=", "("):
            k += 1
        if k < n and toks[k].text == "{":
            return name, k
        return None

    @staticmethod
    def _stmt_is_function(stmt):
        """A class-body statement is a function declaration when its first
        top-level '(' follows a plain identifier (annotation macros are not
        function names) with no '=' before it."""
        for k, (tok, _idx) in enumerate(stmt):
            if tok.text == "=":
                return False
            if tok.text == "(":
                return k > 0 and stmt[k - 1][0].kind == "id" \
                    and not stmt[k - 1][0].text.startswith("EMSIM_")
        return False

    MEMBER_EXEMPT_TOKENS = SYNC_TYPE_TOKENS | {"const", "constexpr"}

    def _scan_class_body(self, cls_name, cls_tok, body_open):
        toks = self.toks
        body_end = self._match_forward(body_open, "{", "}")
        members = []
        has_cap = False

        def classify(stmt):
            nonlocal has_cap
            while len(stmt) >= 2 \
                    and stmt[0][0].text in ("public", "private", "protected") \
                    and stmt[1][0].text == ":":
                stmt = stmt[2:]
            if not stmt:
                return
            texts = [t.text for t, _idx in stmt]
            if texts[0] in self.CLASS_SKIP_STMT or "operator" in texts:
                return
            if self._stmt_is_function(stmt):
                return
            guarded = any(t in ("EMSIM_GUARDED_BY", "EMSIM_PT_GUARDED_BY")
                          for t in texts)
            name_pos = None
            for k, (tok, _idx) in enumerate(stmt):
                if tok.text == "=" or tok.text.startswith("EMSIM_"):
                    break
                if tok.kind == "id" and tok.text not in KEYWORDS:
                    name_pos = k
            if name_pos is None:
                return
            name_tok, name_idx = stmt[name_pos]
            type_texts = {t.text for t, _idx in stmt[:name_pos]}
            if type_texts & CAP_TYPE_TOKENS:
                has_cap = True
            members.append({
                "name": name_tok.text, "tok": name_idx,
                "line": name_tok.line, "guarded": guarded,
                "exempt": bool(type_texts & self.MEMBER_EXEMPT_TOKENS),
            })

        stmt = []
        i = body_open + 1
        while i < body_end - 1:
            text = toks[i].text
            if text == ";":
                classify(stmt)
                stmt = []
                i += 1
                continue
            if text == "{":
                end = self._match_forward(i, "{", "}")
                if self._stmt_is_function(stmt) or \
                        (stmt and stmt[0][0].text in ("class", "struct",
                                                      "enum")):
                    stmt = []          # body consumed; nested classes get
                    i = end            # their own scan_classes visit
                    continue
                i = end                # default member initializer `x{3}`
                continue
            if text == "(":
                stmt.append((toks[i], i))
                i = self._match_forward(i, "(", ")")
                continue
            if text == "<" and stmt and stmt[-1][0].kind == "id":
                i = self._match_angle(i)
                continue
            stmt.append((toks[i], i))
            i += 1
        classify(stmt)

        if members:
            self.classes.append({
                "name": cls_name, "tok": cls_tok,
                "line": toks[cls_tok].line, "has_cap": has_cap,
                "members": members,
            })

    def ir(self):
        self.parse()
        self.scan_classes()
        return {
            "functions": self.functions,
            "file_facts": self.file_facts,
            "classes": self.classes,
            "is_coro": self.is_coro,
        }


def extract_file_internal(relpath: str, text: str) -> dict:
    return FileParser(relpath, text).ir()


# --- libclang frontend -------------------------------------------------------

class LibclangFrontend:
    """Parses each TU with clang.cindex and lowers the AST into the same IR
    the internal frontend produces. Requires the `libclang` wheel (CI pins
    it); `available()` gates use."""

    name = "libclang"

    def __init__(self):
        import clang.cindex as cindex  # noqa: deferred import
        self.cindex = cindex
        self.index = cindex.Index.create()

    @staticmethod
    def available():
        try:
            import clang.cindex as cindex
            cindex.Index.create()
            return True
        except Exception:  # ImportError or missing libclang.so
            return False

    def version(self):
        try:
            return self.cindex.conf.lib.clang_getClangVersion()
        except Exception:
            return "libclang"

    def tu_ir(self, tu_path: Path, command: str, root: Path) -> dict:
        cindex = self.cindex
        args = [a for a in command.split()[1:]
                if not a.endswith((".cc", ".cpp", ".o")) and a != "-c"
                and a != "-o"]
        tu = self.index.parse(str(tu_path), args=args)
        files: dict = {}

        def rel_of(location):
            if location.file is None:
                return None
            try:
                return Path(str(location.file)).resolve() \
                    .relative_to(root).as_posix()
            except ValueError:
                return None

        def file_ir(rel):
            return files.setdefault(
                rel, {"functions": [], "file_facts": [], "classes": [],
                      "is_coro": False})

        def qname(cursor):
            parts = []
            c = cursor
            while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
                if c.spelling:
                    parts.insert(0, c.spelling)
                c = c.semantic_parent
            return "::".join(parts)

        fn_kinds = {
            cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
            cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR,
            cindex.CursorKind.FUNCTION_TEMPLATE,
        }

        def lower_function(cursor, rel):
            fn = {
                "qname": qname(cursor), "name": cursor.spelling,
                "file": rel, "line": cursor.location.line,
                "calls": [], "facts": [],
            }

            def add_fact(rule, kind, line, detail):
                fn["facts"].append({"rule": rule, "kind": kind,
                                    "line": line, "detail": detail})

            def walk(node):
                k = node.kind
                if k == cindex.CursorKind.CALL_EXPR:
                    ref = node.referenced
                    callee = qname(ref) if ref is not None else node.spelling
                    simple = (ref.spelling if ref is not None
                              else node.spelling) or ""
                    if simple:
                        fn["calls"].append(
                            [callee or simple, simple, node.location.line])
                        if simple == "now" and any(
                                c in (callee or "") for c in WALL_CLOCKS):
                            add_fact("determinism-taint", "wall-clock",
                                     node.location.line,
                                     f"`{callee}()` — wall/steady clock read")
                        elif simple == "get_id" and "this_thread" in \
                                (callee or ""):
                            add_fact("determinism-taint", "thread-id",
                                     node.location.line,
                                     f"`{callee}()` — thread identity")
                elif k == cindex.CursorKind.CXX_REINTERPRET_CAST_EXPR:
                    operands = list(node.get_children())
                    if "*" not in node.type.spelling and operands and \
                            "*" in operands[-1].type.spelling:
                        add_fact("determinism-taint", "pointer-to-int",
                                 node.location.line,
                                 "reinterpret_cast of pointer bits to an "
                                 "integer")
                elif k == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                    children = list(node.get_children())
                    if len(children) >= 2 and \
                            "unordered_" in children[-2].type.spelling:
                        add_fact("determinism-taint", "unordered-iter",
                                 node.location.line,
                                 "iteration over an unordered container")
                for child in node.get_children():
                    walk(child)

            for child in cursor.get_children():
                walk(child)
            return fn

        def top(node):
            rel = rel_of(node.location)
            if node.kind in fn_kinds and node.is_definition() \
                    and rel is not None:
                file_ir(rel)["functions"].append(lower_function(node, rel))
                return
            for child in node.get_children():
                top(child)

        top(tu.cursor)

        # Token-level facts the cursor walk does not model (type decls,
        # coroutine markers, class members, RAII lock scopes) come from the
        # shared internal scanners, applied per file, so both frontends agree
        # on them exactly.
        lock_rules = ("shared-state-unguarded", "lock-order-cycle",
                      "lock-held-blocking")
        for rel in list(files) + [p for p in (rel_of_path(tu_path, root),)
                                  if p is not None and p not in files]:
            try:
                text = (root / rel).read_text(encoding="utf-8",
                                              errors="replace")
            except OSError:
                continue
            internal = FileParser(rel, text).ir()
            ir = file_ir(rel)
            ir["file_facts"] = internal["file_facts"]
            ir["is_coro"] = internal["is_coro"]
            ir["classes"] = internal["classes"]
            # Graft the internal frontend's lock-discipline payload onto the
            # cursor-walk functions. Matching (line, qname) definitions merge
            # in place; lock-relevant functions the cursor walk spelled
            # differently are prepended stripped to lock facts only, so
            # Program's first-wins dedup cannot shadow libclang's own facts
            # and no finding is ever emitted twice.
            by_key = {(fn["line"], fn["qname"]): fn
                      for fn in ir["functions"]}
            extra = []
            for fn in internal["functions"]:
                lock_facts = [f for f in fn["facts"]
                              if f["rule"] in lock_rules]
                if not (lock_facts or fn["locked_calls"] or fn["blocking"]):
                    continue
                target = by_key.get((fn["line"], fn["qname"]))
                if target is not None:
                    target["facts"].extend(lock_facts)
                    target.setdefault("locked_calls",
                                      []).extend(fn["locked_calls"])
                    target.setdefault("blocking", []).extend(fn["blocking"])
                else:
                    fn = dict(fn)
                    fn["facts"] = lock_facts
                    extra.append(fn)
            ir["functions"] = extra + ir["functions"]
        return {"files": files}


def rel_of_path(path: Path, root: Path):
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return None


# --- Dependency scanning (same contract as run_clang_tidy.py) ---------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+("([^"]+)"|<([^>]+)>)',
                        re.MULTILINE)
INCLUDE_DIR_RE = re.compile(r"(?:^|\s)-(?:I|isystem)\s*(\S+)")


class DependencyScanner:
    """Transitive project-header closure of a TU, with memoized per-file
    token digests (the cache-key component)."""

    def __init__(self, root: Path):
        self.root = root
        self._direct: dict = {}
        self._text: dict = {}
        self._digest: dict = {}
        self._token_lines: dict = {}

    def read(self, path: Path) -> str:
        data = self._text.get(path)
        if data is None:
            try:
                data = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                data = ""
            self._text[path] = data
        return data

    def digest(self, path: Path) -> bytes:
        d = self._digest.get(path)
        if d is None:
            d = token_digest(self.read(path))
            self._digest[path] = d
        return d

    def token_lines(self, path: Path):
        """Current line number of each token index — the remap table for
        cached facts (a cache hit guarantees an identical token stream)."""
        lines = self._token_lines.get(path)
        if lines is None:
            lines = [t.line for t in tokenize(self.read(path))]
            self._token_lines[path] = lines
        return lines

    def _direct_includes(self, path: Path):
        cached = self._direct.get(path)
        if cached is None:
            cached = []
            for m in INCLUDE_RE.finditer(self.read(path)):
                if m.group(2) is not None:
                    cached.append((m.group(2), True))
                else:
                    cached.append((m.group(3), False))
            self._direct[path] = cached
        return cached

    def _resolve(self, spec, is_quote, includer: Path, include_dirs):
        bases = ([includer.parent] if is_quote else []) + include_dirs
        for base in bases:
            candidate = base / spec
            if candidate.is_file():
                candidate = candidate.resolve()
                try:
                    candidate.relative_to(self.root)
                except ValueError:
                    return None
                return candidate
        return None

    def closure(self, tu: Path, include_dirs):
        seen = set()
        stack = [tu]
        while stack:
            current = stack.pop()
            for spec, is_quote in self._direct_includes(current):
                target = self._resolve(spec, is_quote, current, include_dirs)
                if target is not None and target not in seen and target != tu:
                    seen.add(target)
                    stack.append(target)
        return sorted(seen)


def include_dirs_of(command: str, directory: Path):
    dirs = []
    for m in INCLUDE_DIR_RE.finditer(command):
        raw = m.group(1).strip('"')
        path = Path(raw)
        if not path.is_absolute():
            path = directory / path
        dirs.append(path)
    return dirs


def load_database(db_path: Path, root: Path):
    tus = []
    for entry in json.loads(db_path.read_text(encoding="utf-8")):
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        try:
            rel = path.relative_to(root)
        except ValueError:
            continue
        if not (rel.parts and rel.parts[0] in LINT_DIRS):
            continue
        command = entry.get("command")
        if command is None:
            command = " ".join(entry.get("arguments", []))
        tus.append((path, Path(entry["directory"]), command))
    unique = {str(path): (path, directory, command)
              for path, directory, command in tus}
    return [unique[key] for key in sorted(unique)]


# --- Cross-TU analysis -------------------------------------------------------

def rules_digest() -> str:
    h = hashlib.sha256()
    for part in (sorted(RULES), EXPORT_SINK_PATTERNS,
                 sorted(AGG_ROOT_NAMES), sorted(WALL_CLOCKS),
                 PARALLEL_ROOTS, sorted(LOCKER_TYPES),
                 sorted(BLOCKING_CALLS), sorted(STATIC_EXEMPT_TOKENS)):
        h.update(repr(part).encode("utf-8"))
    return h.hexdigest()[:16]


def in_sink_file(relpath: str) -> bool:
    return any(re.search(p, relpath) for p in EXPORT_SINK_PATTERNS)


class Program:
    """The merged cross-TU view: every function definition, a name-resolved
    call graph, and the derived export surface."""

    def __init__(self, files: dict):
        self.files = files
        self.defs = []           # function dicts + "id"
        self.by_simple = {}
        self.by_qname = {}
        seen = set()
        for rel in sorted(files):
            for fn in files[rel]["functions"]:
                key = (fn["file"], fn["line"], fn["qname"])
                if key in seen:
                    continue
                seen.add(key)
                fn = dict(fn)
                fn["id"] = len(self.defs)
                self.defs.append(fn)
                self.by_simple.setdefault(fn["name"], []).append(fn["id"])
                self.by_qname.setdefault(fn["qname"], []).append(fn["id"])

    def resolve(self, full: str, simple: str):
        """Candidate definition ids for a call: qualified-suffix matches
        when the spelling is qualified, else every simple-name match."""
        if "::" in full:
            suffix = "::" + full
            out = [i for q, ids in self.by_qname.items()
                   if q == full or q.endswith(suffix) for i in ids]
            if out:
                return out
        return self.by_simple.get(simple, [])

    def export_surface(self):
        """fn id -> chain-parent id (or None for a root), for every function
        on the export surface."""
        sinks = [fn["id"] for fn in self.defs if in_sink_file(fn["file"])]
        sink_set = set(sinks)
        roots = list(sinks)
        for fn in self.defs:
            if fn["id"] in sink_set:
                continue
            for full, simple, _line in fn["calls"]:
                if any(c in sink_set for c in self.resolve(full, simple)):
                    roots.append(fn["id"])
                    break
        parent = {}
        queue = []
        for r in roots:
            if r not in parent:
                parent[r] = None
                queue.append(r)
        while queue:
            cur = queue.pop(0)
            for full, simple, _line in self.defs[cur]["calls"]:
                for callee in self.resolve(full, simple):
                    if callee not in parent:
                        parent[callee] = cur
                        queue.append(callee)
        return parent

    def chain(self, parent, fn_id):
        names = []
        cur = fn_id
        guard = 0
        while cur is not None and guard < 32:
            names.append(self.defs[cur]["qname"] or self.defs[cur]["name"])
            cur = parent.get(cur)
            guard += 1
        names.reverse()
        return " -> ".join(names)

    def reachable_from(self, root_suffixes):
        """fn id -> chain-parent id (or None for a root) for every function
        reachable from definitions whose qualified name matches one of
        `root_suffixes` (exact, `::`-suffix, or bare simple name)."""
        parent = {}
        queue = []
        for fn in self.defs:
            q = fn["qname"]
            for root in root_suffixes:
                if q == root or q.endswith("::" + root) \
                        or ("::" not in root and fn["name"] == root):
                    parent[fn["id"]] = None
                    queue.append(fn["id"])
                    break
        while queue:
            cur = queue.pop(0)
            for full, simple, _line in self.defs[cur]["calls"]:
                for callee in self.resolve(full, simple):
                    if callee not in parent:
                        parent[callee] = cur
                        queue.append(callee)
        return parent

    def aggregation_set(self):
        """Aggregation roots plus their direct same-file callees."""
        out = set()
        roots = [fn for fn in self.defs if fn["name"] in AGG_ROOT_NAMES
                 and not FLOAT_EXEMPT_RE.search(fn["file"])]
        for fn in roots:
            out.add(fn["id"])
            for full, simple, _line in fn["calls"]:
                for callee in self.resolve(full, simple):
                    if self.defs[callee]["file"] == fn["file"] \
                        and not FLOAT_EXEMPT_RE.search(
                            self.defs[callee]["file"]):
                        out.add(callee)
        return out


def class_prefix(fn):
    """The enclosing-scope prefix of a function's qualified name (used to
    qualify member capabilities so `mu_` in two classes stays distinct)."""
    q = fn["qname"]
    return q.rsplit("::", 1)[0] if "::" in q else ""


def qualify_cap(fn, cap):
    prefix = class_prefix(fn)
    return f"{prefix}::{cap}" if prefix else cap


class LockAnalysis:
    """Bounded-depth closures over the resolved call graph: which
    capabilities a function (transitively) acquires, and which blocking
    operations it (transitively) performs. Both closures skip callee
    candidates with the caller's own qualified name — a member call like
    `other_.Note(...)` resolves by simple name to the caller itself and
    would otherwise manufacture self-recursion."""

    def __init__(self, program):
        self.program = program
        self._acquires = {}
        self._blocking = {}

    def _callees(self, fn):
        out = []
        for full, simple, _line in fn["calls"]:
            for c in self.program.resolve(full, simple):
                callee = self.program.defs[c]
                if c != fn["id"] and callee["qname"] != fn["qname"]:
                    out.append(c)
        return out

    def acquires(self, fn_id, depth=LOCK_CALL_DEPTH):
        """Qualified capabilities acquired by fn or its callees (bounded)."""
        key = (fn_id, depth)
        cached = self._acquires.get(key)
        if cached is not None:
            return cached
        self._acquires[key] = set()   # cycle guard while computing
        fn = self.program.defs[fn_id]
        out = {qualify_cap(fn, fact["cap"]) for fact in fn["facts"]
               if fact["rule"] == "lock-order-cycle"
               and fact["kind"] == "acquire"}
        if depth > 0:
            for c in self._callees(fn):
                out |= self.acquires(c, depth - 1)
        self._acquires[key] = out
        return out

    def blocking(self, fn_id, depth=LOCK_CALL_DEPTH):
        """Blocking operation names performed by fn or its callees."""
        key = (fn_id, depth)
        cached = self._blocking.get(key)
        if cached is not None:
            return cached
        self._blocking[key] = set()
        fn = self.program.defs[fn_id]
        out = set(fn.get("blocking", ()))
        if depth > 0:
            for c in self._callees(fn):
                out |= self.blocking(c, depth - 1)
        self._blocking[key] = out
        return out


def _find_cycle_through(graph, a, b):
    """Shortest capability path b -> ... -> a in the lock-order graph (BFS),
    or None. Together with the edge a -> b this closes a cycle."""
    if a == b:
        return [a]
    parent = {b: None}
    queue = [b]
    while queue:
        cur = queue.pop(0)
        for nxt in graph.get(cur, {}):
            if nxt in parent:
                continue
            parent[nxt] = cur
            if nxt == a:
                path = [a]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])
                path.reverse()
                return path   # [b, ..., a]
            queue.append(nxt)
    return None


def analyze_program(files: dict):
    """Findings (pre-suppression) for the merged per-file IRs."""
    program = Program(files)
    surface = program.export_surface()
    agg = program.aggregation_set()
    preach = program.reachable_from(PARALLEL_ROOTS)
    locks = LockAnalysis(program)
    cap_class_names = {cls["name"] for file_ir in files.values()
                       for cls in file_ir.get("classes", ())
                       if cls["has_cap"]}
    static_exempt = STATIC_EXEMPT_TOKENS | cap_class_names
    findings = []

    def emit(rule, path, line, message, detail):
        findings.append({"rule": rule, "path": path, "line": line,
                         "message": message, "detail": detail})

    for fn in program.defs:
        for fact in fn["facts"]:
            rule = fact["rule"]
            if rule == "determinism-taint":
                if fn["id"] in surface:
                    where = program.chain(surface, fn["id"])
                    emit(rule, fn["file"], fact["line"],
                         f"{fact['detail']} on the export surface "
                         f"(export path: {where}); nondeterministic values "
                         "must not reach MergeResult/JSON artifacts",
                         fact["kind"])
            elif rule == "float-reduction-order":
                if fn["id"] in agg and not FLOAT_EXEMPT_RE.search(fn["file"]):
                    emit(rule, fn["file"], fact["line"],
                         f"{fact['detail']} in aggregation function "
                         f"`{fn['qname']}`; combine trial statistics through "
                         "stats::Accumulator (Add/Merge/State), never ad-hoc "
                         "float arithmetic", fact["kind"])
            elif rule == "pointer-ordering":
                emit(rule, fn["file"], fact["line"],
                     f"{fact['detail']}; pointer order is ASLR-random across "
                     "sweep-worker processes — key on a stable id instead",
                     fact["kind"])
            elif rule == "coro-ref-capture":
                emit(rule, fn["file"], fact["line"],
                     f"{fact['detail']}; the coroutine frame outlives the "
                     "enclosing scope, so the reference dangles at resume "
                     "time", fact["kind"])
            elif rule == "no-blocking-in-sim":
                if files.get(fn["file"], {}).get("is_coro"):
                    emit(rule, fn["file"], fact["line"],
                         f"{fact['detail']} in a coroutine TU; simulated "
                         "time and synchronization must come from the "
                         "calendar (sim::Delay, Events, Semaphores)",
                         fact["kind"])
            elif rule == "shared-state-unguarded":
                if fact["kind"] == "local-static" and fact.get("mutated") \
                        and fn["id"] in preach \
                        and not (set(fact.get("types", ())) & static_exempt):
                    where = program.chain(preach, fn["id"])
                    emit(rule, fn["file"], fact["line"],
                         f"{fact['detail']} is written on a parallel path "
                         f"({where}) with no capability guarding it; hoist "
                         "it into a class behind EMSIM_GUARDED_BY or make "
                         "it atomic/const", fact["kind"])
            elif rule == "lock-held-blocking":
                emit(rule, fn["file"], fact["line"],
                     f"{fact['detail']} in `{fn['qname']}`; blocking while "
                     "holding a capability stalls every waiter — drop the "
                     "lock around the slow operation", fact["kind"])

    # Lock-order discipline: collect held-vs-acquired edges (directly, and
    # through calls made with a capability held, to a bounded depth), then
    # report each capability cycle once. A self-edge is a double acquisition
    # of a non-recursive mutex — a guaranteed self-deadlock.
    edges = {}   # capA -> {capB: (path, line, detail)}

    def add_edge(a, b, path, line, detail):
        edges.setdefault(a, {}).setdefault(b, (path, line, detail))

    for fn in program.defs:
        for fact in fn["facts"]:
            if fact["rule"] == "lock-order-cycle" \
                    and fact["kind"] == "acquire":
                cap = qualify_cap(fn, fact["cap"])
                for held in fact.get("held", ()):
                    held_q = qualify_cap(fn, held)
                    add_edge(held_q, cap, fn["file"], fact["line"],
                             f"`{fn['qname']}` acquires `{cap}` while "
                             f"holding `{held_q}`")
        for lc in fn.get("locked_calls", ()):
            if not lc["held"]:
                continue
            callees = [c for c in program.resolve(lc["full"], lc["simple"])
                       if c != fn["id"]
                       and program.defs[c]["qname"] != fn["qname"]]
            acquired = set()
            blocked = set()
            for c in callees:
                acquired |= locks.acquires(c, LOCK_CALL_DEPTH - 1)
                blocked |= locks.blocking(c, LOCK_CALL_DEPTH - 1)
            for cap in sorted(acquired):
                for held in lc["held"]:
                    held_q = qualify_cap(fn, held)
                    add_edge(held_q, cap, fn["file"], lc["line"],
                             f"`{fn['qname']}` calls `{lc['full']}` (which "
                             f"acquires `{cap}`) while holding `{held_q}`")
            if blocked:
                ops = ", ".join(f"`{b}`" for b in sorted(blocked))
                emit("lock-held-blocking", fn["file"], lc["line"],
                     f"`{fn['qname']}` calls `{lc['full']}` while holding "
                     f"`{qualify_cap(fn, lc['held'][-1])}`, and the callee "
                     f"blocks (transitively reaches {ops}); drop the lock "
                     "around the slow operation", "blocking-call")

    reported_cycles = set()
    for a in sorted(edges):
        for b in sorted(edges[a]):
            path_nodes = _find_cycle_through(edges, a, b)
            if path_nodes is None:
                continue
            cycle = frozenset(path_nodes) | {a}
            if cycle in reported_cycles:
                continue
            reported_cycles.add(cycle)
            src, line, detail = edges[a][b]
            if len(cycle) == 1:
                emit("lock-order-cycle", src, line,
                     f"capability `{a}` is re-acquired while already held "
                     f"({detail}); the mutex is non-recursive, so this "
                     "self-deadlocks", "double-lock")
            else:
                order = " -> ".join([a] + path_nodes)
                emit("lock-order-cycle", src, line,
                     f"lock-order cycle {order}: {detail}, and the reverse "
                     "order is taken elsewhere — pick one global acquisition "
                     "order for these capabilities", "cycle")

    for rel in sorted(files):
        for fact in files[rel]["file_facts"]:
            rule = fact["rule"]
            if rule == "coro-raw-handle":
                if not SIM_KERNEL_RE.search(rel):
                    emit(rule, rel, fact["line"],
                         "std::coroutine_handle outside src/sim/ defeats the "
                         "frame-pool/calendar ownership bookkeeping; "
                         "communicate through Events/Semaphores/Mailboxes",
                         fact["kind"])
            elif rule == "pointer-ordering":
                emit(rule, rel, fact["line"],
                     f"{fact['detail']}; pointer order is ASLR-random across "
                     "sweep-worker processes — key on a stable id instead",
                     fact["kind"])
        for cls in files[rel].get("classes", ()):
            if not cls["has_cap"]:
                continue
            for member in cls["members"]:
                if member["guarded"] or member["exempt"]:
                    continue
                emit("shared-state-unguarded", rel, member["line"],
                     f"member `{cls['name']}::{member['name']}` of a "
                     "capability-bearing class has no EMSIM_GUARDED_BY "
                     "annotation; guard it, make it atomic/const, or move "
                     "it out of the locked class", "member")

    findings.sort(key=lambda f: (f["path"], f["line"], f["rule"]))
    return findings


# --- Suppressions ------------------------------------------------------------

def apply_suppressions(findings, root: Path):
    """Splits findings into (kept, suppressed). A finding is suppressed by a
    trailing `// emsim-analyze: allow(rule)` comment on its line, or — for
    lines too long to grow a trailing comment — by a standalone
    `// emsim-analyze: allow(rule)` comment line directly above it."""
    line_cache = {}
    kept, suppressed = [], []
    for f in findings:
        lines = line_cache.get(f["path"])
        if lines is None:
            try:
                lines = (root / f["path"]).read_text(
                    encoding="utf-8", errors="replace").splitlines()
            except OSError:
                lines = []
            line_cache[f["path"]] = lines
        raw = lines[f["line"] - 1] if 0 < f["line"] <= len(lines) else ""
        allowed = set()
        comment = raw.find("//")
        if comment >= 0:
            for m in ALLOW_RE.finditer(raw, comment):
                allowed.update(r.strip() for r in m.group(1).split(","))
        above = lines[f["line"] - 2] if 1 < f["line"] <= len(lines) + 1 else ""
        if above.lstrip().startswith("//"):
            for m in ALLOW_RE.finditer(above):
                allowed.update(r.strip() for r in m.group(1).split(","))
        f = dict(f)
        f["snippet"] = raw.strip()[:160]
        if f["rule"] in allowed:
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


# --- Cache -------------------------------------------------------------------

def cache_key(frontend_id: str, scanner: DependencyScanner, tu: Path,
              include_dirs) -> str:
    h = hashlib.sha256()
    for part in (SCHEMA, frontend_id, rules_digest()):
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    h.update(scanner.digest(tu))
    for dep in scanner.closure(tu, include_dirs):
        h.update(dep.as_posix().encode("utf-8"))
        h.update(b"\0")
        h.update(scanner.digest(dep))
    return h.hexdigest()


def cache_load(cache_dir: Path, key: str):
    try:
        return json.loads((cache_dir / f"{key}.json").read_text(
            encoding="utf-8"))
    except (OSError, ValueError):
        return None


def cache_store(cache_dir: Path, key: str, doc: dict):
    entry = cache_dir / f"{key}.json"
    tmp = entry.with_suffix(".tmp")
    tmp.write_text(json.dumps(doc), encoding="utf-8")
    tmp.replace(entry)


# --- Driver ------------------------------------------------------------------

def remap_lines(ir: dict, scanner: DependencyScanner, root: Path):
    """Rewrites fact/function line numbers from token anchors against the
    *current* sources. Cached IR may predate comment-only edits that shifted
    lines; the token stream is unchanged (cache-key invariant), so the token
    index is an exact anchor."""
    for rel, file_ir in ir["files"].items():
        table = None
        entries = list(file_ir.get("file_facts", ()))
        for fn in file_ir.get("functions", ()):
            entries.append(fn)
            entries.extend(fn.get("facts", ()))
            entries.extend(fn.get("locked_calls", ()))
        for cls in file_ir.get("classes", ()):
            entries.append(cls)
            entries.extend(cls.get("members", ()))
        for entry in entries:
            tok = entry.get("tok")
            if tok is None:
                continue
            if table is None:
                table = scanner.token_lines(root / rel)
            if 0 <= tok < len(table):
                entry["line"] = table[tok]


def internal_tu_ir(tu: Path, closure, root: Path, scanner: DependencyScanner,
                   file_memo: dict) -> dict:
    files = {}
    for path in [tu] + list(closure):
        rel = rel_of_path(path, root)
        if rel is None:
            continue
        ir = file_memo.get(rel)
        if ir is None:
            ir = extract_file_internal(rel, scanner.read(path))
            file_memo[rel] = ir
        files[rel] = ir
    return {"files": files}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="build tree containing compile_commands.json")
    parser.add_argument("--source-root", default=".")
    parser.add_argument("--frontend", choices=("auto", "libclang", "internal"),
                        default="auto")
    parser.add_argument("--report", help="write a JSON findings report here")
    parser.add_argument("--cache-dir",
                        help="per-TU IR cache (default: BUILD_DIR/analyze-cache)")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--timing-report",
                        help="write a per-TU timing/cache JSON artifact here")
    parser.add_argument("--warm-budget-seconds", type=float, default=0,
                        help="fail a warm run (hit ratio >= 0.5) exceeding "
                             "this wall time (0 = off)")
    parser.add_argument("--stats", action="store_true",
                        help="print cache/timing statistics")
    parser.add_argument("--advisory", action="store_true",
                        help="report findings but exit 0 (CI advisory pass)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}: {RULES[rule]}")
        return 0

    started = time.monotonic()
    root = Path(args.source_root).resolve()
    build_dir = Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = root / build_dir
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"emsim_analyze: {db_path} not found; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 2

    frontend = None
    frontend_name = "internal"
    if args.frontend in ("auto", "libclang"):
        if LibclangFrontend.available():
            frontend = LibclangFrontend()
            frontend_name = "libclang"
        elif args.frontend == "libclang":
            print("emsim_analyze: python libclang bindings (clang.cindex) "
                  "not found; skipping the libclang frontend — install the "
                  "pinned wheel (see docs/STATIC_ANALYSIS.md) or use "
                  "--frontend internal", file=sys.stderr)
            return 4
        else:
            print("emsim_analyze: libclang unavailable; using the internal "
                  "frontend (token-level precision)", file=sys.stderr)

    tus = load_database(db_path, root)
    if not tus:
        print("emsim_analyze: no files under "
              f"{'/'.join(LINT_DIRS)} in the compilation database",
              file=sys.stderr)
        return 2

    cache_dir = None
    if not args.no_cache:
        cache_dir = (Path(args.cache_dir) if args.cache_dir
                     else build_dir / "analyze-cache")
        cache_dir.mkdir(parents=True, exist_ok=True)

    frontend_id = frontend_name if frontend_name == "internal" else \
        f"libclang:{frontend.version()}"
    scanner = DependencyScanner(root)
    file_memo: dict = {}
    merged_files: dict = {}
    hits = 0
    timings = []
    for tu, directory, command in tus:
        tu_started = time.monotonic()
        dirs = include_dirs_of(command, directory)
        key = cache_key(frontend_id, scanner, tu, dirs)
        cached = cache_load(cache_dir, key) if cache_dir is not None else None
        if cached is not None:
            ir = cached
            hits += 1
        else:
            if frontend_name == "libclang":
                ir = frontend.tu_ir(tu, command, root)
            else:
                ir = internal_tu_ir(tu, scanner.closure(tu, dirs), root,
                                    scanner, file_memo)
            if cache_dir is not None:
                cache_store(cache_dir, key, ir)
        remap_lines(ir, scanner, root)
        for rel, file_ir in ir["files"].items():
            merged_files.setdefault(rel, file_ir)
        timings.append({"file": rel_of_path(tu, root) or str(tu),
                        "cached": cached is not None,
                        "duration_seconds":
                            round(time.monotonic() - tu_started, 4)})

    findings = analyze_program(merged_files)
    findings, suppressions = apply_suppressions(findings, root)

    wall = time.monotonic() - started
    hit_ratio = hits / len(tus)
    warm = hit_ratio >= 0.5
    over_budget = (args.warm_budget_seconds > 0 and warm
                   and wall > args.warm_budget_seconds)

    report = {
        "tool": "emsim_analyze",
        "version": 1,
        "frontend": frontend_name,
        "tus": len(tus),
        "files_indexed": len(merged_files),
        "findings": findings,
        "suppressions": suppressions,
    }
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n",
                                     encoding="utf-8")
    if args.timing_report:
        timings.sort(key=lambda t: t["file"])
        Path(args.timing_report).write_text(json.dumps({
            "tool": "emsim_analyze",
            "version": 1,
            "frontend": frontend_name,
            "wall_seconds": round(wall, 3),
            "cache": {
                "enabled": cache_dir is not None,
                "dir": str(cache_dir) if cache_dir is not None else None,
                "hits": hits,
                "misses": len(tus) - hits,
                "hit_ratio": round(hit_ratio, 4),
            },
            "warm_budget_seconds": args.warm_budget_seconds or None,
            "over_budget": over_budget,
            "files": timings,
        }, indent=2) + "\n", encoding="utf-8")

    for f in findings:
        print(f"{f['path']}:{f['line']}: [{f['rule']}] {f['message']}")
        if f.get("snippet"):
            print(f"    {f['snippet']}")
    status = (f"emsim_analyze: {frontend_name} frontend, {len(tus)} TUs "
              f"({len(merged_files)} files), {len(findings)} finding(s), "
              f"{len(suppressions)} suppression(s), {hits} cached "
              f"({hit_ratio:.0%}), {wall:.1f}s wall")
    print(status, file=sys.stderr if findings else sys.stdout)
    if args.stats and timings:
        slowest = sorted(timings, key=lambda t: -t["duration_seconds"])[:5]
        for entry in slowest:
            print(f"  {entry['duration_seconds']:7.3f}s "
                  f"{'hit ' if entry['cached'] else 'miss'} {entry['file']}")
    if over_budget:
        print(f"emsim_analyze: warm run exceeded the "
              f"{args.warm_budget_seconds:.0f}s budget — trim rules or raise "
              "the budget deliberately", file=sys.stderr)
        return 1
    if findings and not args.advisory:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#ifndef EMSIM_SIM_EVENT_H_
#define EMSIM_SIM_EVENT_H_

#include <coroutine>
#include <cstddef>

#include "sim/process.h"
#include "sim/simulation.h"
#include "util/check.h"
#include "util/inline_vec.h"

namespace emsim::sim {

/// A latch-style one-shot event (CSIM "event" with set semantics): waiting on
/// a set event completes immediately; Set() releases every waiter. Reset()
/// rearms the latch.
class Event {
 public:
  explicit Event(Simulation* sim) : sim_(sim) { EMSIM_CHECK(sim != nullptr); }

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool IsSet() const { return set_; }

  /// Marks the event set and schedules all waiters at the current time.
  void Set();

  /// Rearms the latch; must not be called while processes wait on it.
  void Reset();

  class Awaiter {
   public:
    explicit Awaiter(Event* event) : event_(event) {}
    bool await_ready() const noexcept { return event_->set_; }
    void await_suspend(std::coroutine_handle<Process::promise_type> h) {
      event_->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}

   private:
    Event* event_;
  };

  /// Awaitable: suspends until the event is set (or resumes immediately if
  /// already set).
  Awaiter Wait() { return Awaiter(this); }

 private:
  friend class Awaiter;
  Simulation* sim_;
  bool set_ = false;
  // Typical occupancy is 0–2 waiters; the inline buffer keeps the wait/set
  // cycle allocation-free.
  InlineVec<std::coroutine_handle<>, 4> waiters_;
};

/// A pulse-style broadcast signal (condition variable without a lock): each
/// Fire() wakes the processes currently waiting; late arrivals wait for the
/// next pulse. Waiters must re-check their predicate in a loop:
///
///     while (!pred()) co_await signal.Wait();
class Signal {
 public:
  explicit Signal(Simulation* sim) : sim_(sim) { EMSIM_CHECK(sim != nullptr); }

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Wakes every currently-waiting process (scheduled at the current time).
  /// Inline empty fast path: producers fire once per deposited block, and
  /// most pulses find nobody waiting.
  void Fire() {
    if (waiters_.empty()) {
      return;
    }
    FireSlow();
  }

  /// Number of processes currently blocked on this signal.
  size_t NumWaiters() const { return waiters_.size(); }

  class Awaiter {
   public:
    explicit Awaiter(Signal* signal) : signal_(signal) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<Process::promise_type> h) {
      signal_->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}

   private:
    Signal* signal_;
  };

  Awaiter Wait() { return Awaiter(this); }

 private:
  friend class Awaiter;
  void FireSlow();

  Simulation* sim_;
  InlineVec<std::coroutine_handle<>, 4> waiters_;
};

}  // namespace emsim::sim

#endif  // EMSIM_SIM_EVENT_H_

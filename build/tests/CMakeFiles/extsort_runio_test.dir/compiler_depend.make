# Empty compiler generated dependencies file for extsort_runio_test.
# This may be replaced when dependencies are built.

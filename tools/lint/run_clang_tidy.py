#!/usr/bin/env python3
"""Runs clang-tidy (curated profile in .clang-tidy, warnings-as-errors) over
every translation unit in the compilation database that lives under
src/ tools/ bench/ or tests/.

A thin, dependency-free replacement for LLVM's run-clang-tidy wrapper so the
lint gate does not depend on which clang-tidy packaging the host installed.

Usage:
  tools/lint/run_clang_tidy.py --build-dir build [--clang-tidy clang-tidy]
                               [--source-root .] [--jobs N] [--report out.txt]

Exit status: 0 when clang-tidy is clean on every file, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import subprocess
import sys
from pathlib import Path

LINT_DIRS = ("src", "tools", "bench", "tests")


def tidy_one(task):
    clang_tidy, build_dir, path = task
    try:
        proc = subprocess.run(
            [clang_tidy, "-p", build_dir, "--warnings-as-errors=*", "--quiet", path],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
    except FileNotFoundError:
        return path, 127, f"run_clang_tidy: {clang_tidy}: no such executable\n"
    return path, proc.returncode, proc.stdout


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", required=True,
                        help="build tree containing compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--source-root", default=".")
    parser.add_argument("--jobs", type=int, default=0, help="0 = one per CPU")
    parser.add_argument("--report", help="write the aggregated clang-tidy output here")
    args = parser.parse_args(argv)

    build_dir = Path(args.build_dir).resolve()
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_clang_tidy: {db_path} not found; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 1
    root = Path(args.source_root).resolve()

    files = []
    for entry in json.loads(db_path.read_text(encoding="utf-8")):
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        try:
            rel = path.relative_to(root)
        except ValueError:
            continue
        if rel.parts and rel.parts[0] in LINT_DIRS:
            files.append(str(path))
    files = sorted(set(files))
    if not files:
        print("run_clang_tidy: no files under "
              f"{'/'.join(LINT_DIRS)} in the compilation database", file=sys.stderr)
        return 1

    jobs = args.jobs if args.jobs > 0 else (multiprocessing.cpu_count() or 1)
    tasks = [(args.clang_tidy, str(build_dir), f) for f in files]
    failures = 0
    chunks = []
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        for path, code, output in pool.imap_unordered(tidy_one, tasks):
            if code != 0:
                failures += 1
                sys.stdout.write(output)
            chunks.append(f"==> {path} (exit {code})\n{output}")
    if args.report:
        Path(args.report).write_text("".join(chunks), encoding="utf-8")
    print(f"run_clang_tidy: {len(files)} files, {failures} with findings",
          file=sys.stderr if failures else sys.stdout)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#include "disk/layout.h"

#include <cstddef>
#include <limits>

#include "util/check.h"
#include "util/str.h"

namespace emsim::disk {

RunLayout::RunLayout(const Options& options) : options_(options) {
  EMSIM_CHECK(options.num_runs >= 1);
  EMSIM_CHECK(options.num_disks >= 1);
  EMSIM_CHECK(options.blocks_per_run >= 1);
  if (!options.run_blocks.empty()) {
    EMSIM_CHECK_EQ(static_cast<int>(options.run_blocks.size()), options.num_runs);
    for (int64_t b : options.run_blocks) {
      EMSIM_CHECK(b >= 1);
    }
  }
}

int64_t RunLayout::RunBlocks(int run) const {
  EMSIM_DCHECK(run >= 0 && run < options_.num_runs);
  if (options_.run_blocks.empty()) {
    return options_.blocks_per_run;
  }
  return options_.run_blocks[static_cast<size_t>(run)];
}

int64_t RunLayout::TotalBlocks() const {
  // Saturate instead of overflowing: run counts/lengths come straight from
  // parsed specs, and INT64_MAX-sized inputs must fail Validate()'s capacity
  // checks, not hit signed-overflow UB while summing (caught by UBSan with
  // -fsanitize=undefined on a fuzz-derived spec).
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  if (options_.run_blocks.empty()) {
    int64_t total = 0;
    if (__builtin_mul_overflow(static_cast<int64_t>(options_.num_runs),
                               options_.blocks_per_run, &total)) {
      return kMax;
    }
    return total;
  }
  int64_t total = 0;
  for (int64_t b : options_.run_blocks) {
    if (__builtin_add_overflow(total, b, &total)) {
      return kMax;
    }
  }
  return total;
}

int64_t RunLayout::StartBlockOnDisk(int run) const {
  if (options_.run_blocks.empty()) {
    return static_cast<int64_t>(IndexOnDisk(run)) * options_.blocks_per_run;
  }
  // Sum the lengths of earlier runs placed on the same disk.
  int64_t start = 0;
  int disk = DiskOf(run);
  int index = IndexOnDisk(run);
  for (int r = 0; r < options_.num_runs; ++r) {
    if (DiskOf(r) == disk && IndexOnDisk(r) < index) {
      start += RunBlocks(r);
    }
  }
  return start;
}

Status RunLayout::Validate() const {
  EMSIM_RETURN_IF_ERROR(options_.geometry.Validate());
  if (options_.placement == RunPlacement::kStriped) {
    if (!options_.run_blocks.empty()) {
      return Status::InvalidArgument("striped placement requires uniform run lengths");
    }
    if (options_.blocks_per_run % options_.num_disks != 0) {
      return Status::InvalidArgument(
          "striped placement requires blocks_per_run divisible by the disk count");
    }
    int64_t per_disk = TotalBlocks() / options_.num_disks;
    if (per_disk > options_.geometry.TotalBlocks()) {
      return Status::InvalidArgument("striped layout overflows the disks");
    }
    return Status::OK();
  }
  for (int d = 0; d < options_.num_disks; ++d) {
    int64_t blocks = 0;
    for (int r : RunsOf(d)) {
      if (__builtin_add_overflow(blocks, RunBlocks(r), &blocks)) {
        blocks = std::numeric_limits<int64_t>::max();  // saturate; rejected below
        break;
      }
    }
    if (blocks > options_.geometry.TotalBlocks()) {
      return Status::InvalidArgument(
          StrFormat("disk %d needs %lld blocks but holds only %lld", d,
                    static_cast<long long>(blocks),
                    static_cast<long long>(options_.geometry.TotalBlocks())));
    }
  }
  return Status::OK();
}

int RunLayout::DiskOf(int run) const {
  EMSIM_DCHECK(run >= 0 && run < options_.num_runs);
  EMSIM_CHECK(!striped() && "DiskOf is undefined for striped runs; use Locate/Spans");
  switch (options_.placement) {
    case RunPlacement::kRoundRobin:
      return run % options_.num_disks;
    case RunPlacement::kBlocked: {
      // Ceil division so the first disks take the extra runs when k % D != 0.
      int per_disk = (options_.num_runs + options_.num_disks - 1) / options_.num_disks;
      return run / per_disk;
    }
    case RunPlacement::kStriped:
      break;
  }
  return 0;
}

int RunLayout::IndexOnDisk(int run) const {
  EMSIM_DCHECK(run >= 0 && run < options_.num_runs);
  EMSIM_CHECK(!striped() && "IndexOnDisk is undefined for striped runs");
  switch (options_.placement) {
    case RunPlacement::kRoundRobin:
      return run / options_.num_disks;
    case RunPlacement::kBlocked: {
      int per_disk = (options_.num_runs + options_.num_disks - 1) / options_.num_disks;
      return run % per_disk;
    }
    case RunPlacement::kStriped:
      break;
  }
  return 0;
}

int RunLayout::RunsOnDisk(int disk) const {
  EMSIM_DCHECK(disk >= 0 && disk < options_.num_disks);
  int count = 0;
  for (int r = 0; r < options_.num_runs; ++r) {
    if (DiskOf(r) == disk) {
      ++count;
    }
  }
  return count;
}

std::vector<int> RunLayout::RunsOf(int disk) const {
  std::vector<int> runs;
  for (int r = 0; r < options_.num_runs; ++r) {
    if (DiskOf(r) == disk) {
      runs.push_back(r);
    }
  }
  return runs;
}

int64_t RunLayout::LocalBlock(int run, int64_t offset) const {
  EMSIM_DCHECK(offset >= 0 && offset < RunBlocks(run));
  EMSIM_CHECK(!striped() && "LocalBlock is per-disk for striped runs; use Locate");
  return StartBlockOnDisk(run) + offset;
}

RunLayout::Location RunLayout::Locate(int run, int64_t offset) const {
  EMSIM_DCHECK(offset >= 0 && offset < RunBlocks(run));
  if (!striped()) {
    return {DiskOf(run), LocalBlock(run, offset)};
  }
  int64_t stripe = options_.blocks_per_run / options_.num_disks;
  Location loc;
  loc.disk = static_cast<int>(offset % options_.num_disks);
  loc.local_block = static_cast<int64_t>(run) * stripe + offset / options_.num_disks;
  return loc;
}

std::vector<RunLayout::Span> RunLayout::Spans(int run, int64_t offset,
                                              int64_t nblocks) const {
  EMSIM_CHECK(nblocks >= 1);
  std::vector<Span> spans;
  if (!striped()) {
    Span span;
    span.disk = DiskOf(run);
    span.local_start = LocalBlock(run, offset);
    span.nblocks = nblocks;
    span.first_offset = offset;
    span.offset_stride = 1;
    spans.push_back(span);
    return spans;
  }
  int d = options_.num_disks;
  for (int residue = 0; residue < d; ++residue) {
    // First offset in [offset, offset + nblocks) congruent to residue.
    int64_t delta = (residue - offset % d + d) % d;
    int64_t first = offset + delta;
    if (first >= offset + nblocks) {
      continue;
    }
    Span span;
    span.disk = residue;
    span.first_offset = first;
    span.offset_stride = d;
    span.nblocks = (offset + nblocks - first + d - 1) / d;
    span.local_start = Locate(run, first).local_block;
    spans.push_back(span);
  }
  return spans;
}

int64_t RunLayout::CylinderOf(int run, int64_t offset) const {
  return options_.geometry.CylinderOf(Locate(run, offset).local_block);
}

double RunLayout::RunLengthCylinders() const {
  return static_cast<double>(options_.blocks_per_run) / options_.geometry.BlocksPerCylinder();
}

std::string RunLayout::ToString() const {
  const char* placement = "round-robin";
  if (options_.placement == RunPlacement::kBlocked) {
    placement = "blocked";
  } else if (options_.placement == RunPlacement::kStriped) {
    placement = "striped";
  }
  return StrFormat("RunLayout{k=%d, D=%d, blocks/run=%lld, m=%.4f cyl, placement=%s}",
                   options_.num_runs, options_.num_disks,
                   static_cast<long long>(options_.blocks_per_run), RunLengthCylinders(),
                   placement);
}

}  // namespace emsim::disk

// Golden regression values: the simulator is deterministic per seed, so key
// headline numbers are pinned here (loose 0.5% tolerance absorbs FP-order
// differences across compilers). If one of these moves, either a model
// change was intended — update the constant and EXPERIMENTS.md — or a
// regression slipped in.

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/merge_simulator.h"

namespace emsim::core {
namespace {

double RunSeconds(MergeConfig cfg) {
  cfg.seed = 1;
  auto result = SimulateMerge(cfg);
  EXPECT_TRUE(result.ok());
  return result->total_ms / 1e3;
}

TEST(GoldenTest, PaperHeadlineNumbers) {
  EXPECT_NEAR(RunSeconds(MergeConfig::Paper(25, 1, 1, Strategy::kDemandRunOnly,
                                            SyncMode::kUnsynchronized)),
              292.62, 292.62 * 0.005);
  EXPECT_NEAR(RunSeconds(MergeConfig::Paper(25, 1, 10, Strategy::kDemandRunOnly,
                                            SyncMode::kUnsynchronized)),
              87.05, 87.05 * 0.005);
  EXPECT_NEAR(RunSeconds(MergeConfig::Paper(25, 5, 10, Strategy::kDemandRunOnly,
                                            SyncMode::kSynchronized)),
              84.83, 84.83 * 0.005);
  EXPECT_NEAR(RunSeconds(MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                            SyncMode::kSynchronized)),
              19.86, 19.86 * 0.005);
  EXPECT_NEAR(RunSeconds(MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                            SyncMode::kUnsynchronized)),
              17.63, 17.63 * 0.005);
}

TEST(GoldenTest, StallAccountingConsistent) {
  // With an infinitely fast CPU, total time = preload + the summed stalls.
  MergeConfig cfg = MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  double stalled = result->stall_ms.sum();
  EXPECT_GT(result->stall_ms.count(), 0u);
  EXPECT_LE(stalled, result->total_ms);
  EXPECT_GT(stalled, result->total_ms * 0.8);  // Preload is the small rest.
  EXPECT_GT(result->stall_ms.Max(), result->stall_ms.Mean());
}

TEST(GoldenTest, StallDistributionsDifferByStrategy) {
  MergeConfig demand = MergeConfig::Paper(25, 5, 10, Strategy::kDemandRunOnly,
                                          SyncMode::kUnsynchronized);
  MergeConfig ador = MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                        SyncMode::kUnsynchronized);
  auto d = SimulateMerge(demand);
  auto a = SimulateMerge(ador);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(a.ok());
  // Inter-run prefetching converts many stalls into cache hits and shortens
  // the ones that remain on average.
  EXPECT_LT(a->stall_ms.Mean() * static_cast<double>(a->stall_ms.count()),
            d->stall_ms.Mean() * static_cast<double>(d->stall_ms.count()));
}

}  // namespace
}  // namespace emsim::core

#include <cstdint>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "core/merge_simulator.h"

namespace emsim::core {
namespace {

MergeConfig Base() {
  MergeConfig cfg = MergeConfig::Paper(10, 5, 10, Strategy::kAllDisksOneRun,
                                       SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 300;
  cfg.check_invariants = true;
  return cfg;
}

TEST(WriteTrafficTest, ValidationRejectsBadParameters) {
  MergeConfig cfg = Base();
  cfg.write_traffic = WriteTraffic::kSeparateDisks;
  cfg.num_write_disks = 0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = Base();
  cfg.write_traffic = WriteTraffic::kSharedDisks;
  cfg.write_batch_blocks = 0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = Base();
  cfg.write_traffic = WriteTraffic::kSeparateDisks;
  cfg.write_buffer_blocks = 5;
  cfg.write_batch_blocks = 10;  // Buffer smaller than one batch.
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(WriteTrafficTest, EveryMergedBlockIsWritten) {
  MergeConfig cfg = Base();
  cfg.write_traffic = WriteTraffic::kSeparateDisks;
  cfg.num_write_disks = 2;
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->write_blocks, static_cast<uint64_t>(cfg.TotalBlocks()));
  EXPECT_GT(result->write_requests, 0u);
  // Batched: far fewer requests than blocks.
  EXPECT_LE(result->write_requests, result->write_blocks / 5);
}

TEST(WriteTrafficTest, SeparateDisksValidatePaperAssumption) {
  // With a dedicated write set of matching bandwidth (the inter-run merge
  // reads ~T/D per block, so D write arms with generous batching keep up),
  // total time is within a few percent of the paper's no-write model —
  // exactly why the paper could ignore the traffic.
  MergeConfig cfg = Base();
  auto none = RunTrials(cfg, 3);
  cfg.write_traffic = WriteTraffic::kSeparateDisks;
  cfg.num_write_disks = cfg.num_disks;
  cfg.write_batch_blocks = 25;
  cfg.write_buffer_blocks = 400;
  auto separate = RunTrials(cfg, 3);
  EXPECT_NEAR(separate.MeanTotalSeconds(), none.MeanTotalSeconds(),
              none.MeanTotalSeconds() * 0.10);
}

TEST(WriteTrafficTest, SharedDisksContendSignificantly) {
  MergeConfig cfg = Base();
  auto none = RunTrials(cfg, 3);
  cfg.write_traffic = WriteTraffic::kSharedDisks;
  auto shared = RunTrials(cfg, 3);
  EXPECT_GT(shared.MeanTotalSeconds(), none.MeanTotalSeconds() * 1.3);
}

TEST(WriteTrafficTest, OneSlowWriteDiskBottlenecks) {
  // 5 input disks streaming into a single write disk: the writer becomes
  // the bottleneck (write bandwidth T per block on one arm vs T/5 read).
  MergeConfig cfg = Base();
  cfg.write_traffic = WriteTraffic::kSeparateDisks;
  cfg.num_write_disks = 1;
  cfg.write_buffer_blocks = 50;
  auto one = RunTrials(cfg, 3);
  cfg.num_write_disks = 3;
  auto three = RunTrials(cfg, 3);
  EXPECT_GT(one.MeanTotalSeconds(), three.MeanTotalSeconds());
  EXPECT_GT(one.trials.front().write_stalls, 0u);
}

TEST(WriteTrafficTest, BackpressureStallsAreBounded) {
  MergeConfig cfg = Base();
  cfg.write_traffic = WriteTraffic::kSeparateDisks;
  cfg.num_write_disks = 1;
  cfg.write_batch_blocks = 5;
  cfg.write_buffer_blocks = 10;
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->write_blocks, static_cast<uint64_t>(cfg.TotalBlocks()));
  EXPECT_GT(result->write_stalls, 0u);
}

TEST(WriteTrafficTest, DrainTimeReported) {
  MergeConfig cfg = Base();
  cfg.write_traffic = WriteTraffic::kSeparateDisks;
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->write_drain_ms, 0.0);
  EXPECT_LT(result->write_drain_ms, 1000.0);  // One tail batch, not a re-run.
}

TEST(WriteTrafficTest, NoWritesMeansNoWriteStats) {
  auto result = SimulateMerge(Base());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->write_blocks, 0u);
  EXPECT_EQ(result->write_requests, 0u);
  EXPECT_EQ(result->write_stalls, 0u);
  EXPECT_EQ(result->write_drain_ms, 0.0);
}

}  // namespace
}  // namespace emsim::core

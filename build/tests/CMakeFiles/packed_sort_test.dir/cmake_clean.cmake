file(REMOVE_RECURSE
  "CMakeFiles/packed_sort_test.dir/packed_sort_test.cc.o"
  "CMakeFiles/packed_sort_test.dir/packed_sort_test.cc.o.d"
  "packed_sort_test"
  "packed_sort_test.pdb"
  "packed_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Reproduces Figure 3.3: the effect of a finite-speed CPU. k=25 runs over
// D=5 disks at N=10; the x axis is the CPU time to merge one block
// (0..0.7 ms); the four curves are {All Disks One Run, Demand Run Only} x
// {synchronized, unsynchronized}.

#include "bench_util.h"
#include "core/config.h"
#include "stats/series.h"
#include "workload/paper_configs.h"

int main() {
  using emsim::core::MergeConfig;
  emsim::bench::Banner(
      "Figure 3.3",
      "Total execution time vs per-block CPU merge time (25 runs, 5 disks,\n"
      "N=10). Expected shape: synchronized curves rise with the full CPU\n"
      "demand (no overlap); unsynchronized curves absorb CPU time into I/O\n"
      "overlap; All Disks One Run (Unsynchronized) is lowest everywhere.");

  emsim::stats::Figure fig("Figure 3.3: Effect of Finite-Speed CPU (25 runs, 5 disks)",
                           "CPU ms/block", "Total Execution Time (s)");
  for (const auto& curve : emsim::workload::Fig33Curves()) {
    emsim::stats::Series& series = fig.AddSeries(curve.name);
    for (double cpu : emsim::workload::Fig33CpuSweep()) {
      MergeConfig cfg = curve.config;
      cfg.cpu_ms_per_block = cpu;
      auto result = emsim::bench::Run(cfg);
      auto ci = result.TotalSecondsCi();
      series.Add(cpu, ci.mean, ci.half_width);
    }
  }
  emsim::bench::EmitFigure(fig);
  emsim::bench::WriteJsonArtifact("fig33_cpu_speed");
  return 0;
}

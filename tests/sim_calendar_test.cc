// Property and stress tests pinning the slim indexed-heap calendar to a
// reference model (std::priority_queue over (time, seq)), plus the frame
// pool's reuse guarantee and the O(1) live-process bookkeeping. These guard
// the PR-critical invariant that the calendar rewrite preserves exact
// (time, seq) FIFO ordering under every driver (Run, RunUntil, Step) and
// under reentrant scheduling from callbacks. Labeled `unit;thread` so the
// sanitizer CI jobs run them under ASan and TSan builds as well.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/frame_pool.h"
#include "sim/process.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace emsim::sim {
namespace {

// ---------------------------------------------------------------------------
// Reference-model stress test.
//
// A static event tree is generated up front: root events at random times,
// each event spawning 0-2 children at `parent_time + delta` when executed
// (reentrant scheduling — the sim schedules children from inside callbacks).
// The same tree is replayed against a std::priority_queue reference that
// implements the documented contract directly: earliest time first, FIFO by
// insertion sequence on ties. The execution orders must match exactly.
// ---------------------------------------------------------------------------

struct EventTree {
  std::vector<double> time_of;
  std::vector<std::vector<std::pair<int, double>>> kids;  // (child id, delta)
  int num_ids = 0;
  int num_roots = 0;
};

EventTree MakeTree(uint64_t seed, int roots, int max_ids) {
  EventTree tree;
  tree.num_roots = roots;
  tree.time_of.resize(static_cast<size_t>(max_ids), 0.0);
  tree.kids.resize(static_cast<size_t>(max_ids));
  Rng rng(seed);
  int next_id = roots;
  for (int i = 0; i < roots; ++i) {
    // Coarse grid so distinct events frequently collide on the same time and
    // exercise the FIFO tie-break, not just the time ordering.
    tree.time_of[static_cast<size_t>(i)] = static_cast<double>(rng.UniformInt(40));
  }
  for (int id = 0; id < next_id; ++id) {
    uint64_t n_children = rng.UniformInt(3);  // 0, 1, or 2.
    for (uint64_t c = 0; c < n_children && next_id < max_ids; ++c) {
      double delta = static_cast<double>(rng.UniformInt(10));
      tree.kids[static_cast<size_t>(id)].emplace_back(next_id, delta);
      tree.time_of[static_cast<size_t>(next_id)] =
          tree.time_of[static_cast<size_t>(id)] + delta;
      ++next_id;
    }
  }
  tree.num_ids = next_id;
  return tree;
}

/// Executes the tree on the reference model: a binary heap over
/// (time, insertion seq) with no knowledge of the production calendar.
std::vector<int> ReferenceOrder(const EventTree& tree) {
  struct Entry {
    double time;
    uint64_t seq;
    int id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> queue;
  uint64_t seq = 0;
  for (int i = 0; i < tree.num_roots; ++i) {
    queue.push(Entry{tree.time_of[static_cast<size_t>(i)], seq++, i});
  }
  std::vector<int> order;
  while (!queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    order.push_back(top.id);
    for (const auto& [child, delta] : tree.kids[static_cast<size_t>(top.id)]) {
      queue.push(Entry{tree.time_of[static_cast<size_t>(child)], seq++, child});
    }
  }
  return order;
}

/// Schedules the tree's roots into `sim`; executed ids append to `log` and
/// reentrantly schedule their children.
class TreeDriver {
 public:
  TreeDriver(Simulation* sim, const EventTree* tree) : sim_(sim), tree_(tree) {}

  void ScheduleRoots() {
    for (int i = 0; i < tree_->num_roots; ++i) {
      Schedule(i);
    }
  }

  const std::vector<int>& log() const { return log_; }

 private:
  void Schedule(int id) {
    sim_->ScheduleCallback(tree_->time_of[static_cast<size_t>(id)],
                           [this, id] { Execute(id); });
  }

  void Execute(int id) {
    log_.push_back(id);
    for (const auto& [child, delta] : tree_->kids[static_cast<size_t>(id)]) {
      Schedule(child);
    }
  }

  Simulation* sim_;
  const EventTree* tree_;
  std::vector<int> log_;
};

TEST(CalendarStressTest, RunMatchesReferenceModel) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EventTree tree = MakeTree(seed, /*roots=*/200, /*max_ids=*/4000);
    std::vector<int> expected = ReferenceOrder(tree);

    Simulation sim;
    TreeDriver driver(&sim, &tree);
    driver.ScheduleRoots();
    sim.Run();

    EXPECT_EQ(driver.log(), expected);
    EXPECT_EQ(sim.events_processed(), static_cast<uint64_t>(tree.num_ids));
    EXPECT_EQ(sim.CalendarDepth(), 0u);
  }
}

TEST(CalendarStressTest, InterleavedStepAndRunUntilMatchesReferenceModel) {
  EventTree tree = MakeTree(/*seed=*/99, /*roots=*/150, /*max_ids=*/3000);
  std::vector<int> expected = ReferenceOrder(tree);

  Simulation sim;
  TreeDriver driver(&sim, &tree);
  driver.ScheduleRoots();
  // Drain through every driver the kernel offers: single steps, bounded
  // runs, then the terminal Run. Execution order must be invariant.
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(sim.Step());
  }
  sim.RunUntil(sim.Now() + 10.0);
  sim.RunUntil(sim.Now());  // Degenerate deadline: only same-time events.
  sim.Run();

  EXPECT_EQ(driver.log(), expected);
  EXPECT_EQ(sim.events_processed(), static_cast<uint64_t>(tree.num_ids));
}

TEST(CalendarTest, FifoTieBreakAcrossInterleavedTimes) {
  Simulation sim;
  std::vector<int> log;
  // Interleave registrations across two times; within a time, execution must
  // follow registration order exactly.
  for (int i = 0; i < 64; ++i) {
    double at = (i % 2 == 0) ? 5.0 : 3.0;
    sim.ScheduleCallback(at, [&log, i] { log.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(log.size(), 64u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(i)], 2 * i + 1) << "time-3 group order";
    EXPECT_EQ(log[static_cast<size_t>(32 + i)], 2 * i) << "time-5 group order";
  }
}

// ---------------------------------------------------------------------------
// Callback-cell pool behavior.
// ---------------------------------------------------------------------------

TEST(CalendarTest, CallbackSlotsAreReusedAcrossWaves) {
  Simulation sim;
  int64_t hits = 0;
  for (int wave = 0; wave < 6; ++wave) {
    for (int i = 0; i < 50; ++i) {
      sim.ScheduleCallback(sim.Now() + 1.0 + i, [&hits] { ++hits; });
    }
    sim.Run();
    // The pool grows to the high-water mark of concurrently pending
    // callbacks on the first wave and never after.
    EXPECT_EQ(sim.CallbackPoolSize(), 50u) << "wave " << wave;
  }
  EXPECT_EQ(hits, 6 * 50);
}

TEST(CalendarTest, HeapBoxedCallablesExecuteAndDestruct) {
  auto token = std::make_shared<int>(7);
  {
    Simulation sim;
    int sum = 0;
    // Large trivially-copyable capture: too big for the inline cell, heap-boxed.
    std::array<int, 64> big{};
    big[0] = 1;
    big[63] = 2;
    sim.ScheduleCallback(1.0, [big, &sum] { sum += big[0] + big[63]; });
    // Non-trivially-copyable capture (shared_ptr): also heap-boxed.
    sim.ScheduleCallback(2.0, [token, &sum] { sum += *token; });
    sim.Run();
    EXPECT_EQ(sum, 10);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(CalendarTest, PendingCallbacksAreDestroyedWithTheSimulation) {
  auto token = std::make_shared<int>(1);
  {
    Simulation sim;
    sim.ScheduleCallback(1.0, [token] { (void)*token; });
    sim.ScheduleCallback(2.0, [token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 3);
    // Destroy without running: the kernel must still release both captures.
  }
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Frame pool and live-process bookkeeping.
// ---------------------------------------------------------------------------

Process Sleeper(Simulation& /*sim*/, double delay) { co_await Delay(delay); }

TEST(FramePoolTest, SpawnWavesReuseFramesWithoutNewReservations) {
  auto run_wave = [] {
    Simulation sim;
    Rng rng(11);
    for (int i = 0; i < 64; ++i) {
      sim.Spawn(Sleeper(sim, static_cast<double>(1 + rng.UniformInt(100))));
    }
    sim.Run();
  };
  run_wave();  // Warm the thread-local pool to its high-water mark.
  FramePool::Stats warm = FramePool::ThreadStats();
  for (int wave = 0; wave < 5; ++wave) {
    run_wave();
  }
  FramePool::Stats after = FramePool::ThreadStats();
  // Steady state: frames recycle through the free lists; the slab footprint
  // (the RSS proxy) must not grow.
  EXPECT_EQ(after.bytes_reserved, warm.bytes_reserved);
  EXPECT_EQ(after.slabs_allocated, warm.slabs_allocated);
  EXPECT_GT(after.pool_allocs, warm.pool_allocs);
  EXPECT_EQ(after.live_frames, warm.live_frames);
}

TEST(LiveProcessTest, RandomOrderFinishKeepsCountExact) {
  Simulation sim;
  // Distinct delays in shuffled order: processes finish in a different order
  // than they were spawned, exercising the swap-with-back slot maintenance.
  Rng rng(5);
  std::vector<uint32_t> delays = rng.Permutation(40);
  for (uint32_t d : delays) {
    sim.Spawn(Sleeper(sim, static_cast<double>(d) + 1.0));
  }
  EXPECT_EQ(sim.live_processes(), 40);
  // Probe mid-run: at time 20.5 every process with delay <= 20 has finished.
  sim.RunUntil(20.5);
  EXPECT_EQ(sim.live_processes(), 20);
  sim.Run();
  EXPECT_EQ(sim.live_processes(), 0);
  EXPECT_EQ(sim.CalendarDepth(), 0u);
}

}  // namespace
}  // namespace emsim::sim

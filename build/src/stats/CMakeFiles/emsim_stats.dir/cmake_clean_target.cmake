file(REMOVE_RECURSE
  "libemsim_stats.a"
)

#include "util/rng.h"

#include <cmath>
#include <cstddef>
#include <numeric>
#include <utility>

namespace emsim {

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.Next();
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  EMSIM_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Exponential(double mean) {
  EMSIM_CHECK(mean > 0);
  double u = UniformDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) {
    return false;
  }
  if (p >= 1) {
    return true;
  }
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  EMSIM_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  EMSIM_CHECK(total > 0);
  double u = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    EMSIM_CHECK(weights[i] >= 0);
    acc += weights[i];
    if (u < acc) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slack: return the last index.
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = static_cast<uint32_t>(UniformInt(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Split() { return Rng(Next64() ^ 0x9E3779B97F4A7C15ULL); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  EMSIM_CHECK(n >= 1);
  EMSIM_CHECK(theta >= 0);
  h_integral_x1_ = H(1.5) - 1.0;
  h_integral_num_elements_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

double ZipfGenerator::H(double x) const {
  // Integral of x^-theta: handles theta == 1 (log) separately.
  if (theta_ == 1.0) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  if (theta_ == 1.0) {
    return std::exp(x);
  }
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (n_ == 1) {
    return 0;
  }
  if (theta_ == 0.0) {
    return rng.UniformInt(n_);
  }
  while (true) {
    double u =
        h_integral_num_elements_ + rng.UniformDouble() * (h_integral_x1_ - h_integral_num_elements_);
    double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(n_)) {
      k = static_cast<double>(n_);
    }
    if (k - x <= s_ || u >= H(k + 0.5) - std::pow(k, -theta_)) {
      return static_cast<uint64_t>(k) - 1;  // 0-based rank.
    }
  }
}

}  // namespace emsim

#!/usr/bin/env python3
"""Crash-safety acceptance tests for the journaled sweep driver.

Drives the real emsim_cli binary through the durability contract in
docs/SWEEPS.md:

  * SIGKILL the driver while shards are in flight (at a seeded, randomized
    moment), then --sweep-resume: the merged JSON is byte-identical to an
    uninterrupted run and the journal records the resumed completion;
  * a corrupted surviving artifact (truncation or bit flip) is detected on
    resume, quarantined as *.corrupt, re-executed, and the output is still
    byte-identical;
  * SIGTERM drains gracefully: exit code 3, journal has a drain record, and
    the run directory resumes to the identical bytes;
  * post-merge GC reclaims losing attempt files (journaled) and keeps the
    winners;
  * --sweep-stats embeds explicit-zero dispatch counters on a clean run and
    nonzero ones under chaos, without perturbing the default document.

Usage: sweep_resume_test.py <path-to-emsim_cli>
"""

import json
import os
import random
import signal
import subprocess
import sys
import time
import unittest

CLI = None

SPEC = """\
trials = 3
disks = 2
blocks = 30
runs = 4

[baseline]
n = 1
strategy = demand-run-only

[prefetch]
n = 4
seed = 7

[faulty]
n = 2
trials = 4
fault_media_error_rate = 0.02
fault_spike_rate = 0.05
fault_spike_ms = 10
"""


def run_cli(args, cwd, check=True):
    proc = subprocess.run(
        [CLI] + args, cwd=cwd, capture_output=True, text=True, timeout=240
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"emsim_cli {' '.join(args)} exited {proc.returncode}:\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc


def journal_kinds(run_dir):
    path = os.path.join(run_dir, "journal.jsonl")
    kinds = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                kinds.append(json.loads(line)["kind"])
            except json.JSONDecodeError:
                # A torn final line while the driver is mid-append; the CLI
                # tolerates it on resume, so the poller does too.
                continue
    return kinds


class SweepResumeTest(unittest.TestCase):
    def setUp(self):
        import tempfile

        self.tmp = tempfile.TemporaryDirectory(prefix="emsim_sweep_resume_")
        self.dir = self.tmp.name
        self.spec = os.path.join(self.dir, "spec.ini")
        with open(self.spec, "w", encoding="utf-8") as f:
            f.write(SPEC)

    def tearDown(self):
        self.tmp.cleanup()

    def reference_json(self):
        return run_cli(["--spec", self.spec, "--json", "-"], cwd=self.dir).stdout

    def sweep_args(self, run_dir, extra=None):
        args = [
            "--spec", self.spec,
            "--sweep", "4",
            "--sweep-workers", "1",
            "--shard-dir", run_dir,
            "--json", "-",
        ]
        return args + (extra or [])

    def resume_args(self, run_dir, extra=None):
        args = ["--spec", self.spec, "--sweep-resume", run_dir, "--json", "-"]
        return args + (extra or [])

    def test_sigkill_midway_then_resume_is_byte_identical(self):
        want = self.reference_json()
        seed = int(os.environ.get("EMSIM_CHAOS_SEED", "0")) or int(time.time())
        rng = random.Random(seed)
        print(f"[chaos] seed={seed}", file=sys.stderr)
        run_dir = os.path.join(self.dir, "run_sigkill")
        # Launch the driver, SIGKILL it once the journal shows the first
        # shard_done (a randomized extra delay varies the kill point).
        proc = subprocess.Popen(
            [CLI] + self.sweep_args(run_dir),
            cwd=self.dir,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        journal = os.path.join(run_dir, "journal.jsonl")
        deadline = time.time() + 120
        killed = False
        target_dones = rng.randint(1, 3)
        while time.time() < deadline and proc.poll() is None:
            try:
                kinds = journal_kinds(run_dir)
            except FileNotFoundError:
                kinds = []
            if kinds.count("shard_done") >= target_dones:
                proc.kill()
                killed = True
                break
            time.sleep(0.005)
        proc.wait(timeout=60)
        if not killed:
            # The sweep outran the poller; the resume below degrades to the
            # already-complete case, which must also be byte-identical.
            print("[chaos] driver finished before the kill", file=sys.stderr)
        self.assertTrue(os.path.exists(journal), "journal must survive the kill")

        resumed = run_cli(self.resume_args(run_dir), cwd=self.dir)
        self.assertEqual(resumed.stdout, want, "resumed JSON differs from reference")
        kinds = journal_kinds(run_dir)
        self.assertEqual(kinds[0], "run_start")
        self.assertEqual(kinds[-1], "run_done")

    def test_resume_after_truncated_artifact_quarantines_and_matches(self):
        want = self.reference_json()
        run_dir = os.path.join(self.dir, "run_trunc")
        run_cli(self.sweep_args(run_dir), cwd=self.dir)
        victim = os.path.join(run_dir, "shard_1_of_4.attempt1.json")
        with open(victim, "r+b") as f:
            f.truncate(os.path.getsize(victim) // 2)
        resumed = run_cli(self.resume_args(run_dir), cwd=self.dir)
        self.assertEqual(resumed.stdout, want)
        self.assertIn("quarantined", resumed.stderr)
        self.assertIn("shard_1_of_4.attempt1.json", resumed.stderr)
        self.assertTrue(os.path.exists(victim + ".corrupt"))
        self.assertIn("quarantine", journal_kinds(run_dir))

    def test_resume_after_bit_flip_quarantines_and_matches(self):
        want = self.reference_json()
        run_dir = os.path.join(self.dir, "run_flip")
        run_cli(self.sweep_args(run_dir), cwd=self.dir)
        victim = os.path.join(run_dir, "shard_2_of_4.attempt1.json")
        with open(victim, "r+b") as f:
            data = bytearray(f.read())
            data[len(data) // 3] ^= 0x01
            f.seek(0)
            f.write(data)
        resumed = run_cli(self.resume_args(run_dir), cwd=self.dir)
        self.assertEqual(resumed.stdout, want)
        self.assertIn("shard_2_of_4.attempt1.json", resumed.stderr)
        self.assertTrue(os.path.exists(victim + ".corrupt"))

    def test_sigterm_drains_with_exit_3_and_resumes(self):
        want = self.reference_json()
        run_dir = os.path.join(self.dir, "run_drain")
        proc = subprocess.Popen(
            [CLI] + self.sweep_args(run_dir),
            cwd=self.dir,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        journal = os.path.join(run_dir, "journal.jsonl")
        deadline = time.time() + 120
        while time.time() < deadline and proc.poll() is None:
            try:
                if journal_kinds(run_dir).count("shard_done") >= 1:
                    proc.send_signal(signal.SIGTERM)
                    break
            except FileNotFoundError:
                pass
            time.sleep(0.005)
        _, stderr = proc.communicate(timeout=120)
        if proc.returncode == 0:
            self.skipTest("sweep finished before SIGTERM landed")
        self.assertEqual(proc.returncode, 3, f"drain must exit 3:\n{stderr}")
        self.assertIn("drained", stderr)
        self.assertIn("drain", journal_kinds(run_dir))

        resumed = run_cli(self.resume_args(run_dir), cwd=self.dir)
        self.assertEqual(resumed.stdout, want)
        self.assertEqual(journal_kinds(run_dir)[-1], "run_done")

    def test_gc_reclaims_losing_attempts_and_keeps_winners(self):
        run_dir = os.path.join(self.dir, "run_gc")
        run_cli(
            self.sweep_args(
                run_dir,
                ["--sweep-chaos-kill-shard", "1", "--shard-backoff-ms", "1"],
            ),
            cwd=self.dir,
        )
        files = sorted(os.listdir(run_dir))
        # The chaos-killed attempt 1 of shard 1 must be gone; the winning
        # attempt 2 must remain. (A killed attempt usually writes nothing —
        # reclaim only fires when a stale file actually existed.)
        self.assertNotIn("shard_1_of_4.attempt1.json", files)
        self.assertIn("shard_1_of_4.attempt2.json", files)
        for shard in (0, 2, 3):
            self.assertIn(f"shard_{shard}_of_4.attempt1.json", files)
        kinds = journal_kinds(run_dir)
        self.assertEqual(kinds[-1], "run_done")

    def test_sweep_stats_zeros_when_clean_and_nonzero_under_chaos(self):
        want = self.reference_json()
        run_dir = os.path.join(self.dir, "run_stats")
        clean = run_cli(
            self.sweep_args(run_dir, ["--sweep-stats"]), cwd=self.dir
        )
        doc = json.loads(clean.stdout)
        self.assertIn("dispatch", doc)
        self.assertEqual(doc["dispatch"]["launches"], 4)
        for key in (
            "resubmissions",
            "deadline_kills",
            "chaos_kills",
            "spawn_failures",
            "drain_kills",
        ):
            self.assertEqual(doc["dispatch"][key], 0, key)
        # Without --sweep-stats the same run dir layout yields bytes
        # identical to the single-process document.
        plain = run_cli(
            self.sweep_args(os.path.join(self.dir, "run_stats_plain")),
            cwd=self.dir,
        )
        self.assertEqual(plain.stdout, want)

        chaos = run_cli(
            self.sweep_args(
                os.path.join(self.dir, "run_stats_chaos"),
                ["--sweep-stats", "--sweep-chaos-kill-shard", "0",
                 "--shard-backoff-ms", "1"],
            ),
            cwd=self.dir,
        )
        chaos_doc = json.loads(chaos.stdout)
        self.assertEqual(chaos_doc["dispatch"]["chaos_kills"], 1)
        self.assertEqual(chaos_doc["dispatch"]["resubmissions"], 1)
        self.assertEqual(chaos_doc["dispatch"]["launches"], 5)
        # Experiments payload is unchanged by the extra block.
        self.assertEqual(chaos_doc["experiments"], json.loads(want)["experiments"])

    def test_resume_with_wrong_spec_is_rejected(self):
        run_dir = os.path.join(self.dir, "run_wrong_spec")
        run_cli(self.sweep_args(run_dir), cwd=self.dir)
        other = os.path.join(self.dir, "other.ini")
        with open(other, "w", encoding="utf-8") as f:
            f.write("[other]\nruns = 5\ndisks = 2\nblocks = 30\n")
        proc = run_cli(
            ["--spec", other, "--sweep-resume", run_dir, "--json", "-"],
            cwd=self.dir,
            check=False,
        )
        self.assertEqual(proc.returncode, 2)
        self.assertIn("original spec", proc.stderr)

    def test_resume_without_journal_is_an_error(self):
        empty = os.path.join(self.dir, "not_a_run_dir")
        os.makedirs(empty)
        proc = run_cli(self.resume_args(empty), cwd=self.dir, check=False)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("journal", proc.stderr)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit("usage: sweep_resume_test.py <path-to-emsim_cli>")
    CLI = os.path.abspath(sys.argv[1])
    del sys.argv[1]
    unittest.main(verbosity=2)

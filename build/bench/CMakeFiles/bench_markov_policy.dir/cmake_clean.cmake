file(REMOVE_RECURSE
  "CMakeFiles/bench_markov_policy.dir/bench_markov_policy.cc.o"
  "CMakeFiles/bench_markov_policy.dir/bench_markov_policy.cc.o.d"
  "bench_markov_policy"
  "bench_markov_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_markov_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Ablation: the paper's conservative all-or-nothing cache admission vs the
// greedy partial-prefetch alternative it rejected (Section 2, backed by the
// companion Markov analysis at one run per disk and unit fetches).
//
// Measured outcome in this simulator: at N = 1 — the setting the paper's
// analysis actually covers — the two policies are equivalent to within
// noise, with conservative marginally ahead at larger caches. At N > 1 the
// greedy policy *wins* on total time, because its partial multi-block
// fetches still amortize seek and latency while conservative degrades to
// single-block demand fetches. This is documented as a deviation in
// EXPERIMENTS.md: the paper compared average I/O parallelism, not total
// time, and only analyzed unit-depth fetches.

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "core/config.h"
#include "stats/table.h"
#include "util/str.h"

int main() {
  using namespace emsim;
  using core::AdmissionPolicy;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using stats::Table;

  bench::Banner("Ablation A-POL: cache admission policy",
                "All Disks One Run, unsynchronized, k=25, D=5; sweep cache\n"
                "size at N=1 (the paper's analyzed case) and N=10.");

  for (int n : {1, 10}) {
    Table table({"cache (blocks)", "conservative (s)", "greedy (s)",
                 "conservative succ", "greedy conc", "conservative conc"});
    std::vector<int64_t> caches =
        n == 1 ? std::vector<int64_t>{30, 50, 80, 120, 200}
                : std::vector<int64_t>{100, 200, 300, 500, 700, 900};
    for (int64_t c : caches) {
      MergeConfig cfg =
          MergeConfig::Paper(25, 5, n, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
      cfg.cache_blocks = c;
      auto conservative = bench::Run(cfg);
      cfg.admission = AdmissionPolicy::kGreedy;
      auto greedy = bench::Run(cfg);
      table.AddRow({Table::Cell(static_cast<double>(c), 0), bench::TimeCell(conservative),
                    bench::TimeCell(greedy),
                    Table::Cell(conservative.MeanSuccessRatio(), 3),
                    Table::Cell(greedy.MeanConcurrency(), 3),
                    Table::Cell(conservative.MeanConcurrency(), 3)});
    }
    bench::EmitTable(StrFormat("Admission policy at N=%d", n), table,
                     n == 1 ? "policies statistically tied (paper's analyzed case)"
                            : "greedy wins at depth: partial fetches keep seek "
                              "amortization (deviation from the paper's conjecture)");
  }
  emsim::bench::WriteJsonArtifact("ablation_cache_policy");
  return 0;
}

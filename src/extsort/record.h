#ifndef EMSIM_EXTSORT_RECORD_H_
#define EMSIM_EXTSORT_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace emsim::extsort {

/// A fixed-size sort record: 8-byte key, 8-byte payload. The paper's blocks
/// hold on the order of 100 records; with 4,096-byte blocks these records
/// give 255 per block (4 bytes of header).
struct Record {
  uint64_t key = 0;
  uint64_t value = 0;

  friend bool operator<(const Record& a, const Record& b) {
    if (a.key != b.key) {
      return a.key < b.key;
    }
    return a.value < b.value;
  }
  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

static_assert(sizeof(Record) == 16, "Record layout is part of the block format");

/// Serialization of records into fixed-size blocks:
///   [uint32 count][count * Record]; trailing bytes zero.
class RecordBlock {
 public:
  /// Records that fit in a block of `block_bytes`.
  static size_t Capacity(size_t block_bytes) {
    return (block_bytes - sizeof(uint32_t)) / sizeof(Record);
  }

  /// Encodes `records` (size <= Capacity) into `block` (size block_bytes).
  static void Encode(std::span<const Record> records, std::span<uint8_t> block);

  /// Decodes a block; fails on a corrupt count.
  static Status Decode(std::span<const uint8_t> block, std::vector<Record>* records);
};

/// True if `records` is sorted by (key, value).
bool IsSorted(std::span<const Record> records);

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_RECORD_H_

#ifndef EMSIM_EXTSORT_MERGE_PLAN_H_
#define EMSIM_EXTSORT_MERGE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "extsort/block_device.h"
#include "extsort/merger.h"
#include "extsort/run_io.h"
#include "util/status.h"

namespace emsim::extsort {

/// One merge step: the listed runs (indices into the evolving run list —
/// initial runs first, then each step's output in order) merge into the run
/// whose index is `output`.
struct MergeStep {
  std::vector<int> inputs;
  int output = 0;
};

/// A fan-in-limited merge schedule over the initial runs.
struct MergePlan {
  std::vector<MergeStep> steps;

  /// Blocks read (= written) across all steps; the I/O-volume cost of the
  /// schedule. A single-step merge moves each block once.
  int64_t blocks_moved = 0;

  /// Longest chain from an initial run to the final output (1 = one pass).
  int depth = 0;

  std::string ToString() const;
};

/// Plans a merge of runs with the given block counts under a fan-in limit
/// `fan_in` >= 2, minimizing total blocks moved (k-ary Huffman with dummy
/// runs, the classical optimal merge pattern — Knuth 5.4.9). With
/// k <= fan_in the plan is the single k-way merge the paper studies.
MergePlan PlanMerge(const std::vector<int64_t>& run_blocks, int fan_in);

/// Executes a plan: intermediate runs are appended on `scratch` after
/// `next_free_block`; the final step writes to `output` at block 0.
/// Verifies order throughout (via MergeRuns).
Result<MergeOutcome> ExecuteMergePlan(const MergePlan& plan,
                                      const std::vector<RunDescriptor>& initial_runs,
                                      BlockDevice* scratch, int64_t next_free_block,
                                      BlockDevice* output,
                                      const KWayMergeOptions& options);

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_MERGE_PLAN_H_

file(REMOVE_RECURSE
  "CMakeFiles/seek_validation_test.dir/seek_validation_test.cc.o"
  "CMakeFiles/seek_validation_test.dir/seek_validation_test.cc.o.d"
  "seek_validation_test"
  "seek_validation_test.pdb"
  "seek_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seek_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

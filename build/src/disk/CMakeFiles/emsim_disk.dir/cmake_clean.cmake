file(REMOVE_RECURSE
  "CMakeFiles/emsim_disk.dir/array.cc.o"
  "CMakeFiles/emsim_disk.dir/array.cc.o.d"
  "CMakeFiles/emsim_disk.dir/disk.cc.o"
  "CMakeFiles/emsim_disk.dir/disk.cc.o.d"
  "CMakeFiles/emsim_disk.dir/disk_params.cc.o"
  "CMakeFiles/emsim_disk.dir/disk_params.cc.o.d"
  "CMakeFiles/emsim_disk.dir/geometry.cc.o"
  "CMakeFiles/emsim_disk.dir/geometry.cc.o.d"
  "CMakeFiles/emsim_disk.dir/layout.cc.o"
  "CMakeFiles/emsim_disk.dir/layout.cc.o.d"
  "CMakeFiles/emsim_disk.dir/mechanism.cc.o"
  "CMakeFiles/emsim_disk.dir/mechanism.cc.o.d"
  "libemsim_disk.a"
  "libemsim_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsim_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

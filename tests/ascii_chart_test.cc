#include "stats/ascii_chart.h"
#include "stats/series.h"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace emsim::stats {
namespace {

Figure SampleFigure() {
  Figure fig("Fig T", "N", "seconds");
  Series& a = fig.AddSeries("down");
  a.Add(1, 100);
  a.Add(10, 50);
  a.Add(30, 20);
  Series& b = fig.AddSeries("flat");
  b.Add(1, 40);
  b.Add(30, 40);
  return fig;
}

TEST(AsciiChartTest, ContainsStructure) {
  std::string chart = RenderAsciiChart(SampleFigure());
  EXPECT_NE(chart.find("Fig T"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);   // Series 0 glyph.
  EXPECT_NE(chart.find('o'), std::string::npos);   // Series 1 glyph.
  EXPECT_NE(chart.find("legend:"), std::string::npos);
  EXPECT_NE(chart.find("down"), std::string::npos);
  EXPECT_NE(chart.find("flat"), std::string::npos);
  EXPECT_NE(chart.find("100"), std::string::npos);  // Max y label.
  EXPECT_NE(chart.find("20"), std::string::npos);   // Min y label.
  EXPECT_NE(chart.find("30"), std::string::npos);   // Max x label.
}

TEST(AsciiChartTest, RespectsDimensions) {
  AsciiChartOptions opt;
  opt.width = 40;
  opt.height = 10;
  std::string chart = RenderAsciiChart(SampleFigure(), opt);
  int plot_rows = 0;
  size_t pos = 0;
  while ((pos = chart.find('|', pos)) != std::string::npos) {
    ++plot_rows;
    ++pos;
  }
  EXPECT_EQ(plot_rows, 10);
}

TEST(AsciiChartTest, MonotoneSeriesDescendsVisually) {
  Figure fig("mono", "x", "y");
  Series& s = fig.AddSeries("s");
  for (int x = 0; x <= 10; ++x) {
    s.Add(x, 100 - 10 * x);
  }
  AsciiChartOptions opt;
  opt.width = 11;
  opt.height = 11;
  std::string chart = RenderAsciiChart(fig, opt);
  // The first plotted row (max y) holds the leftmost point, the last row
  // the rightmost: find the column of '*' in each plot row and check it
  // increases.
  std::vector<int> cols;
  size_t start = 0;
  while (true) {
    size_t bar = chart.find('|', start);
    if (bar == std::string::npos) {
      break;
    }
    size_t eol = chart.find('\n', bar);
    size_t star = chart.find('*', bar);
    if (star != std::string::npos && star < eol) {
      cols.push_back(static_cast<int>(star - bar));
    }
    start = eol;
  }
  ASSERT_GE(cols.size(), 5u);
  for (size_t i = 1; i < cols.size(); ++i) {
    EXPECT_GT(cols[i], cols[i - 1]);
  }
}

TEST(AsciiChartTest, EmptyFigureHandled) {
  Figure fig("empty", "x", "y");
  std::string chart = RenderAsciiChart(fig);
  EXPECT_NE(chart.find("no data"), std::string::npos);
}

TEST(AsciiChartTest, CollisionsMarked) {
  Figure fig("overlap", "x", "y");
  fig.AddSeries("a").Add(1, 1);
  fig.AddSeries("b").Add(1, 1);
  std::string chart = RenderAsciiChart(fig);
  EXPECT_NE(chart.find('?'), std::string::npos);
}

TEST(AsciiChartTest, LogScaleCompressesLargeRanges) {
  Figure fig("log", "x", "y");
  Series& s = fig.AddSeries("s");
  s.Add(0, 1);
  s.Add(1, 10);
  s.Add(2, 100);
  s.Add(3, 1000);
  AsciiChartOptions opt;
  opt.width = 20;
  opt.height = 7;
  opt.log_y = true;
  std::string chart = RenderAsciiChart(fig, opt);
  // Under log scale the four decades land on four distinct, evenly spread
  // rows; count the populated rows.
  int rows_with_glyph = 0;
  size_t start = 0;
  while (true) {
    size_t bar = chart.find('|', start);
    if (bar == std::string::npos) {
      break;
    }
    size_t eol = chart.find('\n', bar);
    rows_with_glyph += chart.find('*', bar) < eol;
    start = eol;
  }
  EXPECT_EQ(rows_with_glyph, 4);
}

}  // namespace
}  // namespace emsim::stats

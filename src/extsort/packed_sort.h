#ifndef EMSIM_EXTSORT_PACKED_SORT_H_
#define EMSIM_EXTSORT_PACKED_SORT_H_

#include <cstddef>
#include <cstdint>

#include "extsort/block_device.h"
#include "util/status.h"

namespace emsim::extsort {

/// External mergesort over fixed-size packed byte records (key = first 8
/// bytes) — the byte-level counterpart of ExternalSorter, sized so tag sort
/// and mergesort can be compared on identical data (Kwan & Baer's study).
struct PackedSortOptions {
  size_t record_bytes = 64;
  size_t memory_records = 4096;   ///< Records per load-sort chunk.
  int reader_buffer_blocks = 4;   ///< Blocks per merge-phase read.
};

struct PackedSortStats {
  uint64_t records = 0;
  uint64_t runs = 0;
  int64_t run_blocks = 0;      ///< Blocks written as initial runs.
  int64_t output_blocks = 0;
};

class PackedExternalSorter {
 public:
  explicit PackedExternalSorter(const PackedSortOptions& options) : options_(options) {}

  /// Sorts `count` packed records from `input` into `output`; initial runs
  /// land on `scratch`.
  Result<PackedSortStats> Sort(BlockDevice* input, uint64_t count, BlockDevice* scratch,
                               BlockDevice* output);

 private:
  PackedSortOptions options_;
};

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_PACKED_SORT_H_

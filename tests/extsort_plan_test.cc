#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "extsort/block_device.h"
#include "extsort/external_sort.h"
#include "extsort/merge_plan.h"
#include "extsort/merger.h"
#include "extsort/record.h"
#include "extsort/run_formation.h"
#include "extsort/run_io.h"
#include "workload/record_generator.h"

namespace emsim::extsort {
namespace {

TEST(PlanMergeTest, SingleRunNeedsNoSteps) {
  MergePlan plan = PlanMerge({100}, 4);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_EQ(plan.blocks_moved, 0);
  EXPECT_EQ(plan.depth, 0);
}

TEST(PlanMergeTest, WithinFanInIsOnePass) {
  MergePlan plan = PlanMerge({10, 20, 30}, 4);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.depth, 1);
  EXPECT_EQ(plan.blocks_moved, 60);
  EXPECT_EQ(plan.steps[0].inputs.size(), 3u);
  EXPECT_EQ(plan.steps[0].output, 3);
}

TEST(PlanMergeTest, RespectsFanInLimit) {
  std::vector<int64_t> runs(20, 50);
  for (int f : {2, 3, 4, 7}) {
    MergePlan plan = PlanMerge(runs, f);
    for (const MergeStep& step : plan.steps) {
      EXPECT_LE(static_cast<int>(step.inputs.size()), f);
      EXPECT_GE(step.inputs.size(), 1u);
    }
    // Every initial run consumed exactly once; every intermediate run
    // produced once and consumed once except the final output.
    std::vector<int> consumed(20 + plan.steps.size(), 0);
    for (const MergeStep& step : plan.steps) {
      for (int idx : step.inputs) {
        ++consumed[static_cast<size_t>(idx)];
      }
    }
    for (size_t i = 0; i + 1 < consumed.size(); ++i) {
      EXPECT_EQ(consumed[i], 1) << "f=" << f << " run " << i;
    }
    EXPECT_EQ(consumed.back(), 0);  // The final output is never consumed.
  }
}

TEST(PlanMergeTest, EqualRunsBalancedDepth) {
  // 16 equal runs, fan-in 4: exactly 2 passes moving every block twice.
  std::vector<int64_t> runs(16, 100);
  MergePlan plan = PlanMerge(runs, 4);
  EXPECT_EQ(plan.depth, 2);
  EXPECT_EQ(plan.blocks_moved, 2 * 1600);
  EXPECT_EQ(plan.steps.size(), 5u);  // 4 leaf merges + 1 root.
}

TEST(PlanMergeTest, HuffmanPrefersMergingSmallRunsFirst) {
  // Two big runs and three tiny ones, fan-in 2. Optimal: combine the tiny
  // runs deep in the tree, the big runs near the root.
  MergePlan plan = PlanMerge({1000, 1000, 1, 1, 1}, 2);
  // Lower bound by construction: tiny runs move multiple times, big twice.
  // Naive left-to-right pairing would move a big run 3+ times (>= 5000).
  EXPECT_LE(plan.blocks_moved, 1000 * 2 + 1000 * 2 + 3 * 4);
}

TEST(PlanMergeTest, DummyPaddingKeepsStepsFull) {
  // 4 runs, fan-in 3: (4-1) % 2 == 1, so one dummy pads the first step,
  // which then takes 2 real runs; total 2 steps.
  MergePlan plan = PlanMerge({10, 10, 10, 10}, 3);
  EXPECT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].inputs.size(), 2u);  // 2 real + 1 dummy.
  EXPECT_EQ(plan.steps[1].inputs.size(), 3u);
  // Optimal volume: two cheapest runs move twice, others once -> 60.
  EXPECT_EQ(plan.blocks_moved, 60);
}

std::vector<Record> MakeRecords(size_t n, uint64_t seed) {
  workload::RecordGeneratorOptions opt;
  opt.seed = seed;
  workload::RecordGenerator gen(opt);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back({gen.NextKey(), i});
  }
  return records;
}

class MultiPassMerge : public ::testing::TestWithParam<int> {};

TEST_P(MultiPassMerge, SortsCorrectlyUnderFanInLimit) {
  int fan_in = GetParam();
  auto input = MakeRecords(20000, 77);
  MemoryBlockDevice scratch(1 << 14, 4096);
  MemoryBlockDevice output(1 << 12, 4096);

  RunFormationOptions rf;
  rf.memory_records = 1000;  // 20 initial runs.
  auto runs = FormRuns(input, &scratch, rf);
  ASSERT_TRUE(runs.ok());
  ASSERT_EQ(runs->runs.size(), 20u);

  std::vector<int64_t> blocks;
  for (const auto& run : runs->runs) {
    blocks.push_back(run.num_blocks);
  }
  MergePlan plan = PlanMerge(blocks, fan_in);
  KWayMergeOptions options;
  auto outcome = ExecuteMergePlan(plan, runs->runs, &scratch, runs->next_free_block,
                                  &output, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->records_merged, 20000u);

  auto sorted = ExternalSorter::ReadRun(&output, outcome->output);
  ASSERT_TRUE(sorted.ok());
  std::vector<Record> expect = input;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(*sorted, expect);
}

INSTANTIATE_TEST_SUITE_P(FanIns, MultiPassMerge, ::testing::Values(2, 3, 5, 8, 20, 64));

TEST(MultiPassMergeTest, SingleRunCopiesThrough) {
  auto input = MakeRecords(500, 5);
  std::sort(input.begin(), input.end());
  MemoryBlockDevice scratch(64, 4096);
  MemoryBlockDevice output(64, 4096);
  RunWriter writer(&scratch, 0);
  for (const Record& r : input) {
    ASSERT_TRUE(writer.Append(r).ok());
  }
  auto run = writer.Finish();
  ASSERT_TRUE(run.ok());

  MergePlan plan = PlanMerge({run->num_blocks}, 4);
  auto outcome = ExecuteMergePlan(plan, {*run}, &scratch, run->num_blocks, &output,
                                  KWayMergeOptions{});
  ASSERT_TRUE(outcome.ok());
  auto sorted = ExternalSorter::ReadRun(&output, outcome->output);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(*sorted, input);
}

TEST(MultiPassMergeTest, BlocksMovedMatchesDeviceTraffic) {
  auto input = MakeRecords(10000, 11);
  MemoryBlockDevice scratch(1 << 14, 4096);
  MemoryBlockDevice output(1 << 11, 4096);
  RunFormationOptions rf;
  rf.memory_records = 1000;
  auto runs = FormRuns(input, &scratch, rf);
  ASSERT_TRUE(runs.ok());
  std::vector<int64_t> blocks;
  for (const auto& run : runs->runs) {
    blocks.push_back(run.num_blocks);
  }
  MergePlan plan = PlanMerge(blocks, 3);
  uint64_t reads_before = scratch.reads();
  auto outcome = ExecuteMergePlan(plan, runs->runs, &scratch, runs->next_free_block,
                                  &output, KWayMergeOptions{});
  ASSERT_TRUE(outcome.ok());
  // Every planned block movement is one block read from scratch.
  EXPECT_EQ(scratch.reads() - reads_before, static_cast<uint64_t>(plan.blocks_moved));
}

}  // namespace
}  // namespace emsim::extsort

// emsim_cli — run merge-phase simulations from the command line or from an
// experiment spec file, emitting a table or CSV.
//
//   # single configuration from flags
//   $ emsim_cli --runs 25 --disks 5 --n 10 --strategy all-disks-one-run
//
//   # batch of experiments from a spec file (see workload/experiment_spec.h)
//   $ emsim_cli --spec experiments.ini --format csv
//
//   # machine-readable export for CI / regression diffing (docs/USAGE.md)
//   $ emsim_cli --runs 25 --disks 5 --n 10 --json results.json
//
//   # sharded sweep across worker subprocesses (docs/SWEEPS.md); the output
//   # is byte-identical to the single-process run above
//   $ emsim_cli --spec experiments.ini --sweep 4 --json results.json
//
//   # resume a crashed or drained sweep from its journaled run directory;
//   # the merged output is byte-identical to an uninterrupted run
//   $ emsim_cli --spec experiments.ini --sweep-resume sweep_shards --json results.json
//
//   # the pieces the driver composes, runnable by hand or from CI:
//   $ emsim_cli --spec e.ini --sweep-worker --shard 0/4 --shard-out s0.json
//   $ emsim_cli --spec e.ini --sweep-merge s0.json s1.json s2.json s3.json

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <dirent.h>
#include <functional>
#include <map>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/experiment.h"
#include "core/result.h"
#include "core/result_json.h"
#include "sim/calendar.h"
#include "stats/json_writer.h"
#include "stats/table.h"
#include "sweep/dispatcher.h"
#include "sweep/journal.h"
#include "sweep/merge.h"
#include "sweep/shard.h"
#include "util/atomic_file.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/str.h"
#include "workload/experiment_spec.h"

using namespace emsim;

namespace {

// Exit codes: 0 ok, 1 failure, 2 usage, and for sweeps:
constexpr int kExitDrained = 3;  ///< Graceful drain — run is resumable.

std::atomic<bool> g_drain{false};

void OnDrainSignal(int) { g_drain.store(true); }

void AddResultRow(stats::Table& table, const std::string& name,
                  const core::MergeConfig& cfg, const core::ExperimentResult& result) {
  auto ci = result.TotalSecondsCi();
  const core::MergeResult& first = result.trials.front();
  table.AddRow({name, core::StrategyName(cfg.strategy),
                StrFormat("%d", cfg.prefetch_depth), core::SyncModeName(cfg.sync),
                StrFormat("%lld", static_cast<long long>(cfg.EffectiveCacheBlocks())),
                StrFormat("%.2f", ci.mean), StrFormat("%.2f", ci.half_width),
                stats::Table::Cell(result.MeanSuccessRatio(), 3),
                stats::Table::Cell(result.MeanConcurrency(), 2),
                stats::Table::Cell(first.stall_ms.Mean(), 2),
                StrFormat("%llu", static_cast<unsigned long long>(first.stall_ms.count()))});
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::string text;
  char buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

/// Renders the sweep results exactly like a plain run: per-spec table rows
/// on stdout (or stderr when stdout carries the JSON), plus the optional
/// schema-stable JSON document (written atomically — a crashed run leaves
/// the previous file intact, never a torn one). Used identically by the
/// single-process, driver and merge modes so their outputs are
/// byte-comparable. `extra_json` adds opt-in top-level blocks (dispatch
/// counters); null keeps the document byte-identical to the plain form.
int EmitResults(const std::vector<core::SweepUnit>& units,
                const std::vector<core::ExperimentResult>& results,
                const std::string& format, const std::string& json_path,
                const std::function<void(stats::JsonWriter&)>& extra_json = nullptr) {
  stats::Table table({"experiment", "strategy", "N", "sync", "cache", "time_s",
                      "ci95_s", "success", "concurrency", "stall_ms", "stalls"});
  std::vector<core::NamedExperiment> named;
  for (size_t i = 0; i < units.size(); ++i) {
    AddResultRow(table, units[i].name, units[i].config, results[i]);
    named.push_back(core::NamedExperiment{units[i].name, units[i].config, &results[i]});
  }
  // With --json -, stdout belongs to the JSON document (so it can be piped
  // into jq and friends); the human table moves to stderr.
  std::fprintf(json_path == "-" ? stderr : stdout, "%s",
               format == "csv" ? table.ToCsv().c_str() : table.ToString().c_str());
  if (!json_path.empty()) {
    std::string doc = core::ExperimentSetToJson(named, extra_json);
    if (json_path == "-") {
      std::printf("%s", doc.c_str());
    } else {
      Status written = util::WriteFileAtomic(json_path, doc);
      if (!written.ok()) {
        std::fprintf(stderr, "%s\n", written.ToString().c_str());
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("emsim_cli");
  int runs = 25;
  int disks = 5;
  int64_t blocks = 1000;
  int n = 10;
  int64_t cache = core::MergeConfig::kAutoCache;
  double cpu_ms = 0.0;
  double zipf_theta = 0.0;
  int trials = 5;
  int64_t seed = 1;
  std::string strategy = "all-disks-one-run";
  std::string sync = "unsync";
  std::string admission = "conservative";
  std::string victim = "random";
  std::string depletion = "uniform";
  std::string write_traffic = "none";
  std::string spec_path;
  std::string format = "table";
  std::string json_path;
  bool collect_metrics = false;
  std::string calendar_name;
  bool help = false;
  bool print_spec = false;
  // Fault injection (docs/ROBUSTNESS.md). Defaults leave injection off, which
  // keeps every artifact byte-identical to the fault-free schema.
  double fault_media_error_rate = 0.0;
  double fault_spike_rate = 0.0;
  double fault_spike_ms = 50.0;
  int fault_slow_disk = -1;
  double fault_slow_factor = 4.0;
  double fault_slow_start_ms = 0.0;
  double fault_slow_end_ms = -1.0;
  int fault_stop_disk = -1;
  double fault_stop_start_ms = 0.0;
  double fault_stop_end_ms = -1.0;
  int64_t fault_seed = 0;
  int fault_max_retries = 4;
  double fault_timeout_ms = 2000.0;
  double fault_backoff_ms = 20.0;
  double fault_backoff_mult = 2.0;
  int64_t max_sim_events = 0;
  double max_wall_ms = 0.0;
  // Sharded sweep fabric (docs/SWEEPS.md).
  int threads = 0;
  int sweep = 0;
  int sweep_workers = 0;
  bool sweep_worker = false;
  bool sweep_merge = false;
  std::string sweep_resume;
  bool sweep_stats = false;
  std::string shard;
  std::string shard_out;
  std::string shard_dir = "sweep_shards";
  double shard_timeout_ms = 0.0;
  int shard_retries = 2;
  double shard_backoff_ms = 100.0;
  double sweep_drain_grace_ms = 2000.0;
  int sweep_chaos_kill_shard = -1;

  flags.AddInt("runs", &runs, "number of sorted runs (k)");
  flags.AddInt("disks", &disks, "number of input disks (D)");
  flags.AddInt64("blocks", &blocks, "blocks per run");
  flags.AddInt("n", &n, "prefetch depth (N)");
  flags.AddInt64("cache", &cache, "cache size in blocks (-1 = auto)");
  flags.AddDouble("cpu_ms", &cpu_ms, "CPU time to merge one block (ms)");
  flags.AddDouble("zipf_theta", &zipf_theta, "depletion skew for --depletion zipf");
  flags.AddInt("trials", &trials, "trials to average");
  flags.AddInt64("seed", &seed, "base RNG seed");
  flags.AddString("strategy", &strategy, "demand-run-only | all-disks-one-run");
  flags.AddString("sync", &sync, "sync | unsync");
  flags.AddString("admission", &admission, "conservative | greedy");
  flags.AddString("victim", &victim,
                  "random | round-robin | fewest-buffered | nearest-head");
  flags.AddString("depletion", &depletion, "uniform | zipf");
  flags.AddString("write_traffic", &write_traffic, "none | separate | shared");
  flags.AddString("spec", &spec_path, "experiment spec file (overrides other flags)");
  flags.AddString("format", &format, "table | csv");
  flags.AddString("json", &json_path,
                  "also write a schema-stable JSON document here ('-' = stdout)");
  flags.AddBool("metrics", &collect_metrics,
                "collect the full metrics registry into the JSON export");
  flags.AddString("calendar", &calendar_name,
                  "event-calendar backend: heap | cq (default: EMSIM_CALENDAR, "
                  "else heap; results are byte-identical either way)");
  flags.AddBool("print_spec", &print_spec, "echo each experiment as spec syntax");
  flags.AddDouble("fault_media_error_rate", &fault_media_error_rate,
                  "P(injected media error) per read request");
  flags.AddDouble("fault_spike_rate", &fault_spike_rate,
                  "P(latency spike) per request");
  flags.AddDouble("fault_spike_ms", &fault_spike_ms, "extra latency per spike (ms)");
  flags.AddInt("fault_slow_disk", &fault_slow_disk, "fail-slow disk id (-1 = none)");
  flags.AddDouble("fault_slow_factor", &fault_slow_factor,
                  "fail-slow service-time multiplier");
  flags.AddDouble("fault_slow_start_ms", &fault_slow_start_ms, "fail-slow window start");
  flags.AddDouble("fault_slow_end_ms", &fault_slow_end_ms,
                  "fail-slow window end (-1 = forever)");
  flags.AddInt("fault_stop_disk", &fault_stop_disk, "fail-stop disk id (-1 = none)");
  flags.AddDouble("fault_stop_start_ms", &fault_stop_start_ms, "fail-stop outage start");
  flags.AddDouble("fault_stop_end_ms", &fault_stop_end_ms,
                  "fail-stop outage end (-1 = forever)");
  flags.AddInt64("fault_seed", &fault_seed,
                 "fault RNG seed (0 = derive from --seed)");
  flags.AddInt("fault_max_retries", &fault_max_retries, "retries before a span fails");
  flags.AddDouble("fault_timeout_ms", &fault_timeout_ms,
                  "per-attempt I/O timeout (0 = none)");
  flags.AddDouble("fault_backoff_ms", &fault_backoff_ms, "base retry backoff (ms)");
  flags.AddDouble("fault_backoff_mult", &fault_backoff_mult, "backoff multiplier");
  flags.AddInt64("max_sim_events", &max_sim_events,
                 "per-trial simulated-event deadline (0 = unlimited)");
  flags.AddDouble("max_wall_ms", &max_wall_ms,
                  "per-trial wall-clock deadline in ms (0 = unlimited)");
  flags.AddInt("threads", &threads,
               "worker threads for trial execution (0 = hardware)");
  flags.AddInt("sweep", &sweep,
               "driver mode: split the sweep into this many shards run by "
               "worker subprocesses, then merge (0 = run in-process)");
  flags.AddInt("sweep-workers", &sweep_workers,
               "concurrent worker subprocesses (0 = min(shards, hardware))");
  flags.AddBool("sweep-worker", &sweep_worker,
                "worker mode: run one shard and write its artifact");
  flags.AddBool("sweep-merge", &sweep_merge,
                "merge mode: combine shard artifacts (positional args) into "
                "the single-process output");
  flags.AddString("sweep-resume", &sweep_resume,
                  "resume a crashed/drained sweep from this run directory "
                  "(same spec and flags as the original run)");
  flags.AddBool("sweep-stats", &sweep_stats,
                "embed dispatch counters (launches, resubmissions, kills) in "
                "the merged JSON; off keeps the document byte-identical to a "
                "single-process run");
  flags.AddString("shard", &shard, "worker mode shard as k/N (e.g. 2/7)");
  flags.AddString("shard-out", &shard_out, "worker mode artifact output path");
  flags.AddString("shard-dir", &shard_dir,
                  "driver mode run directory for the journal and shard "
                  "artifacts");
  flags.AddDouble("shard-timeout-ms", &shard_timeout_ms,
                  "driver mode per-shard deadline before the attempt is "
                  "killed and resubmitted (0 = none)");
  flags.AddInt("shard-retries", &shard_retries,
               "driver mode resubmissions allowed per shard");
  flags.AddDouble("shard-backoff-ms", &shard_backoff_ms,
                  "driver mode base backoff between shard attempts");
  flags.AddDouble("sweep-drain-grace-ms", &sweep_drain_grace_ms,
                  "on SIGTERM/SIGINT, wall-clock grace for in-flight workers "
                  "before they are killed and the run drains");
  flags.AddInt("sweep-chaos-kill-shard", &sweep_chaos_kill_shard,
               "driver mode chaos hook: kill this shard's first attempt to "
               "exercise resubmission (-1 = off)");
  flags.AddBool("help", &help, "show usage");

  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (help) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  if (static_cast<int>(sweep_worker) + static_cast<int>(sweep_merge) +
          static_cast<int>(sweep > 0) + static_cast<int>(!sweep_resume.empty()) > 1) {
    std::fprintf(stderr,
                 "--sweep-worker, --sweep-merge, --sweep and --sweep-resume are exclusive\n");
    return 2;
  }

  std::vector<workload::ExperimentSpec> specs;
  if (!spec_path.empty()) {
    auto loaded = workload::LoadExperimentSpec(spec_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    specs = *std::move(loaded);
  } else {
    workload::ExperimentSpec spec;
    spec.name = "cli";
    spec.trials = trials;
    core::MergeConfig& cfg = spec.config;
    cfg.num_runs = runs;
    cfg.num_disks = disks;
    cfg.blocks_per_run = blocks;
    cfg.prefetch_depth = n;
    cfg.cache_blocks = cache;
    cfg.cpu_ms_per_block = cpu_ms;
    cfg.zipf_theta = zipf_theta;
    cfg.seed = static_cast<uint64_t>(seed);
    auto parsed_strategy = core::ParseStrategy(strategy);
    auto parsed_sync = core::ParseSyncMode(sync);
    auto parsed_admission = core::ParseAdmissionPolicy(admission);
    auto parsed_victim = core::ParseVictimPolicy(victim);
    auto parsed_depletion = core::ParseDepletionKind(depletion);
    auto parsed_write = core::ParseWriteTraffic(write_traffic);
    for (const Status& s :
         {parsed_strategy.status(), parsed_sync.status(), parsed_admission.status(),
          parsed_victim.status(), parsed_depletion.status(), parsed_write.status()}) {
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 2;
      }
    }
    cfg.strategy = *parsed_strategy;
    cfg.sync = *parsed_sync;
    cfg.admission = *parsed_admission;
    cfg.victim = *parsed_victim;
    cfg.depletion = *parsed_depletion;
    cfg.write_traffic = *parsed_write;
    cfg.fault.media_error_rate = fault_media_error_rate;
    cfg.fault.latency_spike_rate = fault_spike_rate;
    cfg.fault.latency_spike_ms = fault_spike_ms;
    cfg.fault.fail_slow_disk = fault_slow_disk;
    cfg.fault.fail_slow_factor = fault_slow_factor;
    cfg.fault.fail_slow_start_ms = fault_slow_start_ms;
    cfg.fault.fail_slow_end_ms = fault_slow_end_ms;
    cfg.fault.fail_stop_disk = fault_stop_disk;
    cfg.fault.fail_stop_start_ms = fault_stop_start_ms;
    cfg.fault.fail_stop_end_ms = fault_stop_end_ms;
    cfg.fault.seed = static_cast<uint64_t>(fault_seed);
    cfg.fault.retry.max_retries = fault_max_retries;
    cfg.fault.retry.timeout_ms = fault_timeout_ms;
    cfg.fault.retry.backoff_base_ms = fault_backoff_ms;
    cfg.fault.retry.backoff_multiplier = fault_backoff_mult;
    Status valid = cfg.Validate();
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid configuration: %s\n", valid.ToString().c_str());
      return 2;
    }
    specs.push_back(std::move(spec));
  }

  if (print_spec) {
    for (const auto& spec : specs) {
      std::printf("%s\n", workload::ToSpec(spec).c_str());
    }
  }
  sim::CalendarBackend calendar_backend = sim::CalendarBackend::kDefault;
  if (!sim::ParseCalendarBackend(calendar_name, &calendar_backend)) {
    std::fprintf(stderr, "--calendar must be 'heap' or 'cq', got '%s'\n",
                 calendar_name.c_str());
    return 2;
  }
  for (auto& spec : specs) {
    spec.config.collect_metrics = collect_metrics;
    spec.config.calendar = calendar_backend;
  }
  std::vector<core::SweepUnit> units = sweep::UnitsFromSpecs(specs);
  core::SweepGrid grid(units);
  core::TrialDeadline deadline;
  deadline.max_sim_events = static_cast<uint64_t>(max_sim_events);
  deadline.max_wall_ms = max_wall_ms;

  if (sweep_worker) {
    // Worker mode: run one shard of the global task grid, write the exact
    // per-trial artifact (sealed with the integrity footer, published
    // atomically), exit 0. Task failures are recorded in the artifact (the
    // merger surfaces the lowest-index one); a nonzero exit here means
    // infrastructure trouble, which the dispatcher retries.
    int shard_index = -1;
    int shard_count = 0;
    if (std::sscanf(shard.c_str(), "%d/%d", &shard_index, &shard_count) != 2 ||
        shard_index < 0 || shard_count < 1 || shard_index >= shard_count) {
      std::fprintf(stderr, "--shard must be k/N with 0 <= k < N, got '%s'\n",
                   shard.c_str());
      return 2;
    }
    if (shard_out.empty()) {
      std::fprintf(stderr, "--sweep-worker requires --shard-out\n");
      return 2;
    }
    sweep::ShardArtifact artifact =
        sweep::RunShard(grid, shard_index, shard_count, threads, deadline);
    Status written = util::WriteFileAtomic(
        shard_out, sweep::SealShardArtifact(sweep::EncodeShardArtifact(artifact)));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    return 0;
  }

  if (sweep_merge) {
    if (flags.positional().empty()) {
      std::fprintf(stderr, "--sweep-merge requires shard artifact paths\n");
      return 2;
    }
    std::vector<sweep::NamedArtifact> artifacts;
    for (const std::string& path : flags.positional()) {
      auto text = ReadFile(path);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      artifacts.push_back(sweep::NamedArtifact{path, *std::move(text)});
    }
    auto merged = sweep::MergeShardArtifacts(units, artifacts);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 1;
    }
    return EmitResults(units, *merged, format, json_path);
  }

  if (sweep > 0 || !sweep_resume.empty()) {
    // Driver mode: re-exec this binary once per shard via the dispatcher,
    // journal every transition into the run directory, then merge the
    // artifacts in-process. The worker command re-creates the experiment set
    // from the same inputs (spec file, or the full flag vector), so every
    // worker builds the identical task grid. Resume mode replays the
    // journal, re-verifies surviving artifacts, and runs only what is
    // missing — the merged output is byte-identical either way.
    const bool resuming = !sweep_resume.empty();
    const std::string run_dir = resuming ? sweep_resume : shard_dir;
    const uint64_t spec_digest = sweep::SpecDigest(units);
    int num_shards = sweep;
    sweep::RunLedger ledger;
    if (resuming) {
      auto records = sweep::RunJournal::Load(run_dir);
      if (!records.ok()) {
        std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
        return 1;
      }
      auto replayed = sweep::ReplayJournal(*records);
      if (!replayed.ok()) {
        std::fprintf(stderr, "%s\n", replayed.status().ToString().c_str());
        return 1;
      }
      ledger = *std::move(replayed);
      if (ledger.spec_digest != spec_digest || ledger.total_tasks != grid.total_tasks()) {
        std::fprintf(stderr,
                     "--sweep-resume: journal records spec digest %016llx over %d tasks but "
                     "the loaded spec has digest %016llx over %d tasks — resume with the "
                     "original spec and flags\n",
                     static_cast<unsigned long long>(ledger.spec_digest), ledger.total_tasks,
                     static_cast<unsigned long long>(spec_digest), grid.total_tasks());
        return 2;
      }
      num_shards = ledger.num_shards;
    }

    auto opened = sweep::RunJournal::Open(run_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    sweep::RunJournal journal = std::move(*opened);
    // A failed journal append is downgraded to a warning: it costs redone
    // work on a later resume, never correctness — resume trusts only
    // artifacts it re-verifies.
    auto journal_append = [&](const sweep::JournalRecord& record) {
      Status appended = journal.Append(record);
      if (!appended.ok()) {
        std::fprintf(stderr, "[sweep] %s\n", appended.ToString().c_str());
      }
    };
    // Artifact paths are journaled relative to the run directory, so a run
    // dir can be moved (or inspected from elsewhere) and still resume.
    auto relative = [&](const std::string& path) {
      const std::string prefix = run_dir + "/";
      return path.rfind(prefix, 0) == 0 ? path.substr(prefix.size()) : path;
    };

    // The trusted artifact per shard (relative path): surviving verified
    // ones on resume, freshly dispatched ones after.
    std::map<int, std::string> trusted;
    std::vector<int> shards_to_run;
    if (!resuming) {
      sweep::JournalRecord start;
      start.kind = sweep::JournalRecord::Kind::kRunStart;
      start.spec_digest = spec_digest;
      start.num_shards = num_shards;
      start.total_tasks = grid.total_tasks();
      journal_append(start);
    } else {
      for (int s = 0; s < num_shards; ++s) {
        auto it = ledger.shards.find(s);
        if (it == ledger.shards.end() || !it->second.done) {
          shards_to_run.push_back(s);
          continue;
        }
        const std::string rel = it->second.artifact_path;
        const std::string full = run_dir + "/" + rel;
        auto contents = ReadFile(full);
        std::string defect;
        if (!contents.ok()) {
          defect = "artifact file is missing";
        } else if (sweep::Fnv1aDigest(*contents) != it->second.artifact_digest) {
          defect = "file bytes do not match the journaled digest";
        } else {
          auto payload = sweep::UnsealShardArtifact(*contents);
          if (!payload.ok()) {
            defect = payload.status().message();
          }
        }
        if (defect.empty()) {
          trusted[s] = rel;
          continue;
        }
        if (contents.ok()) {
          (void)::rename(full.c_str(), (full + ".corrupt").c_str());
        }
        std::fprintf(stderr, "[sweep] shard %d: %s: %s — quarantined, re-running\n", s,
                     rel.c_str(), defect.c_str());
        sweep::JournalRecord q;
        q.kind = sweep::JournalRecord::Kind::kQuarantine;
        q.shard = s;
        q.path = rel;
        q.detail = defect;
        journal_append(q);
        shards_to_run.push_back(s);
      }
      std::fprintf(stderr, "[sweep] resume: %zu/%d shard artifact(s) verified, %zu to run\n",
                   trusted.size(), num_shards, shards_to_run.size());
    }

    bool drained = false;
    sweep::DispatchStats dispatch_stats;
    if (!resuming || !shards_to_run.empty()) {
      std::signal(SIGTERM, OnDrainSignal);
      std::signal(SIGINT, OnDrainSignal);

      std::vector<std::string> base;
      base.push_back(argv[0]);
      if (!spec_path.empty()) {
        base.insert(base.end(), {"--spec", spec_path});
      } else {
        base.insert(base.end(), {"--runs", StrFormat("%d", runs)});
        base.insert(base.end(), {"--disks", StrFormat("%d", disks)});
        base.insert(base.end(),
                    {"--blocks", StrFormat("%lld", static_cast<long long>(blocks))});
        base.insert(base.end(), {"--n", StrFormat("%d", n)});
        base.insert(base.end(),
                    {"--cache", StrFormat("%lld", static_cast<long long>(cache))});
        base.insert(base.end(), {"--cpu_ms", StrFormat("%.17g", cpu_ms)});
        base.insert(base.end(), {"--zipf_theta", StrFormat("%.17g", zipf_theta)});
        base.insert(base.end(), {"--trials", StrFormat("%d", trials)});
        base.insert(base.end(),
                    {"--seed", StrFormat("%lld", static_cast<long long>(seed))});
        base.insert(base.end(), {"--strategy", strategy});
        base.insert(base.end(), {"--sync", sync});
        base.insert(base.end(), {"--admission", admission});
        base.insert(base.end(), {"--victim", victim});
        base.insert(base.end(), {"--depletion", depletion});
        base.insert(base.end(), {"--write_traffic", write_traffic});
        base.insert(base.end(), {"--fault_media_error_rate",
                                 StrFormat("%.17g", fault_media_error_rate)});
        base.insert(base.end(),
                    {"--fault_spike_rate", StrFormat("%.17g", fault_spike_rate)});
        base.insert(base.end(),
                    {"--fault_spike_ms", StrFormat("%.17g", fault_spike_ms)});
        base.insert(base.end(),
                    {"--fault_slow_disk", StrFormat("%d", fault_slow_disk)});
        base.insert(base.end(),
                    {"--fault_slow_factor", StrFormat("%.17g", fault_slow_factor)});
        base.insert(base.end(), {"--fault_slow_start_ms",
                                 StrFormat("%.17g", fault_slow_start_ms)});
        base.insert(base.end(),
                    {"--fault_slow_end_ms", StrFormat("%.17g", fault_slow_end_ms)});
        base.insert(base.end(),
                    {"--fault_stop_disk", StrFormat("%d", fault_stop_disk)});
        base.insert(base.end(), {"--fault_stop_start_ms",
                                 StrFormat("%.17g", fault_stop_start_ms)});
        base.insert(base.end(),
                    {"--fault_stop_end_ms", StrFormat("%.17g", fault_stop_end_ms)});
        base.insert(base.end(),
                    {"--fault_seed", StrFormat("%lld", static_cast<long long>(fault_seed))});
        base.insert(base.end(),
                    {"--fault_max_retries", StrFormat("%d", fault_max_retries)});
        base.insert(base.end(),
                    {"--fault_timeout_ms", StrFormat("%.17g", fault_timeout_ms)});
        base.insert(base.end(),
                    {"--fault_backoff_ms", StrFormat("%.17g", fault_backoff_ms)});
        base.insert(base.end(),
                    {"--fault_backoff_mult", StrFormat("%.17g", fault_backoff_mult)});
      }
      if (collect_metrics) {
        base.push_back("--metrics");
      }
      if (calendar_backend != sim::CalendarBackend::kDefault) {
        base.insert(base.end(),
                    {"--calendar", sim::CalendarBackendName(calendar_backend)});
      }
      base.insert(base.end(), {"--max_sim_events",
                               StrFormat("%lld", static_cast<long long>(max_sim_events))});
      base.insert(base.end(), {"--max_wall_ms", StrFormat("%.17g", max_wall_ms)});
      base.insert(base.end(), {"--threads", StrFormat("%d", threads)});

      sweep::DispatcherOptions options;
      options.num_shards = num_shards;
      options.shards = shards_to_run;
      options.max_workers = sweep_workers;
      options.retry.timeout_ms = shard_timeout_ms;
      options.retry.max_retries = shard_retries;
      options.retry.backoff_base_ms = shard_backoff_ms;
      options.chaos_kill_shard = sweep_chaos_kill_shard;
      options.drain = &g_drain;
      options.drain_grace_ms = sweep_drain_grace_ms;
      options.log = [](const std::string& line) {
        std::fprintf(stderr, "[sweep] %s\n", line.c_str());
      };
      options.on_event = [&](const sweep::ShardEvent& event) {
        sweep::JournalRecord record;
        record.shard = event.shard;
        record.attempt = event.attempt;
        switch (event.kind) {
          case sweep::ShardEvent::Kind::kStart:
            record.kind = sweep::JournalRecord::Kind::kShardStart;
            record.path = relative(event.path);
            break;
          case sweep::ShardEvent::Kind::kDone: {
            record.kind = sweep::JournalRecord::Kind::kShardDone;
            record.path = relative(event.path);
            auto contents = ReadFile(event.path);
            if (contents.ok()) {
              record.digest = sweep::Fnv1aDigest(*contents);
              record.size = contents->size();
            }
            break;
          }
          case sweep::ShardEvent::Kind::kRetry:
            record.kind = sweep::JournalRecord::Kind::kShardRetry;
            record.detail = event.detail;
            break;
          case sweep::ShardEvent::Kind::kFailed:
            record.kind = sweep::JournalRecord::Kind::kShardFailed;
            record.detail = event.detail;
            break;
        }
        journal_append(record);
      };
      auto dispatched = sweep::RunShardedSweep(
          options, run_dir, [&](int s, const std::string& out) {
            std::vector<std::string> worker_argv = base;
            worker_argv.push_back("--sweep-worker");
            worker_argv.insert(worker_argv.end(),
                               {"--shard", StrFormat("%d/%d", s, num_shards)});
            worker_argv.insert(worker_argv.end(), {"--shard-out", out});
            return worker_argv;
          });
      if (!dispatched.ok()) {
        std::fprintf(stderr, "%s\n", dispatched.status().ToString().c_str());
        return 1;
      }
      dispatch_stats = dispatched->stats;
      drained = dispatched->drained;
      for (const sweep::ShardDispatch& d : dispatched->shards) {
        if (d.ok) {
          trusted[d.shard] = relative(d.artifact_path);
        }
      }
    }

    if (drained) {
      sweep::JournalRecord record;
      record.kind = sweep::JournalRecord::Kind::kDrain;
      record.detail = "signal";
      journal_append(record);
      std::fprintf(stderr,
                   "[sweep] drained: %zu/%d shard artifact(s) journaled; resume with "
                   "--sweep-resume %s\n",
                   trusted.size(), num_shards, run_dir.c_str());
      return kExitDrained;
    }

    std::vector<sweep::NamedArtifact> artifacts;
    for (int s = 0; s < num_shards; ++s) {
      auto it = trusted.find(s);
      if (it == trusted.end()) {
        std::fprintf(stderr, "[sweep] shard %d has no artifact after dispatch\n", s);
        return 1;
      }
      const std::string full = run_dir + "/" + it->second;
      auto text = ReadFile(full);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      artifacts.push_back(sweep::NamedArtifact{full, *std::move(text)});
    }
    auto merged = sweep::MergeShardArtifacts(units, artifacts);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 1;
    }

    std::function<void(stats::JsonWriter&)> extra_json;
    if (sweep_stats) {
      extra_json = [&dispatch_stats](stats::JsonWriter& w) {
        // Real-process dispatch counters, the analogue of the simulated
        // fault counters: explicit zeros distinguish "nothing retried"
        // from "nobody counted".
        w.Key("dispatch");
        w.BeginObject();
        w.Field("launches", dispatch_stats.launches);
        w.Field("resubmissions", dispatch_stats.resubmissions);
        w.Field("deadline_kills", dispatch_stats.deadline_kills);
        w.Field("chaos_kills", dispatch_stats.chaos_kills);
        w.Field("spawn_failures", dispatch_stats.spawn_failures);
        w.Field("drain_kills", dispatch_stats.drain_kills);
        w.EndObject();
      };
    }
    int rc = EmitResults(units, *merged, format, json_path, extra_json);
    if (rc != 0) {
      return rc;
    }

    // GC: stale attempt-unique files (losing attempts of resubmitted or
    // resumed shards) are reclaimed once the merge has succeeded. Winning
    // artifacts and quarantined *.corrupt evidence stay. Journaled, sorted
    // for a deterministic record order.
    std::vector<std::string> stale;
    if (DIR* dir = ::opendir(run_dir.c_str())) {
      while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.rfind("shard_", 0) != 0) {
          continue;
        }
        const bool attempt_file =
            name.size() >= 5 && name.compare(name.size() - 5, 5, ".json") == 0;
        // SIGKILLed workers can leave unpublished "<artifact>.tmp.<pid>"
        // droppings behind; they are stale by construction.
        const bool temp_dropping = name.find(".json.tmp.") != std::string::npos;
        if (!attempt_file && !temp_dropping) {
          continue;
        }
        bool winner = false;
        for (const auto& [shard_index, rel] : trusted) {
          (void)shard_index;
          if (rel == name) {
            winner = true;
            break;
          }
        }
        if (!winner) {
          stale.push_back(name);
        }
      }
      ::closedir(dir);
    }
    std::sort(stale.begin(), stale.end());
    for (const std::string& name : stale) {
      if (::unlink((run_dir + "/" + name).c_str()) == 0) {
        sweep::JournalRecord record;
        record.kind = sweep::JournalRecord::Kind::kReclaim;
        record.path = name;
        journal_append(record);
      }
    }

    sweep::JournalRecord done;
    done.kind = sweep::JournalRecord::Kind::kRunDone;
    journal_append(done);
    return 0;
  }

  // Single-process mode: the whole grid on the in-process worker pool. This
  // is the reference the sharded modes are byte-compared against.
  std::vector<core::ExperimentResult> results = core::RunSweep(units, threads, deadline);
  return EmitResults(units, results, format, json_path);
}

# Empty dependencies file for extsort_device_test.
# This may be replaced when dependencies are built.

#ifndef EMSIM_CORE_MERGE_SIMULATOR_H_
#define EMSIM_CORE_MERGE_SIMULATOR_H_

#include "core/config.h"
#include "core/result.h"
#include "util/status.h"

namespace emsim::core {

/// Simulates one merge phase under the configured prefetching strategy —
/// the library's reproduction of the paper's CSIM model. Deterministic for
/// a given seed.
///
/// Model recap (Section 2 of the paper): the CPU repeatedly depletes the
/// leading block of a randomly chosen run. When a depletion leaves its run
/// with no cached blocks, the merge *stalls*: a demand fetch is issued (the
/// planner may add prefetches, subject to cache admission) and the CPU
/// resumes when either the whole batch (synchronized) or just the demand
/// block (unsynchronized) has arrived. Writes go to a separate disk set and
/// are not modeled.
class MergeSimulator {
 public:
  explicit MergeSimulator(const MergeConfig& config) : config_(config) {}

  /// Runs one trial. Fails only on invalid configuration.
  Result<MergeResult> Run();

  const MergeConfig& config() const { return config_; }

 private:
  MergeConfig config_;
};

/// Convenience: one trial with the given config.
Result<MergeResult> SimulateMerge(const MergeConfig& config);

}  // namespace emsim::core

#endif  // EMSIM_CORE_MERGE_SIMULATOR_H_

# Empty compiler generated dependencies file for packed_sort_test.
# This may be replaced when dependencies are built.

#include "analysis/urn_game.h"

#include <cmath>
#include <cstddef>

#include "util/check.h"

namespace emsim::analysis {

UrnGame::UrnGame(int num_disks) : d_(num_disks) { EMSIM_CHECK(num_disks >= 1); }

double UrnGame::SurvivalQ(int j) const {
  if (j < 1 || j > d_) {
    return j < 1 ? 1.0 : 0.0;
  }
  double q = 1.0;
  for (int i = 1; i < j; ++i) {
    q *= static_cast<double>(d_ - i) / d_;
  }
  return q;
}

double UrnGame::LengthPmf(int j) const {
  if (j < 1 || j > d_) {
    return 0.0;
  }
  return SurvivalQ(j) * static_cast<double>(j) / d_;
}

double UrnGame::ExpectedLength() const {
  double sum = 0;
  double q = 1.0;
  for (int j = 1; j <= d_; ++j) {
    sum += q;
    q *= static_cast<double>(d_ - j) / d_;
  }
  return sum;
}

double UrnGame::AsymptoticLength() const {
  return std::sqrt(M_PI * d_ / 2.0) - 1.0 / 3.0;
}

std::vector<double> UrnGame::PmfVector() const {
  std::vector<double> pmf(static_cast<size_t>(d_));
  for (int j = 1; j <= d_; ++j) {
    pmf[static_cast<size_t>(j - 1)] = LengthPmf(j);
  }
  return pmf;
}

double UnsyncSpeedupFactor(int num_disks) { return UrnGame(num_disks).ExpectedLength(); }

}  // namespace emsim::analysis

#ifndef EMSIM_EXTSORT_BLOCK_DEVICE_H_
#define EMSIM_EXTSORT_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "disk/disk_params.h"
#include "disk/mechanism.h"
#include "fault/fault_plan.h"
#include "util/rng.h"
#include "util/status.h"

namespace emsim::extsort {

/// Random-access block storage — the substrate the external sorter reads
/// and writes. Implementations: an in-memory device (fast, for correctness)
/// and a timing device that also accounts simulated disk time using the
/// same Mechanism as the merge simulator.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual size_t block_bytes() const = 0;
  virtual int64_t num_blocks() const = 0;

  /// Reads block `index` into `out` (size block_bytes).
  virtual Status Read(int64_t index, std::span<uint8_t> out) = 0;

  /// Writes `data` (size block_bytes) to block `index`.
  virtual Status Write(int64_t index, std::span<const uint8_t> data) = 0;

  /// I/O counters.
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 protected:
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

/// RAM-backed block device. Reading a never-written block fails (catches
/// run-descriptor bugs).
class MemoryBlockDevice : public BlockDevice {
 public:
  MemoryBlockDevice(int64_t num_blocks, size_t block_bytes);

  size_t block_bytes() const override { return block_bytes_; }
  int64_t num_blocks() const override { return num_blocks_; }
  Status Read(int64_t index, std::span<uint8_t> out) override;
  Status Write(int64_t index, std::span<const uint8_t> data) override;

 private:
  Status CheckIndex(int64_t index, size_t span_bytes) const;

  int64_t num_blocks_;
  size_t block_bytes_;
  std::vector<uint8_t> data_;
  std::vector<bool> written_;
};

/// Decorator injecting I/O failures at configurable rates — exercises the
/// library's Status paths (run formation, merging, tag sort) under disk
/// errors. Uses the same seeded fault vocabulary as the simulation's
/// fault::FaultPlan, so a spec exercised against the simulator and a real
/// sort exercised against this device share one set of fault options.
/// Failures are deterministic for a seed.
class FaultyBlockDevice : public BlockDevice {
 public:
  /// Shared with fault::FaultPlan; see fault/fault_plan.h.
  using Options = fault::MediaFaultOptions;

  FaultyBlockDevice(std::unique_ptr<BlockDevice> base, const Options& options);

  size_t block_bytes() const override { return base_->block_bytes(); }
  int64_t num_blocks() const override { return base_->num_blocks(); }
  Status Read(int64_t index, std::span<uint8_t> out) override;
  Status Write(int64_t index, std::span<const uint8_t> data) override;

  uint64_t injected_read_failures() const { return injector_.injected_read_failures(); }
  uint64_t injected_write_failures() const { return injector_.injected_write_failures(); }

 private:
  std::unique_ptr<BlockDevice> base_;
  fault::MediaErrorInjector injector_;
};

/// Decorator adding simulated disk-time accounting to any device: each
/// Read/Write advances an internal clock by the Mechanism's access cost
/// (serialized — one arm). Sequential accesses are detected by the
/// mechanism when its params enable the optimization.
class TimedBlockDevice : public BlockDevice {
 public:
  TimedBlockDevice(std::unique_ptr<BlockDevice> base, const disk::DiskParams& params,
                   uint64_t seed);

  size_t block_bytes() const override { return base_->block_bytes(); }
  int64_t num_blocks() const override { return base_->num_blocks(); }
  Status Read(int64_t index, std::span<uint8_t> out) override;
  Status Write(int64_t index, std::span<const uint8_t> data) override;

  /// Accumulated simulated I/O time.
  double elapsed_ms() const { return elapsed_ms_; }

  /// Zeroes the accumulated time; the arm position is retained (useful for
  /// timing one phase of a multi-phase job).
  void ResetClock() { elapsed_ms_ = 0.0; }

  BlockDevice* base() { return base_.get(); }

 private:
  std::unique_ptr<BlockDevice> base_;
  disk::Mechanism mechanism_;
  Rng rng_;
  double elapsed_ms_ = 0.0;
};

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_BLOCK_DEVICE_H_

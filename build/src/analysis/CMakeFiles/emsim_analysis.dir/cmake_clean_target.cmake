file(REMOVE_RECURSE
  "libemsim_analysis.a"
)

#include "stats/histogram.h"

#include <algorithm>
#include <cstddef>

#include "util/check.h"
#include "util/str.h"

namespace emsim::stats {

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_buckets)) {
  EMSIM_CHECK(hi > lo);
  EMSIM_CHECK(num_buckets >= 1);
  buckets_.assign(num_buckets, 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++buckets_.front();
    return;
  }
  size_t idx = static_cast<size_t>((x - lo_) / width_);
  if (idx >= buckets_.size()) {
    if (x >= hi_) {
      ++overflow_;
    }
    idx = buckets_.size() - 1;
  }
  ++buckets_[idx];
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::Quantile(double p) const {
  if (total_ == 0) {
    return lo_;
  }
  p = std::clamp(p, 0.0, 1.0);
  double target = p * static_cast<double>(total_);
  double acc = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double next = acc + static_cast<double>(buckets_[i]);
    if (next >= target) {
      double frac = buckets_[i] == 0 ? 0.0 : (target - acc) / static_cast<double>(buckets_[i]);
      return BucketLow(i) + frac * width_;
    }
    acc = next;
  }
  return hi_;
}

double Histogram::ApproxMean() const {
  if (total_ == 0) {
    return 0.0;
  }
  double sum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    sum += static_cast<double>(buckets_[i]) * (BucketLow(i) + width_ / 2);
  }
  return sum / static_cast<double>(total_);
}

std::string Histogram::ToAscii(size_t max_bar_width) const {
  uint64_t peak = 0;
  for (uint64_t c : buckets_) {
    peak = std::max(peak, c);
  }
  std::string out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    size_t bar = peak == 0 ? 0
                           : static_cast<size_t>(static_cast<double>(buckets_[i]) /
                                                 static_cast<double>(peak) *
                                                 static_cast<double>(max_bar_width));
    out += StrFormat("[%10.3f, %10.3f) %8llu |%s\n", BucketLow(i), BucketLow(i) + width_,
                     static_cast<unsigned long long>(buckets_[i]), std::string(bar, '#').c_str());
  }
  return out;
}

}  // namespace emsim::stats

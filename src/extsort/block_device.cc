#include "extsort/block_device.h"

#include <cstring>
#include <utility>

#include "disk/disk_params.h"
#include "util/check.h"
#include "util/str.h"

namespace emsim::extsort {

MemoryBlockDevice::MemoryBlockDevice(int64_t num_blocks, size_t block_bytes)
    : num_blocks_(num_blocks),
      block_bytes_(block_bytes),
      data_(static_cast<size_t>(num_blocks) * block_bytes),
      written_(static_cast<size_t>(num_blocks), false) {
  EMSIM_CHECK(num_blocks >= 1);
  EMSIM_CHECK(block_bytes >= 16);
}

Status MemoryBlockDevice::CheckIndex(int64_t index, size_t span_bytes) const {
  if (index < 0 || index >= num_blocks_) {
    return Status::OutOfRange(StrFormat("block %lld out of range [0, %lld)",
                                        static_cast<long long>(index),
                                        static_cast<long long>(num_blocks_)));
  }
  if (span_bytes != block_bytes_) {
    return Status::InvalidArgument(
        StrFormat("buffer is %zu bytes; device block is %zu", span_bytes, block_bytes_));
  }
  return Status::OK();
}

Status MemoryBlockDevice::Read(int64_t index, std::span<uint8_t> out) {
  EMSIM_RETURN_IF_ERROR(CheckIndex(index, out.size()));
  if (!written_[static_cast<size_t>(index)]) {
    return Status::NotFound(
        StrFormat("block %lld was never written", static_cast<long long>(index)));
  }
  std::memcpy(out.data(), data_.data() + static_cast<size_t>(index) * block_bytes_,
              block_bytes_);
  ++reads_;
  return Status::OK();
}

Status MemoryBlockDevice::Write(int64_t index, std::span<const uint8_t> data) {
  EMSIM_RETURN_IF_ERROR(CheckIndex(index, data.size()));
  std::memcpy(data_.data() + static_cast<size_t>(index) * block_bytes_, data.data(),
              block_bytes_);
  written_[static_cast<size_t>(index)] = true;
  ++writes_;
  return Status::OK();
}

FaultyBlockDevice::FaultyBlockDevice(std::unique_ptr<BlockDevice> base,
                                     const Options& options)
    : base_(std::move(base)), injector_(options) {
  EMSIM_CHECK(base_ != nullptr);
}

Status FaultyBlockDevice::Read(int64_t index, std::span<uint8_t> out) {
  if (injector_.NextReadFails()) {
    return Status::IoError(
        StrFormat("injected read failure at block %lld", static_cast<long long>(index)));
  }
  Status status = base_->Read(index, out);
  if (status.ok()) {
    ++reads_;
  }
  return status;
}

Status FaultyBlockDevice::Write(int64_t index, std::span<const uint8_t> data) {
  if (injector_.NextWriteFails()) {
    return Status::IoError(
        StrFormat("injected write failure at block %lld", static_cast<long long>(index)));
  }
  Status status = base_->Write(index, data);
  if (status.ok()) {
    ++writes_;
  }
  return status;
}

TimedBlockDevice::TimedBlockDevice(std::unique_ptr<BlockDevice> base,
                                   const disk::DiskParams& params, uint64_t seed)
    : base_(std::move(base)), mechanism_(params), rng_(seed) {
  EMSIM_CHECK(base_ != nullptr);
}

Status TimedBlockDevice::Read(int64_t index, std::span<uint8_t> out) {
  EMSIM_RETURN_IF_ERROR(base_->Read(index, out));
  elapsed_ms_ += mechanism_.Access(index, 1, rng_, elapsed_ms_).TotalMs();
  ++reads_;
  return Status::OK();
}

Status TimedBlockDevice::Write(int64_t index, std::span<const uint8_t> data) {
  EMSIM_RETURN_IF_ERROR(base_->Write(index, data));
  elapsed_ms_ += mechanism_.Access(index, 1, rng_, elapsed_ms_).TotalMs();
  ++writes_;
  return Status::OK();
}

}  // namespace emsim::extsort

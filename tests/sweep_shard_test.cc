// Pins the sharded-sweep determinism contract (docs/SWEEPS.md): shard
// artifacts merged from any shard count are byte-identical to the
// single-process sweep, including fault-injected counters and the
// lowest-index failure capture.

#include "sweep/shard.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "core/result_json.h"
#include "sweep/merge.h"
#include "util/status.h"
#include "util/str.h"

namespace emsim::sweep {
namespace {

core::MergeConfig SmallConfig() {
  core::MergeConfig cfg;
  cfg.num_runs = 4;
  cfg.num_disks = 2;
  cfg.blocks_per_run = 20;
  cfg.prefetch_depth = 2;
  return cfg;
}

/// A heterogeneous sweep: differing trial counts, strategies, and one unit
/// with fault injection enabled so the artifact codec's fault-counter path
/// is exercised end to end.
std::vector<core::SweepUnit> MakeUnits() {
  std::vector<core::SweepUnit> units;

  core::SweepUnit a;
  a.name = "baseline";
  a.config = SmallConfig();
  a.config.strategy = core::Strategy::kDemandRunOnly;
  a.trials = 3;
  units.push_back(a);

  core::SweepUnit b;
  b.name = "prefetch";
  b.config = SmallConfig();
  b.config.prefetch_depth = 4;
  b.config.seed = 7;
  b.trials = 2;
  units.push_back(b);

  core::SweepUnit c;
  c.name = "faulty";
  c.config = SmallConfig();
  c.config.fault.media_error_rate = 0.02;
  c.config.fault.latency_spike_rate = 0.05;
  c.config.fault.latency_spike_ms = 10.0;
  c.trials = 4;
  units.push_back(c);

  return units;
}

std::string RenderJson(const std::vector<core::SweepUnit>& units,
                       const std::vector<core::ExperimentResult>& results) {
  std::vector<core::NamedExperiment> named;
  for (size_t i = 0; i < units.size(); ++i) {
    named.push_back(core::NamedExperiment{units[i].name, units[i].config, &results[i]});
  }
  return core::ExperimentSetToJson(named);
}

TEST(ShardSliceTest, PartitionsTaskSpaceExactly) {
  for (int total : {0, 1, 5, 9, 16}) {
    for (int shards : {1, 2, 3, 7, 20}) {
      int covered = 0;
      int prev_end = 0;
      for (int s = 0; s < shards; ++s) {
        ShardRange range = ShardSlice(total, s, shards);
        EXPECT_EQ(range.begin, prev_end);
        EXPECT_GE(range.size(), 0);
        prev_end = range.end;
        covered += range.size();
      }
      EXPECT_EQ(prev_end, total) << total << "/" << shards;
      EXPECT_EQ(covered, total);
      // Near-equal: sizes differ by at most one.
      int lo = total / shards;
      for (int s = 0; s < shards; ++s) {
        int size = ShardSlice(total, s, shards).size();
        EXPECT_GE(size, lo);
        EXPECT_LE(size, lo + 1);
      }
    }
  }
}

TEST(SweepGridTest, TaskMappingMatchesUnitMajorOrder) {
  auto units = MakeUnits();
  core::SweepGrid grid(units);
  ASSERT_EQ(grid.total_tasks(), 3 + 2 + 4);
  EXPECT_EQ(grid.UnitBegin(0), 0);
  EXPECT_EQ(grid.UnitBegin(1), 3);
  EXPECT_EQ(grid.UnitBegin(2), 5);
  int index = 0;
  for (int u = 0; u < grid.num_units(); ++u) {
    for (int t = 0; t < units[static_cast<size_t>(u)].trials; ++t, ++index) {
      core::SweepGrid::Task task = grid.At(index);
      EXPECT_EQ(task.unit, u);
      EXPECT_EQ(task.trial, t);
      core::MergeConfig cfg = grid.TaskConfig(index, {});
      EXPECT_EQ(cfg.seed, units[static_cast<size_t>(u)].config.seed +
                              static_cast<uint64_t>(t));
    }
  }
}

TEST(ShardCodecTest, EncodeDecodeIsAFixedPoint) {
  auto units = MakeUnits();
  core::SweepGrid grid(units);
  ShardArtifact artifact = RunShard(grid, 0, 2, 1, {});
  std::string text = EncodeShardArtifact(artifact);
  auto decoded = DecodeShardArtifact(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Bit-exact round trip: re-encoding the decoded artifact reproduces the
  // original document byte for byte (doubles included).
  EXPECT_EQ(EncodeShardArtifact(*decoded), text);
  EXPECT_EQ(decoded->shard_index, 0);
  EXPECT_EQ(decoded->shard_count, 2);
  EXPECT_EQ(decoded->total_tasks, grid.total_tasks());
  EXPECT_EQ(decoded->spec_digest, SpecDigest(units));
}

TEST(ShardCodecTest, RejectsGarbageAndTamperedHeaders) {
  EXPECT_FALSE(DecodeShardArtifact("").ok());
  EXPECT_FALSE(DecodeShardArtifact("not json").ok());
  EXPECT_FALSE(DecodeShardArtifact("{}").ok());
  EXPECT_FALSE(DecodeShardArtifact(R"({"shard_schema_version": 99})").ok());
}

// The acceptance criterion: for N in {1, 2, 7}, the merged artifact is
// byte-identical to the single-process sweep's JSON — fault injection on.
TEST(SweepMergeTest, MergedJsonByteIdenticalAcrossShardCounts) {
  auto units = MakeUnits();
  core::SweepGrid grid(units);
  std::vector<core::ExperimentResult> single = core::RunSweep(units, 2);
  std::string want = RenderJson(units, single);
  for (int num_shards : {1, 2, 7}) {
    std::vector<std::string> texts;
    for (int s = 0; s < num_shards; ++s) {
      texts.push_back(EncodeShardArtifact(RunShard(grid, s, num_shards, 1, {})));
    }
    auto merged = MergeShardArtifacts(units, texts);
    ASSERT_TRUE(merged.ok()) << num_shards << " shards: "
                             << merged.status().ToString();
    EXPECT_EQ(RenderJson(units, *merged), want) << num_shards << " shards";
  }
}

// Same contract against RunSweepParallel's uniform-grid spelling.
TEST(SweepMergeTest, MatchesRunSweepParallel) {
  core::MergeConfig cfg = SmallConfig();
  constexpr int kTrials = 5;
  std::vector<core::MergeConfig> configs;
  std::vector<core::SweepUnit> units;
  for (int n : {1, 2, 4}) {
    core::MergeConfig c = cfg;
    c.prefetch_depth = n;
    configs.push_back(c);
    units.push_back(core::SweepUnit{StrFormat("n=%d", n), c, kTrials});
  }
  std::vector<core::ExperimentResult> parallel =
      core::RunSweepParallel(configs, kTrials, 3);
  std::string want = RenderJson(units, parallel);

  core::SweepGrid grid(units);
  std::vector<std::string> texts;
  for (int s = 0; s < 2; ++s) {
    texts.push_back(EncodeShardArtifact(RunShard(grid, s, 2, 2, {})));
  }
  auto merged = MergeShardArtifacts(units, texts);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(RenderJson(units, *merged), want);
}

TEST(SweepMergeTest, FailureSurfacesLowestGlobalTaskIndex) {
  auto units = MakeUnits();
  // Poison the middle unit: an impossible event budget turns every one of
  // its trials into DeadlineExceeded. The first failing global task is the
  // unit's first trial.
  units[1].config.max_sim_events = 1;
  core::SweepGrid grid(units);
  std::vector<std::string> texts;
  for (int s = 0; s < 3; ++s) {
    texts.push_back(EncodeShardArtifact(RunShard(grid, s, 3, 1, {})));
  }
  auto merged = MergeShardArtifacts(units, texts);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kDeadlineExceeded);
  // Exactly the single-process runners' abort message shape, with the
  // lowest failing global index (unit 1 starts at task 3).
  EXPECT_NE(merged.status().message().find("sweep task 3 failed:"),
            std::string::npos)
      << merged.status().ToString();
}

TEST(SweepMergeTest, RejectsDigestMismatch) {
  auto units = MakeUnits();
  core::SweepGrid grid(units);
  std::string text = EncodeShardArtifact(RunShard(grid, 0, 1, 1, {}));
  auto tampered = units;
  tampered[0].config.seed += 1;
  auto merged = MergeShardArtifacts(tampered, {text});
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("digest"), std::string::npos)
      << merged.status().ToString();
}

TEST(SweepMergeTest, RejectsCoverageGapNamingTheMissingTask) {
  auto units = MakeUnits();
  core::SweepGrid grid(units);
  std::vector<std::string> texts;
  for (int s : {0, 2}) {  // Shard 1 lost.
    texts.push_back(EncodeShardArtifact(RunShard(grid, s, 3, 1, {})));
  }
  auto merged = MergeShardArtifacts(units, texts);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("missing"), std::string::npos)
      << merged.status().ToString();
}

TEST(SweepMergeTest, ToleratesDuplicateShardFromRacedResubmission) {
  auto units = MakeUnits();
  core::SweepGrid grid(units);
  std::vector<core::ExperimentResult> single = core::RunSweep(units, 2);
  std::vector<std::string> texts;
  for (int s = 0; s < 2; ++s) {
    texts.push_back(EncodeShardArtifact(RunShard(grid, s, 2, 1, {})));
  }
  texts.push_back(texts[1]);  // A straggler's duplicate artifact.
  auto merged = MergeShardArtifacts(units, texts);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(RenderJson(units, *merged), RenderJson(units, single));
}

}  // namespace
}  // namespace emsim::sweep

#include "extsort/merger.h"

#include <cstddef>
#include <memory>

#include "extsort/loser_tree.h"
#include "extsort/record.h"
#include "util/check.h"
#include "util/status.h"
#include "util/str.h"

namespace emsim::extsort {

namespace {

Result<MergeOutcome> MergeImpl(BlockDevice* input_device,
                               const std::vector<RunDescriptor>& runs,
                               BlockDevice* output_device, const KWayMergeOptions& options) {
  EMSIM_CHECK(input_device != nullptr);
  if (runs.empty()) {
    return Status::InvalidArgument("no runs to merge");
  }
  int k = static_cast<int>(runs.size());

  std::vector<std::unique_ptr<RunReader>> readers;
  readers.reserve(runs.size());
  for (const RunDescriptor& run : runs) {
    readers.push_back(
        std::make_unique<RunReader>(input_device, run, options.reader_buffer_blocks));
  }

  LoserTree<Record> tree(k);
  std::vector<int64_t> depleted(static_cast<size_t>(k), 0);
  MergeOutcome outcome;
  for (const RunDescriptor& run : runs) {
    outcome.run_blocks.push_back(run.num_blocks);
  }

  auto note_depletions = [&](int source) {
    if (!options.record_depletion_trace) {
      return;
    }
    int64_t now = readers[static_cast<size_t>(source)]->blocks_depleted();
    for (int64_t i = depleted[static_cast<size_t>(source)]; i < now; ++i) {
      outcome.depletion_trace.push_back(source);
    }
    depleted[static_cast<size_t>(source)] = now;
  };

  for (int s = 0; s < k; ++s) {
    Record r;
    if (readers[static_cast<size_t>(s)]->Next(&r)) {
      tree.SetInitial(s, r);
      note_depletions(s);
    } else {
      EMSIM_RETURN_IF_ERROR(readers[static_cast<size_t>(s)]->status());
      tree.MarkExhausted(s);
    }
  }
  tree.Build();

  std::unique_ptr<RunWriter> writer;
  if (output_device != nullptr) {
    writer = std::make_unique<RunWriter>(output_device, options.output_start_block);
  }

  Record previous;
  bool have_previous = false;
  while (!tree.Empty()) {
    int source = tree.WinnerSource();
    Record winner = tree.WinnerItem();
    if (have_previous && winner < previous) {
      return Status::Corruption(
          StrFormat("merge output went backwards at record %llu",
                    static_cast<unsigned long long>(outcome.records_merged)));
    }
    previous = winner;
    have_previous = true;
    if (writer != nullptr) {
      EMSIM_RETURN_IF_ERROR(writer->Append(winner));
    }
    ++outcome.records_merged;

    Record next;
    if (readers[static_cast<size_t>(source)]->Next(&next)) {
      tree.ReplaceWinner(next);
    } else {
      EMSIM_RETURN_IF_ERROR(readers[static_cast<size_t>(source)]->status());
      tree.ExhaustWinner();
    }
    // The winner's block may have depleted when `next` was pulled.
    note_depletions(source);
  }

  if (writer != nullptr) {
    Result<RunDescriptor> out = writer->Finish();
    if (!out.ok()) {
      return out.status();
    }
    outcome.output = *out;
  }
  return outcome;
}

}  // namespace

Result<MergeOutcome> MergeRuns(BlockDevice* input_device,
                               const std::vector<RunDescriptor>& runs,
                               BlockDevice* output_device, const KWayMergeOptions& options) {
  return MergeImpl(input_device, runs, output_device, options);
}

Result<MergeOutcome> ExtractDepletionTrace(BlockDevice* input_device,
                                           const std::vector<RunDescriptor>& runs) {
  KWayMergeOptions options;
  options.record_depletion_trace = true;
  return MergeImpl(input_device, runs, /*output_device=*/nullptr, options);
}

}  // namespace emsim::extsort

// Property sweeps over the extension surface (write traffic, striping,
// angular rotation): invariants that must hold across the grid.

#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "core/merge_simulator.h"
#include "disk/disk_params.h"
#include "disk/layout.h"

namespace emsim::core {
namespace {

using WriteGridPoint = std::tuple<Strategy, WriteTraffic, int /*write disks*/>;

class WriteTrafficGrid : public ::testing::TestWithParam<WriteGridPoint> {};

TEST_P(WriteTrafficGrid, ConservesAndOrdersSanely) {
  auto [strategy, traffic, write_disks] = GetParam();
  MergeConfig cfg = MergeConfig::Paper(10, 4, 5, strategy, SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 120;
  cfg.check_invariants = true;
  MergeConfig base = cfg;
  cfg.write_traffic = traffic;
  cfg.num_write_disks = write_disks;
  auto with_writes = SimulateMerge(cfg);
  auto without = SimulateMerge(base);
  ASSERT_TRUE(with_writes.ok()) << with_writes.status().ToString();
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with_writes->write_blocks, static_cast<uint64_t>(cfg.TotalBlocks()));
  // Modeling writes can never make the merge finish earlier.
  EXPECT_GE(with_writes->total_ms, without->total_ms * 0.999);
  // Reads are unaffected in count.
  EXPECT_EQ(with_writes->cache_stats.deposits, without->cache_stats.deposits);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WriteTrafficGrid,
    ::testing::Combine(::testing::Values(Strategy::kDemandRunOnly,
                                         Strategy::kAllDisksOneRun),
                       ::testing::Values(WriteTraffic::kSeparateDisks,
                                         WriteTraffic::kSharedDisks),
                       ::testing::Values(1, 2, 4)));

class StripedGrid : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(StripedGrid, StripedNeverBeatsTransferBoundAndConserves) {
  auto [k, d, n] = GetParam();
  MergeConfig cfg =
      MergeConfig::Paper(k, d, n, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 120;  // Divisible by 1..6.
  cfg.placement = disk::RunPlacement::kStriped;
  cfg.check_invariants = true;
  auto result = SimulateMerge(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->blocks_merged, cfg.TotalBlocks());
  double bound = cfg.disk_params.TransferMsPerBlock() *
                 static_cast<double>(cfg.TotalBlocks()) / d;
  EXPECT_GE(result->total_ms, bound * 0.999);
  EXPECT_LE(result->avg_concurrency, d + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, StripedGrid,
                         ::testing::Combine(::testing::Values(4, 10),
                                            ::testing::Values(2, 3, 6),
                                            ::testing::Values(1, 6, 12)));

class RotationModelGrid
    : public ::testing::TestWithParam<std::tuple<disk::RotationalLatencyModel, Strategy>> {
};

TEST_P(RotationModelGrid, AllRotationModelsAgreeWithinVariance) {
  auto [rotation, strategy] = GetParam();
  MergeConfig cfg = MergeConfig::Paper(15, 3, 5, strategy, SyncMode::kUnsynchronized);
  cfg.blocks_per_run = 300;
  cfg.disk_params.rotation = rotation;
  auto result = RunTrials(cfg, 3);
  MergeConfig reference = cfg;
  reference.disk_params.rotation = disk::RotationalLatencyModel::kUniform;
  auto ref = RunTrials(reference, 3);
  // All models share the mean latency R, so totals agree within ~10%.
  // Fixed-mean is measurably FASTER under inter-run prefetching (~6%): the
  // batch ends with the slowest disk, so removing latency variance removes
  // the E[max] penalty — exactly the 2RD/(D+1) term of eq. 5.
  EXPECT_NEAR(result.total_ms.Mean(), ref.total_ms.Mean(), ref.total_ms.Mean() * 0.10);
  if (rotation == disk::RotationalLatencyModel::kFixedMean &&
      strategy == Strategy::kAllDisksOneRun) {
    EXPECT_LT(result.total_ms.Mean(), ref.total_ms.Mean());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RotationModelGrid,
    ::testing::Combine(::testing::Values(disk::RotationalLatencyModel::kFixedMean,
                                         disk::RotationalLatencyModel::kUniform,
                                         disk::RotationalLatencyModel::kAngular),
                       ::testing::Values(Strategy::kDemandRunOnly,
                                         Strategy::kAllDisksOneRun)));

TEST(StallDistributionTest, SyncStallsLongerThanUnsync) {
  MergeConfig cfg = MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun,
                                       SyncMode::kSynchronized);
  auto sync_result = SimulateMerge(cfg);
  cfg.sync = SyncMode::kUnsynchronized;
  auto unsync_result = SimulateMerge(cfg);
  ASSERT_TRUE(sync_result.ok());
  ASSERT_TRUE(unsync_result.ok());
  // Synchronized waits for the whole DN batch; unsynchronized only for the
  // demand block.
  EXPECT_GT(sync_result->stall_ms.Mean(), unsync_result->stall_ms.Mean());
}

TEST(StallDistributionTest, DeeperPrefetchMeansFewerStalls) {
  uint64_t prev_count = ~0ULL;
  for (int n : {1, 5, 20}) {
    MergeConfig cfg =
        MergeConfig::Paper(25, 5, n, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized);
    auto result = SimulateMerge(cfg);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->stall_ms.count(), prev_count);
    prev_count = result->stall_ms.count();
  }
}

}  // namespace
}  // namespace emsim::core

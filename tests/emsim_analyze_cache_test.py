#!/usr/bin/env python3
"""Cache-invalidation tests for tools/lint/emsim_analyze.py, mirroring the
seven run_clang_tidy cache tests — plus the two properties the analyzer adds
on top of the clang-tidy cache: a comment-only edit is a full cache hit (the
key is the comment-stripped token stream), and cached findings/suppressions
still resolve to *current* line numbers after such an edit (facts are
anchored to token indices and remapped at report time)."""

import json
import shutil
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools" / "lint"))

import emsim_analyze  # noqa: E402

HEADER_H = """#ifndef FIXTURE_CLOCK_H_
#define FIXTURE_CLOCK_H_
#include <chrono>
inline double ReadClock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
#endif
"""

SINK_CC = """#include "core/clock_util.h"
namespace emsim::stats {
double WriteJson() { return ReadClock(); }
}
"""

OTHER_CC = """int Standalone() { return 42; }
"""


class AnalyzeCacheTest(unittest.TestCase):
    def setUp(self):
        self.root = Path(tempfile.mkdtemp(prefix="emsim_analyze_cache_"))
        self.addCleanup(shutil.rmtree, self.root, ignore_errors=True)
        (self.root / "build").mkdir()
        self.cache_dir = self.root / "cache"
        self.write("src/core/clock_util.h", HEADER_H)
        self.write("src/stats/json_writer.cc", SINK_CC)
        self.write("src/core/other.cc", OTHER_CC)
        self.write_db()

    def write(self, rel, text):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")

    def write_db(self):
        db = []
        for cc in sorted(self.root.glob("src/**/*.cc")):
            db.append({
                "directory": str(self.root),
                "file": str(cc),
                "command": f"c++ -I{self.root}/src -c "
                           f"{cc.relative_to(self.root)} -o x.o",
            })
        (self.root / "build" / "compile_commands.json").write_text(
            json.dumps(db), encoding="utf-8")

    def run_analyzer(self, *extra):
        timing = self.root / "timing.json"
        report = self.root / "report.json"
        code = emsim_analyze.main([
            "--build-dir", str(self.root / "build"),
            "--source-root", str(self.root),
            "--frontend", "internal",
            "--cache-dir", str(self.cache_dir),
            "--timing-report", str(timing),
            "--report", str(report),
            *extra,
        ])
        return (code,
                json.loads(timing.read_text(encoding="utf-8")),
                json.loads(report.read_text(encoding="utf-8")))

    # -- the seven mirrored scenarios ---------------------------------------

    def test_cold_run_analyzes_everything_and_reports_misses(self):
        code, timing, _ = self.run_analyzer()
        self.assertEqual(code, 1)  # the fixture deliberately has a finding
        self.assertEqual(timing["cache"]["misses"], 2)
        self.assertEqual(timing["cache"]["hits"], 0)

    def test_unchanged_tree_is_a_full_cache_hit(self):
        self.run_analyzer()
        _, timing, _ = self.run_analyzer()
        self.assertEqual(timing["cache"]["hits"], 2)
        self.assertEqual(timing["cache"]["misses"], 0)

    def test_header_edit_reanalyzes_exactly_its_dependents(self):
        self.run_analyzer()
        self.write("src/core/clock_util.h",
                   HEADER_H.replace("ReadClock", "ReadClockRenamed"))
        _, timing, _ = self.run_analyzer()
        # json_writer.cc includes the header; other.cc does not.
        self.assertEqual(timing["cache"]["misses"], 1)
        self.assertEqual(timing["cache"]["hits"], 1)
        missed = [f["file"] for f in timing["files"] if not f["cached"]]
        self.assertEqual(missed, ["src/stats/json_writer.cc"])

    def test_rule_config_change_invalidates_every_entry(self):
        self.run_analyzer()
        original = emsim_analyze.SCHEMA
        emsim_analyze.SCHEMA = original + "-test-bump"
        try:
            _, timing, _ = self.run_analyzer()
        finally:
            emsim_analyze.SCHEMA = original
        self.assertEqual(timing["cache"]["misses"], 2)

    def test_no_cache_flag_bypasses_the_cache(self):
        self.run_analyzer()
        _, timing, _ = self.run_analyzer("--no-cache")
        self.assertFalse(timing["cache"]["enabled"])
        self.assertEqual(timing["cache"]["hits"], 0)

    def test_findings_fail_the_run_even_when_cached(self):
        code_cold, _, report_cold = self.run_analyzer()
        code_warm, timing, report_warm = self.run_analyzer()
        self.assertEqual(code_cold, 1)
        self.assertEqual(code_warm, 1)
        self.assertEqual(timing["cache"]["hits"], 2)
        self.assertEqual(
            [(f["path"], f["line"], f["rule"])
             for f in report_cold["findings"]],
            [(f["path"], f["line"], f["rule"])
             for f in report_warm["findings"]])

    def test_warm_budget_rejects_an_over_budget_warm_run(self):
        # Cold runs are exempt no matter how slow ...
        code, timing, _ = self.run_analyzer("--warm-budget-seconds", "1e-9",
                                            "--advisory")
        self.assertEqual(code, 0)
        self.assertFalse(timing["over_budget"])
        # ... warm runs over budget fail even in advisory mode.
        code, timing, _ = self.run_analyzer("--warm-budget-seconds", "1e-9",
                                            "--advisory")
        self.assertEqual(code, 1)
        self.assertTrue(timing["over_budget"])
        # A sane budget passes warm.
        code, timing, _ = self.run_analyzer("--warm-budget-seconds", "600",
                                            "--advisory")
        self.assertEqual(code, 0)

    # -- analyzer-specific upgrades over the clang-tidy cache ---------------

    def test_comment_only_edit_is_a_full_cache_hit(self):
        self.run_analyzer()
        self.write("src/core/other.cc",
                   "// a new comment, nothing else\n" + OTHER_CC)
        self.write("src/core/clock_util.h",
                   HEADER_H.replace("#include <chrono>",
                                    "#include <chrono>  // for the clock"))
        _, timing, _ = self.run_analyzer()
        self.assertEqual(timing["cache"]["misses"], 0)
        self.assertEqual(timing["cache"]["hits"], 2)

    def test_cached_findings_remap_to_current_lines_after_comment_edit(self):
        _, _, report = self.run_analyzer()
        (line_before,) = [f["line"] for f in report["findings"]]
        # Insert two comment lines above the finding: cache must hit AND the
        # reported line must shift by two.
        self.write("src/core/clock_util.h",
                   HEADER_H.replace("inline double ReadClock",
                                    "// shift\n// shift\ninline double "
                                    "ReadClock"))
        code, timing, report = self.run_analyzer()
        self.assertEqual(code, 1)
        self.assertEqual(timing["cache"]["misses"], 0)
        (line_after,) = [f["line"] for f in report["findings"]]
        self.assertEqual(line_after, line_before + 2)

    def test_adding_a_suppression_works_on_a_warm_cache(self):
        code, _, _ = self.run_analyzer()
        self.assertEqual(code, 1)
        self.write("src/core/clock_util.h",
                   HEADER_H.replace(
                       "  return std::chrono",
                       "  // emsim-analyze: allow(determinism-taint)\n"
                       "  return std::chrono"))
        code, timing, report = self.run_analyzer()
        self.assertEqual(timing["cache"]["misses"], 0)
        self.assertEqual(report["findings"], [])
        self.assertEqual(len(report["suppressions"]), 1)
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)

# Empty compiler generated dependencies file for emsim_disk.
# This may be replaced when dependencies are built.

// Reproduces the in-text Section 3.2 numbers for multiple disks with
// demand-run-only prefetching: the no-prefetch baseline (eq. 3), the
// synchronized intra-run times (eq. 4), the urn-game concurrency model and
// the asymptotic unsynchronized estimates it yields.

#include "analysis/equations.h"
#include "analysis/model_params.h"
#include "analysis/urn_game.h"
#include "bench_util.h"
#include "core/config.h"
#include "stats/table.h"
#include "util/str.h"

int main() {
  using namespace emsim;
  using analysis::ModelParams;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using stats::Table;

  bench::Banner(
      "Section 3.2 in-text table (multi-disk, Demand Run Only)",
      "Paper values: no-prefetch 276 s (k25/D5) and 552.7 s (k50/D10);\n"
      "intra sync N=10 85.3 s, N=30 71.2 s; urn overlaps 2.51/3.66/5.29;\n"
      "unsync asymptotes 28.4 s (k25/D5/N30) and 38.9 s (k50/D10/N30).");

  {
    Table table({"config", "paper est (s)", "analytic (s)", "simulated (s)"});
    struct Row {
      int k, d, n;
      SyncMode sync;
      const char* paper;
    };
    const Row rows[] = {
        {25, 5, 1, SyncMode::kUnsynchronized, "276.4"},
        {50, 10, 1, SyncMode::kUnsynchronized, "552.7"},
        {25, 5, 10, SyncMode::kSynchronized, "85.3"},
        {25, 5, 30, SyncMode::kSynchronized, "71.2"},
        {50, 10, 30, SyncMode::kSynchronized, "142.4"},
    };
    for (const Row& row : rows) {
      ModelParams p = ModelParams::Paper(row.k, row.d);
      double analytic =
          analysis::TotalMs(p, row.n == 1 ? analysis::Eq3NoPrefetchMultiDisk(p)
                                          : analysis::Eq4IntraRunMultiDiskSync(p, row.n)) /
          1e3;
      MergeConfig cfg =
          MergeConfig::Paper(row.k, row.d, row.n, Strategy::kDemandRunOnly, row.sync);
      auto result = bench::Run(cfg);
      table.AddRow({StrFormat("k=%d D=%d N=%d %s", row.k, row.d, row.n,
                              row.sync == SyncMode::kSynchronized ? "sync" : "unsync"),
                    row.paper, Table::Cell(analytic), bench::TimeCell(result)});
    }
    bench::EmitTable("Eq.3 / Eq.4: analytic vs simulated", table);
  }

  {
    Table table({"D", "urn E[len] exact", "sqrt(piD/2)-1/3", "paper", "measured concurrency"});
    struct Row {
      int d;
      const char* paper;
    };
    for (const Row& row : {Row{5, "2.51"}, Row{10, "3.66"}, Row{20, "5.29"}}) {
      analysis::UrnGame game(row.d);
      // Measure with a large N so the asymptotic model applies; k = 5D runs.
      MergeConfig cfg = MergeConfig::Paper(5 * row.d, row.d, 50, Strategy::kDemandRunOnly,
                                           SyncMode::kUnsynchronized);
      cfg.blocks_per_run = 500;
      auto result = bench::Run(cfg);
      table.AddRow({Table::Cell(row.d, 0), Table::Cell(game.ExpectedLength(), 3),
                    Table::Cell(game.AsymptoticLength(), 3), row.paper,
                    Table::Cell(result.MeanConcurrency(), 3)});
    }
    bench::EmitTable(
        "Urn-game concurrency vs measured disk overlap (N=50)", table,
        "measured concurrency approaches the urn value from below as N grows");
  }

  {
    Table table({"config", "paper est (s)", "eq.4/urn (s)", "simulated unsync (s)"});
    struct Row {
      int k, d, n;
      const char* paper;
    };
    for (const Row& row : {Row{25, 5, 30, "28.4"}, Row{50, 10, 30, "38.9"}}) {
      ModelParams p = ModelParams::Paper(row.k, row.d);
      double asym = analysis::TotalMs(p, analysis::Eq4IntraRunMultiDiskSync(p, row.n)) /
                    analysis::UnsyncSpeedupFactor(row.d) / 1e3;
      MergeConfig cfg = MergeConfig::Paper(row.k, row.d, row.n, Strategy::kDemandRunOnly,
                                           SyncMode::kUnsynchronized);
      auto result = bench::Run(cfg);
      table.AddRow({StrFormat("k=%d D=%d N=%d", row.k, row.d, row.n), row.paper,
                    Table::Cell(asym), bench::TimeCell(result)});
    }
    bench::EmitTable("Unsynchronized intra-run: asymptotic model vs simulation", table,
                     "paper reports the same gap: simulated N=30 sits above the "
                     "large-N asymptote (29.x vs 28.4 in the paper)");
  }
  emsim::bench::WriteJsonArtifact("table_multi_disk");
  return 0;
}

// Reproduces the in-text Section 3.1 numbers (single disk): the Kwan-Baer
// no-prefetching baseline and intra-run prefetching, analytic vs simulated,
// for k = 25 and k = 50 runs.

#include "analysis/equations.h"
#include "analysis/model_params.h"
#include "bench_util.h"
#include "core/config.h"
#include "stats/table.h"
#include "util/str.h"

int main() {
  using namespace emsim;
  using analysis::ModelParams;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using stats::Table;

  bench::Banner("Section 3.1 in-text table (single disk)",
                "No-prefetch baseline and intra-run prefetching on one disk.\n"
                "Paper values: k=25 est 292.5 s; k=50 est 625 s; N=10 -> 86.9 /\n"
                "177.9 s; N=30 above the transfer bound 64.1 / 128.2 s.");

  Table table({"config", "paper est (s)", "analytic (s)", "simulated (s)", "sim/analytic"});
  struct Row {
    int k, n;
    const char* paper;
  };
  const Row rows[] = {
      {25, 1, "292.5"}, {50, 1, "625"},   {25, 10, "86.9"},
      {50, 10, "177.9"}, {25, 30, "~66"}, {50, 30, "~135"},
  };
  for (const Row& row : rows) {
    ModelParams p = ModelParams::Paper(row.k, 1);
    double analytic = analysis::TotalMs(
        p, row.n == 1 ? analysis::Eq1NoPrefetchSingleDisk(p)
                      : analysis::Eq2IntraRunSingleDisk(p, row.n)) /
                      1e3;
    MergeConfig cfg = MergeConfig::Paper(row.k, 1, row.n, Strategy::kDemandRunOnly,
                                         SyncMode::kUnsynchronized);
    auto result = bench::Run(cfg);
    table.AddRow({StrFormat("k=%d N=%d", row.k, row.n), row.paper,
                  Table::Cell(analytic), bench::TimeCell(result),
                  Table::Cell(result.MeanTotalSeconds() / analytic, 3)});
  }
  bench::EmitTable("Single disk: analytic vs simulated", table,
                   "transfer-time lower bounds: 64.1 s (k=25), 128.2 s (k=50)");
  emsim::bench::WriteJsonArtifact("table_single_disk");
  return 0;
}

#include <gtest/gtest.h>

#include "analysis/markov.h"
#include "core/config.h"
#include "core/experiment.h"

namespace emsim::analysis {
namespace {

using Policy = MarkovPrefetchModel::Policy;

TEST(MarkovTest, MinimalCacheForcesSerialIo) {
  // With C = D every I/O can only fetch the demand block.
  for (int d : {1, 2, 3, 5}) {
    MarkovPrefetchModel model(d, d);
    EXPECT_DOUBLE_EQ(model.AverageParallelism(Policy::kConservative), 1.0);
    EXPECT_DOUBLE_EQ(model.AverageParallelism(Policy::kGreedy), 1.0);
    EXPECT_DOUBLE_EQ(model.SuccessRatio(Policy::kConservative), d == 1 ? 1.0 : 0.0);
  }
}

TEST(MarkovTest, SingleDiskIsTrivial) {
  MarkovPrefetchModel model(1, 8);
  EXPECT_DOUBLE_EQ(model.AverageParallelism(Policy::kConservative), 1.0);
  EXPECT_DOUBLE_EQ(model.SuccessRatio(Policy::kConservative), 1.0);
}

TEST(MarkovTest, ParallelismBounds) {
  for (int d : {2, 3, 5}) {
    for (int c : {d, 2 * d, 4 * d}) {
      MarkovPrefetchModel model(d, c);
      for (Policy p : {Policy::kConservative, Policy::kGreedy}) {
        double par = model.AverageParallelism(p);
        EXPECT_GE(par, 1.0);
        EXPECT_LE(par, d);
        double succ = model.SuccessRatio(p);
        EXPECT_GE(succ, 0.0);
        EXPECT_LE(succ, 1.0);
        EXPECT_GE(model.MeanOccupancy(p), static_cast<double>(d));
        EXPECT_LE(model.MeanOccupancy(p), static_cast<double>(c));
      }
    }
  }
}

TEST(MarkovTest, ParallelismIncreasesWithCache) {
  for (Policy p : {Policy::kConservative, Policy::kGreedy}) {
    double prev = 0;
    for (int c : {5, 8, 12, 20, 35}) {
      MarkovPrefetchModel model(5, c);
      double par = model.AverageParallelism(p);
      EXPECT_GE(par, prev - 1e-9);
      prev = par;
    }
    EXPECT_GT(prev, 3.0);  // Ample cache approaches D.
  }
}

TEST(MarkovTest, TwoDisksPoliciesCoincide) {
  // With D = 2 greedy's partial fetch is exactly the conservative fallback.
  for (int c : {2, 4, 6, 10}) {
    MarkovPrefetchModel model(2, c);
    EXPECT_NEAR(model.AverageParallelism(Policy::kConservative),
                model.AverageParallelism(Policy::kGreedy), 1e-9);
  }
}

TEST(MarkovTest, ConservativeHasHigherSuccessRatio) {
  // Deferring partial prefetches frees frames sooner, so full fan-outs
  // happen more often — the mechanism behind the paper's choice.
  for (int d : {3, 5}) {
    for (int c : {2 * d, 3 * d, 5 * d}) {
      MarkovPrefetchModel model(d, c);
      EXPECT_GE(model.SuccessRatio(Policy::kConservative),
                model.SuccessRatio(Policy::kGreedy) - 1e-9)
          << "D=" << d << " C=" << c;
    }
  }
}

TEST(MarkovTest, ConservativeParallelismCompetitiveAtAmpleCache) {
  // TR-9108's claim: at reasonable cache sizes the conservative policy's
  // average I/O parallelism matches or exceeds greedy's. In this chain the
  // two converge (D=5, C=25: 3.569 vs 3.541 in conservative's favor; D=3 a
  // statistical tie), while at small caches greedy's partial fetches give
  // it an edge — both within a 1% band of each other at C = 5D.
  for (int d : {3, 5}) {
    MarkovPrefetchModel model(d, 5 * d);
    double cons = model.AverageParallelism(Policy::kConservative);
    double greedy = model.AverageParallelism(Policy::kGreedy);
    EXPECT_GE(cons, greedy * 0.99) << "D=" << d;
  }
  // At D=5, C=25 the conservative advantage is strict.
  MarkovPrefetchModel model(5, 25);
  EXPECT_GT(model.AverageParallelism(Policy::kConservative),
            model.AverageParallelism(Policy::kGreedy));
}

TEST(MarkovTest, GreedyBuffersMore) {
  // Greedy fills frames it cannot use for full fan-outs.
  MarkovPrefetchModel model(5, 15);
  EXPECT_GT(model.MeanOccupancy(Policy::kGreedy),
            model.MeanOccupancy(Policy::kConservative));
}

TEST(MarkovTest, AgreesWithSimulatorAtSteadyState) {
  // Cross-validation: DES with one run per disk, N = 1, long runs. The
  // simulator's success ratio should approach the chain's.
  const int d = 3;
  const int c = 6;
  MarkovPrefetchModel model(d, c);
  core::MergeConfig cfg = core::MergeConfig::Paper(
      d, d, 1, core::Strategy::kAllDisksOneRun, core::SyncMode::kSynchronized);
  cfg.blocks_per_run = 4000;
  cfg.cache_blocks = c;
  auto result = core::RunTrials(cfg, 3);
  EXPECT_NEAR(result.MeanSuccessRatio(), model.SuccessRatio(Policy::kConservative), 0.05);
}

}  // namespace
}  // namespace emsim::analysis

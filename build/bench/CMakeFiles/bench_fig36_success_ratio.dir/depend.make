# Empty dependencies file for bench_fig36_success_ratio.
# This may be replaced when dependencies are built.

// Pins the calendar-backend result-equivalence contract end to end: the
// fig3.2 experiment JSON and a 7-shard sweep-merge artifact must be
// byte-identical whether the kernel runs on the 4-ary heap or the Brown-1988
// calendar queue. The backend knob is deliberately absent from specs, spec
// digests and every exported document, so any byte difference here is a real
// pop-order divergence in one of the backends — exactly the regression this
// test exists to catch.

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "core/result_json.h"
#include "sim/calendar.h"
#include "sweep/merge.h"
#include "sweep/shard.h"
#include "util/str.h"

namespace emsim {
namespace {

using core::MergeConfig;
using core::Strategy;
using core::SyncMode;
using sim::CalendarBackend;

/// Fig3.2-style operating points (both strategies, the paper's disk), plus a
/// fault-injected unit so retry/backoff event traffic crosses backends too.
std::vector<core::SweepUnit> PaperUnits(CalendarBackend backend) {
  std::vector<core::SweepUnit> units;
  for (int n : {1, 4, 10}) {
    MergeConfig cfg =
        MergeConfig::Paper(25, 5, n, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
    cfg.calendar = backend;
    units.push_back(core::SweepUnit{StrFormat("fig32/ador/n=%d", n), cfg, 2});
  }
  MergeConfig demand =
      MergeConfig::Paper(25, 5, 4, Strategy::kDemandRunOnly, SyncMode::kUnsynchronized);
  demand.calendar = backend;
  units.push_back(core::SweepUnit{"fig32/dro/n=4", demand, 2});

  MergeConfig faulty =
      MergeConfig::Paper(10, 3, 2, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
  faulty.blocks_per_run = 120;
  faulty.fault.media_error_rate = 0.01;
  faulty.fault.latency_spike_rate = 0.03;
  faulty.fault.latency_spike_ms = 8.0;
  faulty.calendar = backend;
  units.push_back(core::SweepUnit{"faulty", faulty, 3});
  return units;
}

std::string RenderJson(const std::vector<core::SweepUnit>& units,
                       const std::vector<core::ExperimentResult>& results) {
  std::vector<core::NamedExperiment> named;
  for (size_t i = 0; i < units.size(); ++i) {
    named.push_back(core::NamedExperiment{units[i].name, units[i].config, &results[i]});
  }
  return core::ExperimentSetToJson(named);
}

TEST(CalendarBackendTest, Fig32ExperimentJsonByteIdenticalAcrossBackends) {
  std::string json_heap;
  std::string json_cq;
  {
    auto units = PaperUnits(CalendarBackend::kHeap);
    json_heap = RenderJson(units, core::RunSweep(units, 2));
  }
  {
    auto units = PaperUnits(CalendarBackend::kCalendarQueue);
    json_cq = RenderJson(units, core::RunSweep(units, 2));
  }
  EXPECT_FALSE(json_heap.empty());
  EXPECT_EQ(json_heap, json_cq);
}

TEST(CalendarBackendTest, SevenShardSweepMergeByteIdenticalAcrossBackends) {
  constexpr int kShards = 7;
  std::vector<std::string> shard_texts[2];
  std::string merged_json[2];
  const CalendarBackend backends[2] = {CalendarBackend::kHeap,
                                       CalendarBackend::kCalendarQueue};
  for (int b = 0; b < 2; ++b) {
    auto units = PaperUnits(backends[b]);
    core::SweepGrid grid(units);
    for (int s = 0; s < kShards; ++s) {
      shard_texts[b].push_back(
          sweep::EncodeShardArtifact(sweep::RunShard(grid, s, kShards, 1, {})));
    }
    auto merged = sweep::MergeShardArtifacts(units, shard_texts[b]);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    merged_json[b] = RenderJson(units, *merged);
  }
  // Every individual shard artifact — spec digest included — and the merged
  // document must agree byte for byte.
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(shard_texts[0][static_cast<size_t>(s)], shard_texts[1][static_cast<size_t>(s)])
        << "shard " << s;
  }
  EXPECT_FALSE(merged_json[0].empty());
  EXPECT_EQ(merged_json[0], merged_json[1]);
}

/// Spec round-trips stay backend-agnostic: the knob must never serialize.
TEST(CalendarBackendTest, BackendIsExcludedFromSpecsAndDigests) {
  auto heap_units = PaperUnits(CalendarBackend::kHeap);
  auto cq_units = PaperUnits(CalendarBackend::kCalendarQueue);
  EXPECT_EQ(sweep::SpecDigest(heap_units), sweep::SpecDigest(cq_units));
  EXPECT_EQ(heap_units[0].config.ToString(), cq_units[0].config.ToString());
}

}  // namespace
}  // namespace emsim

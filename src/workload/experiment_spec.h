#ifndef EMSIM_WORKLOAD_EXPERIMENT_SPEC_H_
#define EMSIM_WORKLOAD_EXPERIMENT_SPEC_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "util/status.h"

namespace emsim::workload {

/// A named experiment parsed from a spec file.
struct ExperimentSpec {
  std::string name;
  core::MergeConfig config;
  int trials = 5;
};

/// Parses a simple INI-style experiment spec:
///
///     # defaults apply to every experiment
///     trials = 5
///     disks = 5
///
///     [baseline]
///     runs = 25
///     strategy = demand-run-only
///     n = 1
///
///     [best]
///     runs = 25
///     strategy = all-disks-one-run
///     n = 10
///     sync = unsync
///
/// Recognized keys: runs, disks, blocks, n, cache, strategy
/// (demand-run-only | all-disks-one-run), sync (sync | unsync), admission
/// (conservative | greedy), victim (random | round-robin | fewest-buffered
/// | nearest-head), depletion (uniform | zipf), zipf_theta, cpu_ms,
/// write_traffic (none | separate | shared), write_disks, write_batch,
/// trials, seed, and the fault-injection family fault_media_error_rate,
/// fault_spike_rate, fault_spike_ms, fault_slow_disk, fault_slow_factor,
/// fault_slow_start_ms, fault_slow_end_ms, fault_stop_disk,
/// fault_stop_start_ms, fault_stop_end_ms, fault_seed, fault_max_retries,
/// fault_timeout_ms, fault_backoff_ms, fault_backoff_mult (see
/// docs/ROBUSTNESS.md). Any section key accepts a comma-separated sweep, so
/// `fault_slow_factor = 1,2,4,8` expands into one experiment per severity.
/// Keys before the first section set defaults. Unknown keys, bad values and
/// empty specs are errors with line numbers; when `source` is nonempty every
/// message is prefixed "<source>:<line>:" so a spec loaded from disk reports
/// the offending file and line together.
Result<std::vector<ExperimentSpec>> ParseExperimentSpec(const std::string& text,
                                                        const std::string& source = "");

/// Reads and parses a spec file from disk. Parse errors carry the path as
/// their source, i.e. "specs/paper.ini:12: unknown key 'runz'".
Result<std::vector<ExperimentSpec>> LoadExperimentSpec(const std::string& path);

/// Renders a config back into spec syntax (round-trip aid and
/// self-documentation for tools).
std::string ToSpec(const ExperimentSpec& spec);

}  // namespace emsim::workload

#endif  // EMSIM_WORKLOAD_EXPERIMENT_SPEC_H_

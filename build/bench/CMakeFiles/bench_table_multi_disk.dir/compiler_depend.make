# Empty compiler generated dependencies file for bench_table_multi_disk.
# This may be replaced when dependencies are built.

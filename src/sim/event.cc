#include "sim/event.h"

#include <utility>

#include "util/check.h"

namespace emsim::sim {

void Event::Set() {
  if (set_) {
    return;
  }
  set_ = true;
  for (auto h : waiters_) {
    sim_->ScheduleHandle(sim_->Now(), h);
  }
  waiters_.clear();
}

void Event::Reset() {
  // Resetting under waiters would strand their coroutine frames: they were
  // queued against the previous arming and no future Set() owes them a
  // wakeup. The contract ("must not be called while processes wait") is
  // enforced, not just documented.
  EMSIM_CHECK(waiters_.empty() && "Event::Reset with pending waiters");
  set_ = false;
}

void Signal::FireSlow() {
  // Detach first: a resumed waiter may immediately re-wait on this signal,
  // and those re-waits belong to the *next* pulse.
  InlineVec<std::coroutine_handle<>, 4> woken(std::move(waiters_));
  for (auto h : woken) {
    sim_->ScheduleHandle(sim_->Now(), h);
  }
}

}  // namespace emsim::sim

#ifndef EMSIM_BENCH_BENCH_UTIL_H_
#define EMSIM_BENCH_BENCH_UTIL_H_

#include <string>

#include "core/config.h"
#include "core/experiment.h"
#include "stats/series.h"
#include "stats/table.h"

namespace emsim::bench {

/// Number of averaged trials per experiment point (paper's count is
/// OCR-lost; 5 keeps every bench binary under a minute).
inline constexpr int kTrials = 5;

/// Runs the config for kTrials trials and returns the aggregate.
core::ExperimentResult Run(const core::MergeConfig& config);

/// Prints a figure (table + CSV) with a standard banner.
void EmitFigure(const stats::Figure& figure);

/// Prints a paper-vs-measured table with a banner and a shape note.
void EmitTable(const std::string& title, const stats::Table& table,
               const std::string& note = "");

/// Standard banner for a bench binary.
void Banner(const std::string& experiment_id, const std::string& what);

/// Formats "x.xx ±y.yy" seconds from an experiment aggregate.
std::string TimeCell(const core::ExperimentResult& result);

}  // namespace emsim::bench

#endif  // EMSIM_BENCH_BENCH_UTIL_H_

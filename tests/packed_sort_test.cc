#include "extsort/block_device.h"
#include "extsort/packed_sort.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "extsort/tag_sort.h"
#include "util/rng.h"

namespace emsim::extsort {
namespace {

std::vector<uint8_t> MakePacked(size_t count, size_t record_bytes, uint64_t seed,
                                std::vector<uint64_t>* keys) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(count * record_bytes, 0);
  for (size_t i = 0; i < count; ++i) {
    uint64_t key = rng.Next64();
    keys->push_back(key);
    std::memcpy(bytes.data() + i * record_bytes, &key, 8);
    uint64_t idx = i;
    std::memcpy(bytes.data() + i * record_bytes + 8, &idx, 8);
  }
  return bytes;
}

class PackedSortCorrectness
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(PackedSortCorrectness, SortsAndConserves) {
  auto [record_bytes, memory_records] = GetParam();
  const size_t count = 4000;
  MemoryBlockDevice input(1 << 12, 1024);
  MemoryBlockDevice scratch(1 << 12, 1024);
  MemoryBlockDevice output(1 << 12, 1024);

  std::vector<uint64_t> keys;
  auto bytes = MakePacked(count, record_bytes, 23, &keys);
  PackedRecordFile in(&input, record_bytes);
  ASSERT_TRUE(in.WriteAll(bytes, count).ok());

  PackedSortOptions options;
  options.record_bytes = record_bytes;
  options.memory_records = memory_records;
  PackedExternalSorter sorter(options);
  auto stats = sorter.Sort(&input, count, &scratch, &output);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, count);
  EXPECT_EQ(stats->runs, (count + memory_records - 1) / memory_records);

  PackedRecordFile out(&output, record_bytes);
  auto out_keys = out.ScanKeys(count);
  ASSERT_TRUE(out_keys.ok());
  std::vector<uint64_t> expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(*out_keys, expect);

  // Payload permutation intact.
  std::vector<bool> seen(count, false);
  std::vector<uint8_t> record(record_bytes);
  for (size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(out.ReadRecord(i, record, nullptr).ok());
    uint64_t idx = 0;
    std::memcpy(&idx, record.data() + 8, 8);
    ASSERT_LT(idx, count);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedSortCorrectness,
    ::testing::Combine(::testing::Values(size_t{16}, size_t{48}, size_t{128}, size_t{512}),
                       ::testing::Values(size_t{100}, size_t{700}, size_t{5000})));

TEST(PackedSortTest, SingleChunkIsOneRun) {
  const size_t count = 100;
  MemoryBlockDevice input(64, 1024);
  MemoryBlockDevice scratch(64, 1024);
  MemoryBlockDevice output(64, 1024);
  std::vector<uint64_t> keys;
  auto bytes = MakePacked(count, 32, 1, &keys);
  PackedRecordFile in(&input, 32);
  ASSERT_TRUE(in.WriteAll(bytes, count).ok());
  PackedSortOptions options;
  options.record_bytes = 32;
  options.memory_records = 1000;
  auto stats = PackedExternalSorter(options).Sort(&input, count, &scratch, &output);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->runs, 1u);
}

TEST(PackedSortTest, AgreesWithTagSort) {
  const size_t count = 3000;
  const size_t record_bytes = 64;
  MemoryBlockDevice input(1 << 11, 1024);
  std::vector<uint64_t> keys;
  auto bytes = MakePacked(count, record_bytes, 9, &keys);
  PackedRecordFile in(&input, record_bytes);
  ASSERT_TRUE(in.WriteAll(bytes, count).ok());

  MemoryBlockDevice scratch_a(1 << 11, 1024);
  MemoryBlockDevice out_a(1 << 11, 1024);
  PackedSortOptions merge_options;
  merge_options.record_bytes = record_bytes;
  merge_options.memory_records = 500;
  auto merge_stats =
      PackedExternalSorter(merge_options).Sort(&input, count, &scratch_a, &out_a);
  ASSERT_TRUE(merge_stats.ok());

  MemoryBlockDevice scratch_b(1 << 11, 1024);
  MemoryBlockDevice out_b(1 << 11, 1024);
  TagSortOptions tag_options;
  tag_options.record_bytes = record_bytes;
  tag_options.tag_memory_records = 500;
  auto tag_stats = TagSorter(tag_options).Sort(&input, count, &scratch_b, &out_b);
  ASSERT_TRUE(tag_stats.ok());

  PackedRecordFile a(&out_a, record_bytes);
  PackedRecordFile b(&out_b, record_bytes);
  auto keys_a = a.ScanKeys(count);
  auto keys_b = b.ScanKeys(count);
  ASSERT_TRUE(keys_a.ok());
  ASSERT_TRUE(keys_b.ok());
  EXPECT_EQ(*keys_a, *keys_b);
}

TEST(PackedSortTest, EmptyInputRejected) {
  MemoryBlockDevice input(8, 1024);
  MemoryBlockDevice scratch(8, 1024);
  MemoryBlockDevice output(8, 1024);
  PackedExternalSorter sorter(PackedSortOptions{});
  EXPECT_FALSE(sorter.Sort(&input, 0, &scratch, &output).ok());
}

}  // namespace
}  // namespace emsim::extsort

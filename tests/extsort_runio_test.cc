#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "extsort/block_device.h"
#include "extsort/record.h"
#include "extsort/run_io.h"
#include "util/status.h"

namespace emsim::extsort {
namespace {

std::vector<Record> SequentialRecords(uint64_t n) {
  std::vector<Record> records;
  for (uint64_t i = 0; i < n; ++i) {
    records.push_back({i, i * 10});
  }
  return records;
}

RunDescriptor WriteRun(BlockDevice* dev, const std::vector<Record>& records,
                       int64_t start = 0) {
  RunWriter writer(dev, start);
  for (const Record& r : records) {
    EXPECT_TRUE(writer.Append(r).ok());
  }
  auto run = writer.Finish();
  EXPECT_TRUE(run.ok());
  return *run;
}

TEST(RunWriterTest, DescriptorMatchesContent) {
  MemoryBlockDevice dev(100, 64);  // 3 records per block.
  auto records = SequentialRecords(10);
  RunDescriptor run = WriteRun(&dev, records);
  EXPECT_EQ(run.start_block, 0);
  EXPECT_EQ(run.num_records, 10u);
  EXPECT_EQ(run.num_blocks, 4);  // ceil(10/3)
}

TEST(RunWriterTest, RejectsOutOfOrderAppend) {
  MemoryBlockDevice dev(10, 64);
  RunWriter writer(&dev, 0);
  ASSERT_TRUE(writer.Append({5, 0}).ok());
  Status s = writer.Append({4, 0});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Equal keys are fine.
  EXPECT_TRUE(writer.Append({5, 0}).ok());
}

TEST(RunWriterTest, EmptyRun) {
  MemoryBlockDevice dev(10, 64);
  RunWriter writer(&dev, 2);
  auto run = writer.Finish();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_blocks, 0);
  EXPECT_EQ(run->num_records, 0u);
}

TEST(RunReaderTest, RoundTripsRecords) {
  MemoryBlockDevice dev(100, 64);
  auto records = SequentialRecords(10);
  RunDescriptor run = WriteRun(&dev, records);
  RunReader reader(&dev, run);
  std::vector<Record> got;
  Record r;
  while (reader.Next(&r)) {
    got.push_back(r);
  }
  EXPECT_EQ(got, records);
  EXPECT_EQ(reader.blocks_depleted(), run.num_blocks);
}

TEST(RunReaderTest, NonZeroStartBlock) {
  MemoryBlockDevice dev(100, 64);
  auto first = SequentialRecords(5);
  auto second = SequentialRecords(7);
  RunDescriptor run1 = WriteRun(&dev, first, 0);
  RunDescriptor run2 = WriteRun(&dev, second, run1.num_blocks);
  RunReader reader(&dev, run2);
  std::vector<Record> got;
  Record r;
  while (reader.Next(&r)) {
    got.push_back(r);
  }
  EXPECT_EQ(got, second);
}

TEST(RunReaderTest, BufferedReadingEquivalent) {
  MemoryBlockDevice dev(200, 64);
  auto records = SequentialRecords(50);
  RunDescriptor run = WriteRun(&dev, records);
  for (int buffer_blocks : {1, 2, 5, 100}) {
    RunReader reader(&dev, run, buffer_blocks);
    std::vector<Record> got;
    Record r;
    while (reader.Next(&r)) {
      got.push_back(r);
    }
    EXPECT_EQ(got, records) << "buffer=" << buffer_blocks;
    EXPECT_EQ(reader.blocks_depleted(), run.num_blocks);
  }
}

TEST(RunReaderTest, BufferingReducesIoCount) {
  MemoryBlockDevice dev(200, 64);
  auto records = SequentialRecords(60);  // 20 blocks.
  RunDescriptor run = WriteRun(&dev, records);
  uint64_t base_reads = dev.reads();
  {
    RunReader reader(&dev, run, 1);
    Record r;
    while (reader.Next(&r)) {
    }
  }
  uint64_t unbuffered = dev.reads() - base_reads;
  base_reads = dev.reads();
  {
    RunReader reader(&dev, run, 5);
    Record r;
    while (reader.Next(&r)) {
    }
  }
  uint64_t buffered = dev.reads() - base_reads;
  EXPECT_EQ(unbuffered, buffered);  // Same block count either way...
  EXPECT_EQ(buffered, 20u);         // ...every block read exactly once.
}

TEST(RunReaderTest, BlocksDepleteIncrementally) {
  MemoryBlockDevice dev(100, 64);  // 3 records/block.
  auto records = SequentialRecords(7);
  RunDescriptor run = WriteRun(&dev, records);
  RunReader reader(&dev, run, 2);
  Record r;
  EXPECT_EQ(reader.blocks_depleted(), 0);
  reader.Next(&r);
  reader.Next(&r);
  EXPECT_EQ(reader.blocks_depleted(), 0);
  reader.Next(&r);  // Third record finishes block 0.
  EXPECT_EQ(reader.blocks_depleted(), 1);
  while (reader.Next(&r)) {
  }
  EXPECT_EQ(reader.blocks_depleted(), 3);  // 3+3+1 records in 3 blocks.
}

TEST(RunReaderTest, NeedsIoSignalsBufferBoundaries) {
  MemoryBlockDevice dev(100, 64);
  auto records = SequentialRecords(6);
  RunDescriptor run = WriteRun(&dev, records);
  RunReader reader(&dev, run, 1);
  EXPECT_TRUE(reader.NeedsIo());
  Record r;
  reader.Next(&r);
  EXPECT_FALSE(reader.NeedsIo());
  reader.Next(&r);
  reader.Next(&r);
  EXPECT_TRUE(reader.NeedsIo());  // Block 0 drained, block 1 unread.
}

}  // namespace
}  // namespace emsim::extsort

#include "util/rng.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace emsim {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next64() == b.Next64();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntApproximatelyUniform) {
  Rng rng(13);
  const int buckets = 10;
  const int samples = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < samples; ++i) {
    ++counts[rng.UniformInt(buckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, samples / buckets, samples / buckets * 0.1);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.UniformDouble(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Exponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(43);
  auto perm = rng.Permutation(100);
  std::vector<uint32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(RngTest, PermutationZeroAndOne) {
  Rng rng(47);
  EXPECT_TRUE(rng.Permutation(0).empty());
  auto one = rng.Permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RngTest, SplitStreamsLookIndependent) {
  Rng parent(53);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.Next64() == child.Next64();
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(59);
  ZipfGenerator zipf(8, 0.0);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.Next(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(ZipfTest, MassDecreasesWithRank) {
  Rng rng(61);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[99]);
}

TEST(ZipfTest, SingleElement) {
  Rng rng(67);
  ZipfGenerator zipf(1, 0.99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(zipf.Next(rng), 0u);
  }
}

TEST(ZipfTest, InRange) {
  Rng rng(71);
  for (double theta : {0.0, 0.5, 0.99, 1.0, 1.5}) {
    ZipfGenerator zipf(37, theta);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(zipf.Next(rng), 37u);
    }
  }
}

}  // namespace
}  // namespace emsim

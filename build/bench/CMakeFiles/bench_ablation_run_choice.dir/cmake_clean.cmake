file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_run_choice.dir/bench_ablation_run_choice.cc.o"
  "CMakeFiles/bench_ablation_run_choice.dir/bench_ablation_run_choice.cc.o.d"
  "bench_ablation_run_choice"
  "bench_ablation_run_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_run_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

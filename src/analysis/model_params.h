#ifndef EMSIM_ANALYSIS_MODEL_PARAMS_H_
#define EMSIM_ANALYSIS_MODEL_PARAMS_H_

#include <cstdint>
#include <string>

#include "disk/disk_params.h"
#include "disk/layout.h"

namespace emsim::analysis {

/// Inputs to the paper's closed-form models, in the paper's notation:
/// S (seek/cylinder), R (mean rotational latency), T (transfer/block),
/// m (run length in cylinders), k (runs), D (disks).
struct ModelParams {
  double seek_ms_per_cylinder = 0.01;  ///< S
  double rotational_ms = 50.0 / 6.0;   ///< R
  double transfer_ms = 50.0 * 8 / (3 * 52);  ///< T
  double run_cylinders = 1000.0 / 104.0;     ///< m
  int num_runs = 25;                         ///< k
  int num_disks = 1;                         ///< D
  int64_t blocks_per_run = 1000;

  /// Total blocks merged (k runs x blocks each).
  int64_t TotalBlocks() const {
    return static_cast<int64_t>(num_runs) * blocks_per_run;
  }

  /// Builds model inputs from concrete disk parameters and a layout.
  static ModelParams From(const disk::DiskParams& disk_params, const disk::RunLayout& layout);

  /// The paper's configuration with the given k and D.
  static ModelParams Paper(int num_runs, int num_disks);

  std::string ToString() const;
};

}  // namespace emsim::analysis

#endif  // EMSIM_ANALYSIS_MODEL_PARAMS_H_

#include "sim/event.h"

#include <utility>

#include "util/check.h"

namespace emsim::sim {

void Event::Set() {
  if (set_) {
    return;
  }
  set_ = true;
  // One calendar touch for the whole cohort: all waiters resume at the
  // current tick, in arrival order (see Simulation::ScheduleHandleBurst).
  sim_->ScheduleHandleBurst(sim_->Now(), waiters_.begin(), waiters_.size());
  waiters_.clear();
}

void Event::Reset() {
  // Resetting under waiters would strand their coroutine frames: they were
  // queued against the previous arming and no future Set() owes them a
  // wakeup. The contract ("must not be called while processes wait") is
  // enforced, not just documented.
  EMSIM_CHECK(waiters_.empty() && "Event::Reset with pending waiters");
  set_ = false;
}

void Signal::FireSlow() {
  // Detach first: a resumed waiter may immediately re-wait on this signal,
  // and those re-waits belong to the *next* pulse.
  InlineVec<std::coroutine_handle<>, 4> woken(std::move(waiters_));
  sim_->ScheduleHandleBurst(sim_->Now(), woken.begin(), woken.size());
}

}  // namespace emsim::sim

# Empty compiler generated dependencies file for emsim_io.
# This may be replaced when dependencies are built.

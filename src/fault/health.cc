#include "fault/health.h"

#include <algorithm>
#include <cstddef>

#include "util/check.h"

namespace emsim::fault {

HealthTracker::HealthTracker(int num_disks, Options options)
    : options_(options),
      num_disks_(num_disks),
      disks_(static_cast<size_t>(num_disks)) {
  EMSIM_CHECK(num_disks >= 1);
  EMSIM_CHECK(options_.quarantine_after_failures >= 1);
  EMSIM_CHECK(options_.quarantine_window_ms >= 0.0);
}

void HealthTracker::NoteFailure(int disk, double now) {
  util::MutexLock lock(&mu_);
  DiskHealth& h = disks_[static_cast<size_t>(disk)];
  ++h.consecutive_failures;
  if (h.consecutive_failures < options_.quarantine_after_failures) return;
  double until = now + options_.quarantine_window_ms;
  if (until <= h.quarantine_until) return;
  if (h.quarantine_until <= now) ++quarantine_events_;
  quarantine_ms_ += until - std::max(now, h.quarantine_until);
  h.quarantine_until = until;
}

void HealthTracker::NoteSuccess(int disk) {
  util::MutexLock lock(&mu_);
  disks_[static_cast<size_t>(disk)].consecutive_failures = 0;
}

void HealthTracker::MarkDead(int disk) {
  util::MutexLock lock(&mu_);
  disks_[static_cast<size_t>(disk)].dead = true;
}

bool HealthTracker::UsableLocked(int disk, double now) const {
  const DiskHealth& h = disks_[static_cast<size_t>(disk)];
  return !h.dead && h.quarantine_until <= now;
}

bool HealthTracker::Usable(int disk, double now) const {
  util::MutexLock lock(&mu_);
  return UsableLocked(disk, now);
}

bool HealthTracker::Dead(int disk) const {
  util::MutexLock lock(&mu_);
  return disks_[static_cast<size_t>(disk)].dead;
}

int HealthTracker::DegradedCount(double now) const {
  util::MutexLock lock(&mu_);
  int degraded = 0;
  for (int d = 0; d < num_disks_; ++d) {
    if (!UsableLocked(d, now)) ++degraded;
  }
  return degraded;
}

uint64_t HealthTracker::quarantine_events() const {
  util::MutexLock lock(&mu_);
  return quarantine_events_;
}

double HealthTracker::quarantine_ms() const {
  util::MutexLock lock(&mu_);
  return quarantine_ms_;
}

}  // namespace emsim::fault


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/equations.cc" "src/analysis/CMakeFiles/emsim_analysis.dir/equations.cc.o" "gcc" "src/analysis/CMakeFiles/emsim_analysis.dir/equations.cc.o.d"
  "/root/repo/src/analysis/markov.cc" "src/analysis/CMakeFiles/emsim_analysis.dir/markov.cc.o" "gcc" "src/analysis/CMakeFiles/emsim_analysis.dir/markov.cc.o.d"
  "/root/repo/src/analysis/model_params.cc" "src/analysis/CMakeFiles/emsim_analysis.dir/model_params.cc.o" "gcc" "src/analysis/CMakeFiles/emsim_analysis.dir/model_params.cc.o.d"
  "/root/repo/src/analysis/predictor.cc" "src/analysis/CMakeFiles/emsim_analysis.dir/predictor.cc.o" "gcc" "src/analysis/CMakeFiles/emsim_analysis.dir/predictor.cc.o.d"
  "/root/repo/src/analysis/seek_distribution.cc" "src/analysis/CMakeFiles/emsim_analysis.dir/seek_distribution.cc.o" "gcc" "src/analysis/CMakeFiles/emsim_analysis.dir/seek_distribution.cc.o.d"
  "/root/repo/src/analysis/urn_game.cc" "src/analysis/CMakeFiles/emsim_analysis.dir/urn_game.cc.o" "gcc" "src/analysis/CMakeFiles/emsim_analysis.dir/urn_game.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disk/CMakeFiles/emsim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/emsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

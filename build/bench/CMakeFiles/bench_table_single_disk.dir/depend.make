# Empty dependencies file for bench_table_single_disk.
# This may be replaced when dependencies are built.

#include "util/str.h"

#include <cstdarg>
#include <cstdio>

namespace emsim {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string FormatSeconds(double ms) { return StrFormat("%.2f s", ms / 1000.0); }

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s.substr(0, width);
  }
  return s + std::string(width - s.size(), ' ');
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

}  // namespace emsim

#!/usr/bin/env python3
"""One-command whole-paper sweep via the sharded sweep fabric.

Thin driver around `emsim_cli --sweep`: picks the spec, shard count and
output path, forwards everything to the CLI's multi-process dispatcher, and
optionally byte-verifies the merged artifact against a single-process run
(the determinism contract in docs/SWEEPS.md).

  # PR-sized smoke sweep, 4 worker subprocesses
  python3 tools/sweep/run_paper_sweep.py

  # nightly full grid, 8 shards, with the byte-identity cross-check
  python3 tools/sweep/run_paper_sweep.py \
      --spec tools/sweep/specs/paper_full.ini --shards 8 --verify

  # pick up where a crashed or drained (Ctrl-C / SIGTERM) sweep left off
  python3 tools/sweep/run_paper_sweep.py --resume

A SIGTERM/SIGINT mid-sweep drains gracefully (the CLI exits 3 and this
script mirrors it); rerun with --resume to finish from the journal. All
simulation logic lives in the CLI; this script only shells out.
"""

import argparse
import filecmp
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cli",
        default=os.path.join(REPO_ROOT, "build", "tools", "emsim_cli"),
        help="path to the emsim_cli binary (default: build/tools/emsim_cli)",
    )
    parser.add_argument(
        "--spec",
        default=os.path.join(REPO_ROOT, "tools", "sweep", "specs", "paper_smoke.ini"),
        help="experiment spec to sweep (default: the PR smoke grid)",
    )
    parser.add_argument("--shards", type=int, default=4,
                        help="worker subprocesses to shard across (default 4)")
    parser.add_argument("--out", default="SWEEP_paper.json",
                        help="merged JSON artifact path (default SWEEP_paper.json)")
    parser.add_argument("--shard-dir", default="sweep_shards",
                        help="directory for per-shard artifacts")
    parser.add_argument("--shard-timeout-ms", type=float, default=0.0,
                        help="per-shard deadline before kill+resubmit (0 = none)")
    parser.add_argument("--chaos-kill-shard", type=int, default=-1,
                        help="kill this shard's first attempt (resubmission smoke)")
    parser.add_argument("--resume", action="store_true",
                        help="resume a crashed or drained sweep from the run "
                             "journal in --shard-dir (same spec required)")
    parser.add_argument("--stats", action="store_true",
                        help="embed dispatcher retry/kill counters in the JSON "
                             "(--sweep-stats; off by default to keep the "
                             "merged bytes identical to a single-process run)")
    parser.add_argument("--verify", action="store_true",
                        help="also run single-process and require byte-identical JSON")
    args = parser.parse_args()

    if not os.path.exists(args.cli):
        sys.exit(f"run_paper_sweep: CLI not found at {args.cli} — build it first "
                 "(cmake --build build --target emsim_cli)")
    if not os.path.exists(args.spec):
        sys.exit(f"run_paper_sweep: spec not found: {args.spec}")
    if args.shards < 1:
        sys.exit("run_paper_sweep: --shards must be >= 1")
    if args.stats and args.verify:
        sys.exit("run_paper_sweep: --stats embeds a dispatch block a "
                 "single-process run does not have, so --verify's byte "
                 "comparison cannot hold; pick one")

    if args.resume:
        journal = os.path.join(args.shard_dir, "journal.jsonl")
        if not os.path.exists(journal):
            sys.exit(f"run_paper_sweep: nothing to resume — no journal at {journal}")
        cmd = [
            args.cli,
            "--spec", args.spec,
            "--sweep-resume", args.shard_dir,
            "--shard-timeout-ms", str(args.shard_timeout_ms),
            "--json", args.out,
        ]
    else:
        cmd = [
            args.cli,
            "--spec", args.spec,
            "--sweep", str(args.shards),
            "--shard-dir", args.shard_dir,
            "--shard-timeout-ms", str(args.shard_timeout_ms),
            "--json", args.out,
        ]
        if args.chaos_kill_shard >= 0:
            cmd += ["--sweep-chaos-kill-shard", str(args.chaos_kill_shard)]
    if args.stats:
        cmd += ["--sweep-stats"]
    print("run_paper_sweep:", " ".join(cmd), flush=True)
    result = subprocess.run(cmd)
    if result.returncode == 3:
        # Graceful drain (SIGTERM/SIGINT landed on the CLI): completed shards
        # are journaled and durable; mirror the CLI's exit code so callers
        # (systemd, CI) can tell "interrupted, resumable" from "failed".
        print(f"run_paper_sweep: sweep drained — finish it with:\n"
              f"  {sys.argv[0]} --resume --spec {args.spec} "
              f"--shard-dir {args.shard_dir} --out {args.out}",
              file=sys.stderr)
        sys.exit(3)
    if result.returncode != 0:
        sys.exit(result.returncode)

    if args.verify:
        single_out = args.out + ".single"
        verify_cmd = [args.cli, "--spec", args.spec, "--json", single_out]
        print("run_paper_sweep: verify:", " ".join(verify_cmd), flush=True)
        result = subprocess.run(verify_cmd, stdout=subprocess.DEVNULL)
        if result.returncode != 0:
            sys.exit(result.returncode)
        if not filecmp.cmp(args.out, single_out, shallow=False):
            sys.exit(
                f"run_paper_sweep: DETERMINISM VIOLATION — {args.out} differs "
                f"from single-process {single_out}"
            )
        os.remove(single_out)
        print("run_paper_sweep: merged artifact is byte-identical to the "
              "single-process run")

    print(f"run_paper_sweep: wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

file(REMOVE_RECURSE
  "CMakeFiles/regression_golden_test.dir/regression_golden_test.cc.o"
  "CMakeFiles/regression_golden_test.dir/regression_golden_test.cc.o.d"
  "regression_golden_test"
  "regression_golden_test.pdb"
  "regression_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

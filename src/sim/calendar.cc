#include "sim/calendar.h"

#include <algorithm>
#include <cstdlib>

namespace emsim::sim {

bool ParseCalendarBackend(std::string_view text, CalendarBackend* out) {
  if (text.empty()) {
    *out = CalendarBackend::kDefault;
    return true;
  }
  if (text == "heap") {
    *out = CalendarBackend::kHeap;
    return true;
  }
  if (text == "cq" || text == "calendar-queue") {
    *out = CalendarBackend::kCalendarQueue;
    return true;
  }
  return false;
}

const char* CalendarBackendName(CalendarBackend backend) {
  switch (backend) {
    case CalendarBackend::kHeap:
      return "heap";
    case CalendarBackend::kCalendarQueue:
      return "cq";
    case CalendarBackend::kDefault:
      break;
  }
  return "default";
}

CalendarBackend DefaultCalendarBackend() {
  static const CalendarBackend resolved = [] {
    const char* env = std::getenv("EMSIM_CALENDAR");
    CalendarBackend parsed = CalendarBackend::kDefault;
    EMSIM_CHECK(ParseCalendarBackend(env == nullptr ? "" : env, &parsed) &&
                "EMSIM_CALENDAR must be unset, \"heap\", or \"cq\"");
    return parsed == CalendarBackend::kDefault ? CalendarBackend::kHeap : parsed;
  }();
  return resolved;
}

CalendarBackend ResolveCalendarBackend(CalendarBackend requested) {
  return requested == CalendarBackend::kDefault ? DefaultCalendarBackend() : requested;
}

void CalendarQueue::FindMinSparse() {
  // Sparse calendar: every pending entry is more than a year ahead of the
  // cursor. Fall back to a direct search over bucket fronts on the real
  // (time, seq) keys and jump the cursor to the winner (Brown's "direct
  // search" case).
  const size_t nbuckets = buckets_.size();
  size_t best = SIZE_MAX;
  for (size_t b = 0; b < nbuckets; ++b) {
    if (buckets_[b].empty()) {
      continue;
    }
    if (best == SIZE_MAX || EarlierThan(buckets_[b].front(), buckets_[best].front())) {
      best = b;
    }
  }
  EMSIM_CHECK(best != SIZE_MAX);
  cur_virtual_ = VirtualBucket(buckets_[best].front().time);
  peek_bucket_ = best;
  peek_valid_ = true;
}

void CalendarQueue::DrainInOrder(std::vector<CalEntry>* out) {
  for (std::vector<CalEntry>& bucket : buckets_) {
    out->insert(out->end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  std::sort(out->begin(), out->end(), EarlierThan);
  size_ = 0;
  cur_virtual_ = 0;
  peek_valid_ = false;
}

void CalendarQueue::Resize(size_t new_bucket_count) {
  // Collect into a recycled scratch buffer; clear() keeps every bucket's
  // capacity, and resize() below keeps the surviving vectors' heap storage,
  // so a resize allocates (almost) nothing once the structure has warmed up.
  // The full sort this used to do was the single most expensive part of
  // filling a calendar from cold — resizes need the pending set ordered only
  // far enough to estimate the width, which selection gives in O(n).
  std::vector<CalEntry>& pending = resize_scratch_;
  pending.clear();
  pending.reserve(size_);
  for (std::vector<CalEntry>& bucket : buckets_) {
    pending.insert(pending.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }

  // Adapt the width to 3x the average gap of the earliest ~25 entries (after
  // Brown): wide enough that a bucket holds a few events, narrow enough that
  // one year spans the active front. Only the sample needs ordering, so
  // select-then-sort-25 replaces sorting all of `pending`. Degenerate
  // samples (all-equal timestamps) keep the previous width — everything
  // collapses into one bucket, which the due-test handles correctly.
  const size_t sample = std::min<size_t>(pending.size(), kWidthSample);
  if (sample >= 2) {
    std::nth_element(pending.begin(), pending.begin() + static_cast<ptrdiff_t>(sample - 1),
                     pending.end(), EarlierThan);
    std::sort(pending.begin(), pending.begin() + static_cast<ptrdiff_t>(sample), EarlierThan);
    const double span = pending[sample - 1].time - pending[0].time;
    const double avg_gap = span / static_cast<double>(sample - 1);
    if (avg_gap > 1e-12) {
      SetWidth(3.0 * avg_gap);
    }
  }

  buckets_.resize(new_bucket_count);
  if (pending.empty()) {
    cur_virtual_ = 0;
  } else {
    // pending[0] is the global minimum (trivially for size 1, by the
    // selection above otherwise), so the cursor restarts exactly at the
    // earliest pending entry's bucket.
    cur_virtual_ = VirtualBucket(pending.front().time);
  }
  for (const CalEntry& entry : pending) {
    InsertSorted(buckets_[BucketIndex(VirtualBucket(entry.time))], entry);
  }
  peek_valid_ = false;
}

}  // namespace emsim::sim

#ifndef EMSIM_EXTSORT_MERGER_H_
#define EMSIM_EXTSORT_MERGER_H_

#include <cstdint>
#include <vector>

#include "extsort/block_device.h"
#include "extsort/run_io.h"
#include "util/status.h"

namespace emsim::extsort {

/// Result of a k-way merge pass.
struct MergeOutcome {
  uint64_t records_merged = 0;
  RunDescriptor output;  ///< Where the merged run was written.

  /// The block-depletion trace: entry t is the run index whose block was
  /// the t-th to be fully consumed. Feeding this to the merge-phase
  /// simulator (core::DepletionKind::kTrace) times the *real* merge's I/O
  /// under any prefetching strategy — the bridge between the library's real
  /// sorter and the paper's stochastic model.
  std::vector<int> depletion_trace;

  /// Blocks of each input run (aligned with the trace run indices).
  std::vector<int64_t> run_blocks;
};

struct KWayMergeOptions {
  int reader_buffer_blocks = 1;  ///< Blocks per input read.
  int64_t output_start_block = 0;
  bool record_depletion_trace = true;
};

/// Merges the given sorted runs (all on `input_device`) into one run on
/// `output_device`, with the loser tree doing source selection. Verifies
/// input order as it goes (corrupt runs fail).
Result<MergeOutcome> MergeRuns(BlockDevice* input_device,
                               const std::vector<RunDescriptor>& runs,
                               BlockDevice* output_device, const KWayMergeOptions& options);

/// Convenience: merges and discards the output data, returning only the
/// depletion trace (used to drive the simulator from real key
/// distributions without materializing output).
Result<MergeOutcome> ExtractDepletionTrace(BlockDevice* input_device,
                                           const std::vector<RunDescriptor>& runs);

}  // namespace emsim::extsort

#endif  // EMSIM_EXTSORT_MERGER_H_

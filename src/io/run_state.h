#ifndef EMSIM_IO_RUN_STATE_H_
#define EMSIM_IO_RUN_STATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emsim::io {

/// Fetch-progress bookkeeping for one sorted run during the merge.
struct RunState {
  int64_t blocks_total = 0;
  int64_t next_fetch_offset = 0;  ///< First block not yet requested from disk.
  int64_t consumed = 0;           ///< Blocks fully merged (depleted).

  /// Blocks still on disk and unrequested.
  int64_t RemainingOnDisk() const { return blocks_total - next_fetch_offset; }

  /// True when every block has been requested (possibly still in flight).
  bool FullyRequested() const { return next_fetch_offset >= blocks_total; }

  /// True when every block has been merged.
  bool FullyConsumed() const { return consumed >= blocks_total; }
};

/// State of all runs; index is the run id.
class RunStates {
 public:
  RunStates(int num_runs, int64_t blocks_per_run);

  /// Per-run lengths variant.
  explicit RunStates(const std::vector<int64_t>& run_blocks);

  RunState& operator[](int run) { return states_.at(static_cast<size_t>(run)); }
  const RunState& operator[](int run) const { return states_.at(static_cast<size_t>(run)); }

  int size() const { return static_cast<int>(states_.size()); }

  /// Runs with unmerged blocks remaining (the depletion candidates).
  std::vector<int> ActiveRuns() const;

  /// Total unmerged blocks across all runs.
  int64_t TotalRemaining() const;

 private:
  std::vector<RunState> states_;
};

}  // namespace emsim::io

#endif  // EMSIM_IO_RUN_STATE_H_

#include "analysis/predictor.h"

#include "analysis/equations.h"
#include "analysis/urn_game.h"
#include "util/str.h"

namespace emsim::analysis {

const char* ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kNoPrefetchSingleDisk:
      return "no-prefetch/1-disk (eq.1)";
    case Scenario::kIntraRunSingleDisk:
      return "intra-run/1-disk (eq.2)";
    case Scenario::kNoPrefetchMultiDisk:
      return "no-prefetch/D-disk (eq.3)";
    case Scenario::kIntraRunMultiDiskSync:
      return "intra-run/D-disk/sync (eq.4)";
    case Scenario::kIntraRunMultiDiskUnsync:
      return "intra-run/D-disk/unsync (eq.4 / urn)";
    case Scenario::kInterRunSync:
      return "inter-run/D-disk/sync (eq.5)";
    case Scenario::kInterRunUnsyncBound:
      return "inter-run/D-disk/unsync (transfer bound)";
  }
  return "?";
}

Prediction Predict(const ModelParams& p, Scenario scenario, int n) {
  Prediction out;
  out.scenario = scenario;
  switch (scenario) {
    case Scenario::kNoPrefetchSingleDisk:
      out.per_block_ms = Eq1NoPrefetchSingleDisk(p);
      out.formula = "m(k/3)S + R + T";
      break;
    case Scenario::kIntraRunSingleDisk:
      out.per_block_ms = Eq2IntraRunSingleDisk(p, n);
      out.formula = StrFormat("m(k/3N)S + R/N + T, N=%d", n);
      break;
    case Scenario::kNoPrefetchMultiDisk:
      out.per_block_ms = Eq3NoPrefetchMultiDisk(p);
      out.formula = "m(k/3D)S + R + T";
      break;
    case Scenario::kIntraRunMultiDiskSync:
      out.per_block_ms = Eq4IntraRunMultiDiskSync(p, n);
      out.formula = StrFormat("m(k/3ND)S + R/N + T, N=%d", n);
      break;
    case Scenario::kIntraRunMultiDiskUnsync:
      out.per_block_ms =
          Eq4IntraRunMultiDiskSync(p, n) / UnsyncSpeedupFactor(p.num_disks);
      out.asymptotic = true;
      out.formula = StrFormat("eq.4 / E[urn length](D=%d)=%.3f, N=%d", p.num_disks,
                              UnsyncSpeedupFactor(p.num_disks), n);
      break;
    case Scenario::kInterRunSync:
      out.per_block_ms = Eq5InterRunSync(p, n);
      out.formula = StrFormat("mkS/(3ND^2) + 2R/(N(D+1)) + T/D, N=%d", n);
      break;
    case Scenario::kInterRunUnsyncBound:
      out.per_block_ms = LowerBoundPerBlockMultiDisk(p);
      out.asymptotic = true;
      out.formula = "T/D (lower bound)";
      break;
  }
  out.total_ms = TotalMs(p, out.per_block_ms);
  return out;
}

Scenario ClassifyScenario(bool inter_run, bool synchronized_io, int num_disks, int n) {
  if (inter_run) {
    return synchronized_io ? Scenario::kInterRunSync : Scenario::kInterRunUnsyncBound;
  }
  if (num_disks <= 1) {
    return n <= 1 ? Scenario::kNoPrefetchSingleDisk : Scenario::kIntraRunSingleDisk;
  }
  if (n <= 1) {
    return Scenario::kNoPrefetchMultiDisk;
  }
  return synchronized_io ? Scenario::kIntraRunMultiDiskSync
                         : Scenario::kIntraRunMultiDiskUnsync;
}

}  // namespace emsim::analysis

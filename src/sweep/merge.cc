#include "sweep/merge.h"

#include <cstddef>
#include <cstdint>
#include <limits>

#include "core/result.h"
#include "sweep/shard.h"
#include "util/str.h"

namespace emsim::sweep {

Result<std::vector<core::ExperimentResult>> MergeShardArtifacts(
    const std::vector<core::SweepUnit>& units, const std::vector<std::string>& artifacts) {
  core::SweepGrid grid(units);
  const uint64_t digest = SpecDigest(units);
  const int total = grid.total_tasks();

  std::vector<core::MergeResult> results(static_cast<size_t>(total));
  std::vector<bool> covered(static_cast<size_t>(total), false);
  int failed_task = std::numeric_limits<int>::max();
  Status failed_status;

  for (size_t a = 0; a < artifacts.size(); ++a) {
    Result<ShardArtifact> decoded = DecodeShardArtifact(artifacts[a]);
    if (!decoded.ok()) {
      return Status::Corruption(StrFormat("artifact %zu: %s", a,
                                          decoded.status().message().c_str()));
    }
    const ShardArtifact& shard = *decoded;
    if (shard.spec_digest != digest) {
      return Status::InvalidArgument(
          StrFormat("artifact %zu (shard %d/%d): spec digest %016llx does not match the "
                    "loaded spec (%016llx) — artifact is from a different sweep",
                    a, shard.shard_index, shard.shard_count,
                    static_cast<unsigned long long>(shard.spec_digest),
                    static_cast<unsigned long long>(digest)));
    }
    if (shard.total_tasks != total) {
      return Status::InvalidArgument(
          StrFormat("artifact %zu: %d total tasks, spec defines %d", a, shard.total_tasks,
                    total));
    }
    ShardRange expected = ShardSlice(total, shard.shard_index, shard.shard_count);
    if (shard.range.begin != expected.begin || shard.range.end != expected.end) {
      return Status::Corruption(
          StrFormat("artifact %zu: shard %d/%d claims range [%d, %d), expected [%d, %d)", a,
                    shard.shard_index, shard.shard_count, shard.range.begin, shard.range.end,
                    expected.begin, expected.end));
    }
    for (const ShardTask& task : shard.tasks) {
      if (task.task < shard.range.begin || task.task >= shard.range.end) {
        return Status::Corruption(StrFormat("artifact %zu: task %d outside its shard range",
                                            a, task.task));
      }
      if (!task.ok) {
        if (task.task < failed_task) {
          failed_task = task.task;
          failed_status = task.error;
        }
        continue;
      }
      // A resubmitted straggler can leave two artifacts for the same shard;
      // the per-task results are deterministic, so either copy is correct.
      results[static_cast<size_t>(task.task)] = task.result;
      covered[static_cast<size_t>(task.task)] = true;
    }
  }

  if (failed_task != std::numeric_limits<int>::max()) {
    // The exact message a single-process RunSweep would have aborted with:
    // lowest-index capture is shard- and thread-count independent.
    return Status(failed_status.code(),
                  StrFormat("sweep task %d failed: %s", failed_task,
                            failed_status.ToString().c_str()));
  }
  for (int t = 0; t < total; ++t) {
    if (!covered[static_cast<size_t>(t)]) {
      core::SweepGrid::Task task = grid.At(t);
      return Status::InvalidArgument(StrFormat(
          "task %d (unit '%s', trial %d) not covered by any artifact — missing shard?", t,
          units[static_cast<size_t>(task.unit)].name.c_str(), task.trial));
    }
  }

  std::vector<core::ExperimentResult> out;
  out.reserve(units.size());
  for (int u = 0; u < grid.num_units(); ++u) {
    auto first = results.begin() + grid.UnitBegin(u);
    auto last = first + units[static_cast<size_t>(u)].trials;
    out.push_back(core::AggregateTrials(
        std::vector<core::MergeResult>(std::make_move_iterator(first),
                                       std::make_move_iterator(last))));
  }
  return out;
}

}  // namespace emsim::sweep

#!/usr/bin/env python3
"""emsim determinism lint.

Project-specific static checks that no off-the-shelf tool knows about. The
simulator's contract is that equal seeds produce byte-identical output
(aggregates, JSON exports, golden files), so this lint forbids every known
source of run-to-run nondeterminism at the source level:

  no-libc-rand         rand()/srand()/random() — unseeded global C RNG.
  no-wall-clock        time(), clock(), gettimeofday(), std::chrono
                       system_clock/high_resolution_clock — wall-clock reads
                       leak real time into simulated results.
  no-std-random-engine std:: random engines and std::random_device — the only
                       sanctioned generator is emsim::Rng (explicitly seeded,
                       identical streams on every platform).
  no-unordered-in-export
                       unordered_{map,set} in result/JSON-export paths —
                       their iteration order is not byte-stable across
                       libstdc++ versions, so exports must use sorted
                       containers (std::map) or explicit sorting.
  check-over-assert    assert() — compiled out under NDEBUG, so Release and
                       Debug runs would diverge in what they enforce; use
                       EMSIM_CHECK / EMSIM_DCHECK.
  result-unchecked     naked `.value()` / `*x` / `x->` on a variable declared
                       `Result<T>` in src/ with no `x.ok()` check on the same
                       or any of the preceding 15 lines — dereferencing an
                       error Result aborts the process, so every access must
                       sit visibly behind an ok() gate (an if, a return, or
                       an EMSIM_CHECK).
  artifact-raw-write   std::ofstream or write-mode fopen() outside tests/ —
                       a crash mid-write publishes a torn file under its
                       final name, defeating the journal/footer durability
                       contract (docs/SWEEPS.md); artifacts must be staged
                       through util::AtomicFile / util::WriteFileAtomic.
                       Read-mode fopen ("r", "rb") is fine.
  include-guard        headers must guard with EMSIM_<PATH>_H_ derived from
                       their repo-relative path (e.g. src/util/check.h ->
                       EMSIM_UTIL_CHECK_H_).
  raw-thread           std::thread / std::jthread / std::async / .detach()
                       outside src/util/ and tests/ — ad-hoc threads bypass
                       util::ThreadPool's bounded, joined, capability-
                       annotated workers (and the emsim_analyze lock rules
                       that key off its roots); a detached thread can outlive
                       the results it writes. std::thread::hardware_concurrency
                       (a pure query) is fine.

Coroutine-safety rules, scoped to coroutine translation units (a file that
contains co_await / co_return). The hot path runs on pooled C++20 coroutine
frames, where lifetime bugs corrupt results silently instead of crashing:

  coro-ref-capture     a lambda coroutine that captures by reference, or
                       reads a reference parameter after a co_await in the
                       same body — the frame outlives the enclosing scope,
                       so the reference dangles at resume time. Named
                       coroutines (spawned immediately, caller keeps the
                       referents alive across sim.Run()) are the sanctioned
                       pattern and are not flagged.
  coro-raw-handle      std::coroutine_handle stored or manipulated outside
                       src/sim/ — raw handles escaping the frame-pool /
                       calendar machinery defeat its ownership bookkeeping
                       (double-destroy, resume-after-free).
  no-blocking-in-sim   std::this_thread::sleep_* or a bare std::mutex family
                       primitive inside a coroutine TU — simulated time must
                       come from the calendar (sim::Delay), never from the
                       host clock or scheduler.

A finding can be suppressed for one line with a trailing
`// emsim-lint: allow(<rule-id>)` comment; `allow(rule-a, rule-b)` lists and
repeated allow(...) groups suppress several rules on one line. Every
suppressed finding is reported per rule in the JSON report so suppressions
stay auditable.

Usage:
  tools/lint/emsim_lint.py --root . [--report lint-report.json] [--list-rules]
      [--cache-dir DIR] [--no-cache] [--stats] [--timing-report out.json]

Results are cached per file (content-hash over the file bytes plus this
tool's own source, so rule edits invalidate everything) — repeat runs only
re-lint files that changed since the last run. `--stats`/`--timing-report`
expose the same timing/cache shape as run_clang_tidy.py.

Exit status: 0 when clean, 1 when any finding, 2 on usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint_cache  # noqa: E402

# Directories scanned relative to --root. Headers and sources only.
SCAN_DIRS = ("src", "tools", "bench", "tests", "examples")
SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

# Result/JSON-export paths: files whose output must be byte-stable. A file
# belongs to the export surface when any of these regexes matches its
# repo-relative POSIX path.
EXPORT_PATH_PATTERNS = (
    r"^src/core/result",      # MergeResult + its JSON projection
    r"^src/core/experiment",  # trial aggregation feeding every bench artifact
    r"^src/stats/json_writer",
    r"^src/stats/table",      # formatted tables embedded in bench output
    r"^src/obs/",             # metrics registry exported into MergeResult
)

ALLOW_RE = re.compile(r"emsim-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")


def allowed_rules(raw_line: str) -> set:
    """Every rule id named by `// emsim-lint: allow(...)` directives on this
    line. Comma lists and repeated allow(...) groups both work:
    `allow(rule-a, rule-b)` == `allow(rule-a) allow(rule-b)`."""
    rules = set()
    comment = raw_line.find("//")
    if comment < 0:
        return rules
    for m in ALLOW_RE.finditer(raw_line, comment):
        rules.update(r.strip() for r in m.group(1).split(","))
    return rules
LINE_COMMENT_RE = re.compile(r"//(?!\s*emsim-lint:).*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


class Rule:
    """One lint rule: a regex applied per physical line after comment and
    string-literal stripping, restricted to a path predicate."""

    def __init__(self, rule_id, pattern, message, applies=None):
        self.rule_id = rule_id
        self.pattern = re.compile(pattern)
        self.message = message
        self.applies = applies or (lambda relpath: True)


def _in_export_path(relpath: str) -> bool:
    return any(re.search(p, relpath) for p in EXPORT_PATH_PATTERNS)


RULES = [
    Rule(
        "no-libc-rand",
        r"(?<![\w:.])(?:s?rand|random|rand_r|drand48)\s*\(",
        "libc RNG is unseeded global state; draw from an explicitly seeded emsim::Rng",
    ),
    Rule(
        "no-wall-clock",
        r"(?:(?<![\w:.])|(?<=std::))(?:time|clock|gettimeofday|clock_gettime|localtime|gmtime)\s*\("
        r"|std::chrono::(?:system_clock|high_resolution_clock)",
        "wall-clock reads make output depend on real time; use simulated time "
        "(sim::Simulation::Now) or steady_clock strictly for bench wall timing",
    ),
    Rule(
        "no-std-random-engine",
        r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|random_device|"
        r"ranlux\w+|knuth_b)",
        "std:: random engines are not byte-stable across platforms and invite "
        "unseeded construction; the sanctioned generator is emsim::Rng",
    ),
    Rule(
        "no-unordered-in-export",
        r"\bunordered_(?:map|set|multimap|multiset)\b",
        "unordered container in a result/JSON-export path: iteration order is not "
        "byte-stable; use std::map or sort explicitly before emitting",
        applies=_in_export_path,
    ),
    Rule(
        "raw-thread",
        r"\bstd::(?:jthread\b|thread\b(?!\s*::))"
        r"|(?<![\w:])std::async\s*\("
        r"|\.detach\s*\(\)",
        "ad-hoc thread outside src/util/: route parallelism through "
        "util::ThreadPool (bounded, joined, capability-annotated) so the "
        "concurrency analyzer's parallel roots stay accurate; "
        "std::thread::hardware_concurrency is fine",
        applies=lambda relpath: not relpath.startswith(("src/util/",
                                                        "tests/")),
    ),
    Rule(
        "check-over-assert",
        r"(?<![\w._])assert\s*\(",
        "assert() vanishes under NDEBUG so Release and Debug enforce different "
        "invariants; use EMSIM_CHECK (always on) or EMSIM_DCHECK (debug-only, "
        "still type-checked)",
    ),
]


# result-unchecked: the scan is two-pass per file. Pass one collects every
# variable introduced as `Result<T> name = ...` / `Result<T> name{...}`; pass
# two flags accesses (`name.value()`, `*name`, `*std::move(name)`, `name->`)
# with no `name.ok()` within the current line or the RESULT_OK_WINDOW lines
# above it. The window is a deliberate approximation — real dataflow needs a
# compiler — sized so every sanctioned idiom (`if (!r.ok()) return ...;`,
# `EMSIM_CHECK(r.ok());`, early-return ladders) passes while a bare
# dereference far from any check is caught. Scoped to src/: tests and tools
# assert liberally and gtest's ASSERT_TRUE(r.ok()) may sit in another helper.
RESULT_OK_WINDOW = 15
RESULT_DECL_RE = re.compile(r"\bResult<[^;=]*>\s+(\w+)\s*[={]")
RESULT_UNCHECKED_MESSAGE = (
    "Result access without a visible ok() check: dereferencing an error "
    "Result aborts; gate it with ok() (if/return/EMSIM_CHECK) within the "
    f"preceding {RESULT_OK_WINDOW} lines")


def _result_unchecked_findings(relpath, code_lines):
    """code_lines: list of (lineno, stripped_code, raw, allowed_rules)."""
    if not relpath.startswith("src/"):
        return [], []
    names = set()
    for _, code, _, _ in code_lines:
        for m in RESULT_DECL_RE.finditer(code):
            names.add(m.group(1))
    findings = []
    suppressions = []
    for name in sorted(names):
        esc = re.escape(name)
        use_re = re.compile(
            rf"(?<![\w.]){esc}\s*\.\s*value\s*\(\)"
            rf"|\*\s*(?:std::move\(\s*)?{esc}\b"
            rf"|(?<![\w.]){esc}\s*->")
        ok_re = re.compile(rf"(?<![\w.]){esc}\s*\.\s*ok\s*\(\)")
        for idx, (lineno, code, raw, allowed) in enumerate(code_lines):
            if not use_re.search(code):
                continue
            window = code_lines[max(0, idx - RESULT_OK_WINDOW): idx + 1]
            if any(ok_re.search(c) for _, c, _, _ in window):
                continue
            entry = {
                "rule": "result-unchecked",
                "path": relpath,
                "line": lineno,
                "message": RESULT_UNCHECKED_MESSAGE,
                "snippet": raw.strip()[:160],
            }
            if "result-unchecked" in allowed:
                suppressions.append(entry)
            else:
                findings.append(entry)
    return findings, suppressions


# artifact-raw-write: every artifact writer must stage through
# util::AtomicFile (write temp -> fsync -> rename) so a crash can never
# publish a torn file under its final name — the crash-resume path trusts any
# artifact whose footer verifies, so a torn-but-lucky raw write would poison
# the merge. The scan needs the RAW line for the fopen mode because
# strip_noncode() blanks string literals; the stripped line still gates the
# match so fopen/ofstream in comments or strings do not fire. Tests are out
# of scope: corrupting files on purpose is what the crash tests do.
ARTIFACT_RAW_WRITE_MESSAGE = (
    "raw file write bypasses util::AtomicFile: a crash mid-write publishes a "
    "torn file under its final name, which downstream readers would trust; "
    "stage artifacts through util::AtomicFile / util::WriteFileAtomic "
    "(read-mode fopen is fine)")
FOPEN_CALL_RE = re.compile(r"(?<![\w.])(?:std::\s*)?fopen\s*\(")
FOPEN_MODE_RE = re.compile(r',\s*"([^"]*)"\s*\)')
OFSTREAM_RE = re.compile(r"\b(?:std::\s*)?ofstream\b")


def _artifact_raw_write_findings(relpath, code_lines):
    """code_lines: list of (lineno, stripped_code, raw, allowed_rules)."""
    if relpath.startswith("tests/"):
        return [], []
    findings = []
    suppressions = []
    for lineno, code, raw, allowed in code_lines:
        hit = bool(OFSTREAM_RE.search(code))
        if not hit and FOPEN_CALL_RE.search(code):
            # Mode string lives in the raw line (strings are stripped from
            # `code`). A mode on a later line, or none at all, flags
            # conservatively — put the mode on the call line or use allow().
            m_raw = FOPEN_CALL_RE.search(raw)
            mode_m = FOPEN_MODE_RE.search(raw, m_raw.end()) if m_raw else None
            mode = mode_m.group(1) if mode_m else None
            if mode is None or any(c in mode for c in "wa+"):
                hit = True
        if not hit:
            continue
        entry = {
            "rule": "artifact-raw-write",
            "path": relpath,
            "line": lineno,
            "message": ARTIFACT_RAW_WRITE_MESSAGE,
            "snippet": raw.strip()[:160],
        }
        if "artifact-raw-write" in allowed:
            suppressions.append(entry)
        else:
            findings.append(entry)
    return findings, suppressions


# --- Coroutine-safety rules -------------------------------------------------
#
# Scoped to coroutine translation units: a file whose stripped code contains
# co_await or co_return. The scans below work on the joined stripped text so
# a lambda body can be brace-matched across lines.

CORO_TOKEN_RE = re.compile(r"\bco_(?:await|return)\b")
# Lambda introducer: capture list, optional params, optional specifiers and
# trailing return type, then the body's opening brace. [[attributes]] do not
# match (the inner bracket pair is followed by `]`, never by `(` or `{`).
LAMBDA_RE = re.compile(
    r"\[(?P<captures>[^\[\]]*)\]\s*(?:\((?P<params>[^()]*)\))?\s*"
    r"(?:mutable\b\s*)?(?:noexcept\b\s*)?(?:->\s*[\w:<>&*\s]{1,80}?)?\{")
REF_PARAM_NAME_RE = re.compile(r"&&?\s*(\w+)\s*(?:,|$|\))")

CORO_REF_CAPTURE_MESSAGE = (
    "lambda coroutine with a by-reference capture or a reference parameter "
    "read after co_await: the coroutine frame outlives the enclosing scope, "
    "so the reference dangles at resume time; pass by value or use a named "
    "coroutine whose caller owns the referents across the run")
CORO_RAW_HANDLE_MESSAGE = (
    "std::coroutine_handle outside src/sim/: raw handles escaping the frame-"
    "pool/calendar machinery defeat its ownership bookkeeping (double-destroy, "
    "resume-after-free); communicate through Events/Semaphores/Mailboxes")
NO_BLOCKING_IN_SIM_MESSAGE = (
    "blocking primitive in a coroutine translation unit: simulated time must "
    "come from the calendar (co_await sim::Delay), never from the host "
    "scheduler; use sim synchronization objects instead of OS ones")

BLOCKING_RE = re.compile(
    r"std::this_thread::sleep_(?:for|until)"
    r"|std::(?:timed_|recursive_)*mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable\w*\b")


def _match_brace(text: str, open_idx: int) -> int:
    """Index one past the brace matching text[open_idx] (or len(text))."""
    depth = 0
    for idx in range(open_idx, len(text)):
        ch = text[idx]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                return idx + 1
    return len(text)


def _coroutine_findings(relpath, code_lines):
    """code_lines: list of (lineno, stripped_code, raw, allowed_rules).
    Returns (findings, suppressions) for the three coroutine-safety rules."""
    findings = []
    suppressions = []

    def emit(rule, message, idx):
        lineno, _, raw, allowed = code_lines[idx]
        entry = {
            "rule": rule,
            "path": relpath,
            "line": lineno,
            "message": message,
            "snippet": raw.strip()[:160],
        }
        (suppressions if rule in allowed else findings).append(entry)

    text = "\n".join(code for _, code, _, _ in code_lines)
    is_coro_tu = bool(CORO_TOKEN_RE.search(text))

    # coro-raw-handle: everywhere except the sim kernel itself (per line, so
    # it also catches handle uses in files that are not yet coroutine TUs).
    if not relpath.startswith("src/sim/"):
        for idx, (_, code, _, _) in enumerate(code_lines):
            if re.search(r"\bcoroutine_handle\b", code):
                emit("coro-raw-handle", CORO_RAW_HANDLE_MESSAGE, idx)

    if not is_coro_tu:
        return findings, suppressions

    # no-blocking-in-sim
    for idx, (_, code, _, _) in enumerate(code_lines):
        if BLOCKING_RE.search(code):
            emit("no-blocking-in-sim", NO_BLOCKING_IN_SIM_MESSAGE, idx)

    # coro-ref-capture: lambdas whose body suspends.
    for m in LAMBDA_RE.finditer(text):
        open_idx = text.index("{", m.end() - 1)
        body = text[open_idx:_match_brace(text, open_idx)]
        if not CORO_TOKEN_RE.search(body):
            continue
        intro_idx = text[: m.start()].count("\n")
        captures = m.group("captures") or ""
        if "&" in captures:
            emit("coro-ref-capture", CORO_REF_CAPTURE_MESSAGE, intro_idx)
            continue
        params = m.group("params") or ""
        ref_names = REF_PARAM_NAME_RE.findall(params)
        if not ref_names:
            continue
        first_suspend = CORO_TOKEN_RE.search(body)
        after = body[first_suspend.end():]
        use_re = re.compile(
            r"(?<![\w.])(?<!->)(?:" +
            "|".join(re.escape(n) for n in ref_names) + r")\b")
        if use_re.search(after):
            emit("coro-ref-capture", CORO_REF_CAPTURE_MESSAGE, intro_idx)

    return findings, suppressions


def expected_guard(relpath: str) -> str:
    """src/util/check.h -> EMSIM_UTIL_CHECK_H_; bench/bench_util.h ->
    EMSIM_BENCH_BENCH_UTIL_H_. The leading src/ is dropped (library headers
    are included as util/check.h), every other directory is kept."""
    parts = Path(relpath).parts
    if parts[0] == "src":
        parts = parts[1:]
    stem = "/".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    return "EMSIM_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def strip_noncode(line: str) -> str:
    """Removes string literals and non-directive comments so rule regexes do
    not fire on prose. Keeps `emsim-lint:` directives intact."""
    line = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", line)


def lint_text(relpath: str, text: str):
    """Returns (findings, suppressions) for one file's contents. Pure so the
    unit test can feed fixture strings."""
    findings = []
    suppressions = []
    code_lines = []  # (lineno, stripped_code, raw, allowed) for stateful rules
    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        # Block comments: drop commented regions, tracking continuation.
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        while "/*" in line:
            start = line.find("/*")
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        allowed = allowed_rules(raw)
        code = strip_noncode(line)
        code_lines.append((lineno, code, raw, allowed))
        for rule in RULES:
            if not rule.applies(relpath):
                continue
            if not rule.pattern.search(code):
                continue
            entry = {
                "rule": rule.rule_id,
                "path": relpath,
                "line": lineno,
                "message": rule.message,
                "snippet": raw.strip()[:160],
            }
            if rule.rule_id in allowed:
                suppressions.append(entry)
            else:
                findings.append(entry)
    unchecked, unchecked_suppressed = _result_unchecked_findings(relpath, code_lines)
    findings.extend(unchecked)
    suppressions.extend(unchecked_suppressed)
    raw_write, raw_write_suppressed = _artifact_raw_write_findings(relpath, code_lines)
    findings.extend(raw_write)
    suppressions.extend(raw_write_suppressed)
    coro, coro_suppressed = _coroutine_findings(relpath, code_lines)
    findings.extend(coro)
    suppressions.extend(coro_suppressed)
    if relpath.endswith((".h", ".hpp")):
        want = expected_guard(relpath)
        guard_re = re.compile(r"^#ifndef\s+(\S+)\s*$", re.MULTILINE)
        m = guard_re.search(text)
        got = m.group(1) if m else None
        if got != want or f"#define {want}" not in text:
            findings.append({
                "rule": "include-guard",
                "path": relpath,
                "line": (text[: m.start()].count("\n") + 1) if m else 1,
                "message": f"include guard must be {want}" +
                           (f" (found {got})" if got else " (none found)"),
                "snippet": (m.group(0) if m else "").strip()[:160],
            })
    return findings, suppressions


def iter_sources(root: Path):
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                yield path


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root to scan")
    parser.add_argument("--report", help="write a machine-readable JSON findings report")
    parser.add_argument("--list-rules", action="store_true", help="print rule ids and exit")
    lint_cache.add_cache_args(parser, "emsim-lint")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}: {rule.message}")
        print(f"result-unchecked: {RESULT_UNCHECKED_MESSAGE}")
        print(f"artifact-raw-write: {ARTIFACT_RAW_WRITE_MESSAGE}")
        print("include-guard: headers must guard with EMSIM_<PATH>_H_")
        print(f"coro-ref-capture: {CORO_REF_CAPTURE_MESSAGE}")
        print(f"coro-raw-handle: {CORO_RAW_HANDLE_MESSAGE}")
        print(f"no-blocking-in-sim: {NO_BLOCKING_IN_SIM_MESSAGE}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"emsim_lint: no such directory: {root}", file=sys.stderr)
        return 2

    cache = lint_cache.FileCache(
        lint_cache.resolve_cache_dir(args, root, "emsim-lint"),
        lint_cache.digest_paths(__file__))
    findings = []
    suppressions = []
    scanned = 0
    for path in iter_sources(root):
        relpath = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        file_started = time.monotonic()
        cached = cache.get(relpath, text)
        if cached is not None:
            file_findings, file_suppressions = cached
        else:
            file_findings, file_suppressions = lint_text(relpath, text)
            cache.put(relpath, text, [file_findings, file_suppressions])
        cache.record(relpath, cached is not None,
                     time.monotonic() - file_started)
        findings.extend(file_findings)
        suppressions.extend(file_suppressions)
        scanned += 1
    cache.gc()

    report = {
        "tool": "emsim_lint",
        "version": 1,
        "files_scanned": scanned,
        "findings": findings,
        "suppressions": suppressions,
    }
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for f in findings:
        print(f"{f['path']}:{f['line']}: [{f['rule']}] {f['message']}")
        if f["snippet"]:
            print(f"    {f['snippet']}")
    summary = (f"emsim_lint: {scanned} files, {len(findings)} finding(s), "
               f"{len(suppressions)} suppression(s), {cache.hits} cached")
    print(summary, file=sys.stderr if findings else sys.stdout)
    lint_cache.emit_stats(args, cache, "emsim_lint")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

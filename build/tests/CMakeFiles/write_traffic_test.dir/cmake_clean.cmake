file(REMOVE_RECURSE
  "CMakeFiles/write_traffic_test.dir/write_traffic_test.cc.o"
  "CMakeFiles/write_traffic_test.dir/write_traffic_test.cc.o.d"
  "write_traffic_test"
  "write_traffic_test.pdb"
  "write_traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef EMSIM_DISK_DISK_PARAMS_H_
#define EMSIM_DISK_DISK_PARAMS_H_

#include <cstdint>
#include <string>

#include "disk/geometry.h"
#include "util/status.h"

namespace emsim::disk {

/// How the rotational latency of a request is drawn.
enum class RotationalLatencyModel {
  /// Every request pays exactly the mean latency R (half a revolution) —
  /// matches the closed-form analysis with zero variance.
  kFixedMean,
  /// Uniform on [0, 2R] — what the paper's simulator does; the mean is R but
  /// the spread drives E[max] effects in synchronized inter-run prefetching.
  kUniform,
  /// Physical model (extension): the platter position is derived from the
  /// absolute time (it spins continuously), so the wait is the angle from
  /// the head's current position to the target sector. Back-to-back
  /// sequential reads wait zero; re-reading a block waits almost a full
  /// revolution. Requires callers to pass the current time to
  /// Mechanism::Access.
  kAngular,
};

/// Order in which queued requests are served.
enum class SchedulingPolicy {
  kFcfs,  ///< First-come-first-served (the paper's model).
  kSstf,  ///< Shortest-seek-time-first (ablation extension).
};

/// Mechanical and policy parameters of one disk. Defaults reproduce the
/// paper's drive: S = 0.01 ms/cylinder seek, 16.67 ms revolution
/// (R = 8.33 ms), T = 16.67 * 8/52 = 2.5641 ms per 4,096-B block.
struct DiskParams {
  Geometry geometry;

  /// Linear seek cost per cylinder of travel (the paper's S). The paper
  /// notes a linear model overestimates long seeks but keeps it for
  /// simplicity; we do the same and add an optional fixed settle overhead.
  double seek_ms_per_cylinder = 0.01;

  /// Fixed per-seek overhead added whenever the arm moves (extension;
  /// 0 in the paper's model).
  double seek_settle_ms = 0.0;

  /// Full platter revolution time; 3,600 RPM in the paper.
  double revolution_ms = 50.0 / 3.0;

  RotationalLatencyModel rotation = RotationalLatencyModel::kUniform;
  SchedulingPolicy scheduling = SchedulingPolicy::kFcfs;

  /// If true, a request that starts at the block immediately following the
  /// previously transferred block pays neither seek nor rotational latency.
  /// The paper charges seek + R per request unconditionally, so this is off
  /// by default; it exists as an ablation.
  bool sequential_optimization = false;

  /// Transfer time for one block: the block's share of a revolution.
  double TransferMsPerBlock() const {
    return revolution_ms * geometry.SectorsPerBlock() / geometry.sectors_per_track;
  }

  /// Mean rotational latency R (half a revolution).
  double MeanRotationalLatencyMs() const { return revolution_ms / 2.0; }

  /// Seek time for a move of `cylinders` cylinders (0 cost for 0 distance).
  double SeekMs(int64_t cylinders) const;

  Status Validate() const;

  std::string ToString() const;

  /// The paper's parameter set (also the default constructor's values).
  static DiskParams Paper();
};

}  // namespace emsim::disk

#endif  // EMSIM_DISK_DISK_PARAMS_H_

// Ablation: victim-run choice for inter-run prefetching. The paper uses a
// uniformly random choice and reports (citing its companion TR) that
// head-position heuristics were not worth their bookkeeping; this bench
// reproduces that comparison with four choosers.

#include <cstdint>
#include <utility>

#include "bench_util.h"
#include "core/config.h"
#include "stats/table.h"
#include "util/str.h"
#include "workload/depletion_generator.h"

int main() {
  using namespace emsim;
  using core::MergeConfig;
  using core::Strategy;
  using core::SyncMode;
  using core::VictimPolicy;
  using stats::Table;

  bench::Banner("Ablation A-RUN: victim-run chooser",
                "All Disks One Run, unsynchronized, k=25/D=5 and k=50/D=10.\n"
                "Expected shape: all choosers within a few percent — the\n"
                "paper's justification for the simple random policy.");

  struct Policy {
    VictimPolicy policy;
    const char* name;
  };
  const Policy policies[] = {
      {VictimPolicy::kRandom, "random (paper)"},
      {VictimPolicy::kRoundRobin, "round-robin"},
      {VictimPolicy::kFewestBuffered, "fewest-buffered"},
      {VictimPolicy::kNearestHead, "nearest-head"},
  };

  for (auto [k, d] : {std::pair<int, int>{25, 5}, std::pair<int, int>{50, 10}}) {
    for (int64_t cache : {int64_t{0}, int64_t{600}}) {  // 0 = ample (auto).
      Table table({"victim policy", "time (s)", "success", "concurrency"});
      for (const Policy& p : policies) {
        MergeConfig cfg =
            MergeConfig::Paper(k, d, 10, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
        if (cache > 0) {
          cfg.cache_blocks = cache;
        }
        cfg.victim = p.policy;
        auto result = bench::Run(cfg);
        table.AddRow({p.name, bench::TimeCell(result),
                      Table::Cell(result.MeanSuccessRatio(), 3),
                      Table::Cell(result.MeanConcurrency(), 3)});
      }
      bench::EmitTable(StrFormat("k=%d, D=%d, N=10, cache=%s", k, d,
                                 cache > 0 ? StrFormat("%lld", (long long)cache).c_str()
                                           : "ample"),
                       table);
    }
  }

  // The clairvoyant upper bound (Aggarwal & Vitter) needs a fixed trace so
  // the future is knowable; replay one frozen uniform trace under every
  // policy at a tight cache.
  {
    Table table({"victim policy", "time (s)", "success", "concurrency"});
    MergeConfig base =
        MergeConfig::Paper(25, 5, 10, Strategy::kAllDisksOneRun, SyncMode::kUnsynchronized);
    base.cache_blocks = 600;
    base.depletion = core::DepletionKind::kTrace;
    base.trace = workload::UniformDepletionTrace(25, 1000, /*seed=*/42);
    const Policy all_policies[] = {
        {VictimPolicy::kRandom, "random (paper)"},
        {VictimPolicy::kFewestBuffered, "fewest-buffered"},
        {VictimPolicy::kClairvoyant, "clairvoyant (upper bound)"},
    };
    for (const Policy& p : all_policies) {
      MergeConfig cfg = base;
      cfg.victim = p.policy;
      auto result = bench::Run(cfg);
      table.AddRow({p.name, bench::TimeCell(result),
                    Table::Cell(result.MeanSuccessRatio(), 3),
                    Table::Cell(result.MeanConcurrency(), 3)});
    }
    bench::EmitTable("Frozen uniform trace, k=25, D=5, N=10, cache=600", table,
                     "the gap between random and clairvoyant bounds what any "
                     "realizable heuristic could recover — the paper found it "
                     "not worth the bookkeeping");
  }
  emsim::bench::WriteJsonArtifact("ablation_run_choice");
  return 0;
}

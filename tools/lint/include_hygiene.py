#!/usr/bin/env python3
"""emsim include-hygiene lint — a poor-man's include-what-you-use.

The toolchain image ships no IWYU binary, so this pass rebuilds the two checks
that matter from first principles, with no compiler dependency:

  unused-include          a directly-included header none of whose exported
                          symbols are referenced anywhere in the file.
  missing-direct-include  a symbol whose defining header is not directly
                          included (the file leans on a transitive include,
                          which breaks silently when the intermediary drops it).

Export maps come from two sources:

  * Project headers are parsed for the symbols they declare at namespace
    level: classes/structs/enums, free functions, `using` aliases, typedefs,
    macros and constexpr constants. Member names never enter the map (brace
    depth is tracked, with `namespace {` transparent), so `x.value()` does not
    count as using a header that declares a class with a `value()` method.
  * Standard headers use a curated symbol table (STD_EXPORTS below) covering
    every std header this repository includes. Headers outside the table —
    third-party ones like <gtest/gtest.h>, or headers whose use is inherently
    invisible to a token scan like <new> (placement new) — are never flagged.

Deliberate approximations, mirroring IWYU's own conventions:

  * foo.cc may rely on anything its associated header foo.h includes directly
    (the "associated header" exception), and the associated include itself is
    never flagged unused.
  * A header that exports only operators (nothing nameable) is never flagged
    unused — the scan cannot see operator calls.
  * A finding can be suppressed with a trailing
    `// emsim-lint: allow(include-hygiene)` on the include line (unused) or
    the first-use line (missing); suppressions land in the JSON report so
    they stay auditable.

Usage:
  tools/lint/include_hygiene.py --root . [--report out.json] [--fix]

`--fix` deletes unsuppressed unused-include lines in place (missing includes
are reported only; adding one is a judgement call about which block it joins).

Exit status: 0 when clean, 1 when any finding, 2 on usage error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint_cache  # noqa: E402

SCAN_DIRS = ("src", "tools", "bench", "tests", "examples")
SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

# Std headers whose use a token scan cannot see (placement new, feature-test
# macros), plus anything third-party-shaped (<a/b.h>, <x.h>): never flagged,
# neither as unused nor as missing.
STD_OPAQUE = {"new", "version", "ciso646"}

# Curated std-header symbol table: header -> usage regex. Matching is done on
# comment/string-stripped text with include lines removed. The table aims to
# be disjoint (each symbol maps to one header) so "missing" has one candidate.
STD_EXPORTS = {
    "algorithm": (
        r"std::(?:sort|stable_sort|nth_element|partial_sort|is_sorted|"
        r"min_element|max_element|minmax_element|min|max|clamp|"
        r"fill(?:_n)?|copy(?:_n|_if|_backward)?|transform|"
        r"find(?:_if(?:_not)?)?|count(?:_if)?|any_of|all_of|none_of|"
        r"remove(?:_if)?|replace(?:_if)?|unique|reverse|rotate|"
        r"lower_bound|upper_bound|equal_range|binary_search|"
        r"push_heap|pop_heap|make_heap|sort_heap|"
        r"partition|stable_partition|for_each|mismatch|equal|"
        r"lexicographical_compare|swap_ranges|generate(?:_n)?|"
        r"merge|set_intersection|set_union|set_difference|includes|shuffle)\b"
    ),
    "array": r"std::array\b",
    "atomic": r"std::(?:atomic\w*|memory_order\w*)\b",
    "chrono": r"std::chrono\b",
    "cmath": (
        r"std::(?:abs|fabs|sqrt|cbrt|pow|exp|exp2|expm1|log|log2|log10|log1p|"
        r"ceil|floor|round|lround|llround|trunc|fmod|remainder|isnan|isfinite|"
        r"isinf|hypot|sin|cos|tan|asin|acos|atan|atan2|sinh|cosh|tanh|erf|erfc|"
        r"lgamma|tgamma|copysign|nextafter|frexp|ldexp|modf|fmin|fmax|nan)\b"
        r"|(?<![\w:.])(?:sqrt|fabs|pow|exp2|log2|log10|ceil|floor|lround|fmod|"
        r"hypot|atan2|erf|lgamma)\s*\("
        r"|\b(?:M_PI|HUGE_VAL|NAN|INFINITY)\b"
    ),
    "condition_variable": r"std::condition_variable\w*\b",
    "coroutine": (
        r"std::(?:coroutine_handle|coroutine_traits|suspend_always|"
        r"suspend_never|noop_coroutine\w*)\b"
    ),
    "cstdarg": r"\bva_(?:list|start|end|arg|copy)\b",
    # Bare size_t/ptrdiff_t count: the repo spells them unqualified, and
    # <cstddef> is the only header required to provide them.
    "cstddef": (
        r"\b(?:std::)?(?:size_t|ptrdiff_t|max_align_t|nullptr_t)\b"
        r"|std::byte\b|\boffsetof\b"
    ),
    "cstdint": (
        r"\b(?:u?int(?:8|16|32|64)(?:_least\d+|_fast\d+)?_t|u?intptr_t|u?intmax_t|"
        r"U?INT(?:8|16|32|64)_(?:MAX|MIN|C)|SIZE_MAX|PTRDIFF_(?:MAX|MIN))\b"
    ),
    "cstdio": (
        r"std::(?:FILE|fopen|fclose|fread|fwrite|fgets|fputs|fprintf|printf|"
        r"snprintf|sscanf|fflush|fseek|ftell|remove|rename|perror|puts|putchar|"
        r"vsnprintf|vfprintf|fgetc|getc|ungetc|tmpfile|setvbuf)\b"
        r"|(?<![\w:.])(?:fopen|fclose|fread|fwrite|fgets|fputs|fprintf|printf|"
        r"snprintf|sscanf|fflush|fseek|ftell|perror|putchar|vsnprintf|vfprintf|"
        r"fgetc|ungetc|tmpfile|setvbuf)\s*\("
        r"|\b(?:stdin|stdout|stderr|EOF|SEEK_SET|SEEK_CUR|SEEK_END|BUFSIZ)\b"
        r"|(?<!std::)\bFILE\b"
    ),
    "cstdlib": (
        r"std::(?:abort|exit|atexit|getenv|system|malloc|calloc|realloc|free|"
        r"aligned_alloc|strtol|strtoll|strtoul|strtoull|strtod|strtof|atoi|atol|"
        r"atof|qsort|bsearch|labs|llabs|div|ldiv)\b"
        r"|(?<![\w:.])(?:abort|getenv|strtol|strtoll|strtoul|strtoull|strtod|"
        r"strtof|atoi|atol|atof|aligned_alloc)\s*\("
        r"|\bEXIT_(?:SUCCESS|FAILURE)\b"
    ),
    "cstring": (
        r"std::(?:memcpy|memset|memmove|memcmp|memchr|strlen|strcmp|strncmp|"
        r"strcpy|strncpy|strcat|strncat|strchr|strrchr|strstr|strerror|strtok)\b"
        r"|(?<![\w:.])(?:memcpy|memset|memmove|memcmp|strlen|strcmp|strncmp|"
        r"strcpy|strncpy|strchr|strrchr|strstr|strerror)\s*\("
    ),
    "deque": r"std::deque\b",
    "functional": (
        r"std::(?:function|bind|bind_front|ref|cref|invoke|hash|less|greater|"
        r"less_equal|greater_equal|equal_to|not_fn|plus|minus|multiplies|"
        r"reference_wrapper|identity)\b"
    ),
    "limits": r"std::numeric_limits\b",
    "list": r"std::list\b",
    "map": r"std::(?:multi)?map\b",
    "memory": (
        r"std::(?:unique_ptr|shared_ptr|weak_ptr|make_unique|make_shared|"
        r"allocator|addressof|to_address|enable_shared_from_this|"
        r"default_delete|pointer_traits|destroy_at|construct_at)\b"
    ),
    "mutex": (
        r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
        r"lock_guard|unique_lock|scoped_lock|call_once|once_flag|try_to_lock|"
        r"defer_lock|adopt_lock)\b"
    ),
    "numeric": (
        r"std::(?:accumulate|iota|reduce|transform_reduce|inner_product|"
        r"partial_sum|adjacent_difference|gcd|lcm|midpoint)\b"
    ),
    "optional": r"std::(?:optional|nullopt|make_optional|bad_optional_access)\b",
    "queue": r"std::(?:priority_queue|queue)\b",
    "set": r"std::(?:multi)?set\b",
    "span": r"std::(?:span|dynamic_extent)\b",
    "sstream": r"std::(?:o|i)?stringstream\b",
    "string": (
        r"std::(?:string(?!_view)|to_string|stoi|stol|stoll|stoul|stoull|stod|"
        r"stof|getline|char_traits)\b"
    ),
    "string_view": r"std::string_view\b",
    "thread": r"std::(?:this_thread|jthread|thread)\b",
    "tuple": (
        r"std::(?:tuple(?:_size|_element)?|make_tuple|forward_as_tuple|tie|"
        r"apply|ignore)\b"
    ),
    "type_traits": (
        r"std::(?:is_\w+|enable_if\w*|decay\w*|remove_\w+|add_\w+|conditional\w*|"
        r"common_type\w*|underlying_type\w*|invoke_result\w*|void_t|true_type|"
        r"false_type|integral_constant|declare\w*|type_identity\w*)\b"
    ),
    "unordered_map": r"std::unordered_(?:multi)?map\b",
    "unordered_set": r"std::unordered_(?:multi)?set\b",
    "utility": (
        r"std::(?:move(?![\w_])|forward|swap|exchange|pair|make_pair|declval|"
        r"in_place\w*|piecewise_construct|index_sequence\w*|"
        r"make_index_sequence|integer_sequence|cmp_\w+|unreachable)\b"
    ),
    "vector": r"std::vector\b",
}

# The repo spells size_t unqualified, and only the C-compatibility headers
# are required to define ::size_t (the container headers guarantee just
# std::size_t — and on gcc-12/libstdc++, <vector> alone really does not leak
# the global name). <cstddef> is demanded unless one of these is included.
SIZE_T_PROVIDERS = {"cstddef", "cstdio", "cstdlib", "cstring", "ctime"}

ALLOW_RE = re.compile(r"//\s*emsim-lint:\s*allow\(\s*include-hygiene\s*[,)]")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')

# ---------------------------------------------------------------------------
# Source text preparation
# ---------------------------------------------------------------------------

_STRING_RE = re.compile(r'"(?:[^"\\\n]|\\.)*"|\'(?:[^\'\\\n]|\\.)*\'')
_LINE_COMMENT_RE = re.compile(r"//.*?$", re.MULTILINE)
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure so
    line numbers computed on the stripped text match the original."""

    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    text = _BLOCK_COMMENT_RE.sub(blank, text)
    text = _STRING_RE.sub(blank, text)
    return _LINE_COMMENT_RE.sub(blank, text)


# ---------------------------------------------------------------------------
# Export-map extraction for project headers
# ---------------------------------------------------------------------------

_NAMESPACE_OPEN_RE = re.compile(r"\b(?:inline\s+)?namespace\b[^{};]*\{")
_DECL_RES = (
    re.compile(r"#\s*define\s+([A-Za-z_]\w*)"),
    re.compile(r"\b(?:class|struct|union)\s+(?:\[\[[^\]]*\]\]\s*)?"
               r"(?:alignas\([^)]*\)\s*)?([A-Za-z_]\w*)"),
    re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)"),
    re.compile(r"\busing\s+([A-Za-z_]\w*)\s*="),
    re.compile(r"\btypedef\s+[^;]*?\b([A-Za-z_]\w*)\s*;"),
    # Free functions: a name followed by '(' after a plausible return type.
    re.compile(r"(?:^|[;}>]\s*|\n\s*)[\w:&<>,*~\s]*?[\w>&*]\s+"
               r"([A-Za-z_]\w*)\s*\("),
    # Namespace-scope constants.
    re.compile(r"\b(?:inline\s+|static\s+)?constexpr\b[^=;({]*?"
               r"\b([A-Za-z_]\w*)\s*[={]"),
)
_DECL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "alignas",
    "static_assert", "decltype", "operator", "new", "delete", "co_await",
    "co_return", "co_yield", "const", "constexpr", "noexcept", "class",
    "struct", "enum", "union", "namespace", "using", "typedef", "template",
    "typename", "public", "private", "protected", "final", "override",
}


def parse_exports(text: str) -> set[str]:
    """Names a header makes available to its includers: declarations at
    namespace level only (brace depth tracked, namespace braces transparent)."""
    stripped = strip_comments_and_strings(text)
    exports: set[str] = set()
    depth = 0
    for line in stripped.splitlines():
        effective = _NAMESPACE_OPEN_RE.sub(" ", line)
        # `extern "C" {` — the string literal is already blanked; treat the
        # residual `extern {` as transparent too.
        effective = re.sub(r"\bextern\s*\{", " ", effective)
        if depth == 0:
            for decl_re in _DECL_RES:
                for m in decl_re.finditer(line):
                    name = m.group(1)
                    if name not in _DECL_KEYWORDS:
                        exports.add(name)
        depth += effective.count("{") - effective.count("}")
        depth = max(depth, 0)
    return exports


# ---------------------------------------------------------------------------
# Per-file analysis
# ---------------------------------------------------------------------------

def symbol_use_re(names) -> re.Pattern:
    """Word-boundary match that rejects member access (`x.Run()`, `p->Run()`):
    a member named like an exported symbol is not a use of the header."""
    alt = "|".join(re.escape(n) for n in sorted(names))
    return re.compile(r"(?<![\w.])(?<!->)(?:" + alt + r")\b")


class Include:
    def __init__(self, lineno: int, spec: str, allowed: bool):
        self.lineno = lineno
        self.spec = spec            # <vector> or "util/check.h", verbatim
        self.allowed = allowed
        self.is_std = spec.startswith("<")
        self.name = spec[1:-1]      # vector / util/check.h


def parse_includes(text: str):
    includes = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        m = INCLUDE_RE.match(raw)
        if m:
            includes.append(Include(lineno, m.group(1), bool(ALLOW_RE.search(raw))))
    return includes


def resolve_project_include(name: str, including: Path, root: Path):
    """"util/check.h" -> root/src/util/check.h; "bench_util.h" (bench-local)
    resolves relative to the including file first, mirroring -I order."""
    for base in (including.parent, root / "src", root):
        candidate = base / name
        if candidate.is_file():
            try:
                return candidate.resolve().relative_to(root).as_posix()
            except ValueError:
                return None
    return None


class HygieneChecker:
    def __init__(self, root: Path):
        self.root = root
        self.exports: dict[str, set[str]] = {}       # relpath -> names
        self.providers: dict[str, set[str]] = {}     # name -> {relpath, ...}
        self.direct_includes: dict[str, list[Include]] = {}
        self.texts: dict[str, str] = {}
        self._usage_cache: dict[str, str] = {}

    def load(self, files: dict[str, str]):
        """files: relpath -> text for every scanned source."""
        self.texts = files
        for relpath, text in files.items():
            self.direct_includes[relpath] = parse_includes(text)
            if relpath.endswith((".h", ".hpp")):
                names = parse_exports(text)
                self.exports[relpath] = names
                for name in names:
                    self.providers.setdefault(name, set()).add(relpath)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _layered_provider(user: str, provider: str) -> bool:
        """Layering: src/ may only include src/; every other tree (tests,
        bench, tools, examples) may include src/ or its own directory. A
        bench-only symbol must never generate a suggestion for a src/ file."""
        user_top = user.split("/", 1)[0]
        provider_top = provider.split("/", 1)[0]
        return provider_top == "src" or provider_top == user_top

    def _associated_header(self, relpath: str):
        if not relpath.endswith((".cc", ".cpp")):
            return None
        stem = re.sub(r"\.(cc|cpp)$", "", relpath)
        for suffix in (".h", ".hpp"):
            if stem + suffix in self.texts:
                return stem + suffix
        return None

    def _resolved_project_includes(self, relpath: str):
        """relpath's direct project includes resolved to repo-relative paths."""
        resolved = {}
        for inc in self.direct_includes.get(relpath, []):
            if inc.is_std:
                continue
            target = resolve_project_include(
                inc.name, self.root / relpath, self.root)
            if target is not None:
                resolved[target] = inc
        return resolved

    def _usage_text(self, relpath: str) -> str:
        """Comment/string-stripped text with include directives blanked."""
        cached = self._usage_cache.get(relpath)
        if cached is not None:
            return cached
        stripped = strip_comments_and_strings(self.texts[relpath])
        lines = stripped.splitlines()
        for inc in self.direct_includes[relpath]:
            idx = inc.lineno - 1
            if idx < len(lines):
                lines[idx] = ""
        text = "\n".join(lines)
        self._usage_cache[relpath] = text
        return text

    def _first_use_line(self, relpath: str, pattern: re.Pattern):
        usage = self._usage_text(relpath)
        m = pattern.search(usage)
        if not m:
            return None, False
        lineno = usage[: m.start()].count("\n") + 1
        raw = self.texts[relpath].splitlines()[lineno - 1]
        return lineno, bool(ALLOW_RE.search(raw))

    # -- checks ------------------------------------------------------------

    def check_file(self, relpath: str):
        findings, suppressions = [], []
        usage = self._usage_text(relpath)
        assoc = self._associated_header(relpath)
        resolved = self._resolved_project_includes(relpath)

        # 1. unused-include -------------------------------------------------
        for inc in self.direct_includes[relpath]:
            entry = None
            if inc.is_std:
                if "/" in inc.name or inc.name.endswith(".h") or \
                        inc.name in STD_OPAQUE:
                    continue  # third-party or token-opaque: never flagged
                pattern = STD_EXPORTS.get(inc.name)
                if pattern is None or re.search(pattern, usage):
                    continue
                entry = self._entry("unused-include", relpath, inc.lineno,
                                    inc.spec,
                                    f"no symbol from {inc.spec} is referenced")
            else:
                target = resolve_project_include(
                    inc.name, self.root / relpath, self.root)
                if target is None or target == assoc:
                    continue  # unresolvable or the associated header
                names = self.exports.get(target)
                if not names:
                    continue  # header exports nothing nameable: cannot judge
                if symbol_use_re(names).search(usage):
                    continue
                entry = self._entry("unused-include", relpath, inc.lineno,
                                    inc.spec,
                                    f"no symbol declared in {inc.spec} is referenced")
            (suppressions if inc.allowed else findings).append(entry)

        # 2. missing-direct-include ----------------------------------------
        direct_std = {inc.name for inc in self.direct_includes[relpath] if inc.is_std}
        direct_project = set(resolved)
        provided_project = set(direct_project)
        if assoc is not None:
            provided_project.add(assoc)
            direct_std |= {i.name for i in self.direct_includes.get(assoc, [])
                           if i.is_std}
            provided_project |= set(self._resolved_project_includes(assoc))
        # Symbols the file itself declares (incl. forward declarations).
        self_names = parse_exports(self.texts[relpath])

        for header, pattern in sorted(STD_EXPORTS.items()):
            if header in direct_std:
                continue
            if header == "cstddef" and direct_std & SIZE_T_PROVIDERS:
                continue
            compiled = re.compile(pattern)
            lineno, allowed = self._first_use_line(relpath, compiled)
            if lineno is None:
                continue
            entry = self._entry(
                "missing-direct-include", relpath, lineno, f"<{header}>",
                f"symbol from <{header}> used without a direct include")
            (suppressions if allowed else findings).append(entry)

        checked: set[str] = set()
        for header, names in sorted(self.exports.items()):
            if header == relpath or header in provided_project:
                continue
            if not self._layered_provider(relpath, header):
                continue
            for name in sorted(names):
                if name in checked or name in self_names:
                    continue
                providers = {p for p in self.providers[name]
                             if self._layered_provider(relpath, p)}
                if not providers:
                    continue
                if providers & provided_project or relpath in providers:
                    continue
                checked.add(name)
                lineno, allowed = self._first_use_line(relpath, symbol_use_re([name]))
                if lineno is None:
                    continue
                candidates = sorted(providers)
                entry = self._entry(
                    "missing-direct-include", relpath, lineno, name,
                    f"`{name}` is declared in {', '.join(candidates)}, none of "
                    "which is directly included")
                entry["candidates"] = candidates
                (suppressions if allowed else findings).append(entry)

        return findings, suppressions

    @staticmethod
    def _entry(kind, relpath, lineno, what, message):
        return {
            "rule": "include-hygiene",
            "kind": kind,
            "path": relpath,
            "line": lineno,
            "what": what,
            "message": message,
        }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def iter_sources(root: Path):
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                yield path


def environment_digest(files: dict[str, str]) -> str:
    """Digest of everything a single file's verdict can depend on besides its
    own bytes: the set of scanned paths and the contents of every header
    (exports, transitive includes). Editing a header invalidates the whole
    cache — conservative but correct; editing a .cc invalidates only itself."""
    h = hashlib.sha256()
    for relpath in sorted(files):
        h.update(relpath.encode("utf-8", "replace"))
        h.update(b"\0")
        if relpath.endswith((".h", ".hpp")):
            h.update(hashlib.sha256(
                files[relpath].encode("utf-8", "replace")).digest())
    return h.hexdigest()


def run(root: Path, fix: bool = False, cache: lint_cache.FileCache = None):
    files: dict[str, str] = {}
    for path in iter_sources(root):
        relpath = path.relative_to(root).as_posix()
        files[relpath] = path.read_text(encoding="utf-8", errors="replace")

    checker = HygieneChecker(root)
    checker.load(files)

    findings, suppressions = [], []
    for relpath in sorted(files):
        file_started = time.monotonic()
        cached = cache.get(relpath, files[relpath]) if cache else None
        if cached is not None:
            file_findings, file_suppressions = cached
        else:
            file_findings, file_suppressions = checker.check_file(relpath)
            if cache:
                cache.put(relpath, files[relpath],
                          [file_findings, file_suppressions])
        if cache:
            cache.record(relpath, cached is not None,
                         time.monotonic() - file_started)
        findings.extend(file_findings)
        suppressions.extend(file_suppressions)
    if cache:
        cache.gc()

    if fix:
        doomed: dict[str, set[int]] = {}
        for f in findings:
            if f["kind"] == "unused-include":
                doomed.setdefault(f["path"], set()).add(f["line"])
        for relpath, line_numbers in doomed.items():
            lines = files[relpath].splitlines(keepends=True)
            kept = [l for i, l in enumerate(lines, start=1)
                    if i not in line_numbers]
            (root / relpath).write_text("".join(kept), encoding="utf-8")

    return len(files), findings, suppressions


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root to scan")
    parser.add_argument("--report", help="write a machine-readable JSON report")
    parser.add_argument("--fix", action="store_true",
                        help="delete unsuppressed unused-include lines in place")
    lint_cache.add_cache_args(parser, "include-hygiene")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"include_hygiene: no such directory: {root}", file=sys.stderr)
        return 2

    # The environment digest needs the scanned file set, which run() also
    # loads; reading twice keeps run() reusable from the tests.
    preload = {path.relative_to(root).as_posix():
               path.read_text(encoding="utf-8", errors="replace")
               for path in iter_sources(root)}
    cache = lint_cache.FileCache(
        lint_cache.resolve_cache_dir(args, root, "include-hygiene"),
        lint_cache.digest_paths(__file__),
        environment_digest(preload))
    scanned, findings, suppressions = run(root, fix=args.fix, cache=cache)

    report = {
        "tool": "include_hygiene",
        "version": 1,
        "files_scanned": scanned,
        "findings": findings,
        "suppressions": suppressions,
    }
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for f in findings:
        print(f"{f['path']}:{f['line']}: [{f['kind']}] {f['message']}")
    summary = (f"include_hygiene: {scanned} files, {len(findings)} finding(s), "
               f"{len(suppressions)} suppression(s), {cache.hits} cached"
               + (" (unused includes removed)" if args.fix and findings else ""))
    print(summary, file=sys.stderr if findings else sys.stdout)
    lint_cache.emit_stats(args, cache, "include_hygiene")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#ifndef EMSIM_UTIL_STATUS_H_
#define EMSIM_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace emsim {

/// Canonical error codes used across the library. Modeled on the
/// RocksDB/Abseil convention: fallible library boundaries return a Status (or
/// a Result<T>) instead of throwing.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kCorruption,
  kIoError,
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. An OK status carries no message and
/// no allocation; error statuses carry a code and a message.
///
/// The class is [[nodiscard]]: a call site that receives a Status must
/// consult it (or explicitly cast it to void). Silently dropped error codes
/// are the bug class the determinism lint and clang-tidy gate exist to stop.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A code of kOk
  /// ignores the message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-Status, the library's equivalent of absl::StatusOr<T>.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    EMSIM_CHECK(!status_.ok() && "Result constructed from OK status without a value");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; it is a fatal error if !ok().
  const T& value() const& {
    EMSIM_CHECK(ok() && "Result::value() called on error Result");
    return *value_;
  }
  T& value() & {
    EMSIM_CHECK(ok() && "Result::value() called on error Result");
    return *value_;
  }
  T&& value() && {
    EMSIM_CHECK(ok() && "Result::value() called on error Result");
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const { return ok() ? *value_ : fallback; }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ holds a value.
};

/// Propagates a non-OK status from an expression, RocksDB-style.
#define EMSIM_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::emsim::Status _emsim_status_tmp = (expr);     \
    if (!_emsim_status_tmp.ok()) {                  \
      return _emsim_status_tmp;                     \
    }                                               \
  } while (false)

}  // namespace emsim

#endif  // EMSIM_UTIL_STATUS_H_
